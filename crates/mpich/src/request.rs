//! Communication requests (`MPI_Request`): completion objects for
//! non-blocking operations, built on the kernel's virtual-time
//! semaphores — the same structure the paper's rendezvous rhandle uses
//! (a semaphore plus a handle identifying the transaction, §4.2.2).

use std::sync::Arc;

use bytes::Bytes;
use marcel::{ActiveSpan, Semaphore};
use parking_lot::Mutex as RealMutex;

use crate::types::Status;

/// Shared completion state of one request.
pub(crate) struct ReqInner {
    sem: Semaphore,
    state: RealMutex<ReqState>,
}

struct ReqState {
    /// Received payload as a refcounted slice of the wire buffer —
    /// the copy into a caller-owned `Vec` (if the caller wants one)
    /// is deferred to [`Request::wait`].
    result: Option<(Option<Bytes>, Status)>,
    /// Handling span opened on the device's polling thread; ended by
    /// the receiving rank when `wait` observes the completion, so the
    /// measured handling latency includes the wake handoff.
    handle_span: Option<ActiveSpan>,
}

impl ReqInner {
    pub(crate) fn new() -> Arc<ReqInner> {
        Arc::new(ReqInner {
            sem: Semaphore::current(0),
            state: RealMutex::new(ReqState {
                result: None,
                handle_span: None,
            }),
        })
    }

    /// Complete the request: deposit the received data (None for send
    /// requests) and wake the waiter.
    pub(crate) fn complete(&self, data: Option<Bytes>, status: Status) {
        let mut st = self.state.lock();
        assert!(st.result.is_none(), "request completed twice");
        st.result = Some((data, status));
        drop(st);
        self.sem.release();
    }

    /// Attach the cross-thread handling span (no-op when `span` is
    /// `None` — e.g. the delivery came from an uninstrumented device).
    pub(crate) fn set_handle_span(&self, span: Option<ActiveSpan>) {
        if let Some(s) = span {
            self.state.lock().handle_span = Some(s);
        }
    }

    fn take_handle_span(&self) -> Option<ActiveSpan> {
        self.state.lock().handle_span.take()
    }
}

/// Handle to an in-flight non-blocking operation. Consume with
/// [`Request::wait`]; poll with [`Request::test`].
pub struct Request {
    inner: Arc<ReqInner>,
    /// Whether the completion token was already taken from the
    /// semaphore (by a successful `test`).
    signaled: bool,
}

impl Request {
    pub(crate) fn new(inner: Arc<ReqInner>) -> Request {
        Request {
            inner,
            signaled: false,
        }
    }

    /// Block (in virtual time) until the operation completes; returns
    /// the received data (`None` for sends) and the status.
    pub fn wait(self) -> (Option<Vec<u8>>, Status) {
        let (data, status) = self.wait_bytes();
        (data.map(Bytes::into_vec), status)
    }

    /// Like [`Request::wait`], returning the payload as a refcounted
    /// slice of the wire buffer — the zero-copy variant for callers
    /// that don't need an owned `Vec`.
    pub fn wait_bytes(mut self) -> (Option<Bytes>, Status) {
        if !self.signaled {
            self.inner.sem.acquire();
            self.signaled = true;
        }
        marcel::obs::span_end(self.inner.take_handle_span());
        self.inner
            .state
            .lock()
            .result
            .take()
            .expect("request signaled without a result")
    }

    /// Wait on a receive request and return the data (panics on a send
    /// request).
    pub fn wait_data(self) -> (Vec<u8>, Status) {
        let (data, status) = self.wait();
        (data.expect("wait_data on a send request"), status)
    }

    /// Wait on a send request, discarding the (empty) payload.
    pub fn wait_send(self) {
        let (data, _) = self.wait();
        assert!(data.is_none(), "wait_send on a receive request");
    }

    /// Non-blocking completion check (`MPI_Test`). After it returns
    /// true, `wait` returns immediately.
    pub fn test(&mut self) -> bool {
        if self.signaled {
            return true;
        }
        if self.inner.sem.try_acquire() {
            self.signaled = true;
            marcel::obs::span_end(self.inner.take_handle_span());
            true
        } else {
            false
        }
    }
}

/// Wait for every request, in order (`MPI_Waitall`).
pub fn wait_all(requests: Vec<Request>) -> Vec<(Option<Vec<u8>>, Status)> {
    requests.into_iter().map(Request::wait).collect()
}

/// Wait until at least one request completes and return its index plus
/// result (`MPI_Waitany`). Remaining requests stay pending in `requests`.
pub fn wait_any(requests: &mut Vec<Request>) -> (usize, Option<Vec<u8>>, Status) {
    assert!(!requests.is_empty(), "wait_any on an empty request list");
    let mut backoff = marcel::VirtualDuration::from_micros(1);
    loop {
        for (i, r) in requests.iter_mut().enumerate() {
            if r.test() {
                let req = requests.remove(i);
                let (data, status) = req.wait();
                return (i, data, status);
            }
        }
        marcel::sleep(backoff);
        let next = backoff * 2;
        backoff = next.min(marcel::VirtualDuration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marcel::{CostModel, Kernel, VirtualDuration};

    #[test]
    fn wait_blocks_until_complete() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("main", || {
            let inner = ReqInner::new();
            let req = Request::new(inner.clone());
            marcel::spawn("completer", move || {
                marcel::advance(VirtualDuration::from_micros(30));
                inner.complete(
                    Some(Bytes::from(vec![1, 2, 3])),
                    Status {
                        source: 4,
                        tag: 9,
                        len: 3,
                    },
                );
            });
            let (data, status) = req.wait();
            (data, status, marcel::now())
        });
        k.run().unwrap();
        let (data, status, t) = h.join_outcome().unwrap();
        assert_eq!(data, Some(vec![1, 2, 3]));
        assert_eq!(status.len, 3);
        assert!(t.as_micros_f64() >= 30.0);
    }

    #[test]
    fn test_then_wait() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("main", || {
            let inner = ReqInner::new();
            let mut req = Request::new(inner.clone());
            assert!(!req.test());
            inner.complete(
                None,
                Status {
                    source: 0,
                    tag: 0,
                    len: 0,
                },
            );
            // Completion happened synchronously; test must see it.
            assert!(req.test());
            assert!(req.test(), "test is idempotent once signaled");
            let (data, _) = req.wait();
            data.is_none()
        });
        k.run().unwrap();
        assert!(h.join_outcome().unwrap());
    }

    #[test]
    fn wait_all_in_order() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("main", || {
            let mut reqs = Vec::new();
            for i in 0..3u8 {
                let inner = ReqInner::new();
                reqs.push(Request::new(inner.clone()));
                marcel::spawn(format!("c{i}"), move || {
                    marcel::advance(VirtualDuration::from_micros((3 - i as u64) * 10));
                    inner.complete(
                        Some(Bytes::from(vec![i])),
                        Status {
                            source: i as usize,
                            tag: 0,
                            len: 1,
                        },
                    );
                });
            }
            wait_all(reqs)
                .into_iter()
                .map(|(d, _)| d.unwrap()[0])
                .collect::<Vec<_>>()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn wait_any_returns_earliest() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("main", || {
            let mut reqs = Vec::new();
            for i in 0..3u8 {
                let inner = ReqInner::new();
                reqs.push(Request::new(inner.clone()));
                let delay = if i == 1 { 5 } else { 500 };
                marcel::spawn(format!("c{i}"), move || {
                    marcel::advance(VirtualDuration::from_micros(delay));
                    inner.complete(
                        None,
                        Status {
                            source: i as usize,
                            tag: 0,
                            len: 0,
                        },
                    );
                });
            }
            let (_, _, status) = wait_any(&mut reqs);
            let remaining = reqs.len();
            for r in reqs.drain(..) {
                r.wait();
            }
            (status.source, remaining)
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (1, 2));
    }

    #[test]
    fn double_complete_is_rejected() {
        let k = Kernel::new(CostModel::free());
        k.spawn("main", || {
            let inner = ReqInner::new();
            inner.complete(
                None,
                Status {
                    source: 0,
                    tag: 0,
                    len: 0,
                },
            );
            inner.complete(
                None,
                Status {
                    source: 0,
                    tag: 0,
                    len: 0,
                },
            );
        });
        match k.run() {
            Err(marcel::SimError::ThreadPanicked(msg)) => {
                assert!(msg.contains("completed twice"), "{msg}");
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }
}
