//! Time-travel debugging over a campaign journal: reconstruct the full
//! multi-layer world at any event index, diff two reconstructions, and
//! re-execute forward from the nearest snapshot.
//!
//! [`marcel::JournalIndex`] gives the kernel-level view (seek, event
//! fold, window queries). This module stacks the MPI layers on top:
//!
//! * [`WorldState`] — the kernel [`marcel::ReplayState`] plus the typed
//!   decodes of the snapshot's `"madeleine"` (reliability windows) and
//!   `"matching"` (posted / unexpected / rendezvous stores) sections.
//! * [`WorldDiff`] — a typed, printable field-by-field comparison of
//!   two world states; empty iff the states are identical.
//! * [`reexecute_world_at`] — truncate the journal to the snapshot
//!   preceding the target, re-run legs through the resume machinery
//!   (under any [`marcel::ExecPolicy`]) until the target's leg is
//!   regenerated, and reconstruct. The replay-determinism contract is
//!   that this equals [`world_state_at`] on the uninterrupted journal,
//!   bit for bit.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::journal::{resume_campaign_until, CampaignConfig, LegCtx, LegSpec};
use madeleine::{decode_reliability_snapshot, ReliabilitySnapshot};
use marcel::replay::RUN_END_COUNTER_NAMES;
use marcel::{JournalIndex, MemSink, ReplayState};

/// One unexpected-queue envelope from a matching snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnexpectedEnvSnap {
    pub src: u64,
    pub tag: u32,
    pub context: u32,
    pub len: u64,
}

/// One engine's matching stores at a quiescent point — the typed
/// inverse of [`crate::Engine::matching_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineMatchSnap {
    pub rank: u64,
    /// Posted-receive queue depth (drained to zero on a clean leg).
    pub posted: u64,
    /// Next rendezvous handle the engine would hand out.
    pub next_rhandle: u64,
    /// Live rendezvous slots as `(token, total, received)`, sorted.
    pub rndv: Vec<(u64, u64, u64)>,
    /// Unexpected-message queue, in arrival order.
    pub unexpected: Vec<UnexpectedEnvSnap>,
}

/// Decoded `"matching"` section of a journal world snapshot: every
/// rank's matching stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingSnapshot {
    pub engines: Vec<EngineMatchSnap>,
}

/// Decode the `"matching"` snapshot section (a `u32` engine count
/// followed by each engine's [`crate::Engine::matching_snapshot`]
/// encoding).
pub fn decode_matching_snapshot(bytes: &[u8]) -> Result<MatchingSnapshot, String> {
    let mut r = marcel::journal::wire::Reader::new(bytes);
    let n_engines = r.u32()? as usize;
    let mut engines = Vec::with_capacity(n_engines);
    for _ in 0..n_engines {
        let rank = r.u64()?;
        let posted = r.u64()?;
        let next_rhandle = r.u64()?;
        let n_rndv = r.u32()? as usize;
        let mut rndv = Vec::with_capacity(n_rndv);
        for _ in 0..n_rndv {
            rndv.push((r.u64()?, r.u64()?, r.u64()?));
        }
        let n_unexpected = r.u32()? as usize;
        let mut unexpected = Vec::with_capacity(n_unexpected);
        for _ in 0..n_unexpected {
            unexpected.push(UnexpectedEnvSnap {
                src: r.u64()?,
                tag: r.u32()?,
                context: r.u32()?,
                len: r.u64()?,
            });
        }
        engines.push(EngineMatchSnap {
            rank,
            posted,
            next_rhandle,
            rndv,
            unexpected,
        });
    }
    if r.remaining() != 0 {
        return Err(format!(
            "{} trailing bytes after matching snapshot",
            r.remaining()
        ));
    }
    Ok(MatchingSnapshot { engines })
}

/// The full multi-layer world at one event index: kernel replay state
/// plus the typed per-layer sections of its base snapshot (absent
/// before the first snapshot, or when the journal predates sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldState {
    pub replay: ReplayState,
    pub madeleine: Option<ReliabilitySnapshot>,
    pub matching: Option<MatchingSnapshot>,
}

/// Reconstruct the world at `event_index` from an indexed journal:
/// seek the base snapshot in `O(log snapshots)`, fold the events after
/// it, and decode the snapshot's per-layer sections.
pub fn world_state_at(index: &JournalIndex, event_index: u64) -> Result<WorldState, String> {
    let replay = index.state_at(event_index)?;
    let mut madeleine_snap = None;
    let mut matching = None;
    if let Some(base) = &replay.base {
        for (name, bytes) in &base.sections {
            match name.as_str() {
                "madeleine" => {
                    madeleine_snap = Some(
                        decode_reliability_snapshot(bytes)
                            .map_err(|e| format!("madeleine section: {e}"))?,
                    )
                }
                "matching" => {
                    matching = Some(
                        decode_matching_snapshot(bytes)
                            .map_err(|e| format!("matching section: {e}"))?,
                    )
                }
                _ => {}
            }
        }
    }
    Ok(WorldState {
        replay,
        madeleine: madeleine_snap,
        matching,
    })
}

/// One differing scalar inside a named aggregate (a kernel thread, a
/// channel, a rank's matching store): `field` is a dotted path, the
/// sides are printed values (`"-"` when absent on that side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDelta {
    pub key: String,
    pub field: String,
    pub a: String,
    pub b: String,
}

impl FieldDelta {
    fn new(key: &str, field: &str, a: impl fmt::Display, b: impl fmt::Display) -> FieldDelta {
        FieldDelta {
            key: key.to_string(),
            field: field.to_string(),
            a: a.to_string(),
            b: b.to_string(),
        }
    }
}

/// Typed difference between two [`WorldState`]s. Every field is
/// `None` / empty when the two sides agree; [`WorldDiff::is_empty`] is
/// the bit-identity check, and `Display` prints one line per delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldDiff {
    /// The two reconstruction points (always recorded, not a delta).
    pub points: (u64, u64),
    pub legs_done: Option<(u64, u64)>,
    pub current_leg: Option<(Option<u64>, Option<u64>)>,
    pub vtime_ns: Option<(u64, u64)>,
    pub events_digest: Option<(u64, u64)>,
    pub rng_state: Option<(Option<u64>, Option<u64>)>,
    pub fault_cursor: Option<(Option<u64>, Option<u64>)>,
    pub metrics_digest: Option<(Option<u64>, Option<u64>)>,
    /// Kernel thread deltas: base-snapshot threads by name, then live
    /// per-leg cursors by tid.
    pub threads: Vec<FieldDelta>,
    /// Madeleine reliability-window deltas, keyed by channel name.
    pub channels: Vec<FieldDelta>,
    /// Matching-store deltas, keyed by rank.
    pub matching: Vec<FieldDelta>,
    /// Per-layer event-count deltas since the base snapshot.
    pub layer_counts: Vec<FieldDelta>,
    /// Last completed leg's fault counters, by name.
    pub run_end: Vec<FieldDelta>,
}

impl WorldDiff {
    /// True iff the two world states were identical.
    pub fn is_empty(&self) -> bool {
        self.legs_done.is_none()
            && self.current_leg.is_none()
            && self.vtime_ns.is_none()
            && self.events_digest.is_none()
            && self.rng_state.is_none()
            && self.fault_cursor.is_none()
            && self.metrics_digest.is_none()
            && self.threads.is_empty()
            && self.channels.is_empty()
            && self.matching.is_empty()
            && self.layer_counts.is_empty()
            && self.run_end.is_empty()
    }

    /// Total number of differing fields.
    pub fn deltas(&self) -> usize {
        self.legs_done.iter().count()
            + self.current_leg.iter().count()
            + self.vtime_ns.iter().count()
            + self.events_digest.iter().count()
            + self.rng_state.iter().count()
            + self.fault_cursor.iter().count()
            + self.metrics_digest.iter().count()
            + self.threads.len()
            + self.channels.len()
            + self.matching.len()
            + self.layer_counts.len()
            + self.run_end.len()
    }
}

fn opt_hex(v: &Option<u64>) -> String {
    match v {
        Some(x) => format!("{x:#x}"),
        None => "-".to_string(),
    }
}

fn opt_num(v: &Option<u64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

impl fmt::Display for WorldDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(
                f,
                "world@{} == world@{}: identical",
                self.points.0, self.points.1
            );
        }
        writeln!(
            f,
            "world@{} vs world@{}: {} deltas",
            self.points.0,
            self.points.1,
            self.deltas()
        )?;
        if let Some((a, b)) = &self.legs_done {
            writeln!(f, "  legs_done: {a} -> {b}")?;
        }
        if let Some((a, b)) = &self.current_leg {
            writeln!(f, "  current_leg: {} -> {}", opt_num(a), opt_num(b))?;
        }
        if let Some((a, b)) = &self.vtime_ns {
            writeln!(f, "  vtime_ns: {a} -> {b}")?;
        }
        if let Some((a, b)) = &self.events_digest {
            writeln!(f, "  events_digest: {a:#x} -> {b:#x}")?;
        }
        if let Some((a, b)) = &self.rng_state {
            writeln!(f, "  rng_state: {} -> {}", opt_hex(a), opt_hex(b))?;
        }
        if let Some((a, b)) = &self.fault_cursor {
            writeln!(f, "  fault_cursor: {} -> {}", opt_num(a), opt_num(b))?;
        }
        if let Some((a, b)) = &self.metrics_digest {
            writeln!(f, "  metrics_digest: {} -> {}", opt_hex(a), opt_hex(b))?;
        }
        for (section, deltas) in [
            ("thread", &self.threads),
            ("channel", &self.channels),
            ("matching", &self.matching),
            ("events", &self.layer_counts),
            ("run_end", &self.run_end),
        ] {
            for d in deltas {
                writeln!(f, "  {section}[{}].{}: {} -> {}", d.key, d.field, d.a, d.b)?;
            }
        }
        Ok(())
    }
}

fn delta<T: PartialEq>(a: T, b: T) -> Option<(T, T)> {
    if a == b {
        None
    } else {
        Some((a, b))
    }
}

/// Push one [`FieldDelta`] per differing printed value, walking two
/// same-keyed sides (`None` prints as `-`).
fn push_delta(
    out: &mut Vec<FieldDelta>,
    key: &str,
    field: &str,
    a: Option<&dyn fmt::Display>,
    b: Option<&dyn fmt::Display>,
) {
    let fa = a.map_or_else(|| "-".to_string(), |v| v.to_string());
    let fb = b.map_or_else(|| "-".to_string(), |v| v.to_string());
    if fa != fb {
        out.push(FieldDelta {
            key: key.to_string(),
            field: field.to_string(),
            a: fa,
            b: fb,
        });
    }
}

fn diff_threads(a: &WorldState, b: &WorldState) -> Vec<FieldDelta> {
    let mut out = Vec::new();
    // Base-snapshot threads, paired by name (tid order is stable but
    // names are the human handle).
    let av = a.replay.base.as_ref().map(|s| &s.threads);
    let bv = b.replay.base.as_ref().map(|s| &s.threads);
    let names: Vec<&str> = {
        let mut n: Vec<&str> = Vec::new();
        for side in [av, bv].into_iter().flatten() {
            for t in side.iter() {
                if !n.contains(&t.name.as_str()) {
                    n.push(&t.name);
                }
            }
        }
        n
    };
    for name in names {
        let ta = av.and_then(|v| v.iter().find(|t| t.name == name));
        let tb = bv.and_then(|v| v.iter().find(|t| t.name == name));
        push_delta(
            &mut out,
            name,
            "vtime_ns",
            ta.map(|t| &t.vtime_ns as &dyn fmt::Display),
            tb.map(|t| &t.vtime_ns as &dyn fmt::Display),
        );
        push_delta(
            &mut out,
            name,
            "ops",
            ta.map(|t| &t.ops as &dyn fmt::Display),
            tb.map(|t| &t.ops as &dyn fmt::Display),
        );
    }
    // Live per-leg cursors, paired by tid.
    let mut tids: Vec<u64> = a
        .replay
        .threads
        .iter()
        .chain(b.replay.threads.iter())
        .map(|c| c.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let ca = a.replay.threads.iter().find(|c| c.tid == tid);
        let cb = b.replay.threads.iter().find(|c| c.tid == tid);
        let key = format!("tid{tid}");
        push_delta(
            &mut out,
            &key,
            "cursor.vtime_ns",
            ca.map(|c| &c.vtime_ns as &dyn fmt::Display),
            cb.map(|c| &c.vtime_ns as &dyn fmt::Display),
        );
        push_delta(
            &mut out,
            &key,
            "cursor.events",
            ca.map(|c| &c.events as &dyn fmt::Display),
            cb.map(|c| &c.events as &dyn fmt::Display),
        );
    }
    out
}

fn diff_channels(
    a: Option<&ReliabilitySnapshot>,
    b: Option<&ReliabilitySnapshot>,
) -> Vec<FieldDelta> {
    let mut out = Vec::new();
    push_delta(
        &mut out,
        "session",
        "failovers",
        a.map(|s| &s.failovers as &dyn fmt::Display),
        b.map(|s| &s.failovers as &dyn fmt::Display),
    );
    push_delta(
        &mut out,
        "session",
        "rndv_reissues",
        a.map(|s| &s.rndv_reissues as &dyn fmt::Display),
        b.map(|s| &s.rndv_reissues as &dyn fmt::Display),
    );
    let names: Vec<&str> = {
        let mut n: Vec<&str> = Vec::new();
        for side in [a, b].into_iter().flatten() {
            for c in &side.channels {
                if !n.contains(&c.name.as_str()) {
                    n.push(&c.name);
                }
            }
        }
        n
    };
    for name in names {
        let ca = a.and_then(|s| s.channels.iter().find(|c| c.name == name));
        let cb = b.and_then(|s| s.channels.iter().find(|c| c.name == name));
        match (ca, cb) {
            (Some(ca), Some(cb)) if ca == cb => continue,
            (Some(ca), Some(cb)) => {
                for (field, fa, fb) in [
                    (
                        "retransmits",
                        ca.counters.retransmits,
                        cb.counters.retransmits,
                    ),
                    ("drops", ca.counters.drops, cb.counters.drops),
                    ("duplicates", ca.counters.duplicates, cb.counters.duplicates),
                    ("deferrals", ca.counters.deferrals, cb.counters.deferrals),
                    ("dead_pairs", ca.counters.dead_pairs, cb.counters.dead_pairs),
                    ("dead.len", ca.dead.len() as u64, cb.dead.len() as u64),
                ] {
                    if fa != fb {
                        out.push(FieldDelta::new(name, field, fa, fb));
                    }
                }
                for conn in &ca.conns {
                    let Some(other) = cb
                        .conns
                        .iter()
                        .find(|c| c.from == conn.from && c.to == conn.to)
                    else {
                        out.push(FieldDelta::new(
                            name,
                            &format!("conn[{}->{}]", conn.from, conn.to),
                            "present",
                            "-",
                        ));
                        continue;
                    };
                    for (field, fa, fb) in [
                        ("floor_ns", conn.floor_ns, other.floor_ns),
                        ("seq", conn.seq, other.seq),
                        ("msg_seq", conn.msg_seq, other.msg_seq),
                    ] {
                        if fa != fb {
                            out.push(FieldDelta::new(
                                name,
                                &format!("conn[{}->{}].{field}", conn.from, conn.to),
                                fa,
                                fb,
                            ));
                        }
                    }
                }
                for conn in &cb.conns {
                    if !ca
                        .conns
                        .iter()
                        .any(|c| c.from == conn.from && c.to == conn.to)
                    {
                        out.push(FieldDelta::new(
                            name,
                            &format!("conn[{}->{}]", conn.from, conn.to),
                            "-",
                            "present",
                        ));
                    }
                }
                for ra in &ca.recv {
                    let Some(rb) = cb.recv.iter().find(|r| r.rank == ra.rank) else {
                        out.push(FieldDelta::new(
                            name,
                            &format!("recv[{}]", ra.rank),
                            "present",
                            "-",
                        ));
                        continue;
                    };
                    if ra.ready != rb.ready {
                        out.push(FieldDelta::new(
                            name,
                            &format!("recv[{}].ready", ra.rank),
                            ra.ready,
                            rb.ready,
                        ));
                    }
                    for pa in &ra.peers {
                        let pb = rb.peers.iter().find(|p| p.peer == pa.peer);
                        if pb != Some(pa) {
                            out.push(FieldDelta::new(
                                name,
                                &format!("recv[{}].peer[{}]", ra.rank, pa.peer),
                                format!("expected={} stashed={:?}", pa.expected, pa.stashed),
                                pb.map_or_else(
                                    || "-".to_string(),
                                    |p| format!("expected={} stashed={:?}", p.expected, p.stashed),
                                ),
                            ));
                        }
                    }
                }
            }
            (ca, cb) => {
                push_delta(
                    &mut out,
                    name,
                    "channel",
                    ca.map(|_| &"present" as &dyn fmt::Display),
                    cb.map(|_| &"present" as &dyn fmt::Display),
                );
            }
        }
    }
    out
}

fn diff_matching(a: Option<&MatchingSnapshot>, b: Option<&MatchingSnapshot>) -> Vec<FieldDelta> {
    let mut out = Vec::new();
    let mut ranks: Vec<u64> = Vec::new();
    for side in [a, b].into_iter().flatten() {
        for e in &side.engines {
            if !ranks.contains(&e.rank) {
                ranks.push(e.rank);
            }
        }
    }
    ranks.sort_unstable();
    for rank in ranks {
        let ea = a.and_then(|s| s.engines.iter().find(|e| e.rank == rank));
        let eb = b.and_then(|s| s.engines.iter().find(|e| e.rank == rank));
        let key = rank.to_string();
        push_delta(
            &mut out,
            &key,
            "posted",
            ea.map(|e| &e.posted as &dyn fmt::Display),
            eb.map(|e| &e.posted as &dyn fmt::Display),
        );
        push_delta(
            &mut out,
            &key,
            "next_rhandle",
            ea.map(|e| &e.next_rhandle as &dyn fmt::Display),
            eb.map(|e| &e.next_rhandle as &dyn fmt::Display),
        );
        let rndv_a = ea.map(|e| format!("{:?}", e.rndv));
        let rndv_b = eb.map(|e| format!("{:?}", e.rndv));
        push_delta(
            &mut out,
            &key,
            "rndv",
            rndv_a.as_ref().map(|s| s as &dyn fmt::Display),
            rndv_b.as_ref().map(|s| s as &dyn fmt::Display),
        );
        let ux_a = ea.map(|e| {
            e.unexpected
                .iter()
                .map(|u| {
                    format!(
                        "(src={} tag={} ctx={} len={})",
                        u.src, u.tag, u.context, u.len
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        });
        let ux_b = eb.map(|e| {
            e.unexpected
                .iter()
                .map(|u| {
                    format!(
                        "(src={} tag={} ctx={} len={})",
                        u.src, u.tag, u.context, u.len
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        });
        push_delta(
            &mut out,
            &key,
            "unexpected",
            ux_a.as_ref().map(|s| s as &dyn fmt::Display),
            ux_b.as_ref().map(|s| s as &dyn fmt::Display),
        );
    }
    out
}

/// Compare two world states field by field. The result is empty iff
/// the states are identical (`diff(&w, &w).is_empty()` always holds).
pub fn diff(a: &WorldState, b: &WorldState) -> WorldDiff {
    let base_a = a.replay.base.as_ref();
    let base_b = b.replay.base.as_ref();
    let mut layer_counts = Vec::new();
    {
        let mut keys: Vec<&String> = a
            .replay
            .layer_counts
            .keys()
            .chain(b.replay.layer_counts.keys())
            .collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            let ca = a.replay.layer_counts.get(k).copied().unwrap_or(0);
            let cb = b.replay.layer_counts.get(k).copied().unwrap_or(0);
            if ca != cb {
                layer_counts.push(FieldDelta::new(k, "count", ca, cb));
            }
        }
    }
    let mut run_end = Vec::new();
    {
        let ra = a.replay.last_run_end.as_ref();
        let rb = b.replay.last_run_end.as_ref();
        push_delta(
            &mut run_end,
            "leg",
            "index",
            ra.map(|r| &r.leg as &dyn fmt::Display),
            rb.map(|r| &r.leg as &dyn fmt::Display),
        );
        for (i, name) in RUN_END_COUNTER_NAMES.iter().enumerate() {
            push_delta(
                &mut run_end,
                name,
                "value",
                ra.and_then(|r| r.counters.get(i))
                    .map(|v| v as &dyn fmt::Display),
                rb.and_then(|r| r.counters.get(i))
                    .map(|v| v as &dyn fmt::Display),
            );
        }
    }
    WorldDiff {
        points: (a.replay.event_index, b.replay.event_index),
        legs_done: delta(a.replay.legs_done, b.replay.legs_done),
        current_leg: delta(a.replay.current_leg, b.replay.current_leg),
        vtime_ns: delta(a.replay.vtime_ns, b.replay.vtime_ns),
        events_digest: delta(a.replay.events_digest, b.replay.events_digest),
        rng_state: delta(base_a.map(|s| s.rng_state), base_b.map(|s| s.rng_state)),
        fault_cursor: delta(
            base_a.map(|s| s.fault_cursor),
            base_b.map(|s| s.fault_cursor),
        ),
        metrics_digest: delta(
            base_a.map(|s| s.metrics_digest),
            base_b.map(|s| s.metrics_digest),
        ),
        threads: diff_threads(a, b),
        channels: diff_channels(a.madeleine.as_ref(), b.madeleine.as_ref()),
        matching: diff_matching(a.matching.as_ref(), b.matching.as_ref()),
        layer_counts,
        run_end,
    }
}

/// Re-execute the campaign to `event_index` and reconstruct the world
/// there: seek the last snapshot at or before the target, keep the
/// journal prefix through that snapshot verbatim, and drive
/// [`resume_campaign_until`] (under `cfg.exec` — any policy) until the
/// target's leg has been regenerated. Returns the reconstructed world
/// plus the regenerated journal prefix; determinism means the world is
/// bit-identical to [`world_state_at`] on the original journal, and
/// the prefix is byte-identical to the original's.
pub fn reexecute_world_at<F>(
    cfg: &CampaignConfig,
    journal: &[u8],
    leg_factory: F,
    event_index: u64,
) -> Result<(WorldState, Vec<u8>), String>
where
    F: Fn(&LegCtx) -> LegSpec,
{
    let index = JournalIndex::build(journal).map_err(|e| format!("index: {e}"))?;
    if event_index > index.events() {
        return Err(format!(
            "event index {event_index} beyond journal end ({} events)",
            index.events()
        ));
    }
    let seek = index.seek(event_index);
    let prior: &[u8] = match seek.snapshot {
        Some(s) => {
            let rec = index.snapshots[s].record_index;
            &journal[..index.scan.records[rec].end]
        }
        None => &[],
    };
    let stop_after = index.legs_needed(event_index);
    let buf = Arc::new(Mutex::new(Vec::new()));
    resume_campaign_until(
        cfg,
        prior,
        MemSink::new(buf.clone()),
        leg_factory,
        stop_after,
    )
    .map_err(|e| format!("re-execution: {e}"))?;
    let bytes = buf.lock().unwrap().clone();
    let reindex = JournalIndex::build(&bytes).map_err(|e| format!("re-index: {e}"))?;
    let world = world_state_at(&reindex, event_index)?;
    Ok((world, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_decode_round_trips_hand_encoding() {
        use marcel::journal::wire::{put_u32, put_u64};
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2);
        // Engine 0: empty stores.
        put_u64(&mut bytes, 0);
        put_u64(&mut bytes, 0);
        put_u64(&mut bytes, 7);
        put_u32(&mut bytes, 0);
        put_u32(&mut bytes, 0);
        // Engine 1: one rendezvous, one unexpected envelope.
        put_u64(&mut bytes, 1);
        put_u64(&mut bytes, 3);
        put_u64(&mut bytes, 9);
        put_u32(&mut bytes, 1);
        put_u64(&mut bytes, 42);
        put_u64(&mut bytes, 65536);
        put_u64(&mut bytes, 4096);
        put_u32(&mut bytes, 1);
        put_u64(&mut bytes, 0);
        put_u32(&mut bytes, 5);
        put_u32(&mut bytes, 0);
        put_u64(&mut bytes, 128);
        let snap = decode_matching_snapshot(&bytes).unwrap();
        assert_eq!(snap.engines.len(), 2);
        assert_eq!(snap.engines[0].next_rhandle, 7);
        assert_eq!(snap.engines[1].rndv, vec![(42, 65536, 4096)]);
        assert_eq!(
            snap.engines[1].unexpected,
            vec![UnexpectedEnvSnap {
                src: 0,
                tag: 5,
                context: 0,
                len: 128
            }]
        );
        assert!(decode_matching_snapshot(&bytes[..bytes.len() - 2]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_matching_snapshot(&padded).is_err());
    }

    #[test]
    fn self_diff_is_empty_and_prints_identical() {
        let world = WorldState {
            replay: ReplayState {
                event_index: 5,
                legs_done: 1,
                current_leg: None,
                vtime_ns: 100,
                base: None,
                threads: vec![],
                events_digest: 0xABCD,
                events_since_base: 5,
                layer_counts: Default::default(),
                last_run_end: None,
            },
            madeleine: None,
            matching: None,
        };
        let d = diff(&world, &world);
        assert!(d.is_empty());
        assert_eq!(d.deltas(), 0);
        assert!(d.to_string().contains("identical"));
    }

    #[test]
    fn diff_reports_typed_deltas() {
        let mk = |vtime: u64, failovers: u64| WorldState {
            replay: ReplayState {
                event_index: 5,
                legs_done: 1,
                current_leg: None,
                vtime_ns: vtime,
                base: None,
                threads: vec![],
                events_digest: 0xABCD,
                events_since_base: 5,
                layer_counts: Default::default(),
                last_run_end: None,
            },
            madeleine: Some(ReliabilitySnapshot {
                channels: vec![],
                failovers,
                rndv_reissues: 0,
            }),
            matching: None,
        };
        let d = diff(&mk(100, 0), &mk(250, 2));
        assert!(!d.is_empty());
        assert_eq!(d.vtime_ns, Some((100, 250)));
        assert_eq!(d.channels.len(), 1);
        assert_eq!(d.channels[0].field, "failovers");
        let text = d.to_string();
        assert!(text.contains("vtime_ns: 100 -> 250"));
        assert!(text.contains("channel[session].failovers: 0 -> 2"));
    }
}
