//! MPI datatypes: base types and the derived-type constructors
//! (contiguous, vector, hvector, indexed, struct), plus the pack/unpack
//! engine that linearizes non-contiguous user buffers for transmission.
//!
//! This reproduces the "datatype management" box of the MPICH generic
//! ADI code in the paper's Figure 1/3. Displacements are expressed like
//! in MPI (element strides for `Vector`/`Indexed`, byte displacements
//! for `Hvector`/`Struct`); the walker refuses layouts that reach below
//! offset zero.

use std::sync::Arc;

/// Primitive element types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BaseType {
    Byte,
    Int32,
    Int64,
    UInt64,
    Float32,
    Float64,
}

impl BaseType {
    pub fn size(self) -> usize {
        match self {
            BaseType::Byte => 1,
            BaseType::Int32 | BaseType::Float32 => 4,
            BaseType::Int64 | BaseType::UInt64 | BaseType::Float64 => 8,
        }
    }
}

/// An MPI datatype: a tree of type constructors over base types.
#[derive(Clone, Debug)]
pub enum Datatype {
    Base(BaseType),
    /// `count` consecutive copies of `inner`.
    Contiguous {
        count: usize,
        inner: Arc<Datatype>,
    },
    /// `count` blocks of `blocklen` elements, consecutive blocks
    /// `stride` *elements* apart (MPI_Type_vector).
    Vector {
        count: usize,
        blocklen: usize,
        stride: isize,
        inner: Arc<Datatype>,
    },
    /// Like `Vector` but the stride is in *bytes* (MPI_Type_hvector).
    Hvector {
        count: usize,
        blocklen: usize,
        stride_bytes: isize,
        inner: Arc<Datatype>,
    },
    /// Blocks of varying length at varying element displacements
    /// (MPI_Type_indexed).
    Indexed {
        /// `(blocklen, displacement-in-elements)` pairs.
        blocks: Vec<(usize, isize)>,
        inner: Arc<Datatype>,
    },
    /// Heterogeneous fields at byte displacements (MPI_Type_struct).
    Struct {
        /// `(count, byte displacement, field type)` triples.
        fields: Vec<(usize, isize, Arc<Datatype>)>,
    },
}

impl Datatype {
    /// Shorthand constructors.
    pub fn base(b: BaseType) -> Arc<Datatype> {
        Arc::new(Datatype::Base(b))
    }

    pub fn contiguous(count: usize, inner: Arc<Datatype>) -> Arc<Datatype> {
        Arc::new(Datatype::Contiguous { count, inner })
    }

    pub fn vector(
        count: usize,
        blocklen: usize,
        stride: isize,
        inner: Arc<Datatype>,
    ) -> Arc<Datatype> {
        Arc::new(Datatype::Vector {
            count,
            blocklen,
            stride,
            inner,
        })
    }

    pub fn hvector(
        count: usize,
        blocklen: usize,
        stride_bytes: isize,
        inner: Arc<Datatype>,
    ) -> Arc<Datatype> {
        Arc::new(Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            inner,
        })
    }

    pub fn indexed(blocks: Vec<(usize, isize)>, inner: Arc<Datatype>) -> Arc<Datatype> {
        Arc::new(Datatype::Indexed { blocks, inner })
    }

    pub fn structure(fields: Vec<(usize, isize, Arc<Datatype>)>) -> Arc<Datatype> {
        Arc::new(Datatype::Struct { fields })
    }

    /// Number of *data* bytes one instance carries (MPI_Type_size).
    pub fn size(&self) -> usize {
        match self {
            Datatype::Base(b) => b.size(),
            Datatype::Contiguous { count, inner } => count * inner.size(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            }
            | Datatype::Hvector {
                count,
                blocklen,
                inner,
                ..
            } => count * blocklen * inner.size(),
            Datatype::Indexed { blocks, inner } => {
                blocks.iter().map(|(len, _)| len * inner.size()).sum()
            }
            Datatype::Struct { fields } => {
                fields.iter().map(|(count, _, ty)| count * ty.size()).sum()
            }
        }
    }

    /// Memory span of one instance (MPI_Type_extent, with lb fixed at 0:
    /// the distance from the buffer start to one past the last byte
    /// touched).
    pub fn extent(&self) -> usize {
        let mut max_end = 0usize;
        self.walk(0, &mut |off, len| {
            max_end = max_end.max(off + len);
        });
        max_end
    }

    /// Visit every contiguous byte run of one instance rooted at byte
    /// offset `base`, in canonical (pack) order.
    pub fn walk(&self, base: isize, f: &mut impl FnMut(usize, usize)) {
        match self {
            Datatype::Base(b) => {
                let off = usize::try_from(base).expect("datatype layout reaches below offset 0");
                f(off, b.size());
            }
            Datatype::Contiguous { count, inner } => {
                let ext = inner.extent() as isize;
                for i in 0..*count {
                    inner.walk(base + i as isize * ext, f);
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ext = inner.extent() as isize;
                for i in 0..*count {
                    let block_base = base + i as isize * stride * ext;
                    for j in 0..*blocklen {
                        inner.walk(block_base + j as isize * ext, f);
                    }
                }
            }
            Datatype::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => {
                let ext = inner.extent() as isize;
                for i in 0..*count {
                    let block_base = base + i as isize * stride_bytes;
                    for j in 0..*blocklen {
                        inner.walk(block_base + j as isize * ext, f);
                    }
                }
            }
            Datatype::Indexed { blocks, inner } => {
                let ext = inner.extent() as isize;
                for (len, displ) in blocks {
                    for j in 0..*len {
                        inner.walk(base + (displ + j as isize) * ext, f);
                    }
                }
            }
            Datatype::Struct { fields } => {
                for (count, displ, ty) in fields {
                    let ext = ty.extent() as isize;
                    for i in 0..*count {
                        ty.walk(base + displ + i as isize * ext, f);
                    }
                }
            }
        }
    }

    /// Linearize `count` instances from `src` into a packed byte vector.
    /// `src` must cover `count * extent()` bytes (except the last
    /// instance may stop at its last touched byte).
    pub fn pack(&self, src: &[u8], count: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size() * count);
        let ext = self.extent() as isize;
        for i in 0..count {
            self.walk(i as isize * ext, &mut |off, len| {
                out.extend_from_slice(&src[off..off + len]);
            });
        }
        out
    }

    /// Scatter `data` (packed form) into `dst` following the layout.
    /// Returns the number of bytes consumed.
    pub fn unpack(&self, dst: &mut [u8], data: &[u8], count: usize) -> usize {
        let ext = self.extent() as isize;
        let mut cursor = 0usize;
        for i in 0..count {
            self.walk(i as isize * ext, &mut |off, len| {
                dst[off..off + len].copy_from_slice(&data[cursor..cursor + len]);
                cursor += len;
            });
        }
        cursor
    }

    /// True when the layout of one instance is a single gap-free run
    /// starting at offset 0 (transmission can skip the pack step).
    pub fn is_contiguous(&self) -> bool {
        let mut next = 0usize;
        let mut contiguous = true;
        self.walk(0, &mut |off, len| {
            if off != next {
                contiguous = false;
            }
            next = off + len;
        });
        contiguous && next == self.extent()
    }
}

/// Rust scalars usable directly with the typed convenience API.
pub trait MpiScalar: Copy + Send + 'static {
    const BASE: BaseType;
    fn write_le(self, out: &mut Vec<u8>);
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($ty:ty, $base:expr) => {
        impl MpiScalar for $ty {
            const BASE: BaseType = $base;
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().expect("scalar width mismatch"))
            }
        }
    };
}

impl_scalar!(u8, BaseType::Byte);
impl_scalar!(i32, BaseType::Int32);
impl_scalar!(i64, BaseType::Int64);
impl_scalar!(u64, BaseType::UInt64);
impl_scalar!(f32, BaseType::Float32);
impl_scalar!(f64, BaseType::Float64);

/// Serialize a scalar slice to little-endian bytes.
pub fn to_bytes<T: MpiScalar>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::BASE.size());
    for &x in data {
        x.write_le(&mut out);
    }
    out
}

/// Deserialize little-endian bytes to a scalar vector.
pub fn from_bytes<T: MpiScalar>(bytes: &[u8]) -> Vec<T> {
    let w = T::BASE.size();
    assert_eq!(
        bytes.len() % w,
        0,
        "byte length not a multiple of the scalar width"
    );
    bytes.chunks_exact(w).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sizes() {
        assert_eq!(BaseType::Byte.size(), 1);
        assert_eq!(BaseType::Int32.size(), 4);
        assert_eq!(BaseType::Float64.size(), 8);
    }

    #[test]
    fn contiguous_size_extent() {
        let t = Datatype::contiguous(5, Datatype::base(BaseType::Int32));
        assert_eq!(t.size(), 20);
        assert_eq!(t.extent(), 20);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_layout() {
        // 3 blocks of 2 ints, stride 4 ints: touches elements
        // 0,1, 4,5, 8,9 -> extent 40 bytes, size 24 bytes.
        let t = Datatype::vector(3, 2, 4, Datatype::base(BaseType::Int32));
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), 40);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn vector_pack_unpack_roundtrip() {
        let t = Datatype::vector(3, 2, 4, Datatype::base(BaseType::Int32));
        let src: Vec<u8> = (0..40).collect();
        let packed = t.pack(&src, 1);
        assert_eq!(packed.len(), 24);
        // Elements 0,1 / 4,5 / 8,9 (4 bytes each).
        assert_eq!(&packed[0..8], &src[0..8]);
        assert_eq!(&packed[8..16], &src[16..24]);
        assert_eq!(&packed[16..24], &src[32..40]);
        let mut dst = vec![0u8; 40];
        let used = t.unpack(&mut dst, &packed, 1);
        assert_eq!(used, 24);
        assert_eq!(&dst[0..8], &src[0..8]);
        assert_eq!(&dst[16..24], &src[16..24]);
        assert_eq!(&dst[32..40], &src[32..40]);
        assert_eq!(&dst[8..16], &[0u8; 8], "gap bytes untouched");
    }

    #[test]
    fn hvector_strides_in_bytes() {
        // 2 blocks of 1 double, 24 bytes apart.
        let t = Datatype::hvector(2, 1, 24, Datatype::base(BaseType::Float64));
        assert_eq!(t.size(), 16);
        assert_eq!(t.extent(), 32);
    }

    #[test]
    fn indexed_blocks() {
        // Blocks of (2 @ 0) and (1 @ 5) bytes.
        let t = Datatype::indexed(vec![(2, 0), (1, 5)], Datatype::base(BaseType::Byte));
        assert_eq!(t.size(), 3);
        assert_eq!(t.extent(), 6);
        let src = [10u8, 11, 12, 13, 14, 15];
        assert_eq!(t.pack(&src, 1), vec![10, 11, 15]);
    }

    #[test]
    fn struct_fields() {
        // struct { i32 a; f64 b; } with b at byte 8 (aligned).
        let t = Datatype::structure(vec![
            (1, 0, Datatype::base(BaseType::Int32)),
            (1, 8, Datatype::base(BaseType::Float64)),
        ]);
        assert_eq!(t.size(), 12);
        assert_eq!(t.extent(), 16);
        let mut src = vec![0u8; 16];
        src[0..4].copy_from_slice(&7i32.to_le_bytes());
        src[8..16].copy_from_slice(&2.5f64.to_le_bytes());
        let packed = t.pack(&src, 1);
        assert_eq!(packed.len(), 12);
        assert_eq!(i32::from_le_bytes(packed[0..4].try_into().unwrap()), 7);
        assert_eq!(f64::from_le_bytes(packed[4..12].try_into().unwrap()), 2.5);
    }

    #[test]
    fn multi_count_pack() {
        let t = Datatype::vector(2, 1, 2, Datatype::base(BaseType::Byte));
        // One instance: bytes 0 and 2; extent 3.
        let src: Vec<u8> = (0..6).collect();
        let packed = t.pack(&src, 2);
        assert_eq!(packed, vec![0, 2, 3, 5]);
        let mut dst = vec![9u8; 6];
        t.unpack(&mut dst, &packed, 2);
        assert_eq!(dst, vec![0, 9, 2, 3, 9, 5]);
    }

    #[test]
    fn nested_types() {
        // Vector of structs.
        let st = Datatype::structure(vec![
            (1, 0, Datatype::base(BaseType::Int32)),
            (1, 4, Datatype::base(BaseType::Int32)),
        ]);
        let t = Datatype::vector(2, 1, 2, st);
        assert_eq!(t.size(), 16);
        assert_eq!(t.extent(), 24);
        let src: Vec<u8> = (0..24).collect();
        let packed = t.pack(&src, 1);
        assert_eq!(&packed[0..8], &src[0..8]);
        assert_eq!(&packed[8..16], &src[16..24]);
    }

    #[test]
    #[should_panic(expected = "below offset 0")]
    fn negative_offset_rejected() {
        let t = Datatype::indexed(vec![(1, -1)], Datatype::base(BaseType::Byte));
        t.pack(&[0u8; 4], 1);
    }

    #[test]
    fn scalar_round_trip() {
        let xs = vec![1.5f64, -2.25, 1e300];
        assert_eq!(from_bytes::<f64>(&to_bytes(&xs)), xs);
        let ys = vec![i32::MIN, 0, i32::MAX];
        assert_eq!(from_bytes::<i32>(&to_bytes(&ys)), ys);
        let zs = vec![u64::MAX, 0, 42];
        assert_eq!(from_bytes::<u64>(&to_bytes(&zs)), zs);
    }

    #[test]
    fn contiguous_detection() {
        assert!(Datatype::base(BaseType::Float64).is_contiguous());
        assert!(Datatype::contiguous(3, Datatype::base(BaseType::Byte)).is_contiguous());
        // Stride == blocklen means gap-free.
        let dense = Datatype::vector(3, 2, 2, Datatype::base(BaseType::Int32));
        assert!(dense.is_contiguous());
        let sparse = Datatype::vector(3, 2, 3, Datatype::base(BaseType::Int32));
        assert!(!sparse.is_contiguous());
        // Struct with a hole at the front.
        let holey = Datatype::structure(vec![(1, 4, Datatype::base(BaseType::Int32))]);
        assert!(!holey.is_contiguous());
    }
}
