//! Process groups (`MPI_Group`): ordered sets of world ranks with the
//! standard set operations. Communicators are built from groups plus a
//! context id.

use std::sync::Arc;

/// An ordered set of distinct world ranks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// The group of all `n` world ranks, in order.
    pub fn world(n: usize) -> Arc<Group> {
        Arc::new(Group {
            ranks: (0..n).collect(),
        })
    }

    /// Build from an explicit rank list (must be distinct).
    pub fn from_ranks(ranks: Vec<usize>) -> Arc<Group> {
        let mut seen = std::collections::HashSet::new();
        for r in &ranks {
            assert!(seen.insert(*r), "duplicate world rank {r} in group");
        }
        Arc::new(Group { ranks })
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// World rank of local rank `local`.
    pub fn world_rank(&self, local: usize) -> usize {
        self.ranks[local]
    }

    /// Local rank of a world rank, if a member.
    pub fn local_rank(&self, world: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world)
    }

    pub fn contains(&self, world: usize) -> bool {
        self.ranks.contains(&world)
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// `MPI_Group_incl`: members at the given local positions, in that
    /// order.
    pub fn incl(&self, locals: &[usize]) -> Arc<Group> {
        Group::from_ranks(locals.iter().map(|&l| self.ranks[l]).collect())
    }

    /// `MPI_Group_excl`: all members except those at the given local
    /// positions, preserving order.
    pub fn excl(&self, locals: &[usize]) -> Arc<Group> {
        let drop: std::collections::HashSet<usize> = locals.iter().copied().collect();
        Arc::new(Group {
            ranks: self
                .ranks
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &r)| r)
                .collect(),
        })
    }

    /// `MPI_Group_union`: all of `self`, then members of `other` not in
    /// `self`, in `other`'s order.
    pub fn union(&self, other: &Group) -> Arc<Group> {
        let mut ranks = self.ranks.clone();
        for &r in &other.ranks {
            if !ranks.contains(&r) {
                ranks.push(r);
            }
        }
        Arc::new(Group { ranks })
    }

    /// `MPI_Group_intersection`: members of `self` also in `other`, in
    /// `self`'s order.
    pub fn intersection(&self, other: &Group) -> Arc<Group> {
        Arc::new(Group {
            ranks: self
                .ranks
                .iter()
                .filter(|r| other.contains(**r))
                .copied()
                .collect(),
        })
    }

    /// `MPI_Group_difference`: members of `self` not in `other`.
    pub fn difference(&self, other: &Group) -> Arc<Group> {
        Arc::new(Group {
            ranks: self
                .ranks
                .iter()
                .filter(|r| !other.contains(**r))
                .copied()
                .collect(),
        })
    }

    /// `MPI_Group_translate_ranks`: map local ranks of `self` to local
    /// ranks in `other` (`None` where absent).
    pub fn translate(&self, locals: &[usize], other: &Group) -> Vec<Option<usize>> {
        locals
            .iter()
            .map(|&l| other.local_rank(self.ranks[l]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group() {
        let g = Group::world(4);
        assert_eq!(g.size(), 4);
        assert_eq!(g.world_rank(2), 2);
        assert_eq!(g.local_rank(3), Some(3));
        assert_eq!(g.local_rank(4), None);
    }

    #[test]
    fn incl_excl() {
        let g = Group::world(6);
        let sub = g.incl(&[4, 1, 3]);
        assert_eq!(sub.ranks(), &[4, 1, 3]);
        assert_eq!(sub.local_rank(1), Some(1));
        let rest = g.excl(&[0, 2]);
        assert_eq!(rest.ranks(), &[1, 3, 4, 5]);
    }

    #[test]
    fn set_operations() {
        let a = Group::from_ranks(vec![0, 1, 2, 3]);
        let b = Group::from_ranks(vec![2, 3, 4, 5]);
        assert_eq!(a.union(&b).ranks(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).ranks(), &[2, 3]);
        assert_eq!(a.difference(&b).ranks(), &[0, 1]);
        assert_eq!(b.difference(&a).ranks(), &[4, 5]);
    }

    #[test]
    fn translate_ranks() {
        let a = Group::from_ranks(vec![5, 6, 7]);
        let b = Group::from_ranks(vec![7, 5]);
        assert_eq!(a.translate(&[0, 1, 2], &b), vec![Some(1), None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate world rank")]
    fn duplicates_rejected() {
        Group::from_ranks(vec![1, 2, 1]);
    }
}
