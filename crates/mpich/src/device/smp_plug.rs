//! `smp_plug`: the intra-node (inter-processor) device for SMP nodes
//! (paper §4.1, from the MPI-BIP SMP work). Processes on the same node
//! exchange messages through shared memory: a double copy at memory
//! bandwidth, synchronously delivered into the peer's engine.

use std::sync::Arc;

use bytes::Bytes;
use simnet::NodeModel;

use crate::adi::{Device, ProtocolPolicy};
use crate::engine::Engine;
use crate::types::Envelope;

pub struct SmpPlug {
    engines: Vec<Arc<Engine>>,
    /// rank -> node index, to enforce intra-node use only.
    rank_node: Vec<usize>,
    node_model: NodeModel,
    /// Shared-memory transfers copy either way; eager always.
    policy: ProtocolPolicy,
}

impl SmpPlug {
    pub fn new(
        engines: Vec<Arc<Engine>>,
        rank_node: Vec<usize>,
        node_model: NodeModel,
    ) -> Arc<SmpPlug> {
        Arc::new(SmpPlug {
            engines,
            rank_node,
            node_model,
            policy: ProtocolPolicy::always_eager(),
        })
    }
}

impl Device for SmpPlug {
    fn name(&self) -> &'static str {
        "smp_plug"
    }

    fn policy(&self) -> &ProtocolPolicy {
        &self.policy
    }

    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool) {
        assert_ne!(from, dst, "intra-process messages belong to ch_self");
        assert_eq!(
            self.rank_node[from], self.rank_node[dst],
            "smp_plug only carries intra-node messages (ranks {from} and {dst} are on different nodes)"
        );
        // Sender copies into the shared segment.
        marcel::advance(self.node_model.smp_cost(data.len()));
        if sync {
            // Synchronous semantics through the engine's rendezvous
            // offer: the peer's posted receive releases the sender.
            let slot = marcel::OneShot::current();
            let s2 = slot.clone();
            self.engines[dst].deliver_rndv_offer(env, Box::new(move |token| s2.put(token)));
            let token = slot.take();
            self.engines[dst].rndv_complete(token, env, data);
        } else {
            // Receiver-side copy out of the segment at match time.
            let copy_ns = self.node_model.smp_per_byte_ns;
            self.engines[dst].deliver_eager(env, data, copy_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adi::AdiCosts;
    use crate::request::{ReqInner, Request};
    use crate::types::MatchSpec;
    use marcel::{CostModel, Kernel};

    #[test]
    fn intra_node_delivery() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        let h = k.spawn("rank0", move || {
            let e0 = Engine::new(&k2, 0, AdiCosts::free());
            let e1 = Engine::new(&k2, 1, AdiCosts::free());
            let dev = SmpPlug::new(vec![e0, e1.clone()], vec![0, 0], NodeModel::calibrated());
            let req = ReqInner::new();
            e1.post_recv(
                MatchSpec {
                    src: Some(0),
                    tag: None,
                    context: 0,
                },
                1 << 20,
                req.clone(),
            );
            let n = 64 * 1024;
            dev.send(
                0,
                1,
                Envelope {
                    src: 0,
                    tag: 0,
                    context: 0,
                    len: n,
                },
                Bytes::from(vec![5u8; n]),
                false,
            );
            let (data, status) = Request::new(req).wait();
            (data.unwrap().len(), status.len, marcel::now())
        });
        k.run().unwrap();
        let (len, slen, t) = h.join_outcome().unwrap();
        assert_eq!(len, 64 * 1024);
        assert_eq!(slen, 64 * 1024);
        // Double copy of 64KB at 9ns/B each ~ 1.2ms total.
        let us = t.as_micros_f64();
        assert!(us > 1_000.0 && us < 2_000.0, "smp 64KB took {us}us");
    }

    #[test]
    fn cross_node_rejected() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        k.spawn("rank0", move || {
            let e0 = Engine::new(&k2, 0, AdiCosts::free());
            let e1 = Engine::new(&k2, 1, AdiCosts::free());
            let dev = SmpPlug::new(vec![e0, e1], vec![0, 1], NodeModel::calibrated());
            dev.send(
                0,
                1,
                Envelope {
                    src: 0,
                    tag: 0,
                    context: 0,
                    len: 0,
                },
                Bytes::new(),
                false,
            );
        });
        match k.run() {
            Err(marcel::SimError::ThreadPanicked(msg)) => {
                assert!(msg.contains("different nodes"), "{msg}");
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }
}
