//! `ch_mad` packet headers (paper Figure 5).
//!
//! Every `ch_mad` message is one Madeleine message whose first block is
//! the header, sent with `receive_EXPRESS` semantics (it contains the
//! data needed to unpack the body); the body, when present, follows
//! with `receive_CHEAPER` semantics. The header is a type field plus a
//! type-dependent buffer:
//!
//! | type              | buffer                                  | body |
//! |-------------------|------------------------------------------|------|
//! | `MAD_SHORT_PKT`   | the ADI short-packet head (envelope)     | yes  |
//! | `MAD_REQUEST_PKT` | envelope + sender-side transaction token | no   |
//! | `MAD_SENDOK_PKT`  | sender token + receiver `sync_address`   | no   |
//! | `MAD_RNDV_PKT`    | envelope + `sync_address`                | yes  |
//! | `MAD_TERM_PKT`    | empty                                    | no   |
//! | `MAD_FWD_PKT`     | final destination (forwarding extension) | wrapped packet |

use bytes::{BufMut, Bytes};

use crate::types::Envelope;

/// Fixed-size stack buffer headers are encoded into before being
/// copied to a pooled [`Bytes`]; sized to [`bytes::POOL_SLOT`] so the
/// copy always lands in the recycling pool (headers are ≤ 53 B).
struct Wire {
    buf: [u8; bytes::POOL_SLOT],
    n: usize,
}

impl Wire {
    fn new() -> Wire {
        Wire {
            buf: [0; bytes::POOL_SLOT],
            n: 0,
        }
    }

    fn freeze(&self) -> Bytes {
        Bytes::pooled_copy(&self.buf[..self.n])
    }
}

impl BufMut for Wire {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf[self.n..self.n + data.len()].copy_from_slice(data);
        self.n += data.len();
    }
}

/// Decoded `ch_mad` packet header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Packet {
    /// Eager-mode data message (`MAD_SHORT_PKT`).
    Short { env: Envelope },
    /// Rendezvous-mode request (`MAD_REQUEST_PKT`).
    Request { env: Envelope, sender_token: u64 },
    /// Rendezvous acknowledgement (`MAD_SENDOK_PKT`).
    SendOk {
        sender_token: u64,
        sync_address: u64,
    },
    /// Rendezvous-mode data message (`MAD_RNDV_PKT`). `offset`/`total`
    /// support chunked transfers across forwarding gateways (a direct
    /// transfer is the single chunk `offset = 0, total = env.len`).
    Rndv {
        env: Envelope,
        sync_address: u64,
        offset: u64,
        total: u64,
    },
    /// Program-termination message (`MAD_TERM_PKT`).
    Term,
    /// Forwarding wrapper (`MAD_FWD_PKT`, the §6 future-work extension):
    /// the *next* header block is the wrapped packet, to be relayed
    /// toward `final_dst` across gateway nodes.
    Fwd { final_dst: u32 },
}

const T_SHORT: u8 = 0;
const T_REQUEST: u8 = 1;
const T_SENDOK: u8 = 2;
const T_RNDV: u8 = 3;
const T_TERM: u8 = 4;
const T_FWD: u8 = 5;

fn put_env(buf: &mut impl BufMut, env: &Envelope) {
    buf.put_u32_le(env.src as u32);
    buf.put_i32_le(env.tag);
    buf.put_u32_le(env.context);
    buf.put_u64_le(env.len as u64);
}

fn get_env(b: &[u8]) -> (Envelope, &[u8]) {
    let src = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
    let tag = i32::from_le_bytes(b[4..8].try_into().unwrap());
    let context = u32::from_le_bytes(b[8..12].try_into().unwrap());
    let len = u64::from_le_bytes(b[12..20].try_into().unwrap()) as usize;
    (
        Envelope {
            src,
            tag,
            context,
            len,
        },
        &b[20..],
    )
}

fn get_u64(b: &[u8]) -> (u64, &[u8]) {
    (u64::from_le_bytes(b[0..8].try_into().unwrap()), &b[8..])
}

impl Packet {
    /// Wire-protocol name of the packet kind (trace-event labels).
    pub fn kind(&self) -> &'static str {
        match self {
            Packet::Short { .. } => "SHORT",
            Packet::Request { .. } => "REQUEST",
            Packet::SendOk { .. } => "SENDOK",
            Packet::Rndv { .. } => "RNDV",
            Packet::Term => "TERM",
            Packet::Fwd { .. } => "FWD",
        }
    }

    /// Serialize the header. Encodes into a stack buffer and copies
    /// once into a pooled [`Bytes`], so a warm steady state performs
    /// no heap allocation per header.
    pub fn encode(&self) -> Bytes {
        let mut buf = Wire::new();
        match self {
            Packet::Short { env } => {
                buf.put_u8(T_SHORT);
                put_env(&mut buf, env);
            }
            Packet::Request { env, sender_token } => {
                buf.put_u8(T_REQUEST);
                put_env(&mut buf, env);
                buf.put_u64_le(*sender_token);
            }
            Packet::SendOk {
                sender_token,
                sync_address,
            } => {
                buf.put_u8(T_SENDOK);
                buf.put_u64_le(*sender_token);
                buf.put_u64_le(*sync_address);
            }
            Packet::Rndv {
                env,
                sync_address,
                offset,
                total,
            } => {
                buf.put_u8(T_RNDV);
                put_env(&mut buf, env);
                buf.put_u64_le(*sync_address);
                buf.put_u64_le(*offset);
                buf.put_u64_le(*total);
            }
            Packet::Term => {
                buf.put_u8(T_TERM);
            }
            Packet::Fwd { final_dst } => {
                buf.put_u8(T_FWD);
                buf.put_u32_le(*final_dst);
            }
        }
        buf.freeze()
    }

    /// Parse a header. Trailing bytes (the padded inline buffer of the
    /// non-split ablation) are permitted and ignored here.
    pub fn decode(bytes: &[u8]) -> Packet {
        match bytes[0] {
            T_SHORT => {
                let (env, _) = get_env(&bytes[1..]);
                Packet::Short { env }
            }
            T_REQUEST => {
                let (env, rest) = get_env(&bytes[1..]);
                let (sender_token, _) = get_u64(rest);
                Packet::Request { env, sender_token }
            }
            T_SENDOK => {
                let (sender_token, rest) = get_u64(&bytes[1..]);
                let (sync_address, _) = get_u64(rest);
                Packet::SendOk {
                    sender_token,
                    sync_address,
                }
            }
            T_RNDV => {
                let (env, rest) = get_env(&bytes[1..]);
                let (sync_address, rest) = get_u64(rest);
                let (offset, rest) = get_u64(rest);
                let (total, _) = get_u64(rest);
                Packet::Rndv {
                    env,
                    sync_address,
                    offset,
                    total,
                }
            }
            T_TERM => Packet::Term,
            T_FWD => Packet::Fwd {
                final_dst: u32::from_le_bytes(bytes[1..5].try_into().unwrap()),
            },
            t => panic!("unknown ch_mad packet type {t}"),
        }
    }

    /// Byte offset of the inline payload in a non-split short packet
    /// (header fields come first, then the fixed-size buffer).
    pub fn short_header_len() -> usize {
        21
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope {
            src: 7,
            tag: -3,
            context: 42,
            len: 1234,
        }
    }

    #[test]
    fn round_trip_all_types() {
        let packets = [
            Packet::Short { env: env() },
            Packet::Request {
                env: env(),
                sender_token: 0xdead_beef,
            },
            Packet::SendOk {
                sender_token: 1,
                sync_address: u64::MAX,
            },
            Packet::Rndv {
                env: env(),
                sync_address: 99,
                offset: 1 << 40,
                total: u64::MAX,
            },
            Packet::Term,
            Packet::Fwd { final_dst: 12345 },
        ];
        for p in packets {
            let enc = p.encode();
            assert_eq!(Packet::decode(&enc), p, "round trip failed for {p:?}");
        }
    }

    #[test]
    fn decode_ignores_trailing_padding() {
        let mut bytes = Packet::Short { env: env() }.encode().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert_eq!(Packet::decode(&bytes), Packet::Short { env: env() });
    }

    #[test]
    fn short_header_len_matches_encoding() {
        let enc = Packet::Short { env: env() }.encode();
        assert_eq!(enc.len(), Packet::short_header_len());
    }

    #[test]
    fn headers_are_small() {
        // The whole point of the split-short optimization is that the
        // header is tiny; make sure it stays that way.
        for p in [
            Packet::Short { env: env() },
            Packet::Request {
                env: env(),
                sender_token: 0,
            },
            Packet::SendOk {
                sender_token: 0,
                sync_address: 0,
            },
            Packet::Rndv {
                env: env(),
                sync_address: 0,
                offset: 0,
                total: 0,
            },
            Packet::Term,
            Packet::Fwd { final_dst: 0 },
        ] {
            assert!(p.encode().len() <= 53, "{p:?} header too large");
        }
    }
}
