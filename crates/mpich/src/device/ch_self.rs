//! `ch_self`: the loop-back device for intra-process communication
//! (paper §4.1). Delivery is synchronous — a memcpy at loop-back cost —
//! so the device needs no service thread.

use std::sync::Arc;

use bytes::Bytes;
use simnet::NodeModel;

use crate::adi::{Device, ProtocolPolicy};
use crate::engine::Engine;
use crate::types::Envelope;

pub struct ChSelf {
    engines: Vec<Arc<Engine>>,
    node_model: NodeModel,
    /// Loop-back copies either way; eager always.
    policy: ProtocolPolicy,
}

impl ChSelf {
    pub fn new(engines: Vec<Arc<Engine>>, node_model: NodeModel) -> Arc<ChSelf> {
        Arc::new(ChSelf {
            engines,
            node_model,
            policy: ProtocolPolicy::always_eager(),
        })
    }
}

impl Device for ChSelf {
    fn name(&self) -> &'static str {
        "ch_self"
    }

    fn policy(&self) -> &ProtocolPolicy {
        &self.policy
    }

    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool) {
        assert_eq!(from, dst, "ch_self only carries messages to self");
        marcel::advance(self.node_model.self_cost(data.len()));
        if sync {
            // Synchronous semantics: complete only once the receive is
            // posted, through the engine's rendezvous offer. Note the
            // MPI-mandated consequence: a self-ssend without a prior
            // irecv deadlocks (and the kernel reports it).
            let slot = marcel::OneShot::current();
            let s2 = slot.clone();
            self.engines[dst].deliver_rndv_offer(env, Box::new(move |token| s2.put(token)));
            let token = slot.take();
            self.engines[dst].rndv_complete(token, env, data);
        } else {
            // The loop-back cost above covers the copy; no per-byte
            // charge at match time.
            self.engines[dst].deliver_eager(env, data, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adi::AdiCosts;
    use crate::request::{ReqInner, Request};
    use crate::types::MatchSpec;
    use marcel::{CostModel, Kernel};

    #[test]
    fn send_to_self_completes_posted_recv() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        let h = k.spawn("rank0", move || {
            let engine = Engine::new(&k2, 0, AdiCosts::free());
            let dev = ChSelf::new(vec![engine.clone()], NodeModel::calibrated());
            let req = ReqInner::new();
            engine.post_recv(
                MatchSpec {
                    src: Some(0),
                    tag: Some(1),
                    context: 0,
                },
                16,
                req.clone(),
            );
            dev.send(
                0,
                0,
                Envelope {
                    src: 0,
                    tag: 1,
                    context: 0,
                    len: 3,
                },
                Bytes::from_static(&[1, 2, 3]),
                false,
            );
            let (data, _) = Request::new(req).wait();
            (data.unwrap(), marcel::now())
        });
        k.run().unwrap();
        let (data, t) = h.join_outcome().unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        // Loop-back fixed cost is ~0.7us.
        assert!(t.as_micros_f64() < 2.0, "loop-back should be fast: {t}");
        assert!(t.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "only carries messages to self")]
    fn cross_rank_rejected() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        k.spawn("rank0", move || {
            let e0 = Engine::new(&k2, 0, AdiCosts::free());
            let e1 = Engine::new(&k2, 1, AdiCosts::free());
            let dev = ChSelf::new(vec![e0, e1], NodeModel::calibrated());
            dev.send(
                0,
                1,
                Envelope {
                    src: 0,
                    tag: 0,
                    context: 0,
                    len: 0,
                },
                Bytes::new(),
                false,
            );
        });
        if let Err(marcel::SimError::ThreadPanicked(msg)) = k.run() {
            panic!("{msg}");
        }
    }
}
