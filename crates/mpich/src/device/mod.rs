//! The devices plugged under the ADI: `ch_self` (intra-process),
//! `smp_plug` (intra-node), `ch_mad` (multi-protocol inter-node — the
//! paper's contribution) and `ch_p4` (classical TCP baseline).

pub mod ch_mad;
pub mod ch_p4;
pub mod ch_self;
pub mod packet;
pub mod smp_plug;

pub use ch_mad::{ChMad, ChMadConfig};
pub use ch_p4::{ChP4, ChP4Costs};
pub use ch_self::ChSelf;
pub use packet::Packet;
pub use smp_plug::SmpPlug;
