//! `ch_p4`: the classical MPICH TCP device, reproduced as the baseline
//! of the paper's Figure 6. It talks straight to the TCP link model
//! (no Madeleine, no multi-protocol support) and always pays the
//! buffered-copy path, which is why its bandwidth ceiling sits below
//! `ch_mad`'s rendezvous mode (≈10 vs ≈11.2 MB/s).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use marcel::{JoinHandle, Kernel, PollSource, ProcId, SimMutex, VirtualDuration, VirtualTime};
use simnet::{LinkModel, Protocol};

use crate::adi::{Device, ProtocolPolicy};
use crate::engine::Engine;
use crate::types::Envelope;

/// Software overheads of the p4 layer (on top of the raw TCP path).
/// Calibrated so the small-message latency lands slightly above
/// `ch_mad`'s, as in Fig. 6a.
#[derive(Clone, Debug)]
pub struct ChP4Costs {
    pub sw_send: VirtualDuration,
    pub sw_recv: VirtualDuration,
}

impl Default for ChP4Costs {
    fn default() -> Self {
        ChP4Costs {
            sw_send: VirtualDuration::from_micros_f64(16.0),
            sw_recv: VirtualDuration::from_micros_f64(17.0),
        }
    }
}

pub struct ChP4 {
    engines: Vec<Arc<Engine>>,
    model: LinkModel,
    costs: ChP4Costs,
    sources: Vec<PollSource<(Envelope, Bytes)>>,
    floors: HashMap<(usize, usize), SimMutex<VirtualTime>>,
    /// p4's large-message protocol still copies through socket buffers;
    /// modelled as eager at every size.
    policy: ProtocolPolicy,
}

impl ChP4 {
    pub fn new(kernel: &Kernel, engines: Vec<Arc<Engine>>, costs: ChP4Costs) -> Arc<ChP4> {
        let n = engines.len();
        let model = Protocol::Tcp.model();
        let sources = (0..n)
            .map(|r| PollSource::new(kernel, ProcId(r as u32), model.poll_cost))
            .collect();
        let mut floors = HashMap::new();
        for a in 0..n {
            for b in 0..n {
                floors.insert((a, b), SimMutex::new(kernel, VirtualTime::ZERO));
            }
        }
        Arc::new(ChP4 {
            engines,
            model,
            costs,
            sources,
            floors,
            policy: ProtocolPolicy::always_eager(),
        })
    }

    fn poll_loop(&self, rank: usize) {
        let eager_copy_ns = self.model.eager_copy_per_byte_ns;
        while let Some(polled) = self.sources[rank].poll_wait() {
            let (env, data) = polled.payload;
            marcel::advance(self.model.receiver_occupancy(data.len()) + self.costs.sw_recv);
            self.engines[rank].deliver_eager(env, data, eager_copy_ns);
        }
        self.sources[rank].detach();
    }
}

impl Device for ChP4 {
    fn name(&self) -> &'static str {
        "ch_p4"
    }

    fn policy(&self) -> &ProtocolPolicy {
        &self.policy
    }

    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool) {
        assert!(
            !sync,
            "the ch_p4 baseline does not implement synchronous sends"
        );
        marcel::advance(self.costs.sw_send);
        let floor = &self.floors[&(from, dst)];
        let mut floor = floor.lock();
        marcel::advance(self.model.sender_occupancy(data.len(), 1));
        let mut arrival = self.model.arrival(marcel::now(), data.len());
        let min =
            *floor + (self.model.wire_serialization(data.len()) + VirtualDuration::from_nanos(1));
        if arrival < min {
            arrival = min;
        }
        *floor = arrival;
        self.sources[dst].post(arrival, (env, data));
    }

    fn start_rank(self: Arc<Self>, rank: usize) -> Vec<JoinHandle<()>> {
        self.sources[rank].attach();
        let dev = self.clone();
        vec![marcel::spawn(format!("rank{rank}-poll-p4"), move || {
            dev.poll_loop(rank);
        })]
    }

    fn finalize_rank(&self, rank: usize) {
        self.sources[rank].close();
    }
}
