//! `ch_mad`: the paper's contribution — a *single* MPICH device carrying
//! all inter-node traffic over the multi-protocol Madeleine library.
//!
//! Structure (paper §4):
//!
//! * one Madeleine channel per network; each rank runs **one polling
//!   thread per channel** (`poll_loop`), started at `MPI_Init` and
//!   terminated by a `MAD_TERM_PKT` sent over the loop-back connection
//!   at `MPI_Finalize`;
//! * per destination, the device picks the *fastest network both nodes
//!   share* — this is the multi-protocol selection the paper adds over
//!   classical MPICH devices (no distinction between intra- and
//!   inter-cluster communication);
//! * **eager mode** for messages up to the switch point: one message,
//!   header EXPRESS + user bytes CHEAPER (the *split short packet*
//!   optimization of §4.2.2 — the naive alternative, a fixed
//!   `MPID_PKT_MAX_DATA_SIZE` inline buffer, is kept as an ablation);
//! * **rendezvous mode** above the switch point: REQUEST →
//!   OK_TO_SEND(sync_address) → DATA(sync_address, zero-copy body);
//!   the OK_TO_SEND is sent from a freshly spawned thread because *a
//!   polling thread must never send* (§4.2.3);
//! * the eager→rendezvous threshold is resolved per channel through a
//!   [`ProtocolPolicy`]: by default each network uses its own ideal
//!   value; [`PolicyMode::Elected`] reproduces the historical ADI
//!   limitation — one integer per device, **elected** for all networks
//!   (SCI's 8 KB when SCI is present, else the fastest network's;
//!   §4.2.2);
//! * with [`PolicyMode::Striped`], rendezvous DATA between ranks that
//!   share several networks is split into contiguous spans striped
//!   across all rails, weighted by each link's calibrated bandwidth;
//!   the receiver reassembles them through the engine's out-of-order
//!   chunk path.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use madeleine::{Channel, Endpoint, ReceiveMode, SendMode, Session};
use marcel::{JoinHandle, Kernel, OneShot, SimMutex};

use crate::adi::{AdiCosts, Device, PolicyMode, ProtocolPolicy};
use crate::device::packet::Packet;
use crate::engine::Engine;
use crate::types::Envelope;
use marcel::VirtualDuration;

/// Per-byte polling-thread handling cost (see `AdiCosts`).
fn touch(ns_per_byte: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

/// Tunables and ablation switches for the device.
#[derive(Clone, Debug)]
pub struct ChMadConfig {
    /// Split the ADI short packet: header in the `ch_mad` header block,
    /// user bytes as the message body (§4.2.2). `false` reproduces the
    /// naive scheme — a fixed-size inline buffer padded with nulls —
    /// whose waste the paper calls out.
    pub split_short: bool,
    /// Enable the rendezvous transfer mode. `false` forces eager for
    /// every size (ablation: shows what zero-copy buys).
    pub rendezvous: bool,
    /// How the eager→rendezvous threshold is resolved per channel, and
    /// whether rendezvous DATA is striped across rails.
    pub policy: PolicyMode,
    /// Flat threshold override for every channel, beating `policy`
    /// (used by the switch-point ablation bench).
    pub switch_point_override: Option<usize>,
    /// Chunk size for rendezvous DATA on *forwarded* (multi-hop) routes.
    /// Chunking lets consecutive hops pipeline, so the end-to-end
    /// bandwidth approaches the slowest link instead of its half
    /// (store-and-forward). `usize::MAX` disables chunking (ablation).
    pub fwd_chunk: usize,
}

impl Default for ChMadConfig {
    fn default() -> Self {
        ChMadConfig {
            split_short: true,
            rendezvous: true,
            policy: PolicyMode::default(),
            switch_point_override: None,
            fwd_chunk: 128 * 1024,
        }
    }
}

/// Sender-side rendezvous transactions of one rank.
struct PendingRndv {
    next_token: u64,
    waiting: HashMap<u64, OneShot<u64>>,
}

struct RankState {
    pending: SimMutex<PendingRndv>,
}

pub struct ChMad {
    session: Arc<Session>,
    engines: Vec<Arc<Engine>>,
    costs: AdiCosts,
    config: ChMadConfig,
    policy: ProtocolPolicy,
    ranks: Vec<RankState>,
}

impl ChMad {
    pub fn new(
        kernel: &Kernel,
        session: Arc<Session>,
        engines: Vec<Arc<Engine>>,
        costs: AdiCosts,
        config: ChMadConfig,
    ) -> Arc<ChMad> {
        let protocols = session.topology().protocols();
        let policy = ProtocolPolicy::new(config.policy, &protocols, config.switch_point_override);
        let ranks = (0..session.n_ranks())
            .map(|_| RankState {
                pending: SimMutex::new(
                    kernel,
                    PendingRndv {
                        next_token: 1,
                        waiting: HashMap::new(),
                    },
                ),
            })
            .collect();
        Arc::new(ChMad {
            session,
            engines,
            costs,
            config,
            policy,
            ranks,
        })
    }

    /// The Madeleine session the device runs over.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    fn channel_to(&self, from: usize, dst: usize) -> Arc<Channel> {
        self.session
            .best_channel_between(from, dst)
            .unwrap_or_else(|| {
                panic!(
                    "no direct network between ranks {from} and {dst}: \
                     enable forwarding to cross gateways"
                )
            })
    }

    fn endpoint_to(&self, from: usize, dst: usize) -> Endpoint {
        self.channel_to(from, dst).endpoint(from)
    }

    /// The eager→rendezvous threshold for a message from `from` to
    /// `dst`, resolved against the protocol of the channel the first
    /// hop will ride (the policy is per channel, not per device).
    fn threshold_to(&self, from: usize, dst: usize) -> usize {
        let (next, _) = self.session.next_hop(from, dst);
        let protocol = self
            .session
            .best_channel_between(from, next)
            .map(|c| c.protocol());
        self.policy.threshold(protocol)
    }

    /// Ship one ch_mad packet (header + optional body) toward
    /// `final_dst`, wrapping it in a `MAD_FWD_PKT` when the next hop is
    /// a gateway (§6 future-work extension).
    fn send_packet(&self, from: usize, final_dst: usize, header: Bytes, body: Option<Bytes>) {
        let (next, is_final) = self.session.next_hop(from, final_dst);
        let ep = self.endpoint_to(from, next);
        let mut conn = ep.begin_packing(next);
        if !is_final {
            conn.pack_bytes(
                Packet::Fwd {
                    final_dst: final_dst as u32,
                }
                .encode(),
                SendMode::Cheaper,
                ReceiveMode::Express,
            );
        }
        conn.pack_bytes(header, SendMode::Cheaper, ReceiveMode::Express);
        if let Some(body) = body {
            if !body.is_empty() {
                conn.pack_bytes(body, SendMode::Cheaper, ReceiveMode::Cheaper);
            }
        }
        conn.end_packing();
    }

    /// Eager mode: one message, optimized for latency at the price of an
    /// intermediate copy on the receiving side. `threshold` is the
    /// channel's resolved switch point (sizes the naive inline buffer).
    fn send_eager(&self, from: usize, dst: usize, env: Envelope, data: Bytes, threshold: usize) {
        if self.config.split_short {
            self.send_packet(from, dst, Packet::Short { env }.encode(), Some(data));
        } else {
            // Naive ADI short packet: header + MPID_PKT_MAX_DATA_SIZE
            // inline buffer, express in one piece. Everything beyond the
            // payload is null padding on the wire.
            let inline = Packet::short_header_len() + threshold;
            let mut buf = BytesMut::with_capacity(inline);
            buf.put_slice(&Packet::Short { env }.encode());
            buf.put_slice(&data);
            buf.resize(inline, 0);
            self.send_packet(from, dst, buf.freeze(), None);
        }
    }

    /// Rendezvous mode: synchronize with the receiver, then transfer the
    /// body zero-copy (paper Fig. 4b).
    fn send_rndv(&self, from: usize, dst: usize, env: Envelope, data: Bytes) {
        let (token, slot) = {
            let mut pending = self.ranks[from].pending.lock();
            let token = pending.next_token;
            pending.next_token += 1;
            let slot = OneShot::current();
            pending.waiting.insert(token, slot.clone());
            (token, slot)
        };
        // 1) Request.
        self.send_packet(
            from,
            dst,
            Packet::Request {
                env,
                sender_token: token,
            }
            .encode(),
            None,
        );
        // 2) Wait for Ok_To_Send: the receiver's sync_address.
        let sync_address = slot.take();
        // 3) Data, straight to the rhandle — no intermediate copies.
        let (_, direct) = self.session.next_hop(from, dst);
        if direct && self.policy.stripes() {
            let rails = self.session.channels_between(from, dst);
            if rails.len() >= 2 && data.len() >= rails.len() {
                self.send_rndv_striped(from, dst, env, sync_address, data, &rails);
                return;
            }
        }
        // Single-rail path. Across gateways, split into chunks so the
        // hops pipeline.
        let total = data.len() as u64;
        let chunk = if direct {
            usize::MAX
        } else {
            self.config.fwd_chunk.max(1)
        };
        let mut offset = 0usize;
        loop {
            let end = data.len().min(offset + chunk);
            let body = data.slice(offset..end);
            self.send_packet(
                from,
                dst,
                Packet::Rndv {
                    env,
                    sync_address,
                    offset: offset as u64,
                    total,
                }
                .encode(),
                Some(body),
            );
            offset = end;
            if offset >= data.len() {
                break;
            }
        }
    }

    /// Striped rendezvous DATA: one contiguous span per rail, sized
    /// proportionally to the rail's calibrated link bandwidth so every
    /// wire finishes at about the same time. Each span is an ordinary
    /// `MAD_RNDV_PKT`; the receiver's per-channel polling threads feed
    /// them into the engine's out-of-order chunk assembly
    /// ([`Engine::rndv_chunk`]), which completes the request once
    /// `total` bytes have landed. Sender occupancy is per-message, so
    /// packing the spans back to back still overlaps their wire time.
    fn send_rndv_striped(
        &self,
        from: usize,
        dst: usize,
        env: Envelope,
        sync_address: u64,
        data: Bytes,
        rails: &[Arc<Channel>],
    ) {
        let total = data.len() as u64;
        let weights: Vec<f64> = rails.iter().map(|c| c.stripe_weight()).collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut offset = 0usize;
        for (i, (rail, w)) in rails.iter().zip(&weights).enumerate() {
            let end = if i + 1 == rails.len() {
                data.len()
            } else {
                let span = (data.len() as f64 * w / weight_sum).round() as usize;
                data.len().min(offset + span.max(1))
            };
            if end <= offset {
                continue;
            }
            self.send_packet_on(
                rail,
                from,
                dst,
                Packet::Rndv {
                    env,
                    sync_address,
                    offset: offset as u64,
                    total,
                }
                .encode(),
                Some(data.slice(offset..end)),
            );
            offset = end;
        }
        assert_eq!(offset, data.len(), "stripes must cover the message");
    }

    /// Ship one packet on an explicitly chosen channel (striping only —
    /// the destination must be a direct member of the channel).
    fn send_packet_on(
        &self,
        channel: &Arc<Channel>,
        from: usize,
        dst: usize,
        header: Bytes,
        body: Option<Bytes>,
    ) {
        let mut conn = channel.endpoint(from).begin_packing(dst);
        conn.pack_bytes(header, SendMode::Cheaper, ReceiveMode::Express);
        if let Some(body) = body {
            if !body.is_empty() {
                conn.pack_bytes(body, SendMode::Cheaper, ReceiveMode::Cheaper);
            }
        }
        conn.end_packing();
    }

    /// The polling loop run by one thread per (rank, channel).
    fn poll_loop(self: &Arc<Self>, rank: usize, ep: Endpoint) {
        let engine = &self.engines[rank];
        let eager_copy_ns = ep.channel().model().eager_copy_per_byte_ns;
        loop {
            let Some(mut conn) = ep.begin_unpacking() else {
                break;
            };
            let header = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Express);
            marcel::advance(self.costs.demux);
            match Packet::decode(&header) {
                Packet::Short { env } => {
                    let body = if self.config.split_short {
                        if conn.remaining_blocks() > 0 {
                            conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper)
                        } else {
                            Bytes::new()
                        }
                    } else {
                        header
                            .slice(Packet::short_header_len()..Packet::short_header_len() + env.len)
                    };
                    conn.end_unpacking();
                    marcel::advance(touch(self.costs.recv_touch_per_byte_ns, body.len()));
                    engine.deliver_eager(env, body, eager_copy_ns);
                }
                Packet::Request { env, sender_token } => {
                    conn.end_unpacking();
                    let this = self.clone();
                    let respond: crate::engine::RndvResponder = Box::new(move |sync_address| {
                        // A polling thread must never send (§4.2.3):
                        // the acknowledgement goes out from a dedicated
                        // short-lived thread.
                        let ack = this.clone();
                        marcel::spawn(format!("rank{rank}-rndv-ack"), move || {
                            ack.send_packet(
                                rank,
                                env.src,
                                Packet::SendOk {
                                    sender_token,
                                    sync_address,
                                }
                                .encode(),
                                None,
                            );
                        });
                    });
                    engine.deliver_rndv_offer(env, respond);
                }
                Packet::SendOk {
                    sender_token,
                    sync_address,
                } => {
                    conn.end_unpacking();
                    let slot = self.ranks[rank]
                        .pending
                        .lock()
                        .waiting
                        .remove(&sender_token)
                        .unwrap_or_else(|| {
                            panic!("rank {rank}: Ok_To_Send for unknown token {sender_token}")
                        });
                    slot.put(sync_address);
                }
                Packet::Rndv {
                    env,
                    sync_address,
                    offset,
                    total,
                } => {
                    let body = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                    conn.end_unpacking();
                    marcel::advance(touch(self.costs.recv_touch_per_byte_ns, body.len()));
                    engine.rndv_chunk(sync_address, env, offset as usize, total as usize, body);
                }
                Packet::Term => {
                    conn.end_unpacking();
                    break;
                }
                Packet::Fwd { final_dst } => {
                    // Relay: read the wrapped header and optional body,
                    // then ship them one hop closer to the destination.
                    // A polling thread must never send (§4.2.3), so the
                    // relay runs on its own short-lived thread.
                    let inner = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Express);
                    let body = (conn.remaining_blocks() > 0)
                        .then(|| conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper));
                    conn.end_unpacking();
                    if let Some(b) = &body {
                        marcel::advance(touch(self.costs.recv_touch_per_byte_ns, b.len()));
                    }
                    let dev = self.clone();
                    marcel::spawn(format!("rank{rank}-fwd"), move || {
                        dev.send_packet(rank, final_dst as usize, inner, body);
                    });
                }
            }
        }
        ep.detach_polling();
    }
}

impl Device for ChMad {
    fn name(&self) -> &'static str {
        "ch_mad"
    }

    fn policy(&self) -> &ProtocolPolicy {
        &self.policy
    }

    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool) {
        marcel::advance(self.costs.send_setup);
        let threshold = self.threshold_to(from, dst);
        if sync || (self.config.rendezvous && env.len > threshold) {
            assert!(
                !sync || self.config.rendezvous,
                "synchronous sends require the rendezvous mode"
            );
            self.send_rndv(from, dst, env, data);
        } else {
            assert!(
                self.config.split_short || env.len <= threshold,
                "eager message larger than the inline short buffer"
            );
            self.send_eager(from, dst, env, data, threshold);
        }
    }

    fn start_rank(self: Arc<Self>, rank: usize) -> Vec<JoinHandle<()>> {
        self.session
            .channels_of_rank(rank)
            .into_iter()
            .map(|channel| {
                let ep = channel.endpoint(rank);
                ep.attach_polling();
                let dev = self.clone();
                let name = channel.name().to_string();
                marcel::spawn(format!("rank{rank}-poll-{name}"), move || {
                    dev.poll_loop(rank, ep);
                })
            })
            .collect()
    }

    fn finalize_rank(&self, rank: usize) {
        for channel in self.session.channels_of_rank(rank) {
            let ep = channel.endpoint(rank);
            let mut conn = ep.begin_packing(rank);
            conn.pack_bytes(
                Packet::Term.encode(),
                SendMode::Cheaper,
                ReceiveMode::Express,
            );
            conn.end_packing();
        }
    }
}
