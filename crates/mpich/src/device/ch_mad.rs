//! `ch_mad`: the paper's contribution — a *single* MPICH device carrying
//! all inter-node traffic over the multi-protocol Madeleine library.
//!
//! Structure (paper §4):
//!
//! * one Madeleine channel per network; each rank runs **one polling
//!   thread per channel** (`poll_loop`), started at `MPI_Init` and
//!   terminated by a `MAD_TERM_PKT` sent over the loop-back connection
//!   at `MPI_Finalize`;
//! * per destination, the device picks the *fastest network both nodes
//!   share* — this is the multi-protocol selection the paper adds over
//!   classical MPICH devices (no distinction between intra- and
//!   inter-cluster communication);
//! * **eager mode** for messages up to the switch point: one message,
//!   header EXPRESS + user bytes CHEAPER (the *split short packet*
//!   optimization of §4.2.2 — the naive alternative, a fixed
//!   `MPID_PKT_MAX_DATA_SIZE` inline buffer, is kept as an ablation);
//! * **rendezvous mode** above the switch point: REQUEST →
//!   OK_TO_SEND(sync_address) → DATA(sync_address, zero-copy body);
//!   the OK_TO_SEND is sent from a freshly spawned thread because *a
//!   polling thread must never send* (§4.2.3);
//! * the eager→rendezvous threshold is resolved per channel through a
//!   [`ProtocolPolicy`]: by default each network uses its own ideal
//!   value; [`PolicyMode::Elected`] reproduces the historical ADI
//!   limitation — one integer per device, **elected** for all networks
//!   (SCI's 8 KB when SCI is present, else the fastest network's;
//!   §4.2.2);
//! * with [`PolicyMode::Striped`], rendezvous DATA between ranks that
//!   share several networks is split into contiguous spans striped
//!   across all rails, weighted by each link's calibrated bandwidth;
//!   the receiver reassembles them through the engine's out-of-order
//!   chunk path.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use madeleine::{
    Channel, ChannelError, Endpoint, ReceiveMode, SendMode, Session, UnpackingConnection,
};
use marcel::obs::{self, Event, SpanKind};
use marcel::{JoinHandle, Kernel, OneShot, SimMutex};

use crate::adi::{AdiCosts, Device, PolicyMode, ProtocolPolicy};
use crate::device::packet::Packet;
use crate::engine::Engine;
use crate::types::Envelope;
use marcel::VirtualDuration;

/// Per-byte polling-thread handling cost (see `AdiCosts`).
fn touch(ns_per_byte: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

/// Tunables and ablation switches for the device.
#[derive(Clone, Debug)]
pub struct ChMadConfig {
    /// Split the ADI short packet: header in the `ch_mad` header block,
    /// user bytes as the message body (§4.2.2). `false` reproduces the
    /// naive scheme — a fixed-size inline buffer padded with nulls —
    /// whose waste the paper calls out.
    pub split_short: bool,
    /// Enable the rendezvous transfer mode. `false` forces eager for
    /// every size (ablation: shows what zero-copy buys).
    pub rendezvous: bool,
    /// How the eager→rendezvous threshold is resolved per channel, and
    /// whether rendezvous DATA is striped across rails.
    pub policy: PolicyMode,
    /// Flat threshold override for every channel, beating `policy`
    /// (used by the switch-point ablation bench).
    pub switch_point_override: Option<usize>,
    /// Chunk size for rendezvous DATA on *forwarded* (multi-hop) routes.
    /// Chunking lets consecutive hops pipeline, so the end-to-end
    /// bandwidth approaches the slowest link instead of its half
    /// (store-and-forward). `usize::MAX` disables chunking (ablation).
    pub fwd_chunk: usize,
}

impl Default for ChMadConfig {
    fn default() -> Self {
        ChMadConfig {
            split_short: true,
            rendezvous: true,
            policy: PolicyMode::default(),
            switch_point_override: None,
            fwd_chunk: 128 * 1024,
        }
    }
}

/// Sender-side rendezvous transactions of one rank.
struct PendingRndv {
    next_token: u64,
    waiting: HashMap<u64, OneShot<u64>>,
}

/// Receiver-side progress of one rendezvous REQUEST, keyed by
/// `(sender rank, sender_token)`. The sender re-issues its REQUEST
/// (same token) when no OK_TO_SEND arrives in time, so the receiver
/// must recognize re-issues instead of matching them against a second
/// receive.
enum RndvProgress {
    /// Offered to the engine; the responder has not fired yet (no
    /// matching receive posted so far). A re-issue is simply dropped.
    Offered,
    /// Acknowledged with this sync_address. A re-issue means the sender
    /// may have missed the OK_TO_SEND: acknowledge again.
    Acked(u64),
}

struct RankState {
    pending: SimMutex<PendingRndv>,
    seen: SimMutex<HashMap<(usize, u64), RndvProgress>>,
}

pub struct ChMad {
    session: Arc<Session>,
    engines: Vec<Arc<Engine>>,
    costs: AdiCosts,
    config: ChMadConfig,
    policy: ProtocolPolicy,
    ranks: Vec<RankState>,
    /// Whether any channel carries a fault plan. On a fault-free session
    /// every robustness path below (REQUEST re-issue timers, failover
    /// retries) is bypassed, keeping the timing identical to a build
    /// without the reliability sublayer.
    has_faults: bool,
}

impl ChMad {
    pub fn new(
        kernel: &Kernel,
        session: Arc<Session>,
        engines: Vec<Arc<Engine>>,
        costs: AdiCosts,
        config: ChMadConfig,
    ) -> Arc<ChMad> {
        let protocols = session.topology().protocols();
        let policy = ProtocolPolicy::new(config.policy, &protocols, config.switch_point_override);
        let ranks = (0..session.n_ranks())
            .map(|_| RankState {
                pending: SimMutex::new(
                    kernel,
                    PendingRndv {
                        next_token: 1,
                        waiting: HashMap::new(),
                    },
                ),
                seen: SimMutex::new(kernel, HashMap::new()),
            })
            .collect();
        let has_faults = session.channels().iter().any(|c| c.fault().is_some());
        Arc::new(ChMad {
            session,
            engines,
            costs,
            config,
            policy,
            ranks,
            has_faults,
        })
    }

    /// The Madeleine session the device runs over.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// The protocol the first hop toward `dst` will ride (the fastest
    /// surviving rail), used both to resolve the per-channel protocol
    /// policy and to label setup/handling spans. `None` means the hop
    /// is node-local. The resolution excludes rails declared dead by
    /// the reliable sublayer: after a failover the policy follows the
    /// traffic to the surviving rail's protocol.
    fn route_protocol(&self, from: usize, dst: usize) -> Option<simnet::Protocol> {
        let (next, _) = self.session.next_hop(from, dst);
        self.session
            .live_channels_between(from, next)
            .first()
            .map(|c| c.protocol())
    }

    /// Ship one ch_mad packet (header + optional body) toward
    /// `final_dst`, wrapping it in a `MAD_FWD_PKT` when the next hop is
    /// a gateway (§6 future-work extension).
    ///
    /// Rails are tried in transfer-priority order among the surviving
    /// (non-dead) channels of the hop; a [`ChannelError::LinkDead`]
    /// fails the send over to the next rail. Only when every rail
    /// between the pair is dead does the device give up — that is an
    /// unsurvivable fault plan, outside the robustness contract.
    fn send_packet(&self, from: usize, final_dst: usize, header: Bytes, body: Option<Bytes>) {
        let (next, is_final) = self.session.next_hop(from, final_dst);
        let fwd = (!is_final).then(|| {
            Packet::Fwd {
                final_dst: final_dst as u32,
            }
            .encode()
        });
        let rails = self.session.live_channels_between(from, next);
        let n_rails = rails.len();
        for (i, rail) in rails.iter().enumerate() {
            if i == 0 {
                let tag = rail.name_tag();
                let bytes = header.len() + body.as_ref().map_or(0, |b| b.len());
                obs::emit(move || Event::RailSelected {
                    rank: from,
                    dst: next,
                    rail: tag,
                    bytes,
                });
            }
            match self.send_packet_on(rail, from, next, fwd.clone(), header.clone(), body.clone()) {
                Ok(()) => return,
                Err(err) => {
                    self.session.note_failover();
                    let from_tag = rail.name_tag();
                    let to_tag = rails
                        .get(i + 1)
                        .map_or_else(|| Arc::from("none"), |r| r.name_tag());
                    obs::emit(move || Event::RailFailover {
                        rank: from,
                        dst: next,
                        from_rail: from_tag,
                        to_rail: to_tag,
                    });
                    if i + 1 == n_rails {
                        panic!("rank {from}: every rail to rank {next} is dead (last: {err})");
                    }
                }
            }
        }
        panic!("rank {from}: no live rail to rank {next}");
    }

    /// Eager mode: one message, optimized for latency at the price of an
    /// intermediate copy on the receiving side. `threshold` is the
    /// channel's resolved switch point (sizes the naive inline buffer).
    fn send_eager(&self, from: usize, dst: usize, env: Envelope, data: Bytes, threshold: usize) {
        if self.config.split_short {
            self.send_packet(from, dst, Packet::Short { env }.encode(), Some(data));
        } else {
            // Naive ADI short packet: header + MPID_PKT_MAX_DATA_SIZE
            // inline buffer, express in one piece. Everything beyond the
            // payload is null padding on the wire.
            let inline = Packet::short_header_len() + threshold;
            let mut buf = BytesMut::with_capacity(inline);
            buf.put_slice(&Packet::Short { env }.encode());
            buf.put_slice(&data);
            buf.resize(inline, 0);
            self.send_packet(from, dst, buf.freeze(), None);
        }
    }

    /// Rendezvous mode: synchronize with the receiver, then transfer the
    /// body zero-copy (paper Fig. 4b).
    fn send_rndv(&self, from: usize, dst: usize, env: Envelope, data: Bytes) {
        let (token, slot) = {
            let mut pending = self.ranks[from].pending.lock();
            let token = pending.next_token;
            pending.next_token += 1;
            let slot = OneShot::current();
            pending.waiting.insert(token, slot.clone());
            (token, slot)
        };
        let bytes = data.len();
        obs::emit(move || Event::RndvRequest {
            rank: from,
            dst,
            token,
            bytes,
        });
        let request = Packet::Request {
            env,
            sender_token: token,
        }
        .encode();
        // 1) Request.
        self.send_packet(from, dst, request.clone(), None);
        // 2) Wait for Ok_To_Send: the receiver's sync_address. On a
        //    faulty session the wait carries a timeout: if no reply
        //    lands (the REQUEST or its OK_TO_SEND may be transiting a
        //    rail that just died), the REQUEST is re-issued with the
        //    *same* token — the receiver dedups re-issues, so at most
        //    one receive is ever matched. A fault-free session waits
        //    unconditionally (no timer, identical timing to PR 1).
        let sync_address = if self.has_faults {
            let mut timeout = VirtualDuration::from_millis(30);
            loop {
                if let Some(addr) = slot.wait_timeout(timeout) {
                    break addr;
                }
                self.session.note_rndv_reissue();
                self.send_packet(from, dst, request.clone(), None);
                // Exponential backoff, capped: a receiver may simply
                // not have posted its receive yet, which is not an
                // error — keep probing at a bounded rate.
                timeout = (timeout + timeout).min(VirtualDuration::from_millis(1_000));
            }
        } else {
            slot.take()
        };
        // 3) Data, straight to the rhandle — no intermediate copies.
        let (_, direct) = self.session.next_hop(from, dst);
        if direct && self.policy.stripes() {
            let rails = self.session.live_channels_between(from, dst);
            if rails.len() >= 2 && data.len() >= rails.len() {
                self.send_rndv_striped(from, dst, env, sync_address, data, &rails);
                return;
            }
        }
        // Single-rail path. Across gateways, split into chunks so the
        // hops pipeline.
        let total = data.len() as u64;
        let chunk = if direct {
            usize::MAX
        } else {
            self.config.fwd_chunk.max(1)
        };
        let mut offset = 0usize;
        loop {
            let end = data.len().min(offset + chunk);
            let body = data.slice(offset..end);
            self.send_packet(
                from,
                dst,
                Packet::Rndv {
                    env,
                    sync_address,
                    offset: offset as u64,
                    total,
                }
                .encode(),
                Some(body),
            );
            offset = end;
            if offset >= data.len() {
                break;
            }
        }
    }

    /// Striped rendezvous DATA: one contiguous span per rail, sized
    /// proportionally to the rail's calibrated link bandwidth so every
    /// wire finishes at about the same time. Each span is an ordinary
    /// `MAD_RNDV_PKT`; the receiver's per-channel polling threads feed
    /// them into the engine's out-of-order chunk assembly
    /// ([`Engine::rndv_chunk`]), which completes the request once
    /// `total` bytes have landed. Sender occupancy is per-message, so
    /// packing the spans back to back still overlaps their wire time.
    fn send_rndv_striped(
        &self,
        from: usize,
        dst: usize,
        env: Envelope,
        sync_address: u64,
        data: Bytes,
        rails: &[Arc<Channel>],
    ) {
        let total = data.len() as u64;
        let weights: Vec<f64> = rails.iter().map(|c| c.stripe_weight()).collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut offset = 0usize;
        for (i, (rail, w)) in rails.iter().zip(&weights).enumerate() {
            let end = if i + 1 == rails.len() {
                data.len()
            } else {
                let span = (data.len() as f64 * w / weight_sum).round() as usize;
                data.len().min(offset + span.max(1))
            };
            if end <= offset {
                continue;
            }
            let header = Packet::Rndv {
                env,
                sync_address,
                offset: offset as u64,
                total,
            }
            .encode();
            let body = data.slice(offset..end);
            let stripe = obs::span_begin(SpanKind::Stripe, rail.protocol().name());
            if self
                .send_packet_on(rail, from, dst, None, header.clone(), Some(body.clone()))
                .is_err()
            {
                // The rail died mid-stripe (zero deliveries of this
                // span — a partially acknowledged span returns Ok).
                // Migrate the span to the surviving rails; the
                // receiver's out-of-order chunk assembly does not care
                // which wire a span rides.
                self.session.note_failover();
                self.send_packet(from, dst, header, Some(body));
            } else {
                obs::counter_add(
                    &format!("rail/{}/striped_bytes", rail.name()),
                    (end - offset) as u64,
                );
            }
            obs::span_end(stripe);
            offset = end;
        }
        assert_eq!(offset, data.len(), "stripes must cover the message");
    }

    /// Ship one packet on an explicitly chosen channel; the destination
    /// must be a direct member of the channel. `Err` means the reliable
    /// sublayer declared the pair dead with this packet undelivered —
    /// the caller decides how to re-route.
    fn send_packet_on(
        &self,
        channel: &Arc<Channel>,
        from: usize,
        dst: usize,
        fwd: Option<Bytes>,
        header: Bytes,
        body: Option<Bytes>,
    ) -> Result<(), ChannelError> {
        let ep = channel.endpoint(from)?;
        let mut conn = ep.begin_packing(dst)?;
        let hdr = header.clone();
        let bytes = header.len() + body.as_ref().map_or(0, |b| b.len());
        if let Some(fwd) = fwd {
            conn.pack_bytes(fwd, SendMode::Cheaper, ReceiveMode::Express);
        }
        conn.pack_bytes(header, SendMode::Cheaper, ReceiveMode::Express);
        if let Some(body) = body {
            if !body.is_empty() {
                conn.pack_bytes(body, SendMode::Cheaper, ReceiveMode::Cheaper);
            }
        }
        conn.end_packing()?;
        let tag = channel.name_tag();
        obs::emit(move || Event::PacketSent {
            rank: from,
            dst,
            kind: Packet::decode(&hdr).kind(),
            rail: tag,
            bytes,
        });
        Ok(())
    }

    /// The polling loop run by one thread per (rank, channel).
    fn poll_loop(self: &Arc<Self>, rank: usize, ep: Endpoint) {
        let engine = &self.engines[rank];
        let eager_copy_ns = ep.channel().model().eager_copy_per_byte_ns;
        let label = ep.channel().protocol().name();
        loop {
            let Some(conn) = ep.begin_unpacking() else {
                break;
            };
            if !self.handle_message(rank, conn, engine, eager_copy_ns, label) {
                // TERM noticed. Messages may still be queued behind it
                // (or in flight): late retransmissions, or traffic the
                // application never received. Finalize must not strand
                // them — drain the backlog before terminating.
                while ep.backlog() > 0 {
                    match ep.try_begin_unpacking() {
                        Some(conn) => {
                            self.handle_message(rank, conn, engine, eager_copy_ns, label);
                        }
                        // Nothing arrived yet (or the poll consumed a
                        // duplicate): let in-flight arrivals land.
                        None => marcel::sleep(VirtualDuration::from_micros(10)),
                    }
                }
                break;
            }
        }
        ep.detach_polling();
    }

    /// Demultiplex and handle one incoming ch_mad packet. Returns
    /// `false` when the packet was the TERM marker.
    fn handle_message(
        self: &Arc<Self>,
        rank: usize,
        mut conn: UnpackingConnection,
        engine: &Arc<Engine>,
        eager_copy_ns: f64,
        label: &'static str,
    ) -> bool {
        let mut span = obs::span_begin(SpanKind::Handle, label);
        let src = conn.from();
        let header = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Express);
        marcel::advance(self.costs.demux);
        let packet = Packet::decode(&header);
        let kind = packet.kind();
        obs::emit(move || Event::PacketDelivered { rank, src, kind });
        let term = match packet {
            Packet::Short { env } => {
                let body = if self.config.split_short {
                    if conn.remaining_blocks() > 0 {
                        conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper)
                    } else {
                        Bytes::new()
                    }
                } else {
                    header.slice(Packet::short_header_len()..Packet::short_header_len() + env.len)
                };
                conn.end_unpacking();
                marcel::advance(touch(self.costs.recv_touch_per_byte_ns, body.len()));
                engine.deliver_eager_spanned(env, body, eager_copy_ns, span.take());
                true
            }
            Packet::Request { env, sender_token } => {
                conn.end_unpacking();
                self.handle_request(rank, env, sender_token, engine);
                true
            }
            Packet::SendOk {
                sender_token,
                sync_address,
            } => {
                conn.end_unpacking();
                obs::emit(move || Event::RndvAck {
                    rank,
                    src,
                    token: sender_token,
                });
                let slot = self.ranks[rank]
                    .pending
                    .lock()
                    .waiting
                    .remove(&sender_token);
                match slot {
                    Some(slot) => slot.put(sync_address),
                    // A re-issued REQUEST can draw a second OK_TO_SEND
                    // after the first already completed the handshake.
                    None => debug_assert!(
                        self.has_faults,
                        "rank {rank}: Ok_To_Send for unknown token {sender_token}"
                    ),
                }
                true
            }
            Packet::Rndv {
                env,
                sync_address,
                offset,
                total,
            } => {
                let body = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                marcel::advance(touch(self.costs.recv_touch_per_byte_ns, body.len()));
                engine.rndv_chunk_spanned(
                    sync_address,
                    env,
                    offset as usize,
                    total as usize,
                    body,
                    span.take(),
                );
                true
            }
            Packet::Term => {
                conn.end_unpacking();
                false
            }
            Packet::Fwd { final_dst } => {
                // Relay: read the wrapped header and optional body,
                // then ship them one hop closer to the destination.
                // A polling thread must never send (§4.2.3), so the
                // relay runs on its own short-lived thread.
                let inner = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Express);
                let body = (conn.remaining_blocks() > 0)
                    .then(|| conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper));
                conn.end_unpacking();
                if let Some(b) = &body {
                    marcel::advance(touch(self.costs.recv_touch_per_byte_ns, b.len()));
                }
                let dev = self.clone();
                marcel::spawn(format!("rank{rank}-fwd"), move || {
                    dev.send_packet(rank, final_dst as usize, inner, body);
                });
                true
            }
        };
        obs::span_end(span);
        term
    }

    /// Handle a rendezvous REQUEST, deduplicating re-issues of the same
    /// `(sender, token)` transaction.
    fn handle_request(
        self: &Arc<Self>,
        rank: usize,
        env: Envelope,
        sender_token: u64,
        engine: &Arc<Engine>,
    ) {
        let key = (env.src, sender_token);
        let mut seen = self.ranks[rank].seen.lock();
        match seen.get(&key) {
            // Re-issue before the receive posted: the original offer is
            // still queued in the engine and will answer when matched.
            Some(RndvProgress::Offered) => {}
            // Re-issue after the acknowledgement: the sender may have
            // missed the OK_TO_SEND — acknowledge again (the sender
            // ignores the duplicate if the first did arrive).
            Some(RndvProgress::Acked(sync)) => {
                let sync_address = *sync;
                drop(seen);
                let ack = self.clone();
                marcel::spawn(format!("rank{rank}-rndv-reack"), move || {
                    ack.send_packet(
                        rank,
                        env.src,
                        Packet::SendOk {
                            sender_token,
                            sync_address,
                        }
                        .encode(),
                        None,
                    );
                });
            }
            None => {
                seen.insert(key, RndvProgress::Offered);
                drop(seen);
                let this = self.clone();
                let respond: crate::engine::RndvResponder = Box::new(move |sync_address| {
                    this.ranks[rank]
                        .seen
                        .lock()
                        .insert(key, RndvProgress::Acked(sync_address));
                    // A polling thread must never send (§4.2.3): the
                    // acknowledgement goes out from a dedicated
                    // short-lived thread.
                    let ack = this.clone();
                    marcel::spawn(format!("rank{rank}-rndv-ack"), move || {
                        ack.send_packet(
                            rank,
                            env.src,
                            Packet::SendOk {
                                sender_token,
                                sync_address,
                            }
                            .encode(),
                            None,
                        );
                    });
                });
                engine.deliver_rndv_offer(env, respond);
            }
        }
    }
}

impl Device for ChMad {
    fn name(&self) -> &'static str {
        "ch_mad"
    }

    fn policy(&self) -> &ProtocolPolicy {
        &self.policy
    }

    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool) {
        let protocol = self.route_protocol(from, dst);
        let label = protocol.map_or("local", |p| p.name());
        let setup = obs::span_begin(SpanKind::Setup, label);
        marcel::advance(self.costs.send_setup);
        let threshold = self.policy.threshold(protocol);
        obs::span_end(setup);
        if sync || (self.config.rendezvous && env.len > threshold) {
            assert!(
                !sync || self.config.rendezvous,
                "synchronous sends require the rendezvous mode"
            );
            self.send_rndv(from, dst, env, data);
        } else {
            assert!(
                self.config.split_short || env.len <= threshold,
                "eager message larger than the inline short buffer"
            );
            self.send_eager(from, dst, env, data, threshold);
        }
    }

    fn start_rank(self: Arc<Self>, rank: usize) -> Vec<JoinHandle<()>> {
        self.session
            .channels_of_rank(rank)
            .into_iter()
            .map(|channel| {
                let ep = channel
                    .endpoint(rank)
                    .expect("channels_of_rank returned a channel without the rank");
                ep.attach_polling();
                let dev = self.clone();
                let name = channel.name().to_string();
                marcel::spawn(format!("rank{rank}-poll-{name}"), move || {
                    dev.poll_loop(rank, ep);
                })
            })
            .collect()
    }

    fn finalize_rank(&self, rank: usize) {
        for channel in self.session.channels_of_rank(rank) {
            // TERM rides the loop-back connection, which never touches
            // the wire: it cannot be lost or declared dead, so the TERM
            // path stays correct however many rails have failed.
            let ep = channel
                .endpoint(rank)
                .expect("channels_of_rank returned a channel without the rank");
            let mut conn = ep
                .begin_packing(rank)
                .expect("loop-back pair always exists");
            conn.pack_bytes(
                Packet::Term.encode(),
                SendMode::Cheaper,
                ReceiveMode::Express,
            );
            conn.end_packing().expect("loop-back TERM cannot fail");
        }
    }
}
