//! Hash-bucketed message-matching stores for the ADI progress engine.
//!
//! MPI matching semantics are FIFO *per matching pair*: among all
//! queued entries that match, the one queued earliest wins. The seed
//! implementation realized this with a linear scan over one `VecDeque`
//! — O(queue depth) per post/arrival/probe. These stores keep the
//! exact same match order (every entry carries a global FIFO sequence
//! number; a lookup returns the matching entry with the smallest
//! sequence) while making the common exact-match case O(1):
//!
//! * [`PostedStore`]: posted receives, looked up by an arriving
//!   *envelope*. Fully-specified specs live in hash buckets keyed by
//!   `(context, src, tag)`; specs with `ANY_SOURCE`/`ANY_TAG`
//!   wildcards live on a FIFO side-list that is scanned only when
//!   present (wildcards are the rare case on hot paths).
//! * [`UnexpectedStore`]: unexpected arrivals, looked up by a receive
//!   *spec* (which may carry wildcards). Arrivals are indexed four
//!   ways — exact `(context, src, tag)` buckets for fully-specified
//!   lookups, plus ordered `(context, src)` / `(context, tag)` /
//!   `context` side-indexes so wildcard lookups are O(log n) instead
//!   of a scan.
//!
//! Within one bucket, sequence numbers are strictly increasing, so the
//! bucket front is always the bucket's oldest entry; a lookup compares
//! at most one candidate per consulted index and picks the smallest
//! sequence — bit-identical to what the linear scan would have chosen
//! (the equivalence proptest in `tests/matching_equivalence.rs` checks
//! this against a reference scan across random interleavings).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::types::{Envelope, MatchSpec, Tag};

/// Exact-match bucket key: context, source, tag — all concrete.
type ExactKey = (u32, usize, Tag);

/// Posted receives, matched against arriving envelopes.
#[derive(Default)]
pub struct PostedStore<P> {
    next_seq: u64,
    exact: HashMap<ExactKey, VecDeque<(u64, P)>>,
    wild: VecDeque<(u64, MatchSpec, P)>,
    len: usize,
}

impl<P> PostedStore<P> {
    pub fn new() -> Self {
        PostedStore {
            next_seq: 0,
            exact: HashMap::new(),
            wild: VecDeque::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue a posted receive.
    pub fn insert(&mut self, spec: MatchSpec, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match (spec.src, spec.tag) {
            (Some(src), Some(tag)) => self
                .exact
                .entry((spec.context, src, tag))
                .or_default()
                .push_back((seq, payload)),
            _ => self.wild.push_back((seq, spec, payload)),
        }
        self.len += 1;
    }

    /// Take the earliest-posted receive matching `env`, if any.
    pub fn take_match(&mut self, env: &Envelope) -> Option<P> {
        let exact_key = (env.context, env.src, env.tag);
        let exact_seq = self
            .exact
            .get(&exact_key)
            .and_then(|q| q.front())
            .map(|&(seq, _)| seq);
        let wild_pos = self.wild.iter().position(|(_, spec, _)| spec.matches(env));
        let wild_seq = wild_pos.map(|i| self.wild[i].0);
        match (exact_seq, wild_seq) {
            (None, None) => None,
            (Some(_), None) => self.take_exact(exact_key),
            (None, Some(_)) => self.take_wild(wild_pos.unwrap()),
            (Some(e), Some(w)) => {
                // Both indexes hold a candidate; FIFO semantics pick
                // the earlier-posted one.
                if e < w {
                    self.take_exact(exact_key)
                } else {
                    self.take_wild(wild_pos.unwrap())
                }
            }
        }
    }

    fn take_exact(&mut self, key: ExactKey) -> Option<P> {
        let q = self.exact.get_mut(&key)?;
        let (_, payload) = q.pop_front()?;
        if q.is_empty() {
            self.exact.remove(&key);
        }
        self.len -= 1;
        Some(payload)
    }

    fn take_wild(&mut self, pos: usize) -> Option<P> {
        let (_, _, payload) = self.wild.remove(pos)?;
        self.len -= 1;
        Some(payload)
    }
}

/// Unexpected arrivals, matched against receive specs (possibly with
/// wildcards). `take` by handle supports probe-then-receive without a
/// second lookup.
#[derive(Default)]
pub struct UnexpectedStore<T> {
    next_seq: u64,
    /// All live entries in arrival order (the BTreeMap iterates by
    /// ascending sequence).
    items: BTreeMap<u64, (Envelope, T)>,
    /// Exact-envelope buckets. Cleaned lazily: a `take` by handle
    /// leaves its sequence in place; lookups pop stale fronts.
    exact: HashMap<ExactKey, VecDeque<u64>>,
    /// Wildcard side-indexes (consulted only by wildcard specs).
    by_src: HashMap<(u32, usize), BTreeSet<u64>>,
    by_tag: HashMap<(u32, Tag), BTreeSet<u64>>,
    by_ctx: HashMap<u32, BTreeSet<u64>>,
}

impl<T> UnexpectedStore<T> {
    pub fn new() -> Self {
        UnexpectedStore {
            next_seq: 0,
            items: BTreeMap::new(),
            exact: HashMap::new(),
            by_src: HashMap::new(),
            by_tag: HashMap::new(),
            by_ctx: HashMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queue an arrival; returns its handle (global FIFO sequence).
    pub fn insert(&mut self, env: Envelope, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.exact
            .entry((env.context, env.src, env.tag))
            .or_default()
            .push_back(seq);
        self.by_src
            .entry((env.context, env.src))
            .or_default()
            .insert(seq);
        self.by_tag
            .entry((env.context, env.tag))
            .or_default()
            .insert(seq);
        self.by_ctx.entry(env.context).or_default().insert(seq);
        self.items.insert(seq, (env, payload));
        seq
    }

    /// Handle and envelope of the earliest arrival matching `spec`,
    /// without removing it (probe).
    pub fn find(&mut self, spec: &MatchSpec) -> Option<(u64, Envelope)> {
        let seq = match (spec.src, spec.tag) {
            (Some(src), Some(tag)) => {
                let key = (spec.context, src, tag);
                let q = self.exact.get_mut(&key)?;
                // Drop handles already taken out from under this
                // bucket (probe-then-receive, wildcard matches).
                while let Some(&front) = q.front() {
                    if self.items.contains_key(&front) {
                        break;
                    }
                    q.pop_front();
                }
                if q.is_empty() {
                    self.exact.remove(&key);
                    return None;
                }
                *q.front().unwrap()
            }
            (Some(src), None) => *self.by_src.get(&(spec.context, src))?.first()?,
            (None, Some(tag)) => *self.by_tag.get(&(spec.context, tag))?.first()?,
            (None, None) => *self.by_ctx.get(&spec.context)?.first()?,
        };
        let (env, _) = &self.items[&seq];
        Some((seq, *env))
    }

    /// Remove an arrival by handle (from a prior [`find`]). Returns
    /// `None` if it was already taken.
    ///
    /// [`find`]: UnexpectedStore::find
    pub fn take(&mut self, seq: u64) -> Option<(Envelope, T)> {
        let (env, payload) = self.items.remove(&seq)?;
        // The exact bucket is cleaned lazily; the ordered side-indexes
        // must drop the handle now so wildcard lookups stay correct.
        if let Some(s) = self.by_src.get_mut(&(env.context, env.src)) {
            s.remove(&seq);
            if s.is_empty() {
                self.by_src.remove(&(env.context, env.src));
            }
        }
        if let Some(s) = self.by_tag.get_mut(&(env.context, env.tag)) {
            s.remove(&seq);
            if s.is_empty() {
                self.by_tag.remove(&(env.context, env.tag));
            }
        }
        if let Some(s) = self.by_ctx.get_mut(&env.context) {
            s.remove(&seq);
            if s.is_empty() {
                self.by_ctx.remove(&env.context);
            }
        }
        Some((env, payload))
    }

    /// Take the earliest arrival matching `spec`, if any.
    pub fn take_match(&mut self, spec: &MatchSpec) -> Option<(Envelope, T)> {
        let (seq, _) = self.find(spec)?;
        self.take(seq)
    }

    /// Envelopes of all queued arrivals, in arrival order.
    pub fn envelopes(&self) -> Vec<Envelope> {
        self.items.values().map(|(env, _)| *env).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, context: u32) -> Envelope {
        Envelope {
            src,
            tag,
            context,
            len: 8,
        }
    }

    fn spec(src: Option<usize>, tag: Option<Tag>, context: u32) -> MatchSpec {
        MatchSpec { src, tag, context }
    }

    #[test]
    fn posted_fifo_within_pair() {
        let mut s = PostedStore::new();
        s.insert(spec(Some(1), Some(7), 0), "a");
        s.insert(spec(Some(1), Some(7), 0), "b");
        assert_eq!(s.take_match(&env(1, 7, 0)), Some("a"));
        assert_eq!(s.take_match(&env(1, 7, 0)), Some("b"));
        assert_eq!(s.take_match(&env(1, 7, 0)), None);
        assert!(s.is_empty());
    }

    #[test]
    fn posted_wildcard_beats_later_exact() {
        let mut s = PostedStore::new();
        s.insert(spec(None, Some(7), 0), "wild");
        s.insert(spec(Some(1), Some(7), 0), "exact");
        // The wildcard was posted first; FIFO picks it.
        assert_eq!(s.take_match(&env(1, 7, 0)), Some("wild"));
        assert_eq!(s.take_match(&env(1, 7, 0)), Some("exact"));
    }

    #[test]
    fn posted_exact_beats_later_wildcard() {
        let mut s = PostedStore::new();
        s.insert(spec(Some(1), Some(7), 0), "exact");
        s.insert(spec(None, None, 0), "wild");
        assert_eq!(s.take_match(&env(1, 7, 0)), Some("exact"));
        assert_eq!(s.take_match(&env(2, 9, 0)), Some("wild"));
    }

    #[test]
    fn posted_context_isolation() {
        let mut s = PostedStore::new();
        s.insert(spec(None, None, 1), "ctx1");
        assert_eq!(s.take_match(&env(0, 0, 2)), None);
        assert_eq!(s.take_match(&env(0, 0, 1)), Some("ctx1"));
    }

    #[test]
    fn unexpected_wildcard_orders_across_buckets() {
        let mut s = UnexpectedStore::new();
        s.insert(env(2, 9, 0), "from2");
        s.insert(env(1, 7, 0), "from1");
        // ANY_SOURCE/ANY_TAG must take the earliest arrival, which
        // lives in a different exact bucket than the later one.
        let (e, p) = s.take_match(&spec(None, None, 0)).unwrap();
        assert_eq!((e.src, p), (2, "from2"));
        let (e, p) = s.take_match(&spec(None, None, 0)).unwrap();
        assert_eq!((e.src, p), (1, "from1"));
    }

    #[test]
    fn unexpected_probe_then_take_by_handle() {
        let mut s = UnexpectedStore::new();
        s.insert(env(1, 7, 0), "x");
        let (h, e) = s.find(&spec(Some(1), None, 0)).unwrap();
        assert_eq!(e.tag, 7);
        assert_eq!(s.take(h).unwrap().1, "x");
        assert_eq!(s.take(h), None, "double take is rejected");
        // The exact bucket's stale handle must not resurrect it.
        assert_eq!(s.find(&spec(Some(1), Some(7), 0)), None);
    }

    #[test]
    fn unexpected_envelopes_in_arrival_order() {
        let mut s = UnexpectedStore::new();
        s.insert(env(3, 1, 0), ());
        s.insert(env(1, 2, 0), ());
        s.insert(env(2, 3, 5), ());
        let srcs: Vec<usize> = s.envelopes().iter().map(|e| e.src).collect();
        assert_eq!(srcs, vec![3, 1, 2]);
        s.take_match(&spec(Some(1), Some(2), 0));
        let srcs: Vec<usize> = s.envelopes().iter().map(|e| e.src).collect();
        assert_eq!(srcs, vec![3, 2]);
    }
}
