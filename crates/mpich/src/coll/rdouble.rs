//! Recursive-doubling allreduce: log₂(n) pairwise-exchange rounds, each
//! moving the full payload — latency-optimal, and half the rounds of
//! the seed's reduce-to-zero + broadcast.
//!
//! Non-power-of-two sizes fold the first `2·rem` ranks pairwise (each
//! even rank hands its contribution to its odd neighbor and waits for
//! the final result), leaving a power of two for the doubling phase —
//! the classical MPICH arrangement.

use bytes::Bytes;

use super::{prev_pow2, Vgroup};
use crate::datatype::BaseType;
use crate::op::{apply, ReduceOp};
use crate::types::Tag;

pub(crate) const T_RD: Tag = 10;

/// Map a doubling-phase rank back to its virtual rank.
pub(crate) fn real_of(newrank: usize, rem: usize) -> usize {
    if newrank < rem {
        2 * newrank + 1
    } else {
        newrank + rem
    }
}

pub(crate) fn allreduce(
    g: &Vgroup,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
) -> Vec<u8> {
    let n = g.n();
    let me = g.me();
    let mut acc = contribution;
    if n == 1 {
        return acc;
    }
    let pof2 = prev_pow2(n);
    let rem = n - pof2;

    // Fold phase: evens below 2·rem drop out after handing their
    // contribution to the odd neighbor.
    let newrank = if me < 2 * rem {
        if me.is_multiple_of(2) {
            g.send(me + 1, T_RD, Bytes::from(acc));
            return g.recv(me + 1, T_RD);
        }
        let lower = g.recv(me - 1, T_RD);
        // Canonical fold order: the lower rank's data sits on the left.
        let mut combined = lower;
        apply(base, op, &mut combined, &acc);
        acc = combined;
        me / 2
    } else {
        me - rem
    };

    // Doubling phase among the pof2 survivors.
    let mut mask = 1usize;
    while mask < pof2 {
        let peer = real_of(newrank ^ mask, rem);
        let recvd = g.exchange(peer, T_RD, acc.clone());
        if peer < me {
            let mut combined = recvd;
            apply(base, op, &mut combined, &acc);
            acc = combined;
        } else {
            apply(base, op, &mut acc, &recvd);
        }
        mask <<= 1;
    }

    // Hand the result back to the folded even neighbor.
    if me < 2 * rem {
        debug_assert_eq!(me % 2, 1);
        g.send(me - 1, T_RD, Bytes::copy_from_slice(&acc));
    }
    acc
}
