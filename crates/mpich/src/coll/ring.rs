//! Ring allgather: n−1 neighbor rounds, each rank forwarding one block
//! to its right neighbor while receiving one from its left — every link
//! carries exactly the payload once per round, so the slow spanning
//! link is crossed the minimum possible number of times and no node is
//! a log-tree hotspot. Blocks may have different sizes (receives are
//! probed).

use super::Vgroup;
use crate::types::Tag;

pub(crate) const T_RING: Tag = 13;

/// Allgather `data` over the group's rank ring. Returns one entry per
/// virtual rank.
pub(crate) fn allgather(g: &Vgroup, data: Vec<u8>, tag: Tag) -> Vec<Vec<u8>> {
    let n = g.n();
    let me = g.me();
    let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
    parts[me] = data;
    if n == 1 {
        return parts;
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for round in 0..n - 1 {
        // Round r forwards the block that originated r hops to the left.
        let send_idx = (me + n - round) % n;
        let recv_idx = (me + n - round - 1) % n;
        parts[recv_idx] = g.sendrecv(right, left, tag, parts[send_idx].clone());
    }
    parts
}
