//! The user-facing collective API and the dispatch into the algorithm
//! catalog.
//!
//! Three layers of surface, thinnest first:
//!
//! * **typed generics** ([`Communicator::bcast`], [`Communicator::reduce`],
//!   …) — the primary API: one generic method per collective over any
//!   [`MpiScalar`], returning [`CollError`] instead of panicking;
//! * **`coll_*_bytes`** (crate-internal) — the byte-level engine entry
//!   points the typed layer and the communicator-management code share;
//! * **legacy `*_bytes` / `*_vec` wrappers** — the seed's original
//!   panicking signatures, kept so existing callers compile unchanged.
//!   Prefer the typed API in new code.
//!
//! Every dispatched operation opens a [`SpanKind::Coll`] span labelled
//! with the operation name and bumps a `coll.<op>.<algorithm>` counter,
//! so traces and the metrics registry show which catalog entry ran.
//! Neither affects virtual time.
//!
//! Algorithm selection must agree on every rank. All selection inputs
//! are rank-invariant (policy, topology, and — by MPI contract — the
//! reduction payload size), with one exception: only a bcast root knows
//! the payload size. Under `Adaptive` on a flat topology the root
//! therefore piggybacks an 8-byte length header on the first binomial
//! round (small payloads ride along in the same message; large ones
//! follow by scatter-gather), so non-roots learn the choice without an
//! extra synchronization.

use bytes::Bytes;

use marcel::obs::{self, SpanKind};

use super::{
    binomial, hierarchical, rabenseifner, rdouble, ring, sg_bcast, CollAlgorithm, CollError,
    CollOp, CollPolicy, CommClusters, Vgroup, SG_BCAST_MIN_BYTES,
};
use crate::comm::Communicator;
use crate::datatype::{from_bytes, to_bytes, BaseType, MpiScalar};
use crate::op::ReduceOp;
use crate::types::Tag;

// The seed's tags, preserved so `Seed` policy reproduces its message
// stream bit for bit. The new algorithms use tags 10.. (see the kernel
// modules).
const T_BCAST: Tag = 2;
const T_REDUCE: Tag = 3;
const T_GATHER: Tag = 4;
const T_SCATTER: Tag = 5;
const T_ALLTOALL: Tag = 7;
const T_SCAN: Tag = 8;
const T_RSCAT: Tag = 9;
/// Length-header round of the Adaptive flat broadcast.
const T_BCAST_HDR: Tag = 20;

/// Bytes per reduction unit (pairs for loc ops).
fn reduce_unit(base: BaseType, op: ReduceOp) -> usize {
    if op.is_loc() {
        2 * base.size()
    } else {
        base.size()
    }
}

/// Reduction units in a payload; 0 when the length doesn't divide (the
/// selection layer then avoids block-splitting algorithms and the
/// elementwise `apply` reports the mismatch exactly as the seed did).
fn reducible_elems(len: usize, base: BaseType, op: ReduceOp) -> usize {
    let unit = reduce_unit(base, op);
    if len.is_multiple_of(unit) {
        len / unit
    } else {
        0
    }
}

impl Communicator {
    /// This communicator's slice of the topology's cluster structure.
    fn comm_clusters(&self) -> CommClusters {
        let eng = &self.env().coll;
        let ids: Vec<usize> = (0..self.size())
            .map(|local| eng.cluster_of(self.group().world_rank(local)))
            .collect();
        CommClusters::from_ids(&ids)
    }

    fn coll_count(&self, op: CollOp, alg: CollAlgorithm) {
        obs::counter_add(&format!("coll.{}.{}", op.name(), alg.name()), 1);
    }

    // ------------------------------------------------------------------
    // Byte-level engine entry points (dispatch).
    // ------------------------------------------------------------------

    pub(crate) fn coll_bcast_bytes(
        &self,
        root: usize,
        data: Option<Vec<u8>>,
    ) -> Result<Vec<u8>, CollError> {
        let n = self.size();
        let me = self.rank();
        if root >= n {
            return Err(CollError::RootOutOfRange {
                op: "bcast",
                root,
                size: n,
            });
        }
        let data = if me == root {
            match data {
                Some(d) => Some(d),
                None => {
                    return Err(CollError::MissingRootData {
                        op: "bcast",
                        what: "data",
                    })
                }
            }
        } else {
            None
        };
        let clusters = self.comm_clusters();
        let policy = self.env().coll.policy();
        let span = obs::span_begin(SpanKind::Coll, CollOp::Bcast.name());
        let members: Vec<usize> = (0..n).collect();
        let result = if policy == CollPolicy::Adaptive && !clusters.hierarchy_pays() && n > 2 {
            // The only size-dependent choice a non-root can't mirror —
            // resolved by the root through the length header.
            self.adaptive_flat_bcast(root, data, &members)
        } else {
            let payload = data.as_ref().map_or(0, Vec::len);
            let alg = self.env().coll.select(CollOp::Bcast, payload, 0, &clusters);
            self.coll_count(CollOp::Bcast, alg);
            match alg {
                CollAlgorithm::Hierarchical => hierarchical::bcast(self, &clusters, root, data),
                CollAlgorithm::ScatterGather => {
                    sg_bcast::bcast(&Vgroup::new(self, &members), root, data)
                }
                _ => binomial::bcast(&Vgroup::new(self, &members), root, data, T_BCAST),
            }
        };
        obs::span_end(span);
        Ok(result)
    }

    /// The Adaptive flat broadcast: one binomial round carries
    /// `len ‖ payload` when the payload is small (the seed's pattern
    /// plus 8 bytes), or the bare 8-byte header when it is large —
    /// receivers then join the scatter-gather phase knowing the choice.
    fn adaptive_flat_bcast(
        &self,
        root: usize,
        data: Option<Vec<u8>>,
        members: &[usize],
    ) -> Vec<u8> {
        let g = Vgroup::new(self, members);
        if self.rank() == root {
            let data = data.expect("validated by coll_bcast_bytes");
            let big = data.len() >= SG_BCAST_MIN_BYTES;
            self.coll_count(
                CollOp::Bcast,
                if big {
                    CollAlgorithm::ScatterGather
                } else {
                    CollAlgorithm::Binomial
                },
            );
            let mut framed = (data.len() as u64).to_le_bytes().to_vec();
            if big {
                binomial::bcast(&g, root, Some(framed), T_BCAST_HDR);
                sg_bcast::bcast(&g, root, Some(data))
            } else {
                framed.extend_from_slice(&data);
                binomial::bcast(&g, root, Some(framed), T_BCAST_HDR);
                data
            }
        } else {
            let framed = binomial::bcast(&g, root, None, T_BCAST_HDR);
            let len = u64::from_le_bytes(framed[..8].try_into().unwrap()) as usize;
            let big = len >= SG_BCAST_MIN_BYTES;
            self.coll_count(
                CollOp::Bcast,
                if big {
                    CollAlgorithm::ScatterGather
                } else {
                    CollAlgorithm::Binomial
                },
            );
            if big {
                sg_bcast::bcast(&g, root, None)
            } else {
                framed[8..].to_vec()
            }
        }
    }

    pub(crate) fn coll_reduce_bytes(
        &self,
        root: usize,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Result<Option<Vec<u8>>, CollError> {
        let n = self.size();
        if root >= n {
            return Err(CollError::RootOutOfRange {
                op: "reduce",
                root,
                size: n,
            });
        }
        let clusters = self.comm_clusters();
        let elems = reducible_elems(contribution.len(), base, op);
        let alg = self
            .env()
            .coll
            .select(CollOp::Reduce, contribution.len(), elems, &clusters);
        let span = obs::span_begin(SpanKind::Coll, CollOp::Reduce.name());
        self.coll_count(CollOp::Reduce, alg);
        let result = match alg {
            CollAlgorithm::Hierarchical => {
                hierarchical::reduce(self, &clusters, root, contribution, base, op)
            }
            _ => {
                let members: Vec<usize> = (0..n).collect();
                binomial::reduce(
                    &Vgroup::new(self, &members),
                    root,
                    contribution,
                    base,
                    op,
                    T_REDUCE,
                )
            }
        };
        obs::span_end(span);
        Ok(result)
    }

    pub(crate) fn coll_allreduce_bytes(
        &self,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Vec<u8> {
        let clusters = self.comm_clusters();
        let elems = reducible_elems(contribution.len(), base, op);
        let alg = self
            .env()
            .coll
            .select(CollOp::Allreduce, contribution.len(), elems, &clusters);
        let span = obs::span_begin(SpanKind::Coll, CollOp::Allreduce.name());
        self.coll_count(CollOp::Allreduce, alg);
        let members: Vec<usize> = (0..self.size()).collect();
        let result = match alg {
            CollAlgorithm::Hierarchical => {
                hierarchical::allreduce(self, &clusters, contribution, base, op)
            }
            CollAlgorithm::RecursiveDoubling => {
                rdouble::allreduce(&Vgroup::new(self, &members), contribution, base, op)
            }
            CollAlgorithm::Rabenseifner => {
                rabenseifner::allreduce(&Vgroup::new(self, &members), contribution, base, op)
            }
            _ => {
                // The seed's reduce-to-zero + broadcast.
                let g = Vgroup::new(self, &members);
                let reduced = binomial::reduce(&g, 0, contribution, base, op, T_REDUCE);
                binomial::bcast(&g, 0, reduced, T_BCAST)
            }
        };
        obs::span_end(span);
        result
    }

    pub(crate) fn coll_gather_bytes(
        &self,
        root: usize,
        data: Vec<u8>,
    ) -> Result<Option<Vec<Vec<u8>>>, CollError> {
        let n = self.size();
        if root >= n {
            return Err(CollError::RootOutOfRange {
                op: "gather",
                root,
                size: n,
            });
        }
        let span = obs::span_begin(SpanKind::Coll, CollOp::Gather.name());
        self.coll_count(CollOp::Gather, CollAlgorithm::Binomial);
        let members: Vec<usize> = (0..n).collect();
        let result = binomial::gather(&Vgroup::new(self, &members), root, data, T_GATHER);
        obs::span_end(span);
        Ok(result)
    }

    pub(crate) fn coll_scatter_bytes(
        &self,
        root: usize,
        parts: Option<Vec<Vec<u8>>>,
    ) -> Result<Vec<u8>, CollError> {
        let n = self.size();
        let me = self.rank();
        if root >= n {
            return Err(CollError::RootOutOfRange {
                op: "scatter",
                root,
                size: n,
            });
        }
        let parts = if me == root {
            match parts {
                Some(p) if p.len() == n => Some(p),
                Some(p) => {
                    return Err(CollError::WrongPartCount {
                        op: "scatter",
                        got: p.len(),
                        want: n,
                    })
                }
                None => {
                    return Err(CollError::MissingRootData {
                        op: "scatter",
                        what: "parts",
                    })
                }
            }
        } else {
            None
        };
        let span = obs::span_begin(SpanKind::Coll, CollOp::Scatter.name());
        self.coll_count(CollOp::Scatter, CollAlgorithm::Binomial);
        let members: Vec<usize> = (0..n).collect();
        let result = binomial::scatter(&Vgroup::new(self, &members), root, parts, T_SCATTER);
        obs::span_end(span);
        Ok(result)
    }

    pub(crate) fn coll_allgather_bytes(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let clusters = self.comm_clusters();
        // Topology-only selection: contributions may differ in size
        // across ranks (allgatherv semantics), so the choice must not
        // depend on the local payload.
        let alg = self.env().coll.select(CollOp::Allgather, 0, 0, &clusters);
        let span = obs::span_begin(SpanKind::Coll, CollOp::Allgather.name());
        self.coll_count(CollOp::Allgather, alg);
        let members: Vec<usize> = (0..self.size()).collect();
        let result = match alg {
            CollAlgorithm::Hierarchical => hierarchical::allgather(self, &clusters, data),
            CollAlgorithm::Ring => {
                ring::allgather(&Vgroup::new(self, &members), data, ring::T_RING)
            }
            _ => binomial::allgather(&Vgroup::new(self, &members), data, T_GATHER, T_BCAST),
        };
        obs::span_end(span);
        result
    }

    pub(crate) fn coll_alltoall_bytes(
        &self,
        parts: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<u8>>, CollError> {
        let n = self.size();
        if parts.len() != n {
            return Err(CollError::WrongPartCount {
                op: "alltoall",
                got: parts.len(),
                want: n,
            });
        }
        let span = obs::span_begin(SpanKind::Coll, CollOp::Alltoall.name());
        self.coll_count(CollOp::Alltoall, CollAlgorithm::Binomial);
        let members: Vec<usize> = (0..n).collect();
        let result = binomial::alltoall(&Vgroup::new(self, &members), parts, T_ALLTOALL);
        obs::span_end(span);
        Ok(result)
    }

    pub(crate) fn coll_scan_bytes(
        &self,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Vec<u8> {
        let span = obs::span_begin(SpanKind::Coll, CollOp::Scan.name());
        self.coll_count(CollOp::Scan, CollAlgorithm::Binomial);
        let members: Vec<usize> = (0..self.size()).collect();
        let result = binomial::scan(&Vgroup::new(self, &members), contribution, base, op, T_SCAN);
        obs::span_end(span);
        result
    }

    pub(crate) fn coll_exscan_bytes(
        &self,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        let span = obs::span_begin(SpanKind::Coll, CollOp::Exscan.name());
        self.coll_count(CollOp::Exscan, CollAlgorithm::Binomial);
        let members: Vec<usize> = (0..self.size()).collect();
        let result = binomial::exscan(&Vgroup::new(self, &members), contribution, base, op, T_SCAN);
        obs::span_end(span);
        result
    }

    pub(crate) fn coll_reduce_scatter_bytes(
        &self,
        contribution: Vec<u8>,
        block_elems: usize,
        base: BaseType,
        op: ReduceOp,
    ) -> Result<Vec<u8>, CollError> {
        let n = self.size();
        let unit = reduce_unit(base, op);
        let want = n * block_elems * unit;
        if contribution.len() != want {
            return Err(CollError::LengthMismatch {
                op: "reduce_scatter",
                len: contribution.len(),
                want,
            });
        }
        let span = obs::span_begin(SpanKind::Coll, CollOp::ReduceScatter.name());
        // Reduce through the engine (two-level on the meta-cluster),
        // then the seed's block scatter from rank 0.
        let reduced = self
            .coll_reduce_bytes(0, contribution, base, op)
            .expect("rank 0 is always a valid root");
        let block_bytes = block_elems * unit;
        let ctx = self.coll_context();
        let result = if let Some(reduced) = reduced {
            let mut mine = Vec::new();
            for (dst, chunk) in reduced.chunks(block_bytes.max(1)).take(n).enumerate() {
                if dst == 0 {
                    mine = chunk.to_vec();
                } else {
                    self.send_ctx(Bytes::copy_from_slice(chunk), dst, T_RSCAT, ctx);
                }
            }
            mine
        } else {
            let (bytes, _) = self.recv_probed_ctx(Some(0), Some(T_RSCAT), ctx);
            bytes
        };
        obs::span_end(span);
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Typed generic API — the primary surface.
    // ------------------------------------------------------------------

    /// `MPI_Barrier`: an empty reduce to rank 0 followed by a token
    /// broadcast, both dispatched through the engine (so the meta-
    /// cluster pays the slow link only at the leader level).
    pub fn barrier(&self) {
        let span = obs::span_begin(SpanKind::Coll, CollOp::Barrier.name());
        let token = self
            .coll_reduce_bytes(0, Vec::new(), BaseType::Byte, ReduceOp::Sum)
            .expect("rank 0 is always a valid root");
        let _ = self
            .coll_bcast_bytes(0, if self.rank() == 0 { token } else { None })
            .expect("rank 0 provides the token");
        obs::span_end(span);
    }

    /// `MPI_Bcast`. The root passes `Some(data)`; everyone receives the
    /// broadcast value.
    pub fn bcast<T: MpiScalar>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Result<Vec<T>, CollError> {
        self.coll_bcast_bytes(root, data.map(|d| to_bytes(&d)))
            .map(|b| from_bytes(&b))
    }

    /// `MPI_Reduce`: the root gets `Some(result)`, everyone else `None`.
    pub fn reduce<T: MpiScalar>(
        &self,
        root: usize,
        contribution: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>, CollError> {
        self.coll_reduce_bytes(root, to_bytes(contribution), T::BASE, op)
            .map(|r| r.map(|b| from_bytes(&b)))
    }

    /// `MPI_Allreduce`.
    pub fn allreduce<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        from_bytes(&self.coll_allreduce_bytes(to_bytes(contribution), T::BASE, op))
    }

    /// `MPI_Gather(v)`: the root gets every rank's contribution in rank
    /// order, everyone else `None`. Contributions may differ in length.
    pub fn gather<T: MpiScalar>(
        &self,
        root: usize,
        data: &[T],
    ) -> Result<Option<Vec<Vec<T>>>, CollError> {
        self.coll_gather_bytes(root, to_bytes(data))
            .map(|r| r.map(|parts| parts.iter().map(|p| from_bytes(p)).collect()))
    }

    /// `MPI_Scatter(v)`: the root provides one buffer per rank.
    pub fn scatter<T: MpiScalar>(
        &self,
        root: usize,
        parts: Option<Vec<Vec<T>>>,
    ) -> Result<Vec<T>, CollError> {
        self.coll_scatter_bytes(
            root,
            parts.map(|ps| ps.iter().map(|p| to_bytes(p)).collect()),
        )
        .map(|b| from_bytes(&b))
    }

    /// `MPI_Allgather(v)`: every rank gets every contribution, in rank
    /// order. Contributions may differ in length.
    pub fn allgather<T: MpiScalar>(&self, data: &[T]) -> Vec<Vec<T>> {
        self.coll_allgather_bytes(to_bytes(data))
            .iter()
            .map(|p| from_bytes(p))
            .collect()
    }

    /// `MPI_Alltoall(v)`: `parts[d]` goes to rank `d`; the result's
    /// entry `s` came from rank `s`.
    pub fn alltoall<T: MpiScalar>(&self, parts: Vec<Vec<T>>) -> Result<Vec<Vec<T>>, CollError> {
        self.coll_alltoall_bytes(parts.iter().map(|p| to_bytes(p)).collect())
            .map(|r| r.iter().map(|p| from_bytes(p)).collect())
    }

    /// `MPI_Scan`: inclusive prefix reduction.
    pub fn scan<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        from_bytes(&self.coll_scan_bytes(to_bytes(contribution), T::BASE, op))
    }

    /// `MPI_Exscan`: exclusive prefix reduction — rank 0 gets `None`,
    /// rank r > 0 the reduction of ranks `0..r`.
    pub fn exscan<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Option<Vec<T>> {
        self.coll_exscan_bytes(to_bytes(contribution), T::BASE, op)
            .map(|b| from_bytes(&b))
    }

    /// `MPI_Reduce_scatter_block`: reduce elementwise across ranks, then
    /// scatter equal blocks — rank r gets the r-th block. `contribution`
    /// must hold `size() * block_elems` elements.
    pub fn reduce_scatter<T: MpiScalar>(
        &self,
        contribution: &[T],
        block_elems: usize,
        op: ReduceOp,
    ) -> Result<Vec<T>, CollError> {
        self.coll_reduce_scatter_bytes(to_bytes(contribution), block_elems, T::BASE, op)
            .map(|b| from_bytes(&b))
    }

    // ------------------------------------------------------------------
    // Legacy byte/vec wrappers — the seed's panicking signatures, kept
    // so existing callers compile unchanged. Prefer the typed API.
    // ------------------------------------------------------------------

    /// Pre-engine `MPI_Bcast` surface; panics where [`Communicator::bcast`]
    /// returns an error.
    pub fn bcast_bytes(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        self.coll_bcast_bytes(root, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine typed broadcast; see [`Communicator::bcast`].
    pub fn bcast_vec<T: MpiScalar>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        self.bcast(root, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine `MPI_Reduce` surface; see [`Communicator::reduce`].
    pub fn reduce_bytes(
        &self,
        root: usize,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        self.coll_reduce_bytes(root, contribution, base, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine typed reduce; see [`Communicator::reduce`].
    pub fn reduce_vec<T: MpiScalar>(
        &self,
        root: usize,
        contribution: &[T],
        op: ReduceOp,
    ) -> Option<Vec<T>> {
        self.reduce(root, contribution, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine `MPI_Allreduce` surface; see [`Communicator::allreduce`].
    pub fn allreduce_bytes(&self, contribution: Vec<u8>, base: BaseType, op: ReduceOp) -> Vec<u8> {
        self.coll_allreduce_bytes(contribution, base, op)
    }

    /// Pre-engine typed allreduce; see [`Communicator::allreduce`].
    pub fn allreduce_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        self.allreduce(contribution, op)
    }

    /// Pre-engine `MPI_Gather(v)` surface; see [`Communicator::gather`].
    pub fn gather_bytes(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        self.coll_gather_bytes(root, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine typed gather; see [`Communicator::gather`].
    pub fn gather_vec<T: MpiScalar>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        self.gather(root, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine `MPI_Scatter(v)` surface; see [`Communicator::scatter`].
    pub fn scatter_bytes(&self, root: usize, parts: Option<Vec<Vec<u8>>>) -> Vec<u8> {
        self.coll_scatter_bytes(root, parts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine `MPI_Allgather(v)` surface; see [`Communicator::allgather`].
    pub fn allgather_bytes(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.coll_allgather_bytes(data)
    }

    /// Pre-engine typed allgather; see [`Communicator::allgather`].
    pub fn allgather_vec<T: MpiScalar>(&self, data: &[T]) -> Vec<Vec<T>> {
        self.allgather(data)
    }

    /// Pre-engine `MPI_Alltoall(v)` surface; see [`Communicator::alltoall`].
    pub fn alltoall_bytes(&self, parts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        self.coll_alltoall_bytes(parts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pre-engine `MPI_Scan` surface; see [`Communicator::scan`].
    pub fn scan_bytes(&self, contribution: Vec<u8>, base: BaseType, op: ReduceOp) -> Vec<u8> {
        self.coll_scan_bytes(contribution, base, op)
    }

    /// Pre-engine typed scan; see [`Communicator::scan`].
    pub fn scan_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        self.scan(contribution, op)
    }

    /// Pre-engine `MPI_Exscan` surface; see [`Communicator::exscan`].
    pub fn exscan_bytes(
        &self,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        self.coll_exscan_bytes(contribution, base, op)
    }

    /// Pre-engine typed exclusive scan; see [`Communicator::exscan`].
    pub fn exscan_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Option<Vec<T>> {
        self.exscan(contribution, op)
    }

    /// Pre-engine `MPI_Reduce_scatter_block` surface; see
    /// [`Communicator::reduce_scatter`].
    pub fn reduce_scatter_vec<T: MpiScalar>(
        &self,
        contribution: &[T],
        block_elems: usize,
        op: ReduceOp,
    ) -> Vec<T> {
        self.reduce_scatter(contribution, block_elems, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}
