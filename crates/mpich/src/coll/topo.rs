//! The communicator-local cluster view: which of the communicator's
//! ranks sit on which fast island of the meta-cluster. Derived per
//! collective call from the engine's world-rank cluster map
//! ([`simnet::Topology::clusters`] computed at world bootstrap), so
//! split/dup'ed communicators see exactly their own slice of the
//! topology.

/// Ranks of one communicator grouped by topology cluster. Cluster
/// indices are dense and ordered by first appearance in rank order;
/// member lists are ascending communicator-local ranks.
#[derive(Clone, Debug)]
pub struct CommClusters {
    /// communicator-local rank -> dense cluster index.
    of_rank: Vec<usize>,
    /// dense cluster index -> ascending member ranks.
    members: Vec<Vec<usize>>,
}

impl CommClusters {
    /// Compact arbitrary per-rank cluster ids (e.g. world cluster
    /// indices looked up through a sub-communicator's group) into the
    /// dense communicator-local form.
    pub fn from_ids(ids: &[usize]) -> CommClusters {
        let mut dense: Vec<usize> = Vec::new(); // dense idx -> original id
        let mut of_rank = Vec::with_capacity(ids.len());
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (rank, id) in ids.iter().enumerate() {
            let c = match dense.iter().position(|d| d == id) {
                Some(c) => c,
                None => {
                    dense.push(*id);
                    members.push(Vec::new());
                    dense.len() - 1
                }
            };
            of_rank.push(c);
            members[c].push(rank);
        }
        CommClusters { of_rank, members }
    }

    pub fn n_ranks(&self) -> usize {
        self.of_rank.len()
    }

    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }

    /// Dense cluster index of a communicator-local rank.
    pub fn cluster_of(&self, rank: usize) -> usize {
        self.of_rank[rank]
    }

    /// Ascending member ranks of one cluster.
    pub fn members(&self, cluster: usize) -> &[usize] {
        &self.members[cluster]
    }

    /// Whether a two-level algorithm can beat a flat one here: at least
    /// two clusters (so there *is* a slow link to economize) and fewer
    /// clusters than ranks (so at least one intra-cluster phase has
    /// company — all-singletons is just a flat topology with extra
    /// steps).
    pub fn hierarchy_pays(&self) -> bool {
        self.n_clusters() >= 2 && self.n_clusters() < self.n_ranks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_sparse_ids_in_first_appearance_order() {
        // World clusters 7 and 3, interleaved.
        let cc = CommClusters::from_ids(&[7, 3, 7, 3]);
        assert_eq!(cc.n_clusters(), 2);
        assert_eq!(cc.cluster_of(0), 0);
        assert_eq!(cc.cluster_of(1), 1);
        assert_eq!(cc.members(0), &[0, 2]);
        assert_eq!(cc.members(1), &[1, 3]);
        assert!(cc.hierarchy_pays());
    }

    #[test]
    fn singletons_do_not_pay() {
        let cc = CommClusters::from_ids(&[0, 1, 2, 3]);
        assert_eq!(cc.n_clusters(), 4);
        assert!(!cc.hierarchy_pays());
    }

    #[test]
    fn one_cluster_does_not_pay() {
        let cc = CommClusters::from_ids(&[5, 5, 5]);
        assert_eq!(cc.n_clusters(), 1);
        assert!(!cc.hierarchy_pays());
    }

    #[test]
    fn meta_cluster_shape() {
        let cc = CommClusters::from_ids(&[0, 0, 0, 1, 1, 1]);
        assert!(cc.hierarchy_pays());
        assert_eq!(cc.members(0), &[0, 1, 2]);
        assert_eq!(cc.members(1), &[3, 4, 5]);
    }
}
