//! The collective algorithm engine (paper Fig. 1/3: "Generic part —
//! collective operations", grown into a topology-aware, size-adaptive
//! selection layer).
//!
//! The seed implemented every collective as one fixed binomial-tree
//! pattern over point-to-point sends — topology-blind, so on the
//! heterogeneous meta-cluster every tree round may cross the slow TCP
//! inter-cluster link. This module keeps that implementation, byte for
//! byte, as the [`CollAlgorithm::Binomial`] catalog entry (and as the
//! [`CollPolicy::Seed`] default, so all historical outputs stay
//! bit-identical), and adds:
//!
//! * **two-level hierarchical collectives** ([`hierarchical`]): one
//!   leader per fast cluster (SCI / BIP island); inter-cluster traffic
//!   crosses the slow spanning link exactly once per direction while
//!   intra-cluster rounds stay on the fast rails;
//! * **recursive-doubling allreduce** ([`rdouble`]): log₂(n) rounds of
//!   pairwise exchange, half the rounds of the seed's reduce+bcast;
//! * **Rabenseifner allreduce** ([`rabenseifner`]): reduce-scatter by
//!   recursive halving followed by an allgather, bandwidth-optimal for
//!   large payloads;
//! * **ring allgather** ([`ring`]): n−1 neighbor rounds moving one
//!   block each, bandwidth-optimal and contention-free;
//! * **scatter-gather broadcast** ([`sg_bcast`]): the root scatters n
//!   chunks which a ring allgather reassembles — ~2·len bytes per node
//!   instead of the binomial tree's log₂(n)·len.
//!
//! Selection mirrors PR 1's `ProtocolPolicy` design: the policy is a
//! [`crate::WorldConfig`] knob ([`CollPolicy`]), resolved per
//! (operation, payload size, communicator topology) by [`CollEngine`].
//! Every operation emits a [`marcel::SpanKind::Coll`] span and a
//! `coll.<op>.<algorithm>` metrics counter, so traces and the registry
//! show which algorithm ran.

mod api;
mod binomial;
mod hierarchical;
mod rabenseifner;
mod rdouble;
mod ring;
mod sg_bcast;
mod topo;
mod vgroup;

pub use topo::CommClusters;
pub(crate) use vgroup::Vgroup;

use std::fmt;

/// Which collective is being performed (selects the algorithm table
/// row, the span label and the metrics counter family).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollOp {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Scan,
    Exscan,
    ReduceScatter,
}

impl CollOp {
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Barrier => "barrier",
            CollOp::Bcast => "bcast",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
            CollOp::Gather => "gather",
            CollOp::Scatter => "scatter",
            CollOp::Allgather => "allgather",
            CollOp::Alltoall => "alltoall",
            CollOp::Scan => "scan",
            CollOp::Exscan => "exscan",
            CollOp::ReduceScatter => "reduce_scatter",
        }
    }
}

/// One entry of the algorithm catalog. Not every algorithm applies to
/// every operation — see [`CollEngine::select`] for the fallback rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollAlgorithm {
    /// The seed's binomial-tree implementations (every operation).
    Binomial,
    /// Two-level: intra-cluster on the fast rails, one leader per
    /// cluster across the slow link (bcast, reduce, allreduce,
    /// allgather; needs ≥ 2 clusters inside the communicator).
    Hierarchical,
    /// Recursive doubling (allreduce).
    RecursiveDoubling,
    /// Reduce-scatter + allgather (allreduce, large payloads).
    Rabenseifner,
    /// Ring allgather (allgather, large payloads).
    Ring,
    /// Scatter + ring-allgather broadcast (bcast, large payloads).
    ScatterGather,
}

impl CollAlgorithm {
    pub fn name(self) -> &'static str {
        match self {
            CollAlgorithm::Binomial => "binomial",
            CollAlgorithm::Hierarchical => "hierarchical",
            CollAlgorithm::RecursiveDoubling => "recursive_doubling",
            CollAlgorithm::Rabenseifner => "rabenseifner",
            CollAlgorithm::Ring => "ring",
            CollAlgorithm::ScatterGather => "scatter_gather",
        }
    }
}

/// How the engine picks algorithms — the collective analogue of the
/// point-to-point `ProtocolPolicy` ([`crate::ProtocolPolicy`]), exposed
/// as [`crate::WorldConfig::coll`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CollPolicy {
    /// The seed's binomial algorithms for everything. The default: all
    /// historical bench outputs stay bit-identical.
    #[default]
    Seed,
    /// Per-operation, per-payload-size, per-topology selection (the
    /// headline mode; see [`CollEngine::select`] for the table).
    Adaptive,
    /// Force one catalog entry everywhere it applies; operations it
    /// does not apply to fall back as [`CollEngine::select`] documents.
    Fixed(CollAlgorithm),
}

/// A typed error from the collective layer (replaces the seed's
/// panicking `Option<Vec<u8>>` root-data convention, in the spirit of
/// the madeleine layer's `ChannelError`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CollError {
    /// The root rank argument is outside the communicator.
    RootOutOfRange {
        op: &'static str,
        root: usize,
        size: usize,
    },
    /// The root rank did not provide the operation's input data
    /// (`what` names it: "data" or "parts").
    MissingRootData {
        op: &'static str,
        what: &'static str,
    },
    /// A per-rank part list had the wrong number of entries.
    WrongPartCount {
        op: &'static str,
        got: usize,
        want: usize,
    },
    /// A buffer's byte length does not match what the operation's
    /// shape requires.
    LengthMismatch {
        op: &'static str,
        len: usize,
        want: usize,
    },
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::RootOutOfRange { op, root, size } => {
                write!(
                    f,
                    "{op} root {root} out of range (communicator size {size})"
                )
            }
            CollError::MissingRootData { op, what } => {
                write!(f, "{op} root must provide the {what}")
            }
            CollError::WrongPartCount { op, got, want } => {
                write!(f, "{op} needs one part per rank (got {got}, want {want})")
            }
            CollError::LengthMismatch { op, len, want } => {
                write!(f, "{op} buffer holds {len} bytes, needs exactly {want}")
            }
        }
    }
}

impl std::error::Error for CollError {}

/// Payload size (own contribution, in bytes) at which Adaptive
/// allreduce switches from recursive doubling to Rabenseifner.
pub const RABENSEIFNER_MIN_BYTES: usize = 32 * 1024;
/// Payload size at which Adaptive broadcast switches from the binomial
/// tree to scatter-gather on flat topologies.
pub const SG_BCAST_MIN_BYTES: usize = 128 * 1024;

/// The per-world collective engine: the configured policy plus the
/// world-rank → cluster map derived from the simnet topology
/// ([`simnet::Topology::clusters`]).
#[derive(Debug)]
pub struct CollEngine {
    policy: CollPolicy,
    /// world rank -> cluster index (dense).
    rank_cluster: Vec<usize>,
}

impl CollEngine {
    pub fn new(policy: CollPolicy, rank_cluster: Vec<usize>) -> CollEngine {
        CollEngine {
            policy,
            rank_cluster,
        }
    }

    /// An engine for a flat (cluster-blind) world — unit tests and
    /// manually assembled environments.
    pub fn flat(policy: CollPolicy, n_ranks: usize) -> CollEngine {
        CollEngine {
            policy,
            rank_cluster: (0..n_ranks).collect(),
        }
    }

    pub fn policy(&self) -> CollPolicy {
        self.policy
    }

    /// The cluster index of a world rank.
    pub fn cluster_of(&self, world_rank: usize) -> usize {
        self.rank_cluster[world_rank]
    }

    /// Resolve the algorithm for one operation. `payload` is the
    /// caller's own contribution in bytes (for a bcast only the root
    /// knows it — the bcast entry point handles that asymmetry, see
    /// [`api`]); `reducible_elems` is the number of reduction units the
    /// payload holds (0 for non-reductions). `clusters` is the
    /// communicator-local cluster view.
    ///
    /// Selection rules (Adaptive):
    ///
    /// | op         | multi-cluster            | flat                                   |
    /// |------------|--------------------------|----------------------------------------|
    /// | bcast      | hierarchical             | scatter-gather ≥ 128 KB, else binomial |
    /// | reduce     | hierarchical             | binomial                               |
    /// | allreduce  | hierarchical             | Rabenseifner ≥ 32 KB, else rec-doubling|
    /// | allgather  | hierarchical             | ring                                   |
    /// | others     | binomial                 | binomial                               |
    ///
    /// `Fixed(alg)` forces `alg` wherever it applies to the operation
    /// and is feasible (hierarchical needs ≥ 2 clusters inside the
    /// communicator; Rabenseifner needs at least one reduction unit per
    /// participant), falling back to the closest applicable entry
    /// otherwise (Rabenseifner → recursive doubling → binomial).
    pub fn select(
        &self,
        op: CollOp,
        payload: usize,
        reducible_elems: usize,
        clusters: &CommClusters,
    ) -> CollAlgorithm {
        let n = clusters.n_ranks();
        let hier_ok = clusters.hierarchy_pays() && applies_hier(op);
        match self.policy {
            CollPolicy::Seed => CollAlgorithm::Binomial,
            CollPolicy::Fixed(alg) => self.check_fixed(alg, op, reducible_elems, n, hier_ok),
            CollPolicy::Adaptive => match op {
                CollOp::Bcast => {
                    if hier_ok {
                        CollAlgorithm::Hierarchical
                    } else if payload >= SG_BCAST_MIN_BYTES && n > 2 {
                        CollAlgorithm::ScatterGather
                    } else {
                        CollAlgorithm::Binomial
                    }
                }
                CollOp::Reduce => {
                    if hier_ok {
                        CollAlgorithm::Hierarchical
                    } else {
                        CollAlgorithm::Binomial
                    }
                }
                CollOp::Allreduce => {
                    if hier_ok {
                        CollAlgorithm::Hierarchical
                    } else if payload >= RABENSEIFNER_MIN_BYTES
                        && rabenseifner_ok(reducible_elems, n)
                    {
                        CollAlgorithm::Rabenseifner
                    } else {
                        CollAlgorithm::RecursiveDoubling
                    }
                }
                CollOp::Allgather => {
                    if hier_ok {
                        CollAlgorithm::Hierarchical
                    } else {
                        CollAlgorithm::Ring
                    }
                }
                _ => CollAlgorithm::Binomial,
            },
        }
    }

    /// Feasibility check for `Fixed` mode, with documented fallbacks.
    fn check_fixed(
        &self,
        alg: CollAlgorithm,
        op: CollOp,
        reducible_elems: usize,
        n: usize,
        hier_ok: bool,
    ) -> CollAlgorithm {
        match alg {
            CollAlgorithm::Binomial => CollAlgorithm::Binomial,
            CollAlgorithm::Hierarchical => {
                if hier_ok {
                    CollAlgorithm::Hierarchical
                } else {
                    CollAlgorithm::Binomial
                }
            }
            CollAlgorithm::RecursiveDoubling => {
                if op == CollOp::Allreduce {
                    CollAlgorithm::RecursiveDoubling
                } else {
                    CollAlgorithm::Binomial
                }
            }
            CollAlgorithm::Rabenseifner => {
                if op != CollOp::Allreduce {
                    CollAlgorithm::Binomial
                } else if rabenseifner_ok(reducible_elems, n) {
                    CollAlgorithm::Rabenseifner
                } else {
                    CollAlgorithm::RecursiveDoubling
                }
            }
            CollAlgorithm::Ring => {
                if op == CollOp::Allgather {
                    CollAlgorithm::Ring
                } else {
                    CollAlgorithm::Binomial
                }
            }
            CollAlgorithm::ScatterGather => {
                if op == CollOp::Bcast && n > 1 {
                    CollAlgorithm::ScatterGather
                } else {
                    CollAlgorithm::Binomial
                }
            }
        }
    }
}

/// Operations with a two-level hierarchical variant.
fn applies_hier(op: CollOp) -> bool {
    matches!(
        op,
        CollOp::Bcast | CollOp::Reduce | CollOp::Allreduce | CollOp::Allgather
    )
}

/// Rabenseifner needs at least one reduction unit per power-of-two
/// participant, so every reduce-scatter block is non-empty.
fn rabenseifner_ok(reducible_elems: usize, n: usize) -> bool {
    let pof2 = if n == 0 { 1 } else { prev_pow2(n) };
    reducible_elems >= pof2 && n > 1
}

/// Largest power of two ≤ n (n ≥ 1).
pub(crate) fn prev_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_clusters() -> CommClusters {
        // 6 ranks, clusters {0,1,2} and {3,4,5}.
        CommClusters::from_ids(&[0, 0, 0, 1, 1, 1])
    }

    fn flat_clusters(n: usize) -> CommClusters {
        CommClusters::from_ids(&(0..n).collect::<Vec<_>>())
    }

    #[test]
    fn seed_policy_always_binomial() {
        let e = CollEngine::flat(CollPolicy::Seed, 6);
        for op in [CollOp::Bcast, CollOp::Allreduce, CollOp::Allgather] {
            assert_eq!(
                e.select(op, 1 << 20, 1 << 17, &meta_clusters()),
                CollAlgorithm::Binomial
            );
        }
    }

    #[test]
    fn adaptive_goes_hierarchical_on_the_meta_cluster() {
        let e = CollEngine::flat(CollPolicy::Adaptive, 6);
        for op in [
            CollOp::Bcast,
            CollOp::Reduce,
            CollOp::Allreduce,
            CollOp::Allgather,
        ] {
            assert_eq!(
                e.select(op, 64, 8, &meta_clusters()),
                CollAlgorithm::Hierarchical,
                "{op:?}"
            );
        }
        // Ops without a hierarchical variant stay binomial.
        assert_eq!(
            e.select(CollOp::Alltoall, 1 << 20, 0, &meta_clusters()),
            CollAlgorithm::Binomial
        );
    }

    #[test]
    fn adaptive_is_size_adaptive_on_flat_topologies() {
        let e = CollEngine::flat(CollPolicy::Adaptive, 6);
        let flat = flat_clusters(6);
        // Allreduce: recursive doubling small, Rabenseifner large.
        assert_eq!(
            e.select(CollOp::Allreduce, 1024, 128, &flat),
            CollAlgorithm::RecursiveDoubling
        );
        assert_eq!(
            e.select(CollOp::Allreduce, 256 * 1024, 32 * 1024, &flat),
            CollAlgorithm::Rabenseifner
        );
        // ...but never Rabenseifner with fewer elements than ranks.
        assert_eq!(
            e.select(CollOp::Allreduce, RABENSEIFNER_MIN_BYTES, 2, &flat),
            CollAlgorithm::RecursiveDoubling
        );
        // Bcast: binomial small, scatter-gather large.
        assert_eq!(
            e.select(CollOp::Bcast, 1024, 0, &flat),
            CollAlgorithm::Binomial
        );
        assert_eq!(
            e.select(CollOp::Bcast, 1 << 20, 0, &flat),
            CollAlgorithm::ScatterGather
        );
        // Allgather: ring at every size.
        assert_eq!(
            e.select(CollOp::Allgather, 1, 0, &flat),
            CollAlgorithm::Ring
        );
    }

    #[test]
    fn fixed_falls_back_where_infeasible() {
        let e = CollEngine::flat(CollPolicy::Fixed(CollAlgorithm::Hierarchical), 6);
        // Hierarchical on a flat communicator degrades to binomial.
        assert_eq!(
            e.select(CollOp::Allreduce, 64, 8, &flat_clusters(6)),
            CollAlgorithm::Binomial
        );
        assert_eq!(
            e.select(CollOp::Allreduce, 64, 8, &meta_clusters()),
            CollAlgorithm::Hierarchical
        );
        // Rabenseifner with too few elements degrades to rec-doubling.
        let e = CollEngine::flat(CollPolicy::Fixed(CollAlgorithm::Rabenseifner), 6);
        assert_eq!(
            e.select(CollOp::Allreduce, 16, 2, &flat_clusters(6)),
            CollAlgorithm::RecursiveDoubling
        );
        // Ring on a reduce degrades to binomial.
        let e = CollEngine::flat(CollPolicy::Fixed(CollAlgorithm::Ring), 6);
        assert_eq!(
            e.select(CollOp::Reduce, 64, 8, &flat_clusters(6)),
            CollAlgorithm::Binomial
        );
    }

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(6), 4);
        assert_eq!(prev_pow2(8), 8);
        assert_eq!(prev_pow2(9), 8);
    }

    #[test]
    fn coll_error_display_matches_seed_panics() {
        // The legacy byte wrappers panic with these Display strings; the
        // bcast one preserves the seed's exact message.
        assert_eq!(
            CollError::MissingRootData {
                op: "bcast",
                what: "data"
            }
            .to_string(),
            "bcast root must provide the data"
        );
        assert_eq!(
            CollError::MissingRootData {
                op: "scatter",
                what: "parts"
            }
            .to_string(),
            "scatter root must provide the parts"
        );
        assert!(CollError::RootOutOfRange {
            op: "bcast",
            root: 9,
            size: 4
        }
        .to_string()
        .starts_with("bcast root 9 out of range"));
    }
}
