//! The seed's binomial-tree collective kernels, ported verbatim onto
//! [`Vgroup`] virtual ranks. Under [`super::CollPolicy::Seed`] these run
//! over the identity group with the original tags, reproducing the
//! seed's message pattern bit for bit; the hierarchical variants reuse
//! the same kernels over cluster-member and leader subsets.

use bytes::Bytes;

use super::Vgroup;
use crate::datatype::BaseType;
use crate::op::{apply, ReduceOp};
use crate::types::Tag;

/// Binomial broadcast from virtual rank `root` — O(log n) rounds. The
/// root passes `Some(data)`; everyone returns the broadcast value.
pub(crate) fn bcast(g: &Vgroup, root: usize, data: Option<Vec<u8>>, tag: Tag) -> Vec<u8> {
    let n = g.n();
    let me = g.me();
    let rel = (me + n - root) % n;
    // Receive phase: scan up to the lowest set bit of the relative
    // rank — that bit identifies the parent. The root (rel == 0)
    // skips straight past the loop with mask = 2^ceil(log2 n).
    let mut mask = 1usize;
    let payload = if me == root {
        while mask < n {
            mask <<= 1;
        }
        data.expect("bcast root must provide the data")
    } else {
        loop {
            debug_assert!(mask < n);
            if rel & mask != 0 {
                let parent = ((rel - mask) + root) % n;
                break g.recv(parent, tag);
            }
            mask <<= 1;
        }
    };
    // Forward phase: send to children at decreasing bit distances.
    mask >>= 1;
    while mask > 0 {
        if rel + mask < n {
            let dst = ((rel + mask) + root) % n;
            g.send(dst, tag, Bytes::copy_from_slice(&payload));
        }
        mask >>= 1;
    }
    payload
}

/// Binomial reduce to virtual rank `root`, which gets `Some(result)`;
/// everyone else gets `None`. Partials combine with the lower-rank side
/// on the left, so every algorithm in the catalog folds contributions
/// in the same canonical order.
pub(crate) fn reduce(
    g: &Vgroup,
    root: usize,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
    tag: Tag,
) -> Option<Vec<u8>> {
    let n = g.n();
    let me = g.me();
    let rel = (me + n - root) % n;
    let mut acc = contribution;
    let mut mask = 1usize;
    loop {
        if mask >= n {
            // Only the root exhausts the loop without sending.
            debug_assert_eq!(rel, 0);
            return Some(acc);
        }
        if rel & mask == 0 {
            let src_rel = rel | mask;
            if src_rel < n {
                let src = (src_rel + root) % n;
                let partial = g.recv(src, tag);
                apply(base, op, &mut acc, &partial);
            }
        } else {
            let dst = ((rel & !mask) + root) % n;
            g.send(dst, tag, Bytes::from(acc));
            return None;
        }
        mask <<= 1;
    }
}

/// Linear gather to virtual rank `root` (variable sizes allowed).
pub(crate) fn gather(g: &Vgroup, root: usize, data: Vec<u8>, tag: Tag) -> Option<Vec<Vec<u8>>> {
    let n = g.n();
    let me = g.me();
    if me == root {
        let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
        parts[me] = data;
        for src in (0..n).filter(|s| *s != root) {
            parts[src] = g.recv(src, tag);
        }
        Some(parts)
    } else {
        g.send(root, tag, Bytes::from(data));
        None
    }
}

/// Linear scatter from virtual rank `root` (one part per virtual rank).
pub(crate) fn scatter(g: &Vgroup, root: usize, parts: Option<Vec<Vec<u8>>>, tag: Tag) -> Vec<u8> {
    let me = g.me();
    if me == root {
        let parts = parts.expect("scatter root must provide the parts");
        let mut mine = Vec::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == me {
                mine = part;
            } else {
                g.send(dst, tag, Bytes::from(part));
            }
        }
        mine
    } else {
        g.recv(root, tag)
    }
}

/// The seed allgather: gather to virtual rank 0, broadcast the
/// length-prefixed concatenation.
pub(crate) fn allgather(
    g: &Vgroup,
    data: Vec<u8>,
    gather_tag: Tag,
    bcast_tag: Tag,
) -> Vec<Vec<u8>> {
    let gathered = gather(g, 0, data, gather_tag);
    let blob = bcast(g, 0, gathered.map(encode_parts), bcast_tag);
    decode_parts(&blob)
}

/// Pairwise-exchange alltoall: n−1 rounds, each a non-blocking send to
/// the round's partner overlapped with a probed receive.
pub(crate) fn alltoall(g: &Vgroup, parts: Vec<Vec<u8>>, tag: Tag) -> Vec<Vec<u8>> {
    let n = g.n();
    let me = g.me();
    let mut result: Vec<Vec<u8>> = vec![Vec::new(); n];
    result[me] = parts[me].clone();
    for round in 1..n {
        let dst = (me + round) % n;
        let src = (me + n - round) % n;
        result[src] = g.sendrecv(dst, src, tag, parts[dst].clone());
    }
    result
}

/// Inclusive prefix reduction along the rank chain.
pub(crate) fn scan(
    g: &Vgroup,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
    tag: Tag,
) -> Vec<u8> {
    let n = g.n();
    let me = g.me();
    let mut acc = contribution;
    if me > 0 {
        let prefix = g.recv(me - 1, tag);
        let mut combined = prefix;
        apply(base, op, &mut combined, &acc);
        acc = combined;
    }
    if me + 1 < n {
        g.send(me + 1, tag, Bytes::copy_from_slice(&acc));
    }
    acc
}

/// Exclusive prefix reduction: virtual rank 0 gets `None`, rank r > 0
/// the reduction of ranks `0..r`.
pub(crate) fn exscan(
    g: &Vgroup,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
    tag: Tag,
) -> Option<Vec<u8>> {
    let n = g.n();
    let me = g.me();
    let prefix = if me > 0 {
        Some(g.recv(me - 1, tag))
    } else {
        None
    };
    if me + 1 < n {
        let mut outgoing = match &prefix {
            Some(p) => {
                let mut acc = p.clone();
                apply(base, op, &mut acc, &contribution);
                acc
            }
            None => contribution,
        };
        outgoing.shrink_to_fit();
        g.send(me + 1, tag, Bytes::from(outgoing));
    }
    prefix
}

/// Length-prefixed concatenation of per-rank buffers (for relaying
/// gathered data through a broadcast).
pub(crate) fn encode_parts(parts: Vec<Vec<u8>>) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| p.len() + 8).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&p);
    }
    out
}

pub(crate) fn decode_parts(blob: &[u8]) -> Vec<Vec<u8>> {
    let mut parts = Vec::new();
    let mut cursor = 0;
    while cursor < blob.len() {
        let len = u64::from_le_bytes(blob[cursor..cursor + 8].try_into().unwrap()) as usize;
        cursor += 8;
        parts.push(blob[cursor..cursor + len].to_vec());
        cursor += len;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        let parts = vec![vec![1u8, 2], vec![], vec![9u8; 100]];
        assert_eq!(decode_parts(&encode_parts(parts.clone())), parts);
    }
}
