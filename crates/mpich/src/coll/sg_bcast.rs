//! Scatter-gather broadcast (van de Geijn): the root scatters the
//! payload into n near-equal chunks, a ring allgather reassembles them
//! everywhere. Total traffic per node is ~2·len bytes instead of the
//! binomial tree's log₂(n)·len, which wins for large messages.
//!
//! Receivers never need the payload size up front — both the scattered
//! chunk and the ring blocks arrive through probed receives.

use bytes::Bytes;

use super::{ring, Vgroup};
use crate::types::Tag;

pub(crate) const T_SG_SCATTER: Tag = 14;
pub(crate) const T_SG_RING: Tag = 15;

pub(crate) fn bcast(g: &Vgroup, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
    let n = g.n();
    let me = g.me();
    if n == 1 {
        return data.expect("bcast root must provide the data");
    }
    // Chunk i (in root-rotated order) lives on virtual rank
    // (root + i) % n; chunk sizes differ by at most one byte.
    let my_chunk = if me == root {
        let data = data.expect("bcast root must provide the data");
        let (quot, rem) = (data.len() / n, data.len() % n);
        let mut offset = 0;
        let mut mine = Vec::new();
        for i in 0..n {
            let size = quot + usize::from(i < rem);
            let chunk = &data[offset..offset + size];
            offset += size;
            let dst = (root + i) % n;
            if dst == me {
                mine = chunk.to_vec();
            } else {
                g.send(dst, T_SG_SCATTER, Bytes::copy_from_slice(chunk));
            }
        }
        mine
    } else {
        g.recv(root, T_SG_SCATTER)
    };
    // Reassemble via ring allgather, concatenating in chunk order.
    let parts = ring::allgather(g, my_chunk, T_SG_RING);
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for i in 0..n {
        out.extend_from_slice(&parts[(root + i) % n]);
    }
    out
}
