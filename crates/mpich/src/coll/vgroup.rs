//! A *virtual group*: an ordered subset of a communicator's ranks over
//! which the algorithm kernels run. Flat algorithms use the identity
//! group (all ranks); the hierarchical variants reuse the very same
//! kernels over cluster-member and leader subsets.

use bytes::Bytes;

use crate::comm::Communicator;
use crate::types::Tag;

/// An ordered rank subset bound to one communicator + context. All
/// algorithm kernels address peers by *virtual rank* (index into
/// `members`); the group translates to communicator-local ranks.
pub(crate) struct Vgroup<'a> {
    comm: &'a Communicator,
    /// Communicator-local ranks, ascending.
    members: &'a [usize],
    /// My index in `members`.
    me: usize,
    ctx: u32,
}

impl<'a> Vgroup<'a> {
    /// Build a group from the sorted member list. The calling rank must
    /// be a member.
    pub fn new(comm: &'a Communicator, members: &'a [usize]) -> Vgroup<'a> {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let me = members
            .binary_search(&comm.rank())
            .expect("caller must be a member of the virtual group");
        Vgroup {
            comm,
            members,
            me,
            ctx: comm.coll_context(),
        }
    }

    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// My virtual rank.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Blocking send to a virtual rank.
    pub fn send(&self, vdst: usize, tag: Tag, data: Bytes) {
        self.comm.send_ctx(data, self.members[vdst], tag, self.ctx);
    }

    /// Probed receive from a virtual rank (size learned from the probe,
    /// so senders never need to pre-announce lengths).
    pub fn recv(&self, vsrc: usize, tag: Tag) -> Vec<u8> {
        let (bytes, _) = self
            .comm
            .recv_probed_ctx(Some(self.members[vsrc]), Some(tag), self.ctx);
        bytes
    }

    /// Concurrent send + receive against (possibly different) peers —
    /// the deadlock-free pairwise-exchange primitive every symmetric
    /// algorithm round is built from. The send runs on a helper thread
    /// (the seed alltoall's pattern) while this thread does the probed
    /// receive.
    pub fn sendrecv(&self, vdst: usize, vsrc: usize, tag: Tag, data: Vec<u8>) -> Vec<u8> {
        let send = {
            let comm = self.comm.clone();
            let dst_local = self.members[vdst];
            let ctx = self.ctx;
            marcel::spawn(
                format!("rank{}-coll", self.comm.env().world_rank),
                move || {
                    comm.send_ctx(Bytes::from(data), dst_local, tag, ctx);
                },
            )
        };
        let bytes = self.recv(vsrc, tag);
        send.join();
        bytes
    }

    /// Symmetric exchange with one peer.
    pub fn exchange(&self, vpeer: usize, tag: Tag, data: Vec<u8>) -> Vec<u8> {
        self.sendrecv(vpeer, vpeer, tag, data)
    }
}
