//! Two-level hierarchical collectives for the meta-cluster: one leader
//! per fast cluster (SCI / BIP island). Intra-cluster phases run the
//! binomial kernels on the fast rails; the inter-cluster phase runs
//! over the leader subset only, so the payload crosses the slow
//! spanning link exactly once per direction per cluster — a binomial
//! tree over all ranks would cross it on up to log₂(n) rounds.
//!
//! Leaders are each cluster's lowest communicator rank, except that for
//! rooted operations the root leads its own cluster (saving one
//! intra-cluster hop of the full payload).

use super::{binomial, rdouble, ring, CommClusters, Vgroup};
use crate::comm::Communicator;
use crate::datatype::BaseType;
use crate::op::ReduceOp;
use crate::types::Tag;

pub(crate) const T_H_INTRA_RED: Tag = 16;
pub(crate) const T_H_INTER: Tag = 17;
pub(crate) const T_H_INTRA_BC: Tag = 18;
pub(crate) const T_H_GATHER: Tag = 19;

/// Ascending leader ranks, one per cluster (`root`'s cluster is led by
/// `root` when given).
fn leaders(clusters: &CommClusters, root: Option<usize>) -> Vec<usize> {
    let mut ls: Vec<usize> = (0..clusters.n_clusters())
        .map(|c| clusters.members(c)[0])
        .collect();
    if let Some(root) = root {
        ls[clusters.cluster_of(root)] = root;
    }
    ls.sort_unstable();
    ls
}

/// My cluster's member list and leader for a rooted operation.
fn my_cluster(clusters: &CommClusters, me: usize, root: Option<usize>) -> (&[usize], usize) {
    let c = clusters.cluster_of(me);
    let members = clusters.members(c);
    let leader = match root {
        Some(root) if clusters.cluster_of(root) == c => root,
        _ => members[0],
    };
    (members, leader)
}

pub(crate) fn bcast(
    comm: &Communicator,
    clusters: &CommClusters,
    root: usize,
    data: Option<Vec<u8>>,
) -> Vec<u8> {
    let me = comm.rank();
    let ls = leaders(clusters, Some(root));
    let mut payload = if me == root {
        Some(data.expect("bcast root must provide the data"))
    } else {
        None
    };
    // Phase 1: root -> cluster leaders (one slow-link crossing each).
    if let Ok(_vme) = ls.binary_search(&me) {
        let g = Vgroup::new(comm, &ls);
        let vroot = ls.binary_search(&root).expect("root leads its cluster");
        payload = Some(binomial::bcast(&g, vroot, payload.take(), T_H_INTER));
    }
    // Phase 2: leader -> cluster members on the fast rails.
    let (members, leader) = my_cluster(clusters, me, Some(root));
    let g = Vgroup::new(comm, members);
    let vleader = members.binary_search(&leader).expect("leader is a member");
    binomial::bcast(&g, vleader, payload, T_H_INTRA_BC)
}

pub(crate) fn reduce(
    comm: &Communicator,
    clusters: &CommClusters,
    root: usize,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
) -> Option<Vec<u8>> {
    let me = comm.rank();
    // Phase 1: intra-cluster reduce to the cluster leader.
    let (members, leader) = my_cluster(clusters, me, Some(root));
    let g = Vgroup::new(comm, members);
    let vleader = members.binary_search(&leader).expect("leader is a member");
    let partial = binomial::reduce(&g, vleader, contribution, base, op, T_H_INTRA_RED)?;
    // Phase 2: leaders reduce to the root (which leads its cluster).
    let ls = leaders(clusters, Some(root));
    let g = Vgroup::new(comm, &ls);
    let vroot = ls.binary_search(&root).expect("root leads its cluster");
    binomial::reduce(&g, vroot, partial, base, op, T_H_INTER)
}

pub(crate) fn allreduce(
    comm: &Communicator,
    clusters: &CommClusters,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
) -> Vec<u8> {
    let me = comm.rank();
    let (members, _) = my_cluster(clusters, me, None);
    let g = Vgroup::new(comm, members);
    // Reduce to the cluster leader, allreduce across leaders (the
    // payload crosses the slow link once each way), broadcast back.
    let partial = binomial::reduce(&g, 0, contribution, base, op, T_H_INTRA_RED);
    let reduced = partial.map(|partial| {
        let ls = leaders(clusters, None);
        let lg = Vgroup::new(comm, &ls);
        rdouble::allreduce(&lg, partial, base, op)
    });
    binomial::bcast(&g, 0, reduced, T_H_INTRA_BC)
}

pub(crate) fn allgather(
    comm: &Communicator,
    clusters: &CommClusters,
    data: Vec<u8>,
) -> Vec<Vec<u8>> {
    let me = comm.rank();
    let n = clusters.n_ranks();
    let (members, _) = my_cluster(clusters, me, None);
    let g = Vgroup::new(comm, members);
    // Phase 1: gather contributions to the cluster leader.
    let gathered = binomial::gather(&g, 0, data, T_H_GATHER);
    // Phase 2: leaders ring-exchange rank-tagged blobs (each cluster's
    // data crosses the slow link once per hop around the leader ring).
    let blob = gathered.map(|parts| {
        let mut enc = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            enc.extend_from_slice(&(members[i] as u64).to_le_bytes());
            enc.extend_from_slice(&(p.len() as u64).to_le_bytes());
            enc.extend_from_slice(p);
        }
        let ls = leaders(clusters, None);
        let lg = Vgroup::new(comm, &ls);
        ring::allgather(&lg, enc, T_H_INTER).concat()
    });
    // Phase 3: broadcast the full blob inside the cluster, decode into
    // rank order.
    let blob = binomial::bcast(&g, 0, blob, T_H_INTRA_BC);
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut cur = 0;
    while cur < blob.len() {
        let rank = u64::from_le_bytes(blob[cur..cur + 8].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(blob[cur + 8..cur + 16].try_into().unwrap()) as usize;
        cur += 16;
        out[rank] = blob[cur..cur + len].to_vec();
        cur += len;
    }
    out
}
