//! Rabenseifner's allreduce: reduce-scatter by recursive halving, then
//! allgather by reversing the halving — every rank moves ~2·len bytes
//! total instead of recursive doubling's log₂(n)·len, which wins for
//! large payloads.
//!
//! Non-power-of-two sizes reuse the recursive-doubling fold (evens
//! below 2·rem drop out and receive the final result at the end). The
//! selection layer only picks this algorithm when the payload holds at
//! least one reduction unit per power-of-two participant, so every
//! scattered block is non-empty.

use bytes::Bytes;

use super::rdouble::real_of;
use super::{prev_pow2, Vgroup};
use crate::datatype::BaseType;
use crate::op::{apply, ReduceOp};
use crate::types::Tag;

pub(crate) const T_RS: Tag = 11;
pub(crate) const T_AG: Tag = 12;

pub(crate) fn allreduce(
    g: &Vgroup,
    contribution: Vec<u8>,
    base: BaseType,
    op: ReduceOp,
) -> Vec<u8> {
    let n = g.n();
    let me = g.me();
    let mut acc = contribution;
    if n == 1 {
        return acc;
    }
    let unit = if op.is_loc() {
        2 * base.size()
    } else {
        base.size()
    };
    debug_assert_eq!(acc.len() % unit, 0, "selection layer checks divisibility");
    let elems = acc.len() / unit;
    let pof2 = prev_pow2(n);
    let rem = n - pof2;
    debug_assert!(elems >= pof2, "selection layer checks one unit per block");

    // Fold phase (same arrangement as recursive doubling).
    let newrank = if me < 2 * rem {
        if me.is_multiple_of(2) {
            g.send(me + 1, T_RS, Bytes::from(acc));
            return g.recv(me + 1, T_RS);
        }
        let lower = g.recv(me - 1, T_RS);
        let mut combined = lower;
        apply(base, op, &mut combined, &acc);
        acc = combined;
        me / 2
    } else {
        me - rem
    };

    // Block layout: elems split into pof2 near-equal unit counts.
    let mut displs = Vec::with_capacity(pof2 + 1); // in bytes
    let mut cursor = 0usize;
    for i in 0..pof2 {
        displs.push(cursor);
        cursor += (elems / pof2 + usize::from(i < elems % pof2)) * unit;
    }
    displs.push(cursor);
    debug_assert_eq!(cursor, acc.len());

    // Reduce-scatter by recursive halving: at each step exchange the
    // half of the current window the peer owns, keep reducing ours.
    let (mut lo, mut hi) = (0usize, pof2);
    let mut steps = Vec::new();
    while hi - lo > 1 {
        let half = (hi - lo) / 2;
        let mid = lo + half;
        let (peer_new, s_lo, s_hi, k_lo, k_hi) = if newrank < mid {
            (newrank + half, mid, hi, lo, mid)
        } else {
            (newrank - half, lo, mid, mid, hi)
        };
        let peer = real_of(peer_new, rem);
        let send_slice = acc[displs[s_lo]..displs[s_hi]].to_vec();
        let recvd = g.exchange(peer, T_RS, send_slice);
        let keep = &mut acc[displs[k_lo]..displs[k_hi]];
        debug_assert_eq!(recvd.len(), keep.len());
        if peer < me {
            let mut combined = recvd;
            apply(base, op, &mut combined, keep);
            keep.copy_from_slice(&combined);
        } else {
            apply(base, op, keep, &recvd);
        }
        steps.push((peer, k_lo, k_hi, s_lo, s_hi));
        lo = k_lo;
        hi = k_hi;
    }

    // Allgather: replay the halving in reverse — each step's kept half
    // is now fully reduced, trade it for the peer's half.
    for &(peer, k_lo, k_hi, s_lo, s_hi) in steps.iter().rev() {
        let send_slice = acc[displs[k_lo]..displs[k_hi]].to_vec();
        let recvd = g.exchange(peer, T_AG, send_slice);
        acc[displs[s_lo]..displs[s_hi]].copy_from_slice(&recvd);
    }

    // Hand the result back to the folded even neighbor.
    if me < 2 * rem {
        debug_assert_eq!(me % 2, 1);
        g.send(me - 1, T_RS, Bytes::copy_from_slice(&acc));
    }
    acc
}
