//! World bootstrap: build the kernel, the Madeleine session, the devices
//! and the per-rank environments; run one simulated main thread per rank
//! through `MPI_Init` → user code → `MPI_Finalize`.

use std::sync::Arc;

use marcel::{CostModel, ExecPolicy, Kernel, PollPolicy, SimBarrier, SimError, SimMutex};
use simnet::{NodeId, Topology};

use crate::adi::{AdiCosts, Device, DeviceSet};
use crate::coll::{CollEngine, CollPolicy};
use crate::comm::{Communicator, MpiEnv};
use crate::device::{ChMad, ChMadConfig, ChP4, ChP4Costs, ChSelf, SmpPlug};
use crate::engine::Engine;

/// How ranks are placed on the topology's nodes.
#[derive(Clone, Debug)]
pub enum Placement {
    /// One rank per node, in node order.
    OneRankPerNode,
    /// One rank per CPU (SMP nodes host several ranks).
    OneRankPerCpu,
    /// Explicit rank -> node map.
    Explicit(Vec<NodeId>),
}

/// Which inter-node device carries remote traffic.
#[derive(Clone, Debug)]
pub enum RemoteDeviceKind {
    /// The paper's multi-protocol device over Madeleine.
    ChMad(ChMadConfig),
    /// The classical TCP device (Figure 6 baseline). Requires a
    /// topology where every node pair shares a TCP network.
    ChP4(ChP4Costs),
}

/// Full world configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    pub cost_model: CostModel,
    pub adi: AdiCosts,
    pub remote: RemoteDeviceKind,
    /// Allow transitively-connected topologies; inter-node messages
    /// between nodes without a shared network cross gateway ranks
    /// (the §6 future-work forwarding extension; ch_mad only).
    pub forwarding: bool,
    /// Record the kernel's deterministic event trace (retrieve it with
    /// `Kernel::take_trace` after `run_world_kernel`; export it with
    /// [`marcel::chrome_trace_json`] and [`thread_metas`]). Tracing
    /// never advances virtual time, so enabling it cannot change
    /// results, end times, or any benchmark output. The metrics
    /// registry ([`Kernel::metrics`]) is always on, independent of
    /// this flag.
    pub trace: bool,
    /// How the collective layer picks algorithms — the collective
    /// analogue of [`crate::ProtocolPolicy`]. `Seed` (the default)
    /// reproduces the seed's binomial trees bit for bit; `Adaptive`
    /// selects per operation, payload size, and topology (two-level
    /// hierarchical collectives on the meta-cluster, recursive-doubling
    /// / Rabenseifner allreduce, ring allgather, scatter-gather bcast);
    /// `Fixed(alg)` forces one catalog entry wherever it applies. See
    /// [`crate::coll`].
    pub coll: CollPolicy,
    /// Idle-channel handling in the factorized polling loop. `Seed`
    /// (the default) polls every open channel on every cycle, so an
    /// idle TCP channel taxes every SCI detection (the Figure 9
    /// effect); `Parking` parks a channel after
    /// `cost_model.park_after` consecutive empty detections and
    /// re-arms it on the next incoming message. Copied into
    /// `cost_model.poll_policy` when the world starts.
    pub poll: PollPolicy,
    /// Execution engine for the kernel step loop. `Seed` (the default)
    /// is the original serial loop; `Ticketed(workers)` runs ranks of
    /// different nodes on parallel host workers behind a sequencer →
    /// committer pipeline. Results, trace, metrics and end times are
    /// bit-identical between the two for every worker count — only host
    /// wall-clock changes. Copied into `cost_model.exec` when the world
    /// starts.
    pub exec: ExecPolicy,
}

/// Build the Chrome-exporter thread table for a finished world run: one
/// entry per Marcel thread (in tid order), each mapped to the virtual
/// "process" of the cluster node hosting it. The node is recovered from
/// the `rank{N}` prefix every world thread name carries; kernel-internal
/// threads (none today) would fall back to node 0.
pub fn thread_metas(kernel: &Kernel, session: &madeleine::Session) -> Vec<marcel::ThreadMeta> {
    kernel
        .thread_names()
        .into_iter()
        .map(|name| {
            let rank = name.strip_prefix("rank").and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse()
                    .ok()
            });
            let pid = match rank {
                Some(r) if r < session.n_ranks() => session.node_of(r).0 as u32,
                _ => 0,
            };
            marcel::ThreadMeta { name, pid }
        })
        .collect()
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            cost_model: CostModel::calibrated(),
            adi: AdiCosts::calibrated(),
            remote: RemoteDeviceKind::ChMad(ChMadConfig::default()),
            forwarding: false,
            trace: false,
            coll: CollPolicy::Seed,
            poll: PollPolicy::Seed,
            exec: ExecPolicy::Seed,
        }
    }
}

impl WorldConfig {
    /// Default ch_mad configuration with gateway forwarding enabled.
    pub fn with_forwarding() -> Self {
        WorldConfig {
            forwarding: true,
            ..WorldConfig::default()
        }
    }

    /// Check the configuration for nonsense before any thread is
    /// spawned. `run_world*` calls this and surfaces failures as
    /// [`SimError::InvalidConfig`]; call it directly to validate a
    /// config built from external input (bench CLI flags, campaign
    /// specs) without paying for a world bootstrap.
    pub fn validate(&self) -> Result<(), marcel::ConfigError> {
        let mut cost_model = self.cost_model.clone();
        cost_model.poll_policy = self.poll;
        cost_model.exec = self.exec;
        cost_model.validate()?;
        if self.forwarding && !matches!(self.remote, RemoteDeviceKind::ChMad(_)) {
            return Err(marcel::ConfigError::ForwardingRequiresChMad);
        }
        if !self.adi.recv_touch_per_byte_ns.is_finite() || self.adi.recv_touch_per_byte_ns < 0.0 {
            return Err(marcel::ConfigError::NegativeCost("recv_touch_per_byte_ns"));
        }
        Ok(())
    }
}

impl WorldConfig {
    pub fn ch_p4() -> Self {
        WorldConfig {
            remote: RemoteDeviceKind::ChP4(ChP4Costs::default()),
            ..WorldConfig::default()
        }
    }
}

/// Run an MPI program: spawn one main thread per rank executing `f` with
/// that rank's `MPI_COMM_WORLD`, then run the simulation to completion.
/// Returns the per-rank results in rank order.
///
/// ```
/// use mpich::{run_world, Placement, WorldConfig};
/// use simnet::{Protocol, Topology};
///
/// let results = run_world(
///     Topology::single_network(4, Protocol::Tcp),
///     Placement::OneRankPerNode,
///     WorldConfig::default(),
///     |comm| comm.allreduce_vec(&[comm.rank() as i64], mpich::ReduceOp::Sum)[0],
/// )
/// .unwrap();
/// assert_eq!(results, vec![6, 6, 6, 6]);
/// ```
pub fn run_world<T, F>(
    topology: Topology,
    placement: Placement,
    config: WorldConfig,
    f: F,
) -> Result<Vec<T>, SimError>
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Send + Sync + 'static,
{
    let (results, _) = run_world_kernel(topology, placement, config, f)?;
    Ok(results)
}

/// Like [`run_world`], additionally returning the kernel (for end-time
/// or trace inspection).
pub fn run_world_kernel<T, F>(
    topology: Topology,
    placement: Placement,
    config: WorldConfig,
    f: F,
) -> Result<(Vec<T>, Kernel), SimError>
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Send + Sync + 'static,
{
    let (results, kernel, _) = run_world_full(topology, placement, config, f)?;
    Ok((results, kernel))
}

/// Like [`run_world_kernel`], additionally returning the Madeleine
/// session — fault-injection tests and benches read the reliability
/// counters ([`madeleine::Session::fault_counters`],
/// [`madeleine::Session::failovers`]) off it after the run.
pub fn run_world_full<T, F>(
    topology: Topology,
    placement: Placement,
    config: WorldConfig,
    f: F,
) -> Result<(Vec<T>, Kernel, Arc<madeleine::Session>), SimError>
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Send + Sync + 'static,
{
    let (results, kernel, session, _) = run_world_artifacts(topology, placement, config, f)?;
    Ok((results, kernel, session))
}

/// Everything [`run_world_artifacts`] hands back: per-rank results,
/// the kernel, the Madeleine session, and the per-rank matching
/// engines.
pub type WorldArtifacts<T> = (Vec<T>, Kernel, Arc<madeleine::Session>, Vec<Arc<Engine>>);

/// Like [`run_world_full`], additionally returning the per-rank
/// matching engines — the journal's world snapshots read the matching
/// stores ([`Engine::matching_snapshot`]) off them at leg boundaries.
pub fn run_world_artifacts<T, F>(
    topology: Topology,
    placement: Placement,
    config: WorldConfig,
    f: F,
) -> Result<WorldArtifacts<T>, SimError>
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Send + Sync + 'static,
{
    config.validate().map_err(SimError::InvalidConfig)?;
    let mut cost_model = config.cost_model.clone();
    cost_model.poll_policy = config.poll;
    cost_model.exec = config.exec;
    let kernel = Kernel::new(cost_model);
    if config.trace {
        kernel.enable_trace();
    }
    let node_model = topology.node_model().clone();
    // Fast-island structure for the collective engine, captured before
    // the topology moves into the session builder.
    let node_clusters = topology.node_clusters();
    let builder = madeleine::SessionBuilder::new(topology);
    let builder = match &placement {
        Placement::OneRankPerNode => builder.one_rank_per_node(),
        Placement::OneRankPerCpu => builder.one_rank_per_cpu(),
        Placement::Explicit(map) => builder.place(map.clone()),
    };
    // Forwarding + ChP4 was rejected by validate() above.
    let builder = if config.forwarding {
        builder.allow_forwarding()
    } else {
        builder
    };
    let session = builder
        .build(&kernel)
        .expect("invalid topology for an MPI world");
    let n = session.n_ranks();

    let engines: Vec<Arc<Engine>> = (0..n)
        .map(|r| Engine::new(&kernel, r, config.adi.clone()))
        .collect();
    let rank_node: Vec<usize> = (0..n).map(|r| session.node_of(r).0).collect();

    let remote: Arc<dyn Device> = match &config.remote {
        RemoteDeviceKind::ChMad(cfg) => ChMad::new(
            &kernel,
            session.clone(),
            engines.clone(),
            config.adi.clone(),
            cfg.clone(),
        ),
        RemoteDeviceKind::ChP4(costs) => ChP4::new(&kernel, engines.clone(), costs.clone()),
    };
    let devices = Arc::new(DeviceSet {
        ch_self: ChSelf::new(engines.clone(), node_model.clone()),
        smp_plug: SmpPlug::new(engines.clone(), rank_node.clone(), node_model),
        remote,
        rank_node,
    });

    let rank_clusters: Vec<usize> = (0..n)
        .map(|r| node_clusters[session.node_of(r).0])
        .collect();
    let coll = Arc::new(CollEngine::new(config.coll, rank_clusters));

    let ctx_alloc = Arc::new(SimMutex::new(&kernel, 2));
    // Kernel-level (non-MPI) quiescence barrier: no rank may terminate
    // its polling threads before EVERY rank has finished its MPI
    // traffic. The MPI barrier alone is not enough with forwarding:
    // its own broadcast messages can still be transiting a gateway
    // whose barrier participation already ended — the gateway's TERM
    // would kill the polling thread with the relay still in flight.
    let shutdown = SimBarrier::new(&kernel, n);
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)]
    for rank in 0..n {
        let env = Arc::new(MpiEnv {
            world_rank: rank,
            world_size: n,
            engine: engines[rank].clone(),
            devices: devices.clone(),
            ctx_alloc: ctx_alloc.clone(),
            coll: coll.clone(),
        });
        let f = f.clone();
        let shutdown = shutdown.clone();
        // Speculation domain = 1 + hosting node: ranks (and the polling
        // threads they spawn) of one node stay serialized with each
        // other, ranks of different nodes may run on parallel workers.
        // Domain 0 is reserved for host-spawned threads.
        let domain = 1 + session.node_of(rank).0 as u32;
        handles.push(kernel.spawn_in(format!("rank{rank}"), domain, move || {
            // MPI_Init: start the inter-node device's service threads.
            let pollers = env.devices.remote.clone().start_rank(rank);
            let comm = Communicator::world(env.clone());
            let result = f(&comm);
            // MPI_Finalize: synchronize at the MPI level, then wait for
            // global quiescence before terminating the pollers (see the
            // shutdown barrier's comment above).
            comm.barrier();
            shutdown.wait();
            env.devices.remote.finalize_rank(rank);
            for p in pollers {
                p.join();
            }
            result
        }));
    }
    kernel.run()?;
    let results = handles
        .into_iter()
        .map(|h| h.join_outcome().expect("rank finished without a result"))
        .collect();
    Ok((results, kernel, session, engines))
}
