//! Common MPI-level types: envelopes, match specifications, statuses.

use std::fmt;

/// Message tag. Non-negative in user messages; the collective layer uses
/// its own context, so tags never clash across layers.
pub type Tag = i32;

/// Matching key of a message: (source, tag, context). The context id
/// isolates communicators (and, within one communicator, point-to-point
/// from collective traffic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// *World* rank of the sender.
    pub src: usize,
    pub tag: Tag,
    pub context: u32,
    /// Payload length in bytes.
    pub len: usize,
}

/// A posted receive's matching pattern (`None` = wildcard, i.e.
/// `MPI_ANY_SOURCE` / `MPI_ANY_TAG`). Source is in *world* ranks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatchSpec {
    pub src: Option<usize>,
    pub tag: Option<Tag>,
    pub context: u32,
}

impl MatchSpec {
    pub fn matches(&self, env: &Envelope) -> bool {
        self.context == env.context
            && self.src.is_none_or(|s| s == env.src)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// Completion information of a receive (like `MPI_Status`). `source` is
/// a *world* rank at the engine level; [`crate::comm::Communicator`]
/// translates it to a communicator-local rank before handing it out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Status {
    pub source: usize,
    pub tag: Tag,
    pub len: usize,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Status{{src={}, tag={}, len={}}}",
            self.source, self.tag, self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, context: u32) -> Envelope {
        Envelope {
            src,
            tag,
            context,
            len: 0,
        }
    }

    #[test]
    fn exact_match() {
        let spec = MatchSpec {
            src: Some(2),
            tag: Some(7),
            context: 1,
        };
        assert!(spec.matches(&env(2, 7, 1)));
        assert!(!spec.matches(&env(3, 7, 1)));
        assert!(!spec.matches(&env(2, 8, 1)));
        assert!(!spec.matches(&env(2, 7, 2)));
    }

    #[test]
    fn wildcards() {
        let any_src = MatchSpec {
            src: None,
            tag: Some(7),
            context: 1,
        };
        assert!(any_src.matches(&env(0, 7, 1)));
        assert!(any_src.matches(&env(9, 7, 1)));
        assert!(!any_src.matches(&env(9, 6, 1)));
        let any_tag = MatchSpec {
            src: Some(1),
            tag: None,
            context: 1,
        };
        assert!(any_tag.matches(&env(1, 0, 1)));
        assert!(any_tag.matches(&env(1, 999, 1)));
        let any_any = MatchSpec {
            src: None,
            tag: None,
            context: 1,
        };
        assert!(any_any.matches(&env(5, 5, 1)));
        assert!(
            !any_any.matches(&env(5, 5, 2)),
            "context is never wildcarded"
        );
    }
}
