//! Durable campaign journal: crash-resume and divergence bisect for
//! long multi-leg simulation campaigns.
//!
//! A *campaign* is a deterministic sequence of *legs*, each a complete
//! [`run_world_artifacts`] execution whose topology, placement, config
//! and program are produced by a pure leg factory from a [`LegCtx`]
//! (leg index, derived seed, fault-matrix cursor). While a campaign
//! runs it appends to a journal (format: [`marcel::journal`]):
//!
//! ```text
//! header | Campaign | (RunBegin Event* RunEnd [Snapshot])*
//! ```
//!
//! Every `snapshot_every` legs a [`marcel::SnapshotData`] world
//! snapshot is appended at the leg boundary — a quiescent point where
//! no simulated thread holds a lock, so kernel state, the matching
//! stores ([`crate::Engine::matching_snapshot`]) and the Madeleine
//! reliability windows ([`madeleine::Session::reliability_snapshot_bytes`])
//! can all be read host-side. The snapshot carries everything a resume
//! needs that cannot be recomputed: the campaign RNG state (the seed
//! chain folds each leg's *outcome* — end time, metrics digest, fault
//! counters — so it is unrecoverable without the snapshot) and the
//! fault-matrix cursor.
//!
//! [`resume_campaign`] takes the byte prefix salvaged from a crashed
//! run, drops the torn tail (detected by the scanner's checksums), cuts
//! back to the last complete snapshot, replays the retained prefix into
//! the new sink *verbatim*, and re-executes only the legs after the
//! snapshot. The determinism contract makes the result byte-identical
//! to an uninterrupted run — and because the journal deliberately never
//! encodes the execution policy, a campaign may crash under
//! `ExecPolicy::Seed` and resume under `Ticketed(n)` (or vice versa)
//! with the same guarantee.
//!
//! When two journals that *should* be identical are not,
//! [`marcel::bisect`] binary-searches their snapshots and then scans
//! the first divergent interval to report the first differing record.

use std::sync::Arc;

use marcel::journal::wire::put_u64;
use marcel::rng::splitmix64;
use marcel::{
    fnv1a64, ConfigError, ExecPolicy, JournalError, JournalSink, JournalWriter, MetricsSnapshot,
    Record, RunEndData, SimError, SnapshotData,
};
use simnet::Topology;

use crate::comm::Communicator;
use crate::world::{run_world_artifacts, Placement, WorldConfig};

pub use marcel::{
    bisect, scan, BisectOutcome, Divergence, FileSink, MemSink, ScanResult, Tail, ThreadSnap,
};

/// Campaign identity and shape. Everything here except `exec` is
/// written into the journal's `Campaign` record; the execution policy
/// is deliberately excluded so `Seed` and `Ticketed(n)` campaigns
/// produce byte-identical journals (see the module docs).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub label: String,
    /// Total number of legs.
    pub legs: u64,
    /// Append a world snapshot every this many legs.
    pub snapshot_every: u64,
    /// Root of the campaign's seed chain.
    pub master_seed: u64,
    /// Kernel execution engine for every leg.
    pub exec: ExecPolicy,
}

impl CampaignConfig {
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.legs == 0 {
            return Err(ConfigError::ZeroCampaignParam("legs"));
        }
        if self.snapshot_every == 0 {
            return Err(ConfigError::ZeroCampaignParam("snapshot_every"));
        }
        if self.exec == ExecPolicy::Ticketed(0) {
            return Err(ConfigError::ZeroTicketedWorkers);
        }
        Ok(())
    }
}

/// What the leg factory gets: everything it may depend on. The factory
/// must be a pure function of this context — that is the whole resume
/// contract.
#[derive(Clone, Copy, Debug)]
pub struct LegCtx {
    /// Leg index, `0..legs`.
    pub leg: u64,
    /// Per-leg seed from the campaign chain (outcome-dependent: legs
    /// after a fault-heavy leg see different seeds than after a clean
    /// one, so snapshots are genuinely load-bearing).
    pub seed: u64,
    /// Fault-matrix position: cells consumed by earlier legs.
    pub fault_cursor: u64,
}

/// The per-rank MPI program a leg runs; its return value is the leg's
/// journaled result.
pub type LegProgram = Arc<dyn Fn(&Communicator) -> Vec<u8> + Send + Sync>;

/// One leg: a complete world run. Produced by the leg factory.
pub struct LegSpec {
    /// Human-readable label, journaled in the leg's `RunBegin` record.
    /// Fold anything you want bisect to distinguish (fault-plan digest,
    /// scenario name) into it — or keep it seed-free so a divergence
    /// surfaces as a differing *event* rather than a differing label.
    pub label: String,
    pub topology: Topology,
    pub placement: Placement,
    pub config: WorldConfig,
    /// Fault-matrix cells this leg consumes (advances the campaign's
    /// fault cursor).
    pub fault_cells: u64,
    /// The per-rank MPI program; its return value is the leg's
    /// journaled result (the receive buffers the byte-equality
    /// contract covers).
    pub program: LegProgram,
}

/// Why a campaign could not run (or resume).
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign or a leg configuration is invalid.
    Config(ConfigError),
    /// Journal framing, checksum, or sink I/O failure.
    Journal(JournalError),
    /// A leg's simulation failed.
    Sim(SimError),
    /// The prior journal does not belong to this campaign.
    Mismatch(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid campaign configuration: {e}"),
            CampaignError::Journal(e) => write!(f, "journal error: {e}"),
            CampaignError::Sim(e) => write!(f, "simulation error: {e}"),
            CampaignError::Mismatch(what) => write!(f, "journal/campaign mismatch: {what}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

impl From<SimError> for CampaignError {
    fn from(e: SimError) -> Self {
        CampaignError::Sim(e)
    }
}

/// Summary of a finished (or finished-by-resume) campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// FNV-1a digest over every byte of the intended journal stream —
    /// prefix included on resume, so an uninterrupted run and a
    /// crash-resume of the same campaign report the same digest.
    pub digest: u64,
    /// Intended journal length in bytes.
    pub bytes: u64,
    /// Records appended by *this* invocation (replayed prefix excluded).
    pub records_appended: u64,
    /// Leg index this invocation started from (0 for a fresh run).
    pub resumed_at_leg: u64,
    /// Legs actually executed by this invocation.
    pub legs_run: u64,
    /// Event records appended by this invocation.
    pub events_appended: u64,
    /// Virtual end time of the campaign's final leg (0 when the resume
    /// found the campaign already complete).
    pub end_ns: u64,
    /// Per-rank results of the final executed leg.
    pub last_results: Vec<Vec<u8>>,
}

/// Deterministic digest of a metrics report: every counter, gauge and
/// histogram in (sorted) registry order.
pub fn metrics_digest(snap: &MetricsSnapshot) -> u64 {
    let mut bytes = Vec::with_capacity(1024);
    for (name, v) in &snap.counters {
        bytes.extend_from_slice(name.as_bytes());
        put_u64(&mut bytes, *v);
    }
    for (name, v) in &snap.gauges {
        bytes.extend_from_slice(name.as_bytes());
        put_u64(&mut bytes, *v);
    }
    for (name, h) in &snap.hists {
        bytes.extend_from_slice(name.as_bytes());
        for v in [h.count, h.sum_ns, h.min_ns, h.max_ns] {
            put_u64(&mut bytes, v);
        }
        for b in &h.buckets {
            put_u64(&mut bytes, *b);
        }
    }
    fnv1a64(&bytes)
}

/// Everything a finished leg contributes to the journal.
struct LegOutcome {
    results: Vec<Vec<u8>>,
    trace: Vec<marcel::TraceEvent>,
    end_ns: u64,
    metrics_digest: u64,
    counters: Vec<u64>,
    threads: Vec<ThreadSnap>,
    sections: Vec<(String, Vec<u8>)>,
}

/// Execute one leg and capture its journaled outcome. Tracing is forced
/// on (it never advances virtual time, so it cannot change results) and
/// the campaign's execution policy overrides the leg's.
fn run_leg(spec: &LegSpec, exec: ExecPolicy) -> Result<LegOutcome, SimError> {
    let mut config = spec.config.clone();
    config.exec = exec;
    config.trace = true;
    let program = spec.program.clone();
    let (results, kernel, session, engines) = run_world_artifacts(
        spec.topology.clone(),
        spec.placement.clone(),
        config,
        move |comm| program(comm),
    )?;
    let fc = session.fault_counters();
    let counters = vec![
        fc.retransmits,
        fc.drops,
        fc.duplicates,
        fc.deferrals,
        fc.dead_pairs,
        session.failovers(),
        session.rndv_reissues(),
    ];
    let mut matching = Vec::with_capacity(256);
    marcel::journal::wire::put_u32(&mut matching, engines.len() as u32);
    for e in &engines {
        e.matching_snapshot(&mut matching);
    }
    Ok(LegOutcome {
        results,
        trace: kernel.take_trace(),
        end_ns: kernel.end_time().as_nanos(),
        metrics_digest: metrics_digest(&kernel.metrics().snapshot()),
        counters,
        threads: kernel.thread_snapshots(),
        sections: vec![
            (
                "madeleine".to_string(),
                session.reliability_snapshot_bytes(),
            ),
            ("matching".to_string(), matching),
        ],
    })
}

/// Fold a finished leg's outcome into the campaign RNG chain.
fn fold_outcome(rng: u64, end_ns: u64, metrics_digest: u64, counters: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(counters.len() * 8);
    for c in counters {
        put_u64(&mut bytes, *c);
    }
    splitmix64(rng ^ end_ns ^ metrics_digest ^ fnv1a64(&bytes))
}

/// Restored (or initial) campaign progress.
struct Progress {
    legs_done: u64,
    rng: u64,
    fault_cursor: u64,
}

/// Run a fresh campaign, journaling into `sink`. Equivalent to
/// [`resume_campaign`] with an empty prior byte stream.
pub fn run_campaign<S, F>(
    cfg: &CampaignConfig,
    sink: S,
    leg_factory: F,
) -> Result<CampaignReport, CampaignError>
where
    S: JournalSink,
    F: Fn(&LegCtx) -> LegSpec,
{
    resume_campaign(cfg, &[], sink, leg_factory)
}

/// Resume (or start) a campaign from the bytes salvaged off a crashed
/// run's journal. The torn tail is dropped, the stream is cut back to
/// the last complete snapshot (the legs after it are re-executed), the
/// retained prefix is replayed into `sink` verbatim, and the campaign
/// runs to completion. The resulting journal is byte-identical to an
/// uninterrupted run's — under either execution policy.
pub fn resume_campaign<S, F>(
    cfg: &CampaignConfig,
    prior: &[u8],
    sink: S,
    leg_factory: F,
) -> Result<CampaignReport, CampaignError>
where
    S: JournalSink,
    F: Fn(&LegCtx) -> LegSpec,
{
    resume_campaign_until(cfg, prior, sink, leg_factory, cfg.legs)
}

/// [`resume_campaign`] that stops early, after `stop_after_leg` legs
/// have completed (clamped to `cfg.legs`). The journal prefix produced
/// is byte-identical to the first `stop_after_leg` legs of a full run —
/// the replay machinery uses this to re-execute *up to* a point of
/// interest without paying for the rest of the campaign.
pub fn resume_campaign_until<S, F>(
    cfg: &CampaignConfig,
    prior: &[u8],
    sink: S,
    leg_factory: F,
    stop_after_leg: u64,
) -> Result<CampaignReport, CampaignError>
where
    S: JournalSink,
    F: Fn(&LegCtx) -> LegSpec,
{
    cfg.validate()?;
    let stop_at = stop_after_leg.min(cfg.legs);
    let campaign_record = Record::Campaign {
        label: cfg.label.clone(),
        master_seed: cfg.master_seed,
        legs: cfg.legs,
        snapshot_every: cfg.snapshot_every,
    };
    let fresh = Progress {
        legs_done: 0,
        rng: splitmix64(cfg.master_seed),
        fault_cursor: 0,
    };

    let (mut writer, progress) = if prior.is_empty() {
        let mut w = JournalWriter::create(sink)?;
        w.append(&campaign_record)?;
        (w, fresh)
    } else {
        let scanned = marcel::scan(prior)?;
        match scanned.records.first() {
            None => {
                // Salvaged bytes hold a valid header but no complete
                // record: replay the header, start from scratch.
                let mut w = JournalWriter::resume(sink, &prior[..scanned.valid_len])?;
                w.append(&campaign_record)?;
                (w, fresh)
            }
            Some(first) if first.record == campaign_record => {
                match scanned.snapshot_indices().last() {
                    Some(&idx) => {
                        let rec = &scanned.records[idx];
                        let snap = match &rec.record {
                            Record::Snapshot(s) => s,
                            _ => unreachable!("snapshot_indices returned a non-snapshot"),
                        };
                        let w = JournalWriter::resume(sink, &prior[..rec.end])?;
                        (
                            w,
                            Progress {
                                legs_done: snap.legs_done,
                                rng: snap.rng_state,
                                fault_cursor: snap.fault_cursor,
                            },
                        )
                    }
                    None => {
                        // Campaign record intact, no snapshot yet: keep
                        // the campaign record, re-execute every leg.
                        let w = JournalWriter::resume(sink, &prior[..first.end])?;
                        (w, fresh)
                    }
                }
            }
            Some(first) => {
                return Err(CampaignError::Mismatch(format!(
                    "journal opens with {:?}, campaign expects {:?}",
                    first.record, campaign_record
                )));
            }
        }
    };

    let resumed_at_leg = progress.legs_done.min(stop_at);
    let mut legs_done = progress.legs_done;
    let mut rng = progress.rng;
    let mut fault_cursor = progress.fault_cursor;
    let mut events_appended = 0u64;
    let mut end_ns = 0u64;
    let mut last_results: Vec<Vec<u8>> = Vec::new();

    while legs_done < stop_at {
        let leg = legs_done;
        let ctx = LegCtx {
            leg,
            seed: splitmix64(rng ^ leg),
            fault_cursor,
        };
        let spec = leg_factory(&ctx);
        spec.config.validate()?;
        writer.append(&Record::RunBegin {
            leg,
            label: spec.label.clone(),
            config_digest: fnv1a64(spec.label.as_bytes()),
        })?;
        let outcome = run_leg(&spec, cfg.exec)?;
        for te in &outcome.trace {
            writer.append(&Record::Event {
                time_ns: te.time.as_nanos(),
                tid: te.tid as u64,
                event: te.what.clone(),
            })?;
            events_appended += 1;
        }
        writer.append(&Record::RunEnd(RunEndData {
            leg,
            end_ns: outcome.end_ns,
            metrics_digest: outcome.metrics_digest,
            counters: outcome.counters.clone(),
            results: outcome.results.clone(),
        }))?;
        rng = fold_outcome(
            rng,
            outcome.end_ns,
            outcome.metrics_digest,
            &outcome.counters,
        );
        fault_cursor += spec.fault_cells;
        legs_done += 1;
        end_ns = outcome.end_ns;
        last_results = outcome.results;
        if legs_done % cfg.snapshot_every == 0 {
            writer.append(&Record::Snapshot(SnapshotData {
                legs_done,
                end_ns: outcome.end_ns,
                rng_state: rng,
                fault_cursor,
                metrics_digest: outcome.metrics_digest,
                threads: outcome.threads,
                sections: outcome.sections,
            }))?;
        }
    }
    writer.flush()?;

    Ok(CampaignReport {
        digest: writer.digest(),
        bytes: writer.bytes_written(),
        records_appended: writer.records_written(),
        resumed_at_leg,
        legs_run: legs_done - resumed_at_leg,
        events_appended,
        end_ns,
        last_results,
    })
}
