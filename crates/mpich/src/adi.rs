//! The Abstract Device Interface: the contract between the generic MPI
//! layer and the devices, plus the per-destination device dispatch.
//!
//! Following the paper (§4.1), a configuration runs three devices
//! concurrently:
//!
//! * `ch_self` — intra-process (loop-back) communication;
//! * `smp_plug` — intra-node communication (SMP nodes);
//! * one inter-node device — `ch_mad` (the contribution) or `ch_p4`
//!   (the classical TCP device, used as the Figure 6 baseline).
//!
//! Device selection is purely locality-driven, as in every MPICH of the
//! time: the paper's point is that the *inter-node* device itself is
//! multi-protocol, so selection never needs to distinguish networks.

use std::sync::Arc;

use bytes::Bytes;
use marcel::{JoinHandle, VirtualDuration};
use simnet::{elect_switch_point, Protocol};

use crate::types::Envelope;

/// ADI-level software costs, charged on top of the communication-library
/// costs. These produce the paper's "message handling" overhead
/// component (≈7 µs, §5.2–5.4).
#[derive(Clone, Debug)]
pub struct AdiCosts {
    /// Sender-side request construction and device dispatch.
    pub send_setup: VirtualDuration,
    /// Packet-type demultiplexing in a polling thread.
    pub demux: VirtualDuration,
    /// Posting a receive (queue search and insertion).
    pub post_recv: VirtualDuration,
    /// Completing a request (status fill-in, handle recycling).
    pub complete: VirtualDuration,
    /// Per-byte cost of the polling thread's handling of received
    /// payloads (descriptor-chain walking, cache pollution). This is
    /// the per-byte component of the paper's "message handling"
    /// overhead — the reason ch_mad delivers 115 MB/s over BIP where
    /// raw Madeleine reaches 122 (Table 2 vs Table 1).
    pub recv_touch_per_byte_ns: f64,
}

impl AdiCosts {
    pub fn calibrated() -> Self {
        AdiCosts {
            send_setup: VirtualDuration::from_nanos(1_300),
            demux: VirtualDuration::from_nanos(800),
            post_recv: VirtualDuration::from_nanos(900),
            complete: VirtualDuration::from_nanos(400),
            recv_touch_per_byte_ns: 0.45,
        }
    }

    /// All-zero costs for unit tests that assert exact times.
    pub fn free() -> Self {
        AdiCosts {
            send_setup: VirtualDuration::ZERO,
            demux: VirtualDuration::ZERO,
            post_recv: VirtualDuration::ZERO,
            complete: VirtualDuration::ZERO,
            recv_touch_per_byte_ns: 0.0,
        }
    }
}

impl Default for AdiCosts {
    fn default() -> Self {
        AdiCosts::calibrated()
    }
}

/// How a device maps message size to a transfer mode. The historical
/// ADI reserved exactly one integer per `MPID_Device` for the
/// eager→rendezvous switch point (§4.2.2), forcing multi-network
/// devices to *elect* a single compromise value. `ProtocolPolicy`
/// lifts that limitation: the threshold is resolved per (device, peer,
/// channel), with the election kept as a compatibility mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PolicyMode {
    /// The paper's single elected threshold for every network: SCI's
    /// 8 KB when SCI is present, else the fastest network's (§4.2.2).
    Elected,
    /// Each channel uses its own network's experimentally ideal
    /// threshold (TCP 64 KB, SCI 8 KB, BIP 7 KB).
    #[default]
    PerNetwork,
    /// Per-network thresholds, plus rendezvous DATA striped across all
    /// rails when several networks connect the same rank pair.
    Striped,
}

/// The resolved protocol policy of one device: mode, the elected
/// fallback value, and an optional flat override (ablations).
#[derive(Clone, Debug)]
pub struct ProtocolPolicy {
    mode: PolicyMode,
    override_threshold: Option<usize>,
    elected: usize,
}

impl ProtocolPolicy {
    /// Policy for a device supporting `protocols`. The elected value is
    /// precomputed so `Elected` mode never re-runs the election.
    pub fn new(
        mode: PolicyMode,
        protocols: &[Protocol],
        override_threshold: Option<usize>,
    ) -> ProtocolPolicy {
        ProtocolPolicy {
            mode,
            override_threshold,
            elected: elect_switch_point(protocols),
        }
    }

    /// Policy of devices whose transfers copy either way (loop-back,
    /// shared memory, buffered TCP): eager at every size.
    pub fn always_eager() -> ProtocolPolicy {
        ProtocolPolicy {
            mode: PolicyMode::PerNetwork,
            override_threshold: Some(usize::MAX),
            elected: usize::MAX,
        }
    }

    pub fn mode(&self) -> PolicyMode {
        self.mode
    }

    /// The single value the paper's election rule produces for this
    /// device (§4.2.2).
    pub fn elected_threshold(&self) -> usize {
        self.elected
    }

    /// The eager→rendezvous threshold for a message that will ride a
    /// channel of `protocol`. `None` (protocol unknown, e.g. no direct
    /// channel resolved yet) falls back to the elected value.
    pub fn threshold(&self, protocol: Option<Protocol>) -> usize {
        if let Some(t) = self.override_threshold {
            return t;
        }
        match self.mode {
            PolicyMode::Elected => self.elected,
            PolicyMode::PerNetwork | PolicyMode::Striped => {
                protocol.map(|p| p.switch_point()).unwrap_or(self.elected)
            }
        }
    }

    /// Whether rendezvous DATA should be striped across every rail
    /// connecting the pair.
    pub fn stripes(&self) -> bool {
        self.mode == PolicyMode::Striped
    }
}

/// A communication device. Receiving happens through the device's own
/// polling threads delivering into the per-rank [`crate::engine::Engine`];
/// this trait only carries the operations the generic layer initiates.
pub trait Device: Send + Sync {
    fn name(&self) -> &'static str;

    /// The device's protocol policy: how message size and channel
    /// protocol map to eager vs rendezvous (and whether rendezvous
    /// DATA is striped). Replaces the ADI's historical single
    /// switch-point integer.
    fn policy(&self) -> &ProtocolPolicy;

    /// Blocking send of one MPI message (the device picks eager or
    /// rendezvous internally). `from`/`dst` are world ranks. With
    /// `sync` set (`MPI_Ssend` semantics) the send must not complete
    /// before a matching receive is posted — devices implement it with
    /// their rendezvous handshake.
    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool);

    /// Spawn this device's per-rank service threads (polling loops).
    /// Called from the rank's main thread during `MPI_Init`.
    fn start_rank(self: Arc<Self>, _rank: usize) -> Vec<JoinHandle<()>> {
        Vec::new()
    }

    /// Initiate shutdown for one rank (e.g. send the TERM packet to the
    /// local polling threads). Called after the finalize barrier.
    fn finalize_rank(&self, _rank: usize) {}
}

/// Which device carries a message, given source and destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Locality {
    IntraProcess,
    IntraNode,
    InterNode,
}

/// The per-world device table: locality-based dispatch.
pub struct DeviceSet {
    pub ch_self: Arc<dyn Device>,
    pub smp_plug: Arc<dyn Device>,
    pub remote: Arc<dyn Device>,
    /// rank -> node index, for locality decisions.
    pub rank_node: Vec<usize>,
}

impl DeviceSet {
    pub fn locality(&self, from: usize, to: usize) -> Locality {
        if from == to {
            Locality::IntraProcess
        } else if self.rank_node[from] == self.rank_node[to] {
            Locality::IntraNode
        } else {
            Locality::InterNode
        }
    }

    /// The device that carries traffic from `from` to `to`.
    pub fn select(&self, from: usize, to: usize) -> &Arc<dyn Device> {
        match self.locality(from, to) {
            Locality::IntraProcess => &self.ch_self,
            Locality::IntraNode => &self.smp_plug,
            Locality::InterNode => &self.remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str, ProtocolPolicy);
    impl Dummy {
        fn new(name: &'static str) -> Dummy {
            Dummy(name, ProtocolPolicy::always_eager())
        }
    }
    impl Device for Dummy {
        fn name(&self) -> &'static str {
            self.0
        }
        fn policy(&self) -> &ProtocolPolicy {
            &self.1
        }
        fn send(&self, _: usize, _: usize, _: Envelope, _: Bytes, _: bool) {}
    }

    fn set() -> DeviceSet {
        DeviceSet {
            ch_self: Arc::new(Dummy::new("ch_self")),
            smp_plug: Arc::new(Dummy::new("smp_plug")),
            remote: Arc::new(Dummy::new("ch_mad")),
            // Ranks 0,1 on node 0; rank 2 on node 1.
            rank_node: vec![0, 0, 1],
        }
    }

    #[test]
    fn locality_dispatch() {
        let s = set();
        assert_eq!(s.locality(0, 0), Locality::IntraProcess);
        assert_eq!(s.locality(0, 1), Locality::IntraNode);
        assert_eq!(s.locality(1, 2), Locality::InterNode);
        assert_eq!(s.select(0, 0).name(), "ch_self");
        assert_eq!(s.select(1, 0).name(), "smp_plug");
        assert_eq!(s.select(0, 2).name(), "ch_mad");
    }

    #[test]
    fn calibrated_costs_total_single_digit_microseconds() {
        let c = AdiCosts::calibrated();
        let total = c.send_setup + c.demux + c.post_recv + c.complete;
        assert!(
            total.as_micros_f64() < 5.0,
            "ADI costs should stay small: {total}"
        );
        assert!(total.as_micros_f64() > 2.0);
    }

    #[test]
    fn elected_mode_picks_sci_when_present() {
        // §4.2.2: "the network with the most influent switch point
        // value is SCI" — its 8 KB wins over both BIP's and TCP's.
        use Protocol::*;
        for protocols in [vec![Tcp, Sisci, Bip], vec![Sisci, Bip], vec![Tcp, Sisci]] {
            let p = ProtocolPolicy::new(PolicyMode::Elected, &protocols, None);
            assert_eq!(p.elected_threshold(), 8 * 1024, "{protocols:?}");
            // In Elected mode every channel sees the same value.
            for proto in protocols {
                assert_eq!(p.threshold(Some(proto)), 8 * 1024);
            }
        }
    }

    #[test]
    fn elected_mode_falls_back_to_fastest_network() {
        // Without SCI, the most performant supported network's value is
        // elected: BIP's 7 KB over TCP's 64 KB.
        let p = ProtocolPolicy::new(PolicyMode::Elected, &[Protocol::Tcp, Protocol::Bip], None);
        assert_eq!(p.elected_threshold(), 7 * 1024);
        assert_eq!(p.threshold(Some(Protocol::Tcp)), 7 * 1024);
        let tcp_only = ProtocolPolicy::new(PolicyMode::Elected, &[Protocol::Tcp], None);
        assert_eq!(tcp_only.elected_threshold(), 64 * 1024);
    }

    #[test]
    fn per_network_mode_uses_each_networks_ideal_threshold() {
        for mode in [PolicyMode::PerNetwork, PolicyMode::Striped] {
            let p = ProtocolPolicy::new(mode, &Protocol::ALL, None);
            assert_eq!(p.threshold(Some(Protocol::Tcp)), 64 * 1024);
            assert_eq!(p.threshold(Some(Protocol::Sisci)), 8 * 1024);
            assert_eq!(p.threshold(Some(Protocol::Bip)), 7 * 1024);
            // Unknown channel: the elected compromise value.
            assert_eq!(p.threshold(None), 8 * 1024);
        }
        assert!(!ProtocolPolicy::new(PolicyMode::PerNetwork, &Protocol::ALL, None).stripes());
        assert!(ProtocolPolicy::new(PolicyMode::Striped, &Protocol::ALL, None).stripes());
    }

    #[test]
    fn override_beats_every_mode() {
        for mode in [
            PolicyMode::Elected,
            PolicyMode::PerNetwork,
            PolicyMode::Striped,
        ] {
            let p = ProtocolPolicy::new(mode, &Protocol::ALL, Some(1234));
            for proto in Protocol::ALL {
                assert_eq!(p.threshold(Some(proto)), 1234);
            }
            assert_eq!(p.threshold(None), 1234);
        }
    }

    #[test]
    fn always_eager_never_switches() {
        let p = ProtocolPolicy::always_eager();
        assert_eq!(p.threshold(None), usize::MAX);
        assert_eq!(p.threshold(Some(Protocol::Tcp)), usize::MAX);
        assert!(!p.stripes());
    }
}
