//! The Abstract Device Interface: the contract between the generic MPI
//! layer and the devices, plus the per-destination device dispatch.
//!
//! Following the paper (§4.1), a configuration runs three devices
//! concurrently:
//!
//! * `ch_self` — intra-process (loop-back) communication;
//! * `smp_plug` — intra-node communication (SMP nodes);
//! * one inter-node device — `ch_mad` (the contribution) or `ch_p4`
//!   (the classical TCP device, used as the Figure 6 baseline).
//!
//! Device selection is purely locality-driven, as in every MPICH of the
//! time: the paper's point is that the *inter-node* device itself is
//! multi-protocol, so selection never needs to distinguish networks.

use std::sync::Arc;

use bytes::Bytes;
use marcel::{JoinHandle, VirtualDuration};

use crate::types::Envelope;

/// ADI-level software costs, charged on top of the communication-library
/// costs. These produce the paper's "message handling" overhead
/// component (≈7 µs, §5.2–5.4).
#[derive(Clone, Debug)]
pub struct AdiCosts {
    /// Sender-side request construction and device dispatch.
    pub send_setup: VirtualDuration,
    /// Packet-type demultiplexing in a polling thread.
    pub demux: VirtualDuration,
    /// Posting a receive (queue search and insertion).
    pub post_recv: VirtualDuration,
    /// Completing a request (status fill-in, handle recycling).
    pub complete: VirtualDuration,
    /// Per-byte cost of the polling thread's handling of received
    /// payloads (descriptor-chain walking, cache pollution). This is
    /// the per-byte component of the paper's "message handling"
    /// overhead — the reason ch_mad delivers 115 MB/s over BIP where
    /// raw Madeleine reaches 122 (Table 2 vs Table 1).
    pub recv_touch_per_byte_ns: f64,
}

impl AdiCosts {
    pub fn calibrated() -> Self {
        AdiCosts {
            send_setup: VirtualDuration::from_nanos(1_300),
            demux: VirtualDuration::from_nanos(800),
            post_recv: VirtualDuration::from_nanos(900),
            complete: VirtualDuration::from_nanos(400),
            recv_touch_per_byte_ns: 0.45,
        }
    }

    /// All-zero costs for unit tests that assert exact times.
    pub fn free() -> Self {
        AdiCosts {
            send_setup: VirtualDuration::ZERO,
            demux: VirtualDuration::ZERO,
            post_recv: VirtualDuration::ZERO,
            complete: VirtualDuration::ZERO,
            recv_touch_per_byte_ns: 0.0,
        }
    }
}

impl Default for AdiCosts {
    fn default() -> Self {
        AdiCosts::calibrated()
    }
}

/// A communication device. Receiving happens through the device's own
/// polling threads delivering into the per-rank [`crate::engine::Engine`];
/// this trait only carries the operations the generic layer initiates.
pub trait Device: Send + Sync {
    fn name(&self) -> &'static str;

    /// The device's single eager→rendezvous switch point. The ADI's
    /// `MPID_Device` reserves exactly one integer for this (§4.2.2) —
    /// the reproduction keeps that limitation on purpose; multi-network
    /// devices must *elect* one value.
    fn switch_point(&self) -> usize;

    /// Blocking send of one MPI message (the device picks eager or
    /// rendezvous internally). `from`/`dst` are world ranks. With
    /// `sync` set (`MPI_Ssend` semantics) the send must not complete
    /// before a matching receive is posted — devices implement it with
    /// their rendezvous handshake.
    fn send(&self, from: usize, dst: usize, env: Envelope, data: Bytes, sync: bool);

    /// Spawn this device's per-rank service threads (polling loops).
    /// Called from the rank's main thread during `MPI_Init`.
    fn start_rank(self: Arc<Self>, _rank: usize) -> Vec<JoinHandle<()>> {
        Vec::new()
    }

    /// Initiate shutdown for one rank (e.g. send the TERM packet to the
    /// local polling threads). Called after the finalize barrier.
    fn finalize_rank(&self, _rank: usize) {}
}

/// Which device carries a message, given source and destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Locality {
    IntraProcess,
    IntraNode,
    InterNode,
}

/// The per-world device table: locality-based dispatch.
pub struct DeviceSet {
    pub ch_self: Arc<dyn Device>,
    pub smp_plug: Arc<dyn Device>,
    pub remote: Arc<dyn Device>,
    /// rank -> node index, for locality decisions.
    pub rank_node: Vec<usize>,
}

impl DeviceSet {
    pub fn locality(&self, from: usize, to: usize) -> Locality {
        if from == to {
            Locality::IntraProcess
        } else if self.rank_node[from] == self.rank_node[to] {
            Locality::IntraNode
        } else {
            Locality::InterNode
        }
    }

    /// The device that carries traffic from `from` to `to`.
    pub fn select(&self, from: usize, to: usize) -> &Arc<dyn Device> {
        match self.locality(from, to) {
            Locality::IntraProcess => &self.ch_self,
            Locality::IntraNode => &self.smp_plug,
            Locality::InterNode => &self.remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str);
    impl Device for Dummy {
        fn name(&self) -> &'static str {
            self.0
        }
        fn switch_point(&self) -> usize {
            0
        }
        fn send(&self, _: usize, _: usize, _: Envelope, _: Bytes, _: bool) {}
    }

    fn set() -> DeviceSet {
        DeviceSet {
            ch_self: Arc::new(Dummy("ch_self")),
            smp_plug: Arc::new(Dummy("smp_plug")),
            remote: Arc::new(Dummy("ch_mad")),
            // Ranks 0,1 on node 0; rank 2 on node 1.
            rank_node: vec![0, 0, 1],
        }
    }

    #[test]
    fn locality_dispatch() {
        let s = set();
        assert_eq!(s.locality(0, 0), Locality::IntraProcess);
        assert_eq!(s.locality(0, 1), Locality::IntraNode);
        assert_eq!(s.locality(1, 2), Locality::InterNode);
        assert_eq!(s.select(0, 0).name(), "ch_self");
        assert_eq!(s.select(1, 0).name(), "smp_plug");
        assert_eq!(s.select(0, 2).name(), "ch_mad");
    }

    #[test]
    fn calibrated_costs_total_single_digit_microseconds() {
        let c = AdiCosts::calibrated();
        let total = c.send_setup + c.demux + c.post_recv + c.complete;
        assert!(total.as_micros_f64() < 5.0, "ADI costs should stay small: {total}");
        assert!(total.as_micros_f64() > 2.0);
    }
}
