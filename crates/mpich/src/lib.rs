//! # mpich — the MPI stack of the MPICH/Madeleine reproduction
//!
//! Layered exactly like the paper's Figure 3:
//!
//! ```text
//! MPI API                  Communicator: send/recv/isend/collectives
//! Generic part             collectives, groups, contexts, datatypes
//! Generic ADI code         request queues (Engine), protocol selection
//! Device interface         Device trait + locality dispatch (DeviceSet)
//!   ch_self                intra-process loop-back
//!   smp_plug               intra-node shared memory
//!   ch_mad                 ALL inter-node traffic, over Madeleine:
//!                          eager + rendezvous, split short packets,
//!                          per-channel polling threads, TERM shutdown
//!   ch_p4                  classical TCP device (Fig. 6 baseline)
//! ```
//!
//! Run a program with [`run_world`]:
//!
//! ```
//! use mpich::{run_world, Placement, WorldConfig, ReduceOp};
//! use simnet::Topology;
//!
//! let sums = run_world(
//!     Topology::meta_cluster(2), // SCI cluster + Myrinet cluster + TCP
//!     Placement::OneRankPerNode,
//!     WorldConfig::default(),
//!     |comm| {
//!         let me = comm.rank() as i64;
//!         comm.allreduce_vec(&[me], ReduceOp::Sum)[0]
//!     },
//! )
//! .unwrap();
//! assert_eq!(sums, vec![6; 4]);
//! ```

pub mod adi;
pub mod cart;
pub mod coll;
pub mod comm;
pub mod datatype;
pub mod device;
pub mod engine;
pub mod group;
pub mod journal;
pub mod matching;
pub mod op;
pub mod replay;
pub mod request;
pub mod types;
pub mod world;

pub use adi::{AdiCosts, Device, DeviceSet, Locality, PolicyMode, ProtocolPolicy};
pub use cart::CartComm;
pub use coll::{CollAlgorithm, CollEngine, CollError, CollOp, CollPolicy, CommClusters};
pub use comm::{CommRequest, Communicator, MpiEnv, PersistentRecv, PersistentSend};
pub use datatype::{from_bytes, to_bytes, BaseType, Datatype, MpiScalar};
pub use device::{ChMad, ChMadConfig, ChP4, ChP4Costs, ChSelf, Packet, SmpPlug};
pub use engine::Engine;
pub use group::Group;
pub use journal::{
    resume_campaign, resume_campaign_until, run_campaign, CampaignConfig, CampaignError,
    CampaignReport, LegCtx, LegProgram, LegSpec,
};
pub use marcel::{ConfigError, ExecPolicy, PollPolicy};
pub use matching::{PostedStore, UnexpectedStore};
pub use op::ReduceOp;
pub use replay::{
    decode_matching_snapshot, diff, reexecute_world_at, world_state_at, EngineMatchSnap,
    FieldDelta, MatchingSnapshot, UnexpectedEnvSnap, WorldDiff, WorldState,
};
pub use request::{wait_all, wait_any, Request};
pub use types::{Envelope, MatchSpec, Status, Tag};
pub use world::{
    run_world, run_world_artifacts, run_world_full, run_world_kernel, thread_metas, Placement,
    RemoteDeviceKind, WorldConfig,
};
