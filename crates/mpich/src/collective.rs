//! Collective operations, implemented in the generic layer over
//! point-to-point sends (paper Fig. 1/3: "Generic part — collective
//! operations"). All collective traffic uses the communicator's
//! *collective* context, so it can never match user point-to-point
//! receives.

use bytes::Bytes;

use crate::comm::Communicator;
use crate::datatype::{from_bytes, to_bytes, BaseType, MpiScalar};
use crate::op::{apply, ReduceOp};
use crate::types::Tag;

const T_BCAST: Tag = 2;
const T_REDUCE: Tag = 3;
const T_GATHER: Tag = 4;
const T_SCATTER: Tag = 5;
const T_ALLTOALL: Tag = 7;
const T_SCAN: Tag = 8;
const T_RSCAT: Tag = 9;

impl Communicator {
    /// `MPI_Barrier`: binomial reduce to rank 0, binomial broadcast out.
    pub fn barrier(&self) {
        let token = self.reduce_bytes(0, Vec::new(), BaseType::Byte, ReduceOp::Sum);
        let _ = self.bcast_bytes(0, if self.rank() == 0 { token } else { None });
    }

    /// `MPI_Bcast` of a byte buffer. The root passes `Some(data)`;
    /// everyone receives the broadcast value. Uses a binomial tree —
    /// O(log n) rounds.
    pub fn bcast_bytes(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        assert!(root < n, "bcast root {root} out of range");
        let rel = (me + n - root) % n;
        // Receive phase: scan up to the lowest set bit of the relative
        // rank — that bit identifies the parent. The root (rel == 0)
        // skips straight past the loop with mask = 2^ceil(log2 n).
        let mut mask = 1usize;
        let payload = if me == root {
            while mask < n {
                mask <<= 1;
            }
            data.expect("bcast root must provide the data")
        } else {
            loop {
                debug_assert!(mask < n);
                if rel & mask != 0 {
                    let parent = ((rel - mask) + root) % n;
                    let (bytes, _) = self.recv_probed_ctx(Some(parent), Some(T_BCAST), ctx);
                    break bytes;
                }
                mask <<= 1;
            }
        };
        // Forward phase: send to children at decreasing bit distances.
        mask >>= 1;
        while mask > 0 {
            if rel + mask < n {
                let dst = ((rel + mask) + root) % n;
                self.send_ctx(Bytes::copy_from_slice(&payload), dst, T_BCAST, ctx);
            }
            mask >>= 1;
        }
        payload
    }

    /// Typed broadcast.
    pub fn bcast_vec<T: MpiScalar>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        let bytes = self.bcast_bytes(root, data.map(|d| to_bytes(&d)));
        from_bytes(&bytes)
    }

    /// `MPI_Reduce` over packed scalars: binomial tree to `root`, which
    /// gets `Some(result)`; everyone else gets `None`.
    pub fn reduce_bytes(
        &self,
        root: usize,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        let rel = (me + n - root) % n;
        let mut acc = contribution;
        let mut mask = 1usize;
        loop {
            if mask >= n {
                // Only the root exhausts the loop without sending.
                debug_assert_eq!(rel, 0);
                return Some(acc);
            }
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < n {
                    let src = (src_rel + root) % n;
                    let (partial, _) = self.recv_probed_ctx(Some(src), Some(T_REDUCE), ctx);
                    apply(base, op, &mut acc, &partial);
                }
            } else {
                let dst = ((rel & !mask) + root) % n;
                self.send_ctx(Bytes::from(acc), dst, T_REDUCE, ctx);
                return None;
            }
            mask <<= 1;
        }
    }

    /// Typed reduce.
    pub fn reduce_vec<T: MpiScalar>(
        &self,
        root: usize,
        contribution: &[T],
        op: ReduceOp,
    ) -> Option<Vec<T>> {
        self.reduce_bytes(root, to_bytes(contribution), T::BASE, op)
            .map(|b| from_bytes(&b))
    }

    /// `MPI_Allreduce`: reduce to rank 0, then broadcast.
    pub fn allreduce_bytes(&self, contribution: Vec<u8>, base: BaseType, op: ReduceOp) -> Vec<u8> {
        let reduced = self.reduce_bytes(0, contribution, base, op);
        self.bcast_bytes(0, reduced)
    }

    /// Typed allreduce.
    pub fn allreduce_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        from_bytes(&self.allreduce_bytes(to_bytes(contribution), T::BASE, op))
    }

    /// `MPI_Gather(v)`: everyone contributes a (possibly different-
    /// sized) byte buffer; the root gets them ordered by rank.
    pub fn gather_bytes(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        if me == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
            parts[me] = data;
            for src in (0..n).filter(|s| *s != root) {
                let (bytes, _) = self.recv_probed_ctx(Some(src), Some(T_GATHER), ctx);
                parts[src] = bytes;
            }
            Some(parts)
        } else {
            self.send_ctx(Bytes::from(data), root, T_GATHER, ctx);
            None
        }
    }

    /// Typed gather.
    pub fn gather_vec<T: MpiScalar>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        self.gather_bytes(root, to_bytes(data))
            .map(|parts| parts.iter().map(|p| from_bytes(p)).collect())
    }

    /// `MPI_Scatter(v)`: the root provides one byte buffer per rank.
    pub fn scatter_bytes(&self, root: usize, parts: Option<Vec<Vec<u8>>>) -> Vec<u8> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        if me == root {
            let parts = parts.expect("scatter root must provide the parts");
            assert_eq!(parts.len(), n, "scatter needs one part per rank");
            let mut mine = Vec::new();
            for (dst, part) in parts.into_iter().enumerate() {
                if dst == me {
                    mine = part;
                } else {
                    self.send_ctx(Bytes::from(part), dst, T_SCATTER, ctx);
                }
            }
            mine
        } else {
            let (bytes, _) = self.recv_probed_ctx(Some(root), Some(T_SCATTER), ctx);
            bytes
        }
    }

    /// `MPI_Allgather(v)`: gather to rank 0, broadcast the concatenation.
    pub fn allgather_bytes(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let gathered = self.gather_bytes(0, data);
        let blob = self.bcast_bytes(0, gathered.map(encode_parts));
        decode_parts(&blob)
    }

    /// Typed allgather.
    pub fn allgather_vec<T: MpiScalar>(&self, data: &[T]) -> Vec<Vec<T>> {
        self.allgather_bytes(to_bytes(data))
            .iter()
            .map(|p| from_bytes(p))
            .collect()
    }

    /// `MPI_Alltoall(v)`: pairwise exchange rounds; `parts[d]` goes to
    /// rank `d`, the result's entry `s` came from rank `s`.
    pub fn alltoall_bytes(&self, parts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        assert_eq!(parts.len(), n, "alltoall needs one part per rank");
        let mut result: Vec<Vec<u8>> = vec![Vec::new(); n];
        result[me] = parts[me].clone();
        for round in 1..n {
            let dst = (me + round) % n;
            let src = (me + n - round) % n;
            // Non-blocking send to the round's partner, then receive.
            let send = {
                let comm = self.clone();
                let payload = parts[dst].clone();
                let dst_local = dst;
                marcel::spawn(format!("rank{}-a2a", self.env().world_rank), move || {
                    comm.send_ctx(Bytes::from(payload), dst_local, T_ALLTOALL, ctx);
                })
            };
            let (bytes, _) = self.recv_probed_ctx(Some(src), Some(T_ALLTOALL), ctx);
            result[src] = bytes;
            send.join();
        }
        result
    }

    /// `MPI_Scan` (inclusive prefix reduction, linear chain).
    pub fn scan_bytes(&self, contribution: Vec<u8>, base: BaseType, op: ReduceOp) -> Vec<u8> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        let mut acc = contribution;
        if me > 0 {
            let (prefix, _) = self.recv_probed_ctx(Some(me - 1), Some(T_SCAN), ctx);
            let mut combined = prefix;
            apply(base, op, &mut combined, &acc);
            acc = combined;
        }
        if me + 1 < n {
            self.send_ctx(Bytes::copy_from_slice(&acc), me + 1, T_SCAN, ctx);
        }
        acc
    }

    /// Typed scan.
    pub fn scan_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Vec<T> {
        from_bytes(&self.scan_bytes(to_bytes(contribution), T::BASE, op))
    }

    /// `MPI_Exscan` (exclusive prefix reduction): rank 0 gets `None`,
    /// rank r > 0 gets the reduction of ranks `0..r`.
    pub fn exscan_bytes(
        &self,
        contribution: Vec<u8>,
        base: BaseType,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        let prefix = if me > 0 {
            let (p, _) = self.recv_probed_ctx(Some(me - 1), Some(T_SCAN), ctx);
            Some(p)
        } else {
            None
        };
        if me + 1 < n {
            let mut outgoing = match &prefix {
                Some(p) => {
                    let mut acc = p.clone();
                    apply(base, op, &mut acc, &contribution);
                    acc
                }
                None => contribution,
            };
            outgoing.shrink_to_fit();
            self.send_ctx(Bytes::from(outgoing), me + 1, T_SCAN, ctx);
        }
        prefix
    }

    /// Typed exclusive scan.
    pub fn exscan_vec<T: MpiScalar>(&self, contribution: &[T], op: ReduceOp) -> Option<Vec<T>> {
        self.exscan_bytes(to_bytes(contribution), T::BASE, op)
            .map(|b| from_bytes(&b))
    }

    /// `MPI_Reduce_scatter_block`: reduce elementwise across ranks, then
    /// scatter equal blocks — rank r gets the r-th block of the
    /// reduction. `contribution` must hold `size() * block_elems`
    /// elements.
    pub fn reduce_scatter_vec<T: MpiScalar>(
        &self,
        contribution: &[T],
        block_elems: usize,
        op: ReduceOp,
    ) -> Vec<T> {
        let n = self.size();
        let me = self.rank();
        let ctx = self.coll_context();
        assert_eq!(
            contribution.len(),
            n * block_elems,
            "reduce_scatter needs size * block_elems elements"
        );
        // Reduce to rank 0, then scatter the blocks (the classic
        // reduce+scatterv formulation; fine for these scales).
        let reduced = self.reduce_bytes(0, to_bytes(contribution), T::BASE, op);
        let block_bytes = block_elems * T::BASE.size();
        if me == 0 {
            let reduced = reduced.expect("root holds the reduction");
            let mut mine = Vec::new();
            for (dst, chunk) in reduced.chunks(block_bytes.max(1)).take(n).enumerate() {
                if dst == 0 {
                    mine = chunk.to_vec();
                } else {
                    self.send_ctx(Bytes::copy_from_slice(chunk), dst, T_RSCAT, ctx);
                }
            }
            from_bytes(&mine)
        } else {
            let (bytes, _) = self.recv_probed_ctx(Some(0), Some(T_RSCAT), ctx);
            from_bytes(&bytes)
        }
    }
}

/// Length-prefixed concatenation of per-rank buffers (for relaying
/// gathered data through a broadcast).
fn encode_parts(parts: Vec<Vec<u8>>) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| p.len() + 8).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&p);
    }
    out
}

fn decode_parts(blob: &[u8]) -> Vec<Vec<u8>> {
    let mut parts = Vec::new();
    let mut cursor = 0;
    while cursor < blob.len() {
        let len = u64::from_le_bytes(blob[cursor..cursor + 8].try_into().unwrap()) as usize;
        cursor += 8;
        parts.push(blob[cursor..cursor + len].to_vec());
        cursor += len;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        let parts = vec![vec![1u8, 2], vec![], vec![9u8; 100]];
        assert_eq!(decode_parts(&encode_parts(parts.clone())), parts);
    }
}
