//! Communicators: the user-facing MPI interface (point-to-point part).
//!
//! A [`Communicator`] is a group of ranks plus a pair of context ids
//! (one for point-to-point traffic, one for the collective layer), bound
//! to the calling rank's engine and device table. All public rank
//! arguments and statuses are *communicator-local*; translation to
//! world ranks happens here.

use std::sync::Arc;

use bytes::Bytes;

use crate::adi::DeviceSet;
use crate::coll::CollEngine;
use crate::datatype::{from_bytes, to_bytes, Datatype, MpiScalar};
use crate::engine::Engine;
use crate::group::Group;
use crate::request::{ReqInner, Request};
use crate::types::{Envelope, MatchSpec, Status, Tag};
use marcel::SimMutex;

/// Per-rank MPI environment shared by every communicator of that rank.
pub struct MpiEnv {
    pub world_rank: usize,
    pub world_size: usize,
    pub engine: Arc<Engine>,
    pub devices: Arc<DeviceSet>,
    /// Global context-id allocator (roots allocate, then broadcast).
    pub ctx_alloc: Arc<SimMutex<u32>>,
    /// The collective algorithm engine (policy + world cluster map).
    pub coll: Arc<CollEngine>,
}

impl MpiEnv {
    fn alloc_contexts(&self) -> u32 {
        let mut next = self.ctx_alloc.lock();
        let base = *next;
        *next += 2; // point-to-point + collective
        base
    }
}

/// An MPI communicator.
#[derive(Clone)]
pub struct Communicator {
    env: Arc<MpiEnv>,
    group: Arc<Group>,
    /// Point-to-point context; collective traffic uses `context + 1`.
    context: u32,
    /// This rank's position in `group`.
    local: usize,
}

impl Communicator {
    /// `MPI_COMM_WORLD` for this rank (context ids 0/1).
    pub fn world(env: Arc<MpiEnv>) -> Communicator {
        let group = Group::world(env.world_size);
        let local = env.world_rank;
        Communicator {
            env,
            group,
            context: 0,
            local,
        }
    }

    pub fn rank(&self) -> usize {
        self.local
    }

    pub fn size(&self) -> usize {
        self.group.size()
    }

    pub fn group(&self) -> &Arc<Group> {
        &self.group
    }

    pub fn context(&self) -> u32 {
        self.context
    }

    pub(crate) fn env(&self) -> &Arc<MpiEnv> {
        &self.env
    }

    pub(crate) fn coll_context(&self) -> u32 {
        self.context + 1
    }

    fn world_of(&self, local: usize) -> usize {
        self.group.world_rank(local)
    }

    fn localize(&self, status: Status) -> Status {
        let source = self
            .group
            .local_rank(status.source)
            .expect("status source outside the communicator (context leak)");
        Status {
            source,
            tag: status.tag,
            len: status.len,
        }
    }

    // ------------------------------------------------------------------
    // Core byte-level operations (context-parameterized for reuse by the
    // collective layer).
    // ------------------------------------------------------------------

    pub(crate) fn send_ctx(&self, data: Bytes, dst_local: usize, tag: Tag, context: u32) {
        self.send_ctx_mode(data, dst_local, tag, context, false);
    }

    pub(crate) fn send_ctx_mode(
        &self,
        data: Bytes,
        dst_local: usize,
        tag: Tag,
        context: u32,
        sync: bool,
    ) {
        let from = self.env.world_rank;
        let dst = self.world_of(dst_local);
        let env = Envelope {
            src: from,
            tag,
            context,
            len: data.len(),
        };
        let device = self.env.devices.select(from, dst).clone();
        device.send(from, dst, env, data, sync);
    }

    pub(crate) fn irecv_ctx(
        &self,
        cap: usize,
        src_local: Option<usize>,
        tag: Option<Tag>,
        context: u32,
    ) -> Request {
        let spec = MatchSpec {
            src: src_local.map(|l| self.world_of(l)),
            tag,
            context,
        };
        let inner = ReqInner::new();
        self.env.engine.post_recv(spec, cap, inner.clone());
        Request::new(inner)
    }

    pub(crate) fn recv_ctx(
        &self,
        cap: usize,
        src_local: Option<usize>,
        tag: Option<Tag>,
        context: u32,
    ) -> (Vec<u8>, Status) {
        let (data, status) = self.irecv_ctx(cap, src_local, tag, context).wait_data();
        (data, self.localize(status))
    }

    // ------------------------------------------------------------------
    // Public point-to-point API.
    // ------------------------------------------------------------------

    /// Blocking send (`MPI_Send`). Completes locally in eager mode; in
    /// rendezvous mode it returns once the data is handed to the
    /// receiver's buffer.
    pub fn send(&self, data: &[u8], dst: usize, tag: Tag) {
        self.send_ctx(Bytes::copy_from_slice(data), dst, tag, self.context);
    }

    /// Owned-buffer send, avoiding the host copy.
    pub fn send_bytes(&self, data: Bytes, dst: usize, tag: Tag) {
        self.send_ctx(data, dst, tag, self.context);
    }

    /// Synchronous send (`MPI_Ssend`): completes only once the matching
    /// receive is posted — always takes the rendezvous path, whatever
    /// the message size.
    pub fn ssend(&self, data: &[u8], dst: usize, tag: Tag) {
        self.send_ctx_mode(Bytes::copy_from_slice(data), dst, tag, self.context, true);
    }

    /// Non-blocking synchronous send (`MPI_Issend`).
    pub fn issend(&self, data: Vec<u8>, dst: usize, tag: Tag) -> Request {
        let inner = ReqInner::new();
        let comm = self.clone();
        let my_world = self.env.world_rank;
        let req = inner.clone();
        let len = data.len();
        marcel::spawn(format!("rank{my_world}-issend"), move || {
            comm.send_ctx_mode(Bytes::from(data), dst, tag, comm.context, true);
            req.complete(
                None,
                Status {
                    source: my_world,
                    tag,
                    len,
                },
            );
        });
        Request::new(inner)
    }

    /// Non-blocking send (`MPI_Isend`): spawns a worker thread that runs
    /// the blocking protocol, as MPICH/Madeleine does (§4.2.3).
    pub fn isend(&self, data: Vec<u8>, dst: usize, tag: Tag) -> Request {
        let inner = ReqInner::new();
        let comm = self.clone();
        let my_world = self.env.world_rank;
        let req = inner.clone();
        let len = data.len();
        marcel::spawn(format!("rank{my_world}-isend"), move || {
            comm.send_ctx(Bytes::from(data), dst, tag, comm.context);
            req.complete(
                None,
                Status {
                    source: my_world,
                    tag,
                    len,
                },
            );
        });
        Request::new(inner)
    }

    /// Blocking receive (`MPI_Recv`) of up to `cap` bytes. `None` source
    /// or tag mean `MPI_ANY_SOURCE` / `MPI_ANY_TAG`.
    pub fn recv(&self, cap: usize, src: Option<usize>, tag: Option<Tag>) -> (Vec<u8>, Status) {
        self.recv_ctx(cap, src, tag, self.context)
    }

    /// Blocking receive returning the payload as a refcounted slice of
    /// the wire buffer — the zero-copy counterpart of
    /// [`Communicator::send_bytes`] for callers that don't need an
    /// owned `Vec`.
    pub fn recv_bytes(&self, cap: usize, src: Option<usize>, tag: Option<Tag>) -> (Bytes, Status) {
        let (data, status) = self.irecv_ctx(cap, src, tag, self.context).wait_bytes();
        (
            data.expect("receive request completed without data"),
            self.localize(status),
        )
    }

    /// Non-blocking receive (`MPI_Irecv`). Wrap the result status with
    /// [`Communicator::localize_status`] if rank translation matters, or
    /// use [`CommRequest`] via [`Communicator::irecv_local`].
    pub fn irecv(&self, cap: usize, src: Option<usize>, tag: Option<Tag>) -> Request {
        self.irecv_ctx(cap, src, tag, self.context)
    }

    /// Non-blocking receive whose wait returns communicator-local
    /// statuses.
    pub fn irecv_local(&self, cap: usize, src: Option<usize>, tag: Option<Tag>) -> CommRequest {
        CommRequest {
            inner: self.irecv(cap, src, tag),
            group: self.group.clone(),
        }
    }

    /// Translate a raw (world-rank) status to this communicator.
    pub fn localize_status(&self, status: Status) -> Status {
        self.localize(status)
    }

    /// `MPI_Sendrecv`: concurrent send and receive (deadlock-free even
    /// against itself).
    pub fn sendrecv(
        &self,
        data: &[u8],
        dst: usize,
        send_tag: Tag,
        cap: usize,
        src: Option<usize>,
        recv_tag: Option<Tag>,
    ) -> (Vec<u8>, Status) {
        let recv = self.irecv(cap, src, recv_tag);
        let send = self.isend(data.to_vec(), dst, send_tag);
        let (bytes, status) = recv.wait_data();
        send.wait_send();
        (bytes, self.localize(status))
    }

    /// Blocking probe (`MPI_Probe`).
    pub fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> Status {
        let spec = MatchSpec {
            src: src.map(|l| self.world_of(l)),
            tag,
            context: self.context,
        };
        self.localize(self.env.engine.probe(spec))
    }

    /// Non-blocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Status> {
        let spec = MatchSpec {
            src: src.map(|l| self.world_of(l)),
            tag,
            context: self.context,
        };
        self.env.engine.iprobe(spec).map(|s| self.localize(s))
    }

    /// Probe, then receive exactly the probed message (helper used by
    /// the collective layer for unknown-size transfers).
    pub(crate) fn recv_probed_ctx(
        &self,
        src_local: Option<usize>,
        tag: Option<Tag>,
        context: u32,
    ) -> (Vec<u8>, Status) {
        let spec = MatchSpec {
            src: src_local.map(|l| self.world_of(l)),
            tag,
            context,
        };
        let (st, handle) = self.env.engine.probe_handle(spec);
        // Receive the probed message by handle — the probe already
        // located it, so no second queue lookup happens.
        let exact = MatchSpec {
            src: Some(st.source),
            tag: Some(st.tag),
            context,
        };
        let inner = ReqInner::new();
        self.env
            .engine
            .post_recv_probed(handle, exact, st.len, inner.clone());
        let (data, status) = Request::new(inner).wait_data();
        (data, self.localize(status))
    }

    // ------------------------------------------------------------------
    // Typed convenience API.
    // ------------------------------------------------------------------

    /// Send a scalar slice.
    pub fn send_slice<T: MpiScalar>(&self, data: &[T], dst: usize, tag: Tag) {
        self.send_bytes(Bytes::from(to_bytes(data)), dst, tag);
    }

    /// Receive exactly `count` scalars.
    pub fn recv_vec<T: MpiScalar>(
        &self,
        count: usize,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> (Vec<T>, Status) {
        let (bytes, status) = self.recv(count * T::BASE.size(), src, tag);
        assert_eq!(
            bytes.len(),
            count * T::BASE.size(),
            "typed receive length mismatch"
        );
        (from_bytes(&bytes), status)
    }

    /// Non-blocking typed send.
    pub fn isend_slice<T: MpiScalar>(&self, data: &[T], dst: usize, tag: Tag) -> Request {
        self.isend(to_bytes(data), dst, tag)
    }

    /// Send `count` instances of `datatype` from a raw user buffer,
    /// packing non-contiguous layouts first (the MPICH datatype engine).
    pub fn send_typed(&self, buf: &[u8], datatype: &Datatype, count: usize, dst: usize, tag: Tag) {
        let payload = if datatype.is_contiguous() {
            Bytes::copy_from_slice(&buf[..datatype.size() * count])
        } else {
            Bytes::from(datatype.pack(buf, count))
        };
        self.send_bytes(payload, dst, tag);
    }

    /// Receive `count` instances of `datatype` into a raw user buffer.
    pub fn recv_typed(
        &self,
        buf: &mut [u8],
        datatype: &Datatype,
        count: usize,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Status {
        let (bytes, status) = self.recv(datatype.size() * count, src, tag);
        assert_eq!(
            bytes.len(),
            datatype.size() * count,
            "typed receive length mismatch"
        );
        datatype.unpack(buf, &bytes, count);
        status
    }

    /// `MPI_Send_init`: build a persistent send (see [`PersistentSend`]).
    pub fn send_init(&self, data: Vec<u8>, dst: usize, tag: Tag) -> PersistentSend {
        PersistentSend {
            comm: self.clone(),
            data: Bytes::from(data),
            dst,
            tag,
        }
    }

    /// `MPI_Recv_init`: build a persistent receive.
    pub fn recv_init(&self, cap: usize, src: Option<usize>, tag: Option<Tag>) -> PersistentRecv {
        PersistentRecv {
            comm: self.clone(),
            cap,
            src,
            tag,
        }
    }

    // ------------------------------------------------------------------
    // Communicator management.
    // ------------------------------------------------------------------

    /// `MPI_Comm_dup`: same group, fresh contexts. Collective.
    pub fn dup(&self) -> Communicator {
        let base = if self.local == 0 {
            let base = self.env.alloc_contexts();
            self.bcast_bytes(0, Some(base.to_le_bytes().to_vec()));
            base
        } else {
            let bytes = self.bcast_bytes(0, None);
            u32::from_le_bytes(bytes.try_into().expect("context broadcast is 4 bytes"))
        };
        Communicator {
            env: self.env.clone(),
            group: self.group.clone(),
            context: base,
            local: self.local,
        }
    }

    /// `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`: one communicator
    /// per physical node, ordered by rank — the standard tool for
    /// hierarchical (node-aware) algorithms on SMP clusters.
    pub fn split_by_node(&self) -> Communicator {
        let node = self.env.devices.rank_node[self.env.world_rank] as i32;
        self.split(node, self.local as i32)
            .expect("node color is never undefined")
    }

    /// `MPI_Comm_split`: partition by `color` (negative = undefined:
    /// the caller gets `None`), ordering each part by `(key, rank)`.
    /// Collective.
    pub fn split(&self, color: i32, key: i32) -> Option<Communicator> {
        // Gather (color, key) pairs to local root.
        let mine = [color, key];
        let gathered = self.gather_bytes(0, to_bytes(&mine));
        // Root computes every part's (world-rank list, context base) and
        // scatters each member its own part.
        let assignments: Option<Vec<Vec<u8>>> = if self.local == 0 {
            let pairs: Vec<(i32, i32, usize)> = gathered
                .expect("root gathers")
                .iter()
                .enumerate()
                .map(|(local, bytes)| {
                    let v: Vec<i32> = from_bytes(bytes);
                    (v[0], v[1], local)
                })
                .collect();
            let mut colors: Vec<i32> = pairs.iter().map(|p| p.0).filter(|c| *c >= 0).collect();
            colors.sort_unstable();
            colors.dedup();
            let mut per_local: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
            for color in colors {
                let mut members: Vec<(i32, usize)> = pairs
                    .iter()
                    .filter(|p| p.0 == color)
                    .map(|p| (p.1, p.2))
                    .collect();
                members.sort_unstable();
                let base = self.env.alloc_contexts();
                // Encode: context base + world ranks of the new group.
                let mut blob: Vec<i64> = vec![base as i64];
                blob.extend(members.iter().map(|(_, l)| self.world_of(*l) as i64));
                for (_, local) in &members {
                    per_local[*local] = to_bytes(&blob);
                }
            }
            Some(per_local)
        } else {
            None
        };
        let mine = self.scatter_bytes(0, assignments);
        if mine.is_empty() {
            return None;
        }
        let blob: Vec<i64> = from_bytes(&mine);
        let context = blob[0] as u32;
        let ranks: Vec<usize> = blob[1..].iter().map(|r| *r as usize).collect();
        let group = Group::from_ranks(ranks);
        let local = group
            .local_rank(self.env.world_rank)
            .expect("split assignment must include self");
        Some(Communicator {
            env: self.env.clone(),
            group,
            context,
            local,
        })
    }
}

/// A persistent send operation (`MPI_Send_init`): fix the message once,
/// `start` it any number of times (`MPI_Start`). Each start behaves
/// like an `isend` of the same buffer.
pub struct PersistentSend {
    comm: Communicator,
    data: Bytes,
    dst: usize,
    tag: Tag,
}

impl PersistentSend {
    /// Launch one round; complete with `Request::wait`/`wait_send`.
    pub fn start(&self) -> Request {
        let inner = ReqInner::new();
        let comm = self.comm.clone();
        let (data, dst, tag) = (self.data.clone(), self.dst, self.tag);
        let my_world = comm.env.world_rank;
        let req = inner.clone();
        let len = data.len();
        marcel::spawn(format!("rank{my_world}-psend"), move || {
            comm.send_ctx(data, dst, tag, comm.context);
            req.complete(
                None,
                Status {
                    source: my_world,
                    tag,
                    len,
                },
            );
        });
        Request::new(inner)
    }
}

/// A persistent receive operation (`MPI_Recv_init`/`MPI_Start`).
pub struct PersistentRecv {
    comm: Communicator,
    cap: usize,
    src: Option<usize>,
    tag: Option<Tag>,
}

impl PersistentRecv {
    /// Post one round; complete with [`CommRequest::wait_data`].
    pub fn start(&self) -> CommRequest {
        self.comm.irecv_local(self.cap, self.src, self.tag)
    }
}

/// A request whose `wait` returns communicator-local statuses.
pub struct CommRequest {
    inner: Request,
    group: Arc<Group>,
}

impl CommRequest {
    pub fn wait(self) -> (Option<Vec<u8>>, Status) {
        let (data, status) = self.inner.wait();
        let source = self
            .group
            .local_rank(status.source)
            .expect("status source outside the communicator");
        (data, Status { source, ..status })
    }

    pub fn wait_data(self) -> (Vec<u8>, Status) {
        let (data, status) = self.wait();
        (data.expect("wait_data on a send request"), status)
    }

    pub fn test(&mut self) -> bool {
        self.inner.test()
    }
}
