//! The per-rank matching engine: the ADI's "request queues management"
//! box (paper Fig. 3). One engine per rank holds the posted-receive
//! queue and the unexpected-message queue, shared by *all* devices of
//! that rank — which is what makes `MPI_ANY_SOURCE` work across
//! `ch_self`, `smp_plug` and `ch_mad` simultaneously.
//!
//! Devices deliver into the engine from their polling threads:
//!
//! * [`Engine::deliver_eager`] — a short/eager message: matched against
//!   posted receives, else buffered (the intermediate copy the eager
//!   mode pays for, §4.1).
//! * [`Engine::deliver_rndv_offer`] — a rendezvous REQUEST: when a
//!   matching receive exists (or arrives), the engine allocates an
//!   rhandle ("sync_address") and invokes the device's responder, which
//!   sends the OK_TO_SEND message *from a separate thread* (a polling
//!   thread must never send, §4.2.3).
//! * [`Engine::rndv_complete`] — the rendezvous DATA message, routed by
//!   rhandle straight into the posted buffer: zero-copy.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use marcel::obs::{self, ActiveSpan, Event, SpanKind};
use marcel::{Kernel, SimCondvar, SimMutex, VirtualDuration};

use crate::adi::AdiCosts;
use crate::matching::{PostedStore, UnexpectedStore};
use crate::request::ReqInner;
use crate::types::{Envelope, MatchSpec, Status};

/// Responder invoked when a rendezvous request finds its receive: gets
/// the freshly allocated rhandle token (the paper's `sync_address`) and
/// must arrange the OK_TO_SEND reply.
pub type RndvResponder = Box<dyn FnOnce(u64) + Send>;

enum UnexpPayload {
    /// Buffered eager data plus the per-byte cost (ns) of copying it out
    /// when the receive finally posts, and the handling span opened on
    /// the polling thread (parked here until the receive posts).
    Eager(Bytes, f64, Option<ActiveSpan>),
    /// A rendezvous offer waiting for its receive.
    Rndv(RndvResponder),
}

struct Posted {
    /// Receive buffer capacity; a longer incoming message is an MPI
    /// truncation error (we fail fast).
    cap: usize,
    req: Arc<ReqInner>,
}

/// Assembly buffer of one receiver-side rendezvous transaction. A
/// whole-message delivery adopts the wire buffer without copying; a
/// chunked (striped / forwarded) transfer assembles into an owned
/// scratch buffer.
enum RndvBuf {
    Empty,
    Whole(Bytes),
    Parts(Vec<u8>),
}

/// One receiver-side rendezvous transaction, possibly assembled from
/// several chunks (chunking happens on forwarded routes to keep the
/// gateway pipeline full).
struct RndvSlot {
    req: Arc<ReqInner>,
    total: usize,
    buf: RndvBuf,
    received: usize,
}

struct EngineState {
    posted: PostedStore<Posted>,
    unexpected: UnexpectedStore<UnexpPayload>,
    /// Receiver-side rendezvous transactions: rhandle token -> slot.
    rndv: HashMap<u64, RndvSlot>,
    next_rhandle: u64,
}

/// The matching engine of one rank.
pub struct Engine {
    rank: usize,
    state: SimMutex<EngineState>,
    /// Mirrors `state` for probe wake-ups.
    arrivals: SimCondvar,
    costs: AdiCosts,
    /// High-water-mark gauge keys, interned at construction — the
    /// post/arrival paths must not pay a `format!` per message.
    posted_hwm_key: String,
    unexpected_hwm_key: String,
}

impl Engine {
    pub fn new(kernel: &Kernel, rank: usize, costs: AdiCosts) -> Arc<Engine> {
        Arc::new(Engine {
            rank,
            state: SimMutex::new(
                kernel,
                EngineState {
                    posted: PostedStore::new(),
                    unexpected: UnexpectedStore::new(),
                    rndv: HashMap::new(),
                    next_rhandle: 1,
                },
            ),
            arrivals: SimCondvar::new(kernel),
            costs,
            posted_hwm_key: format!("adi/rank{rank}/posted_hwm"),
            unexpected_hwm_key: format!("adi/rank{rank}/unexpected_hwm"),
        })
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    fn check_cap(env: &Envelope, cap: usize) {
        assert!(
            env.len <= cap,
            "message truncation: {}-byte message for a {}-byte receive (src={}, tag={})",
            env.len,
            cap,
            env.src,
            env.tag
        );
    }

    fn status_of(env: &Envelope) -> Status {
        Status {
            source: env.src,
            tag: env.tag,
            len: env.len,
        }
    }

    /// Post a receive. If a matching unexpected message is buffered it
    /// completes (or initiates the rendezvous reply) immediately;
    /// otherwise the receive is queued. The whole call is measured as a
    /// `post` span — the request-management cost the paper's §5
    /// "handling" decomposition charges to the ADI (usually overlapped
    /// with the message flight in a ping-pong).
    pub(crate) fn post_recv(&self, spec: MatchSpec, cap: usize, req: Arc<ReqInner>) {
        let post_span = obs::span_begin(SpanKind::Post, "adi");
        marcel::advance(self.costs.post_recv);
        let mut st = self.state.lock();
        if let Some((env, payload)) = st.unexpected.take_match(&spec) {
            self.complete_unexpected(st, env, payload, cap, req);
            obs::span_end(post_span);
            return;
        }
        st.posted.insert(spec, Posted { cap, req });
        let (rank, depth) = (self.rank, st.posted.len());
        drop(st); // the queue unlock belongs to the posting cost
        obs::gauge_max(&self.posted_hwm_key, depth as u64);
        obs::emit(move || Event::RecvPosted { rank, depth });
        obs::span_end(post_span);
    }

    /// [`Engine::post_recv`] for a receive that follows a successful
    /// probe: `handle` (from [`Engine::probe_handle`] /
    /// [`Engine::iprobe_handle`]) addresses the probed arrival
    /// directly, skipping the second queue lookup the seed performed.
    /// Identical cost structure to `post_recv` — one lock, the same
    /// virtual-time charges.
    pub(crate) fn post_recv_probed(
        &self,
        handle: u64,
        spec: MatchSpec,
        cap: usize,
        req: Arc<ReqInner>,
    ) {
        let post_span = obs::span_begin(SpanKind::Post, "adi");
        marcel::advance(self.costs.post_recv);
        let mut st = self.state.lock();
        let (env, payload) = st
            .unexpected
            .take(handle)
            .filter(|(env, _)| spec.matches(env))
            .or_else(|| st.unexpected.take_match(&spec))
            .expect("probed message vanished before the receive");
        self.complete_unexpected(st, env, payload, cap, req);
        obs::span_end(post_span);
    }

    /// Complete a receive against a just-dequeued unexpected message
    /// (common tail of [`Engine::post_recv`] and
    /// [`Engine::post_recv_probed`]); consumes the queue lock.
    fn complete_unexpected(
        &self,
        mut st: marcel::SimMutexGuard<'_, EngineState>,
        env: Envelope,
        payload: UnexpPayload,
        cap: usize,
        req: Arc<ReqInner>,
    ) {
        self.note_match(&env, true);
        match payload {
            UnexpPayload::Eager(data, copy_ns, span) => {
                Self::check_cap(&env, cap);
                drop(st);
                req.set_handle_span(span);
                // The copy out of the bounce buffer is paid here, by
                // the receiving side — the eager mode's cost.
                marcel::advance(per_byte(copy_ns, data.len()));
                marcel::advance(self.costs.complete);
                req.complete(Some(data), Self::status_of(&env));
            }
            UnexpPayload::Rndv(respond) => {
                Self::check_cap(&env, cap);
                let token = st.next_rhandle;
                st.next_rhandle += 1;
                st.rndv.insert(
                    token,
                    RndvSlot {
                        req,
                        total: env.len,
                        buf: RndvBuf::Empty,
                        received: 0,
                    },
                );
                drop(st);
                respond(token);
            }
        }
    }

    /// Record a match (posted↔incoming) in the trace.
    fn note_match(&self, env: &Envelope, unexpected: bool) {
        let (rank, src, tag) = (self.rank, env.src, env.tag);
        obs::emit(move || Event::RecvMatched {
            rank,
            src,
            tag,
            unexpected,
        });
    }

    /// Deliver an eager message (called from a device's polling thread
    /// or, for intra-node devices, from the sender's thread).
    pub fn deliver_eager(&self, env: Envelope, data: Bytes, copy_ns: f64) {
        self.deliver_eager_spanned(env, data, copy_ns, None);
    }

    /// [`Engine::deliver_eager`] carrying the device's open handling
    /// span, which rides the request (or the unexpected queue) until the
    /// receiving rank observes the completion.
    pub(crate) fn deliver_eager_spanned(
        &self,
        env: Envelope,
        data: Bytes,
        copy_ns: f64,
        span: Option<ActiveSpan>,
    ) {
        debug_assert_eq!(env.len, data.len(), "envelope length out of sync");
        let mut st = self.state.lock();
        if let Some(posted) = st.posted.take_match(&env) {
            Self::check_cap(&env, posted.cap);
            self.note_match(&env, false);
            drop(st);
            posted.req.set_handle_span(span);
            marcel::advance(per_byte(copy_ns, data.len()));
            marcel::advance(self.costs.complete);
            posted.req.complete(Some(data), Self::status_of(&env));
        } else {
            let (rank, src, tag) = (self.rank, env.src, env.tag);
            st.unexpected
                .insert(env, UnexpPayload::Eager(data, copy_ns, span));
            let depth = st.unexpected.len();
            obs::gauge_max(&self.unexpected_hwm_key, depth as u64);
            obs::emit(move || Event::UnexpectedQueued {
                rank,
                src,
                tag,
                depth,
            });
            drop(st);
        }
        self.arrivals.notify_all();
    }

    /// Deliver a rendezvous REQUEST.
    pub fn deliver_rndv_offer(&self, env: Envelope, respond: RndvResponder) {
        let mut st = self.state.lock();
        if let Some(posted) = st.posted.take_match(&env) {
            Self::check_cap(&env, posted.cap);
            self.note_match(&env, false);
            let token = st.next_rhandle;
            st.next_rhandle += 1;
            st.rndv.insert(
                token,
                RndvSlot {
                    req: posted.req,
                    total: env.len,
                    buf: RndvBuf::Empty,
                    received: 0,
                },
            );
            drop(st);
            respond(token);
        } else {
            let (rank, src, tag) = (self.rank, env.src, env.tag);
            st.unexpected.insert(env, UnexpPayload::Rndv(respond));
            let depth = st.unexpected.len();
            obs::gauge_max(&self.unexpected_hwm_key, depth as u64);
            obs::emit(move || Event::UnexpectedQueued {
                rank,
                src,
                tag,
                depth,
            });
            drop(st);
        }
        self.arrivals.notify_all();
    }

    /// Deliver the (whole) rendezvous DATA for rhandle `token`:
    /// completes the transaction zero-copy.
    pub fn rndv_complete(&self, token: u64, env: Envelope, data: Bytes) {
        let len = data.len();
        self.rndv_chunk(token, env, 0, len, data);
    }

    /// Deliver one chunk of a rendezvous transaction. Chunks may arrive
    /// in any order; the transaction completes when `total` bytes have
    /// been assembled into the rhandle's buffer.
    pub fn rndv_chunk(&self, token: u64, env: Envelope, offset: usize, total: usize, data: Bytes) {
        self.rndv_chunk_spanned(token, env, offset, total, data, None);
    }

    /// [`Engine::rndv_chunk`] carrying the device's open handling span.
    /// The span of the *completing* chunk rides the request to the
    /// receiving rank; a non-final chunk's span ends here, covering the
    /// polling thread's share of the work.
    pub(crate) fn rndv_chunk_spanned(
        &self,
        token: u64,
        env: Envelope,
        offset: usize,
        total: usize,
        data: Bytes,
        span: Option<ActiveSpan>,
    ) {
        let mut st = self.state.lock();
        let done = {
            let slot = st.rndv.get_mut(&token).unwrap_or_else(|| {
                panic!("unknown rendezvous rhandle {token} on rank {}", self.rank)
            });
            assert_eq!(slot.total, total, "rendezvous total changed mid-flight");
            assert!(
                offset + data.len() <= total,
                "rendezvous chunk out of bounds"
            );
            if matches!(slot.buf, RndvBuf::Empty) && offset == 0 && data.len() == total {
                // Whole-message fast path: adopt the wire buffer
                // without copying.
                slot.buf = RndvBuf::Whole(data.clone());
            } else {
                if matches!(slot.buf, RndvBuf::Empty) {
                    slot.buf = RndvBuf::Parts(vec![0u8; total]);
                }
                match &mut slot.buf {
                    RndvBuf::Parts(buf) => buf[offset..offset + data.len()].copy_from_slice(&data),
                    _ => unreachable!("chunk after a whole-message delivery"),
                }
            }
            slot.received += data.len();
            assert!(slot.received <= total, "rendezvous over-delivery");
            slot.received == total
        };
        if done {
            let slot = st.rndv.remove(&token).expect("slot just seen");
            drop(st);
            slot.req.set_handle_span(span);
            marcel::advance(self.costs.complete);
            let payload = match slot.buf {
                RndvBuf::Whole(b) => b,
                RndvBuf::Parts(v) => Bytes::from(v),
                RndvBuf::Empty => unreachable!("completed with no data"),
            };
            slot.req.complete(Some(payload), Self::status_of(&env));
        } else {
            drop(st);
            obs::span_end(span);
        }
    }

    /// Non-blocking probe of the unexpected queue (`MPI_Iprobe`).
    pub fn iprobe(&self, spec: MatchSpec) -> Option<Status> {
        self.iprobe_handle(spec).map(|(status, _)| status)
    }

    /// [`Engine::iprobe`] additionally returning the matched message's
    /// handle, which [`Engine::post_recv_probed`] accepts to receive
    /// it without a second queue lookup.
    pub(crate) fn iprobe_handle(&self, spec: MatchSpec) -> Option<(Status, u64)> {
        let mut st = self.state.lock();
        st.unexpected
            .find(&spec)
            .map(|(handle, env)| (Self::status_of(&env), handle))
    }

    /// Blocking probe (`MPI_Probe`): waits until a matching message is
    /// buffered, without consuming it.
    pub fn probe(&self, spec: MatchSpec) -> Status {
        self.probe_handle(spec).0
    }

    /// [`Engine::probe`] additionally returning the matched message's
    /// handle (see [`Engine::iprobe_handle`]).
    pub(crate) fn probe_handle(&self, spec: MatchSpec) -> (Status, u64) {
        let mut st = self.state.lock();
        loop {
            if let Some((handle, env)) = st.unexpected.find(&spec) {
                return (Self::status_of(&env), handle);
            }
            st = self.arrivals.wait(&self.state, st);
        }
    }

    /// Diagnostics: (posted, unexpected, live rendezvous) queue depths.
    pub fn depths(&self) -> (usize, usize, usize) {
        let st = self.state.lock();
        (st.posted.len(), st.unexpected.len(), st.rndv.len())
    }

    /// Diagnostics: envelopes of the unexpected-message queue, in
    /// arrival order. Lets shutdown tests verify that messages queued
    /// behind an early finalize were drained into the engine instead of
    /// being stranded in a terminated polling loop.
    pub fn unexpected_envelopes(&self) -> Vec<Envelope> {
        self.state.lock().unexpected.envelopes()
    }

    /// Deterministic encoding of the matching stores at a quiescent
    /// point — the per-rank contribution to the "matching" section of a
    /// journal world snapshot. Reads `SimMutex` state via `host_lock`,
    /// so it must only be called after `Kernel::run` returns.
    pub fn matching_snapshot(&self, out: &mut Vec<u8>) {
        use marcel::journal::wire::{put_u32, put_u64};
        let st = self.state.host_lock();
        put_u64(out, self.rank as u64);
        put_u64(out, st.posted.len() as u64);
        put_u64(out, st.next_rhandle);
        let mut rndv: Vec<(u64, u64, u64)> = st
            .rndv
            .iter()
            .map(|(&tok, slot)| (tok, slot.total as u64, slot.received as u64))
            .collect();
        rndv.sort_unstable();
        put_u32(out, rndv.len() as u32);
        for (tok, total, received) in rndv {
            put_u64(out, tok);
            put_u64(out, total);
            put_u64(out, received);
        }
        let envs = st.unexpected.envelopes();
        put_u32(out, envs.len() as u32);
        for e in &envs {
            put_u64(out, e.src as u64);
            put_u32(out, e.tag as u32);
            put_u32(out, e.context);
            put_u64(out, e.len as u64);
        }
    }
}

fn per_byte(ns: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use marcel::{CostModel, Kernel};

    fn env(src: usize, tag: i32, len: usize) -> Envelope {
        Envelope {
            src,
            tag,
            context: 0,
            len,
        }
    }

    fn spec(src: Option<usize>, tag: Option<i32>) -> MatchSpec {
        MatchSpec {
            src,
            tag,
            context: 0,
        }
    }

    fn with_engine(f: impl FnOnce(Arc<Engine>) + Send + 'static) {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        k.spawn("main", move || {
            let engine = Engine::new(&k2, 0, AdiCosts::free());
            f(engine);
        });
        k.run().unwrap();
    }

    #[test]
    fn eager_then_post() {
        with_engine(|e| {
            e.deliver_eager(env(1, 5, 3), Bytes::from_static(&[1, 2, 3]), 0.0);
            let req = ReqInner::new();
            e.post_recv(spec(Some(1), Some(5)), 16, req.clone());
            let (data, status) = Request::new(req).wait();
            assert_eq!(data.unwrap(), vec![1, 2, 3]);
            assert_eq!(status.source, 1);
        });
    }

    #[test]
    fn post_then_eager() {
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(Some(1), Some(5)), 16, req.clone());
            assert_eq!(e.depths(), (1, 0, 0));
            e.deliver_eager(env(1, 5, 2), Bytes::from_static(&[7, 8]), 0.0);
            let (data, _) = Request::new(req).wait();
            assert_eq!(data.unwrap(), vec![7, 8]);
            assert_eq!(e.depths(), (0, 0, 0));
        });
    }

    #[test]
    fn wildcard_matching_is_fifo() {
        with_engine(|e| {
            e.deliver_eager(env(2, 5, 1), Bytes::from_static(&[2]), 0.0);
            e.deliver_eager(env(1, 5, 1), Bytes::from_static(&[1]), 0.0);
            let r1 = ReqInner::new();
            e.post_recv(spec(None, None), 16, r1.clone());
            // ANY_SOURCE/ANY_TAG must take the earliest buffered message.
            let (data, status) = Request::new(r1).wait();
            assert_eq!(data.unwrap(), vec![2]);
            assert_eq!(status.source, 2);
        });
    }

    #[test]
    fn non_matching_messages_do_not_complete() {
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(Some(1), Some(5)), 16, req.clone());
            e.deliver_eager(env(1, 6, 1), Bytes::from_static(&[9]), 0.0);
            e.deliver_eager(env(2, 5, 1), Bytes::from_static(&[9]), 0.0);
            let mut r = Request::new(req);
            assert!(!r.test());
            assert_eq!(e.depths(), (1, 2, 0));
            e.deliver_eager(env(1, 5, 1), Bytes::from_static(&[1]), 0.0);
            assert!(r.test());
        });
    }

    #[test]
    fn rendezvous_flow() {
        with_engine(|e| {
            let e2 = e.clone();
            // REQUEST arrives first; responder fires once the recv posts.
            let fired = std::sync::Arc::new(parking_lot::Mutex::new(None));
            let f2 = fired.clone();
            e.deliver_rndv_offer(
                env(3, 1, 4),
                Box::new(move |token| {
                    *f2.lock() = Some(token);
                }),
            );
            let req = ReqInner::new();
            e.post_recv(spec(Some(3), Some(1)), 16, req.clone());
            let token = fired.lock().expect("responder must fire on post");
            e2.rndv_complete(token, env(3, 1, 4), Bytes::from_static(&[4, 3, 2, 1]));
            let (data, _) = Request::new(req).wait();
            assert_eq!(data.unwrap(), vec![4, 3, 2, 1]);
        });
    }

    #[test]
    fn rendezvous_posted_first() {
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(None, Some(1)), 16, req.clone());
            let fired = std::sync::Arc::new(parking_lot::Mutex::new(None));
            let f2 = fired.clone();
            e.deliver_rndv_offer(
                env(3, 1, 2),
                Box::new(move |t| {
                    *f2.lock() = Some(t);
                }),
            );
            let token = fired.lock().expect("responder fires immediately");
            e.rndv_complete(token, env(3, 1, 2), Bytes::from_static(&[5, 6]));
            let (data, status) = Request::new(req).wait();
            assert_eq!(data.unwrap(), vec![5, 6]);
            assert_eq!(status.source, 3);
        });
    }

    #[test]
    fn truncation_is_fatal() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        k.spawn("main", move || {
            let e = Engine::new(&k2, 0, AdiCosts::free());
            let req = ReqInner::new();
            e.post_recv(spec(None, None), 2, req);
            e.deliver_eager(env(0, 0, 5), Bytes::from_static(&[0; 5]), 0.0);
        });
        match k.run() {
            Err(marcel::SimError::ThreadPanicked(msg)) => assert!(msg.contains("truncation")),
            other => panic!("expected truncation panic, got {other:?}"),
        }
    }

    #[test]
    fn probe_sees_unexpected_without_consuming() {
        with_engine(|e| {
            e.deliver_eager(env(1, 7, 3), Bytes::from_static(&[1, 2, 3]), 0.0);
            assert_eq!(e.iprobe(spec(None, Some(7))).unwrap().len, 3);
            assert_eq!(e.iprobe(spec(None, Some(8))), None);
            // Still buffered.
            assert_eq!(e.depths(), (0, 1, 0));
            let st = e.probe(spec(Some(1), None));
            assert_eq!(st.source, 1);
        });
    }

    #[test]
    fn blocking_probe_wakes_on_arrival() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        let h = k.spawn("main", move || {
            let e = Engine::new(&k2, 0, AdiCosts::free());
            let e2 = e.clone();
            marcel::spawn("deliverer", move || {
                marcel::advance(VirtualDuration::from_micros(40));
                e2.deliver_eager(env(9, 3, 1), Bytes::from_static(&[1]), 0.0);
            });
            let st = e.probe(spec(Some(9), Some(3)));
            (st.len, marcel::now())
        });
        k.run().unwrap();
        let (len, t) = h.join_outcome().unwrap();
        assert_eq!(len, 1);
        assert!(t.as_micros_f64() >= 40.0);
    }

    #[test]
    fn rndv_chunks_assemble_out_of_order() {
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(Some(1), Some(0)), 64, req.clone());
            let fired = std::sync::Arc::new(parking_lot::Mutex::new(None));
            let f2 = fired.clone();
            e.deliver_rndv_offer(env(1, 0, 10), Box::new(move |t| *f2.lock() = Some(t)));
            let token = fired.lock().expect("responder fired");
            // Three chunks, delivered middle-last-first.
            e.rndv_chunk(token, env(1, 0, 10), 4, 10, Bytes::from_static(&[5, 6, 7]));
            e.rndv_chunk(token, env(1, 0, 10), 7, 10, Bytes::from_static(&[8, 9, 10]));
            let mut r = Request::new(req);
            assert!(!r.test(), "incomplete assembly must not complete");
            e.rndv_chunk(
                token,
                env(1, 0, 10),
                0,
                10,
                Bytes::from_static(&[1, 2, 3, 4]),
            );
            let (data, status) = r.wait();
            assert_eq!(data.unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
            assert_eq!(status.len, 10);
        });
    }

    #[test]
    fn striped_spans_assemble_even_when_first_starts_at_zero() {
        // A 2-rail stripe delivers exactly two spans, and the offset-0
        // span may land first while covering only part of the message —
        // the whole-message fast path must not adopt it.
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(Some(1), Some(0)), 64, req.clone());
            let fired = std::sync::Arc::new(parking_lot::Mutex::new(None));
            let f2 = fired.clone();
            e.deliver_rndv_offer(env(1, 0, 8), Box::new(move |t| *f2.lock() = Some(t)));
            let token = fired.lock().expect("responder fired");
            e.rndv_chunk(
                token,
                env(1, 0, 8),
                0,
                8,
                Bytes::from_static(&[1, 2, 3, 4, 5]),
            );
            let mut r = Request::new(req);
            assert!(!r.test(), "partial offset-0 span must not complete");
            e.rndv_chunk(token, env(1, 0, 8), 5, 8, Bytes::from_static(&[6, 7, 8]));
            let (data, status) = r.wait();
            assert_eq!(data.unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
            assert_eq!(status.len, 8);
            assert_eq!(e.depths(), (0, 0, 0));
        });
    }

    #[test]
    fn rndv_single_chunk_fast_path() {
        with_engine(|e| {
            let req = ReqInner::new();
            e.post_recv(spec(None, None), 8, req.clone());
            let fired = std::sync::Arc::new(parking_lot::Mutex::new(None));
            let f2 = fired.clone();
            e.deliver_rndv_offer(env(2, 1, 3), Box::new(move |t| *f2.lock() = Some(t)));
            let token = fired.lock().unwrap();
            e.rndv_complete(token, env(2, 1, 3), Bytes::from_static(&[9, 8, 7]));
            let (data, _) = Request::new(req).wait();
            assert_eq!(data.unwrap(), vec![9, 8, 7]);
        });
    }

    #[test]
    fn eager_copy_cost_charged_on_match() {
        let k = Kernel::new(CostModel::free());
        let k2 = k.clone();
        let h = k.spawn("main", move || {
            let e = Engine::new(&k2, 0, AdiCosts::free());
            e.deliver_eager(env(1, 0, 100_000), Bytes::from(vec![0u8; 100_000]), 10.0);
            let before = marcel::now();
            let req = ReqInner::new();
            e.post_recv(spec(None, None), 1 << 20, req.clone());
            Request::new(req).wait();
            marcel::now() - before
        });
        k.run().unwrap();
        // 100 KB at 10 ns/B = 1 ms.
        let d = h.join_outcome().unwrap();
        assert!(d.as_micros_f64() >= 1_000.0, "copy cost {d}");
    }
}
