//! Reduction operations (`MPI_Op`) over the base types.
//!
//! `apply` folds one contribution into an accumulator, elementwise over
//! packed little-endian buffers. `MaxLoc`/`MinLoc` operate on
//! `(value, location)` pairs of the same base type, as in MPI's
//! `MPI_2INT`-style pair types.

use crate::datatype::BaseType;

/// Predefined reduction operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
    /// Logical AND (nonzero = true).
    Land,
    /// Logical OR.
    Lor,
    /// Bitwise AND (integer types only).
    Band,
    /// Bitwise OR (integer types only).
    Bor,
    /// Max value with the lowest location on ties; operates on pairs.
    MaxLoc,
    /// Min value with the lowest location on ties; operates on pairs.
    MinLoc,
}

impl ReduceOp {
    /// True for ops that consume `(value, location)` pairs.
    pub fn is_loc(self) -> bool {
        matches!(self, ReduceOp::MaxLoc | ReduceOp::MinLoc)
    }
}

macro_rules! fold_numeric {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {{
        let w = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(w).zip($other.chunks_exact(w)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let r: $ty = fold_one::<$ty>($op, x, y);
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

trait Num: Copy + PartialOrd {
    fn add(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn is_true(self) -> bool;
    fn from_bool(b: bool) -> Self;
    fn band(self, o: Self) -> Self;
    fn bor(self, o: Self) -> Self;
}

macro_rules! impl_int {
    ($ty:ty) => {
        impl Num for $ty {
            fn add(self, o: Self) -> Self {
                self.wrapping_add(o)
            }
            fn mul(self, o: Self) -> Self {
                self.wrapping_mul(o)
            }
            fn is_true(self) -> bool {
                self != 0
            }
            fn from_bool(b: bool) -> Self {
                if b {
                    1
                } else {
                    0
                }
            }
            fn band(self, o: Self) -> Self {
                self & o
            }
            fn bor(self, o: Self) -> Self {
                self | o
            }
        }
    };
}

macro_rules! impl_float {
    ($ty:ty) => {
        impl Num for $ty {
            fn add(self, o: Self) -> Self {
                self + o
            }
            fn mul(self, o: Self) -> Self {
                self * o
            }
            fn is_true(self) -> bool {
                self != 0.0
            }
            fn from_bool(b: bool) -> Self {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            fn band(self, _: Self) -> Self {
                panic!("bitwise reduction on a floating-point type")
            }
            fn bor(self, _: Self) -> Self {
                panic!("bitwise reduction on a floating-point type")
            }
        }
    };
}

impl_int!(u8);
impl_int!(i32);
impl_int!(i64);
impl_int!(u64);
impl_float!(f32);
impl_float!(f64);

fn fold_one<T: Num>(op: ReduceOp, x: T, y: T) -> T {
    match op {
        ReduceOp::Sum => x.add(y),
        ReduceOp::Prod => x.mul(y),
        ReduceOp::Min => {
            if y < x {
                y
            } else {
                x
            }
        }
        ReduceOp::Max => {
            if y > x {
                y
            } else {
                x
            }
        }
        ReduceOp::Land => T::from_bool(x.is_true() && y.is_true()),
        ReduceOp::Lor => T::from_bool(x.is_true() || y.is_true()),
        ReduceOp::Band => x.band(y),
        ReduceOp::Bor => x.bor(y),
        ReduceOp::MaxLoc | ReduceOp::MinLoc => unreachable!("loc ops handled pairwise"),
    }
}

macro_rules! fold_loc {
    ($ty:ty, $op:expr, $acc:expr, $other:expr) => {{
        let w = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(2 * w).zip($other.chunks_exact(2 * w)) {
            let (av, al) = (
                <$ty>::from_le_bytes(a[..w].try_into().unwrap()),
                <$ty>::from_le_bytes(a[w..].try_into().unwrap()),
            );
            let (bv, bl) = (
                <$ty>::from_le_bytes(b[..w].try_into().unwrap()),
                <$ty>::from_le_bytes(b[w..].try_into().unwrap()),
            );
            let take_b = match $op {
                ReduceOp::MaxLoc => bv > av || (bv == av && bl < al),
                ReduceOp::MinLoc => bv < av || (bv == av && bl < al),
                _ => unreachable!(),
            };
            if take_b {
                a[..w].copy_from_slice(&bv.to_le_bytes());
                a[w..].copy_from_slice(&bl.to_le_bytes());
            }
        }
    }};
}

/// Fold `other` into `acc`, elementwise. Both buffers hold packed
/// little-endian values of `base` (pairs for loc ops) and must have the
/// same length, a multiple of the element (pair) width.
pub fn apply(base: BaseType, op: ReduceOp, acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len(), "reduction buffer length mismatch");
    let unit = if op.is_loc() {
        2 * base.size()
    } else {
        base.size()
    };
    assert_eq!(
        acc.len() % unit,
        0,
        "reduction buffer not a multiple of the element width"
    );
    if op.is_loc() {
        match base {
            BaseType::Byte => fold_loc!(u8, op, acc, other),
            BaseType::Int32 => fold_loc!(i32, op, acc, other),
            BaseType::Int64 => fold_loc!(i64, op, acc, other),
            BaseType::UInt64 => fold_loc!(u64, op, acc, other),
            BaseType::Float32 => fold_loc!(f32, op, acc, other),
            BaseType::Float64 => fold_loc!(f64, op, acc, other),
        }
    } else {
        match base {
            BaseType::Byte => fold_numeric!(u8, op, acc, other),
            BaseType::Int32 => fold_numeric!(i32, op, acc, other),
            BaseType::Int64 => fold_numeric!(i64, op, acc, other),
            BaseType::UInt64 => fold_numeric!(u64, op, acc, other),
            BaseType::Float32 => fold_numeric!(f32, op, acc, other),
            BaseType::Float64 => fold_numeric!(f64, op, acc, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::{from_bytes, to_bytes};

    fn reduce<T: crate::datatype::MpiScalar>(op: ReduceOp, a: &[T], b: &[T]) -> Vec<T> {
        let mut acc = to_bytes(a);
        apply(T::BASE, op, &mut acc, &to_bytes(b));
        from_bytes(&acc)
    }

    #[test]
    fn sum_and_prod() {
        assert_eq!(
            reduce(ReduceOp::Sum, &[1i32, 2, 3], &[10, 20, 30]),
            vec![11, 22, 33]
        );
        assert_eq!(
            reduce(ReduceOp::Prod, &[2f64, 3.0], &[4.0, 5.0]),
            vec![8.0, 15.0]
        );
    }

    #[test]
    fn min_max() {
        assert_eq!(reduce(ReduceOp::Min, &[5i32, -2], &[3, 7]), vec![3, -2]);
        assert_eq!(
            reduce(ReduceOp::Max, &[5f32, -2.0], &[3.0, 7.0]),
            vec![5.0, 7.0]
        );
    }

    #[test]
    fn logical_ops() {
        assert_eq!(
            reduce(ReduceOp::Land, &[1i32, 1, 0], &[1, 0, 0]),
            vec![1, 0, 0]
        );
        assert_eq!(
            reduce(ReduceOp::Lor, &[1i32, 0, 0], &[0, 1, 0]),
            vec![1, 1, 0]
        );
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            reduce(ReduceOp::Band, &[0b1100u64], &[0b1010]),
            vec![0b1000]
        );
        assert_eq!(reduce(ReduceOp::Bor, &[0b1100u64], &[0b1010]), vec![0b1110]);
    }

    #[test]
    #[should_panic(expected = "floating-point")]
    fn bitwise_on_float_panics() {
        reduce(ReduceOp::Band, &[1.0f64], &[2.0]);
    }

    #[test]
    fn maxloc_prefers_lower_location_on_tie() {
        // Pairs (value, loc).
        let a = [9i32, 4, 7, 0];
        let b = [9i32, 2, 8, 1];
        assert_eq!(reduce(ReduceOp::MaxLoc, &a, &b), vec![9, 2, 8, 1]);
    }

    #[test]
    fn minloc() {
        let a = [3f64, 0.0, 5.0, 0.0];
        let b = [4f64, 1.0, 2.0, 1.0];
        assert_eq!(reduce(ReduceOp::MinLoc, &a, &b), vec![3.0, 0.0, 2.0, 1.0]);
    }

    #[test]
    fn wrapping_integer_sum() {
        assert_eq!(reduce(ReduceOp::Sum, &[i32::MAX], &[1]), vec![i32::MIN]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut acc = vec![0u8; 4];
        apply(BaseType::Int32, ReduceOp::Sum, &mut acc, &[0u8; 8]);
    }
}
