//! Cartesian process topologies (`MPI_Cart_create` and friends) — the
//! standard tool for the stencil workloads that heterogeneous clusters
//! of clusters run (paper §1's motivation).

use crate::comm::Communicator;

/// A communicator with an attached N-dimensional Cartesian layout.
pub struct CartComm {
    comm: Communicator,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartComm {
    /// `MPI_Cart_create` (with `reorder = false`): attach a grid layout
    /// to `comm`. The product of `dims` must equal the communicator
    /// size. Collective only in the trivial sense (no communication —
    /// ranks keep their identity).
    pub fn create(comm: &Communicator, dims: &[usize], periodic: &[bool]) -> CartComm {
        assert_eq!(dims.len(), periodic.len(), "dims/periodic length mismatch");
        assert!(
            !dims.is_empty(),
            "a Cartesian topology needs at least one dimension"
        );
        let cells: usize = dims.iter().product();
        assert_eq!(
            cells,
            comm.size(),
            "grid {dims:?} has {cells} cells for {} ranks",
            comm.size()
        );
        CartComm {
            comm: comm.clone(),
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        }
    }

    /// `MPI_Dims_create`: factor `n` ranks into `ndims` balanced,
    /// non-increasing dimensions.
    pub fn balanced_dims(n: usize, ndims: usize) -> Vec<usize> {
        assert!(ndims >= 1);
        let mut dims = vec![1usize; ndims];
        let mut remaining = n;
        // Repeatedly peel the smallest prime factor onto the currently
        // smallest dimension.
        let mut factors = Vec::new();
        let mut m = remaining;
        let mut p = 2;
        while p * p <= m {
            while m.is_multiple_of(p) {
                factors.push(p);
                m /= p;
            }
            p += 1;
        }
        if m > 1 {
            factors.push(m);
        }
        factors.sort_unstable_by(|a, b| b.cmp(a)); // largest first
        for f in factors {
            let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
            remaining /= f;
        }
        debug_assert_eq!(remaining, 1);
        dims.sort_unstable_by(|a, b| b.cmp(a));
        dims
    }

    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// `MPI_Cart_coords`: grid coordinates of a rank (row-major).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.comm.size());
        let mut coords = vec![0usize; self.dims.len()];
        let mut rest = rank;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// `MPI_Cart_rank`: rank of grid coordinates (periodic dimensions
    /// wrap; non-periodic out-of-range coordinates return `None`).
    pub fn rank_of(&self, coords: &[isize]) -> Option<usize> {
        assert_eq!(coords.len(), self.dims.len());
        let mut rank = 0usize;
        for (i, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            let c = if self.periodic[i] {
                c.rem_euclid(d as isize) as usize
            } else if c < 0 || c >= d as isize {
                return None;
            } else {
                c as usize
            };
            rank = rank * d + c;
        }
        Some(rank)
    }

    /// My coordinates.
    pub fn my_coords(&self) -> Vec<usize> {
        self.coords(self.comm.rank())
    }

    /// `MPI_Cart_shift`: the (source, destination) neighbours for a
    /// displacement along `dim` (`None` at a non-periodic boundary).
    pub fn shift(&self, dim: usize, displacement: isize) -> (Option<usize>, Option<usize>) {
        let me: Vec<isize> = self.my_coords().iter().map(|&c| c as isize).collect();
        let mut up = me.clone();
        up[dim] += displacement;
        let mut down = me;
        down[dim] -= displacement;
        (self.rank_of(&down), self.rank_of(&up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_dims_factorizations() {
        assert_eq!(CartComm::balanced_dims(12, 2), vec![4, 3]);
        assert_eq!(CartComm::balanced_dims(8, 3), vec![2, 2, 2]);
        assert_eq!(CartComm::balanced_dims(7, 2), vec![7, 1]);
        assert_eq!(CartComm::balanced_dims(1, 2), vec![1, 1]);
        assert_eq!(CartComm::balanced_dims(16, 2), vec![4, 4]);
        assert_eq!(CartComm::balanced_dims(6, 1), vec![6]);
    }

    // Coordinate logic is pure; exercise it without a kernel by faking
    // a communicator through the world harness in integration tests.
    // Here: check the row-major round trip via a standalone struct.
    fn grid(dims: &[usize], periodic: &[bool]) -> (Vec<usize>, Vec<bool>) {
        (dims.to_vec(), periodic.to_vec())
    }

    fn coords_of(dims: &[usize], rank: usize) -> Vec<usize> {
        let mut coords = vec![0usize; dims.len()];
        let mut rest = rank;
        for (i, &d) in dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    #[test]
    fn row_major_coords() {
        let (dims, _) = grid(&[2, 3], &[false, false]);
        assert_eq!(coords_of(&dims, 0), vec![0, 0]);
        assert_eq!(coords_of(&dims, 1), vec![0, 1]);
        assert_eq!(coords_of(&dims, 3), vec![1, 0]);
        assert_eq!(coords_of(&dims, 5), vec![1, 2]);
    }
}
