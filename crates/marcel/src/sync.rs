//! Simulated synchronization primitives: semaphores, mutexes, condition
//! variables, one-shot slots and blocking FIFO queues.
//!
//! These block in *virtual* time through the kernel, and charge the cost
//! model's `sem_op`/`wake`/`ctx_switch` costs — which is where the paper's
//! "message handling" overhead (§5.2: ≈7 µs over raw Madeleine) comes
//! from: the `ch_mad` rendezvous and eager paths go through exactly these
//! primitives.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex as RealMutex;

use crate::kernel::{Kernel, OpOutcome, Sched, SemId, SemScope, SemState, Shared, TState, Tid};
use crate::thread::current;
use crate::time::VirtualDuration;

/// The V-operation body, shared by [`Semaphore::release`] and the
/// fused commit-ordered release paths (condvar notify, queue push).
pub(crate) fn release_body(sched: &mut Sched, shared: &Shared, me: Tid, sid: SemId) {
    let cost = &shared.cost;
    let (op, wake, ctx) = (cost.sem_op, cost.wake, cost.ctx_switch);
    sched.threads[me.0].vtime += op;
    let releaser_clock = sched.threads[me.0].vtime;
    let sem = &mut sched.sems[sid.0];
    if let Some(w) = sem.waiters.pop_front() {
        // The woken thread becomes runnable after the cross-thread
        // wake latency plus a context switch to it.
        let at = releaser_clock + wake + ctx;
        // A timed waiter needs a grant marker so it can tell this
        // wake-up apart from its own deadline firing.
        if matches!(sched.threads[w.0].state, TState::BlockedSemTimeout(_, _)) {
            sched.threads[w.0].wake_payload = Some(Box::new(()));
        }
        Shared::make_ready(sched, w, at);
        sched.record(me, || crate::obs::Event::SemWake {
            sem: sid.0,
            woken: w.0,
        });
    } else {
        sem.count += 1;
    }
}

/// A counting semaphore with FIFO waiter wake-up (deterministic).
///
/// Cloning produces another handle to the *same* semaphore.
#[derive(Clone)]
pub struct Semaphore {
    shared: Arc<Shared>,
    id: SemId,
}

impl Semaphore {
    /// Create a semaphore on `kernel` with the given initial count.
    /// Semaphores created against an explicit kernel handle are always
    /// shared-scope: the handle is typically held by the host, and the
    /// semaphore handed to threads of several domains.
    pub fn new(kernel: &Kernel, initial: u64) -> Self {
        Self::with_shared(kernel.shared.clone(), initial, true)
    }

    /// Create a semaphore on the *current* simulated thread's kernel.
    /// Under `ExecPolicy::Ticketed`, a semaphore created this way is
    /// *domain-local* to the creator (see `SemScope`); use
    /// [`Semaphore::current_shared`] when threads of another domain
    /// (roughly: another node's ranks) will operate on it.
    pub fn current(initial: u64) -> Self {
        let (shared, _) = current();
        Self::with_shared(shared, initial, false)
    }

    /// Like [`Semaphore::current`], but usable from any speculation
    /// domain under `ExecPolicy::Ticketed` (at the price of blocking
    /// speculation around its waiters).
    pub fn current_shared(initial: u64) -> Self {
        let (shared, _) = current();
        Self::with_shared(shared, initial, true)
    }

    fn alloc(sched: &mut Sched, initial: u64, scope: SemScope) -> SemId {
        let id = SemId(sched.sems.len());
        sched.sems.push(SemState {
            count: initial,
            waiters: VecDeque::new(),
            scope,
        });
        id
    }

    fn with_shared(shared: Arc<Shared>, initial: u64, force_shared: bool) -> Self {
        // In a ticketed run, ID allocation from inside the simulation
        // must be commit-ordered (IDs appear in the trace).
        let id = if shared.in_sim_ticketed().is_some() {
            shared.critical(move |sched, _, me| {
                let scope = match me {
                    Some(t) if !force_shared => SemScope::Local(sched.threads[t.0].domain),
                    _ => SemScope::Shared,
                };
                Self::alloc(sched, initial, scope)
            })
        } else {
            let mut sched = shared.state.lock();
            Self::alloc(&mut sched, initial, SemScope::Shared)
        };
        Semaphore { shared, id }
    }

    /// P operation: decrement, blocking in virtual time while the count
    /// is zero.
    pub fn acquire(&self) {
        let (shared, me) = current();
        debug_assert!(
            Arc::ptr_eq(&shared, &self.shared),
            "semaphore used across kernels"
        );
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sh.check_sem_domain(sched, t, id);
                sched.threads[t.0].vtime += sh.cost.sem_op;
                let sem = &mut sched.sems[id.0];
                if sem.count > 0 {
                    sem.count -= 1;
                    OpOutcome::Done(())
                } else {
                    sem.waiters.push_back(t);
                    sched.record(t, || crate::obs::Event::SemBlock { sem: id.0 });
                    OpOutcome::Blocked(TState::BlockedSem(id))
                }
            },
            |_, _, _| (),
        );
    }

    /// P operation with a virtual-time deadline: blocks until a release
    /// grants the count or `timeout` elapses, whichever comes first.
    /// Returns `true` when the count was taken, `false` on timeout.
    ///
    /// Grant vs. timeout is decided deterministically by the kernel: a
    /// release marks the popped waiter with a wake payload, while a
    /// deadline wake-up removes the waiter from the semaphore queue
    /// inside the scheduler commit, so the two outcomes can never both
    /// happen.
    pub fn acquire_timeout(&self, timeout: VirtualDuration) -> bool {
        let (shared, me) = current();
        debug_assert!(
            Arc::ptr_eq(&shared, &self.shared),
            "semaphore used across kernels"
        );
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sh.check_sem_domain(sched, t, id);
                sched.threads[t.0].vtime += sh.cost.sem_op;
                let sem = &mut sched.sems[id.0];
                if sem.count > 0 {
                    sem.count -= 1;
                    return OpOutcome::Done(true);
                }
                let deadline = sched.threads[t.0].vtime + timeout;
                sched.sems[id.0].waiters.push_back(t);
                sched.record(t, || crate::obs::Event::SemBlockTimeout {
                    sem: id.0,
                    deadline,
                });
                OpOutcome::Blocked(TState::BlockedSemTimeout(id, deadline))
            },
            // Resumed: a release left a grant marker; a timeout did not.
            |sched, _, t| sched.threads[t.0].wake_payload.take().is_some(),
        )
    }

    /// Non-blocking P: returns whether the count was successfully taken.
    pub fn try_acquire(&self) -> bool {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sh.check_sem_domain(sched, t, id);
                sched.threads[t.0].vtime += sh.cost.sem_op;
                let sem = &mut sched.sems[id.0];
                OpOutcome::Done(if sem.count > 0 {
                    sem.count -= 1;
                    true
                } else {
                    false
                })
            },
            |_, _, _| unreachable!("try_acquire never blocks"),
        )
    }

    /// V operation: wake the longest-blocked waiter (handoff semantics)
    /// or increment the count.
    pub fn release(&self) {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sh.check_sem_domain(sched, t, id);
                release_body(sched, sh, t, id);
                OpOutcome::Done(())
            },
            |_, _, _| unreachable!("release never blocks"),
        );
    }

    /// V operation fused with a side effect: `action` runs *inside* the
    /// kernel step, immediately before the release body. Under
    /// `ExecPolicy::Ticketed` this keeps producer-side data mutations
    /// (e.g. a queue push) in commit order relative to the wake-up they
    /// announce.
    pub(crate) fn release_with(&self, action: impl FnOnce() + Send + 'static) {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sh.check_sem_domain(sched, t, id);
                action();
                release_body(sched, sh, t, id);
                OpOutcome::Done(())
            },
            |_, _, _| unreachable!("release never blocks"),
        );
    }

    /// Commit-ordered access to auxiliary primitive state (the side
    /// counters of the wrappers below). Under a ticketed run from inside
    /// the simulation the closure runs at the calling thread's position
    /// in commit order; otherwise it runs immediately, exactly as the
    /// seed engine always has.
    fn ordered<R: Send + 'static>(
        shared: &Arc<Shared>,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        if shared.in_sim_ticketed().is_some() {
            shared.critical(move |_, _, _| f())
        } else {
            f()
        }
    }

    /// Current count (diagnostics only; racy in the usual semaphore way).
    pub fn count(&self) -> u64 {
        self.shared.state.lock().sems[self.id.0].count
    }
}

/// A mutual-exclusion lock protecting `T`, blocking in virtual time.
///
/// Exclusivity is enforced by a binary [`Semaphore`], so holding the
/// guard across kernel operations (advance, sends, ...) is safe: a
/// contending simulated thread blocks in the kernel, never on the
/// underlying real lock.
pub struct SimMutex<T> {
    sem: Semaphore,
    data: Arc<RealMutex<T>>,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            sem: self.sem.clone(),
            data: self.data.clone(),
        }
    }
}

impl<T: Send + 'static> SimMutex<T> {
    pub fn new(kernel: &Kernel, value: T) -> Self {
        SimMutex {
            sem: Semaphore::new(kernel, 1),
            data: Arc::new(RealMutex::new(value)),
        }
    }

    /// Create on the current simulated thread's kernel.
    pub fn current(value: T) -> Self {
        SimMutex {
            sem: Semaphore::current(1),
            data: Arc::new(RealMutex::new(value)),
        }
    }

    /// Acquire the lock, blocking in virtual time.
    pub fn lock(&self) -> SimMutexGuard<'_, T> {
        self.sem.acquire();
        SimMutexGuard {
            // Never contended in real time: the semaphore admits one
            // simulated thread, and only one simulated thread runs at a
            // time anyway.
            inner: Some(self.data.lock()),
            sem: &self.sem,
        }
    }

    /// Snapshot hook: read the protected data from the *host*, outside
    /// any simulated thread. Only sound at quiescent points — after
    /// `Kernel::run` returned, no simulated thread can hold the lock,
    /// so the underlying real mutex is free. Panics (rather than
    /// corrupting virtual-time accounting) if called while the data is
    /// actually held.
    pub fn host_lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.data
            .try_lock()
            .expect("SimMutex::host_lock while the simulation still holds the lock")
    }
}

/// Guard returned by [`SimMutex::lock`].
pub struct SimMutexGuard<'a, T> {
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    sem: &'a Semaphore,
}

impl<T> std::ops::Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T> std::ops::DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the simulated one.
        self.inner = None;
        self.sem.release();
    }
}

/// A condition variable for use with [`SimMutex`].
pub struct SimCondvar {
    sem: Semaphore,
    waiting: Arc<RealMutex<usize>>,
}

impl Clone for SimCondvar {
    fn clone(&self) -> Self {
        SimCondvar {
            sem: self.sem.clone(),
            waiting: self.waiting.clone(),
        }
    }
}

impl SimCondvar {
    pub fn new(kernel: &Kernel) -> Self {
        SimCondvar {
            sem: Semaphore::new(kernel, 0),
            waiting: Arc::new(RealMutex::new(0)),
        }
    }

    pub fn current() -> Self {
        SimCondvar {
            sem: Semaphore::current(0),
            waiting: Arc::new(RealMutex::new(0)),
        }
    }

    /// Atomically release the mutex and wait for a notification, then
    /// re-acquire. As with any condvar, re-check the predicate in a loop.
    pub fn wait<'a, T: Send + 'static>(
        &self,
        mutex: &'a SimMutex<T>,
        guard: SimMutexGuard<'a, T>,
    ) -> SimMutexGuard<'a, T> {
        let w = self.waiting.clone();
        Semaphore::ordered(&self.sem.shared, move || *w.lock() += 1);
        drop(guard);
        self.sem.acquire();
        let w = self.waiting.clone();
        Semaphore::ordered(&self.sem.shared, move || *w.lock() -= 1);
        mutex.lock()
    }

    /// Wake one waiter (FIFO).
    pub fn notify_one(&self) {
        let w = self.waiting.clone();
        if Semaphore::ordered(&self.sem.shared, move || *w.lock() > 0) {
            self.sem.release();
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        let w = self.waiting.clone();
        let n = Semaphore::ordered(&self.sem.shared, move || *w.lock());
        for _ in 0..n {
            self.sem.release();
        }
    }
}

/// Single-producer single-consumer one-shot value slot. `put` wakes a
/// blocked `take`. Used for rendezvous-style completions.
pub struct OneShot<T> {
    sem: Semaphore,
    slot: Arc<RealMutex<Option<T>>>,
}

impl<T> Clone for OneShot<T> {
    fn clone(&self) -> Self {
        OneShot {
            sem: self.sem.clone(),
            slot: self.slot.clone(),
        }
    }
}

impl<T: Send + 'static> OneShot<T> {
    pub fn new(kernel: &Kernel) -> Self {
        OneShot {
            sem: Semaphore::new(kernel, 0),
            slot: Arc::new(RealMutex::new(None)),
        }
    }

    pub fn current() -> Self {
        OneShot {
            sem: Semaphore::current(0),
            slot: Arc::new(RealMutex::new(None)),
        }
    }

    /// Deposit the value and wake the taker. Panics if called twice.
    pub fn put(&self, value: T) {
        let prev = self.slot.lock().replace(value);
        assert!(prev.is_none(), "OneShot::put called twice");
        self.sem.release();
    }

    /// Block until the value is deposited and take it.
    pub fn take(&self) -> T {
        self.sem.acquire();
        self.slot
            .lock()
            .take()
            .expect("OneShot woken without a value")
    }

    /// Block until the value is deposited or `timeout` virtual time
    /// elapses. Returns `None` on timeout (the slot stays armed: a later
    /// `put` can still complete a subsequent `take`/`wait_timeout`).
    pub fn wait_timeout(&self, timeout: VirtualDuration) -> Option<T> {
        if self.sem.acquire_timeout(timeout) {
            Some(
                self.slot
                    .lock()
                    .take()
                    .expect("OneShot woken without a value"),
            )
        } else {
            None
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<T> {
        if self.sem.try_acquire() {
            Some(
                self.slot
                    .lock()
                    .take()
                    .expect("OneShot counted without a value"),
            )
        } else {
            None
        }
    }
}

/// Unbounded blocking FIFO queue (virtual-time blocking pop).
pub struct Queue<T> {
    sem: Semaphore,
    buf: Arc<RealMutex<VecDeque<T>>>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            sem: self.sem.clone(),
            buf: self.buf.clone(),
        }
    }
}

impl<T: Send + 'static> Queue<T> {
    pub fn new(kernel: &Kernel) -> Self {
        Queue {
            sem: Semaphore::new(kernel, 0),
            buf: Arc::new(RealMutex::new(VecDeque::new())),
        }
    }

    pub fn current() -> Self {
        Queue {
            sem: Semaphore::current(0),
            buf: Arc::new(RealMutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, value: T) {
        // The buffer mutation rides inside the release step so that,
        // under `ExecPolicy::Ticketed`, element order in the buffer is
        // commit order (= the order poppers are woken in), not the real
        // time order in which producer workers happened to run.
        let buf = self.buf.clone();
        self.sem.release_with(move || buf.lock().push_back(value));
    }

    /// Block until an element is available.
    pub fn pop(&self) -> T {
        self.sem.acquire();
        self.buf
            .lock()
            .pop_front()
            .expect("queue semaphore out of sync")
    }

    pub fn try_pop(&self) -> Option<T> {
        if self.sem.try_acquire() {
            Some(
                self.buf
                    .lock()
                    .pop_front()
                    .expect("queue semaphore out of sync"),
            )
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

/// A reusable cyclic barrier for a fixed party count, blocking in
/// virtual time. The generation counter makes it safe to reuse
/// immediately (no thundering-herd double release).
pub struct SimBarrier {
    state: Arc<RealMutex<BarrierState>>,
    sem: Semaphore,
    parties: usize,
}

struct BarrierState {
    waiting: usize,
    generation: u64,
}

impl Clone for SimBarrier {
    fn clone(&self) -> Self {
        SimBarrier {
            state: self.state.clone(),
            sem: self.sem.clone(),
            parties: self.parties,
        }
    }
}

impl SimBarrier {
    pub fn new(kernel: &Kernel, parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SimBarrier {
            state: Arc::new(RealMutex::new(BarrierState {
                waiting: 0,
                generation: 0,
            })),
            sem: Semaphore::new(kernel, 0),
            parties,
        }
    }

    pub fn current(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SimBarrier {
            state: Arc::new(RealMutex::new(BarrierState {
                waiting: 0,
                generation: 0,
            })),
            sem: Semaphore::current(0),
            parties,
        }
    }

    /// Wait for all parties. Returns true on the "leader" (the last
    /// thread to arrive), mirroring `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let state = self.state.clone();
        let parties = self.parties;
        // Arrival bookkeeping is commit-ordered under a ticketed run so
        // the leader (last arrival in *virtual* order) is deterministic.
        let is_leader = Semaphore::ordered(&self.sem.shared, move || {
            let mut st = state.lock();
            st.waiting += 1;
            if st.waiting == parties {
                st.waiting = 0;
                st.generation += 1;
                true
            } else {
                false
            }
        });
        if is_leader {
            for _ in 0..self.parties - 1 {
                self.sem.release();
            }
            true
        } else {
            self.sem.acquire();
            false
        }
    }
}

/// A read-write lock blocking in virtual time: any number of concurrent
/// readers, exclusive writers, writer-preference-free FIFO-ish ordering
/// (built on a semaphore pair; adequate for simulation workloads).
///
/// The payload lives in a *real* `RwLock` so several simulated readers
/// can hold their guards concurrently (each parked on its own virtual
/// clock); the simulated semaphores guarantee the real write lock is
/// only taken when no guards are outstanding.
pub struct SimRwLock<T> {
    /// Guards reader-count updates and writer exclusion.
    gate: Semaphore,
    readers: Arc<RealMutex<usize>>,
    /// Held by the active writer or the first reader.
    excl: Semaphore,
    data: Arc<parking_lot::RwLock<T>>,
}

impl<T> Clone for SimRwLock<T> {
    fn clone(&self) -> Self {
        SimRwLock {
            gate: self.gate.clone(),
            readers: self.readers.clone(),
            excl: self.excl.clone(),
            data: self.data.clone(),
        }
    }
}

impl<T: Send + 'static> SimRwLock<T> {
    pub fn new(kernel: &Kernel, value: T) -> Self {
        SimRwLock {
            gate: Semaphore::new(kernel, 1),
            readers: Arc::new(RealMutex::new(0)),
            excl: Semaphore::new(kernel, 1),
            data: Arc::new(parking_lot::RwLock::new(value)),
        }
    }

    pub fn read(&self) -> SimRwReadGuard<'_, T> {
        self.gate.acquire();
        {
            let mut readers = self.readers.lock();
            *readers += 1;
            if *readers == 1 {
                self.excl.acquire();
            }
        }
        self.gate.release();
        SimRwReadGuard {
            lock: self,
            inner: Some(self.data.read()),
        }
    }

    pub fn write(&self) -> SimRwWriteGuard<'_, T> {
        self.gate.acquire();
        self.excl.acquire();
        self.gate.release();
        SimRwWriteGuard {
            lock: self,
            inner: Some(self.data.write()),
        }
    }
}

impl<T> SimRwLock<T> {
    fn read_unlock(&self) {
        // Not performed under the gate, so the decrement must be
        // commit-ordered itself: which reader turns the count to zero
        // (and therefore releases the writer-exclusion semaphore) has to
        // be the same thread in every execution.
        let readers = self.readers.clone();
        let release_excl = Semaphore::ordered(&self.excl.shared, move || {
            let mut r = readers.lock();
            *r -= 1;
            *r == 0
        });
        if release_excl {
            self.excl.release();
        }
    }
}

/// Shared-access guard from [`SimRwLock::read`].
pub struct SimRwReadGuard<'a, T> {
    lock: &'a SimRwLock<T>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for SimRwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T> Drop for SimRwReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        self.lock.read_unlock();
    }
}

/// Exclusive guard from [`SimRwLock::write`].
pub struct SimRwWriteGuard<'a, T> {
    lock: &'a SimRwLock<T>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for SimRwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T> std::ops::DerefMut for SimRwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

impl<T> Drop for SimRwWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        self.lock.excl.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::kernel::Kernel;
    use crate::thread::{advance, now, spawn};
    use crate::time::{VirtualDuration, VirtualTime};

    #[test]
    fn semaphore_blocks_until_release() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        let s2 = sem.clone();
        let waiter = k.spawn("waiter", move || {
            s2.acquire();
            now()
        });
        k.spawn("releaser", move || {
            advance(VirtualDuration::from_micros(25));
            sem.release();
        });
        k.run().unwrap();
        // With a free cost model the waiter resumes exactly at the
        // releaser's clock.
        assert_eq!(waiter.join_outcome().unwrap(), VirtualTime(25_000));
    }

    #[test]
    fn semaphore_wake_charges_costs() {
        let mut cost = CostModel::free();
        cost.sem_op = VirtualDuration::from_nanos(100);
        cost.wake = VirtualDuration::from_nanos(700);
        cost.ctx_switch = VirtualDuration::from_nanos(200);
        let k = Kernel::new(cost);
        let sem = Semaphore::new(&k, 0);
        let s2 = sem.clone();
        let waiter = k.spawn("waiter", move || {
            s2.acquire(); // +100ns on block entry
            now()
        });
        k.spawn("releaser", move || {
            advance(VirtualDuration::from_micros(10));
            sem.release(); // releaser at 10_100 after sem_op
        });
        k.run().unwrap();
        // wake at releaser(10_100) + wake(700) + ctx(200) = 11_000.
        assert_eq!(waiter.join_outcome().unwrap(), VirtualTime(11_000));
    }

    #[test]
    fn semaphore_fifo_order() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        let order = Arc::new(RealMutex::new(Vec::new()));
        for i in 0..3 {
            let sem = sem.clone();
            let order = order.clone();
            k.spawn(format!("w{i}"), move || {
                // Stagger block times so FIFO order is w0, w1, w2.
                advance(VirtualDuration::from_micros(i as u64));
                sem.acquire();
                order.lock().push(i);
            });
        }
        k.spawn("rel", move || {
            advance(VirtualDuration::from_micros(100));
            for _ in 0..3 {
                sem.release();
                advance(VirtualDuration::from_micros(10));
            }
        });
        k.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn try_acquire() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 1);
        let h = k.spawn("t", move || {
            let a = sem.try_acquire();
            let b = sem.try_acquire();
            sem.release();
            let c = sem.try_acquire();
            (a, b, c)
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (true, false, true));
    }

    #[test]
    fn acquire_timeout_expires_at_deadline() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        let h = k.spawn("waiter", move || {
            let got = sem.acquire_timeout(VirtualDuration::from_micros(40));
            (got, now())
        });
        k.run().unwrap();
        let (got, t) = h.join_outcome().unwrap();
        assert!(!got, "nobody released: must time out");
        assert_eq!(t, VirtualTime(40_000));
    }

    #[test]
    fn acquire_timeout_granted_before_deadline() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        let s2 = sem.clone();
        let h = k.spawn("waiter", move || {
            let got = s2.acquire_timeout(VirtualDuration::from_micros(500));
            (got, now())
        });
        k.spawn("releaser", move || {
            advance(VirtualDuration::from_micros(20));
            sem.release();
        });
        k.run().unwrap();
        let (got, t) = h.join_outcome().unwrap();
        assert!(got, "release arrived well before the deadline");
        assert_eq!(t, VirtualTime(20_000));
    }

    #[test]
    fn acquire_timeout_with_available_count_is_immediate() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 1);
        let h = k.spawn("t", move || {
            let a = sem.acquire_timeout(VirtualDuration::from_micros(10));
            let b = sem.acquire_timeout(VirtualDuration::from_micros(10));
            (a, b, now())
        });
        k.run().unwrap();
        let (a, b, t) = h.join_outcome().unwrap();
        assert!(a && !b);
        assert_eq!(t, VirtualTime(10_000), "only the second wait sleeps");
    }

    #[test]
    fn timed_out_waiter_does_not_steal_later_release() {
        // w1 times out at 10us; w2 waits forever. The release at 50us
        // must go to w2, not to the long-gone w1.
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        let (s1, s2) = (sem.clone(), sem.clone());
        let h1 = k.spawn("w1", move || {
            s1.acquire_timeout(VirtualDuration::from_micros(10))
        });
        let h2 = k.spawn("w2", move || {
            advance(VirtualDuration::from_micros(1));
            s2.acquire();
            now()
        });
        k.spawn("rel", move || {
            advance(VirtualDuration::from_micros(50));
            sem.release();
        });
        k.run().unwrap();
        assert!(!h1.join_outcome().unwrap());
        assert_eq!(h2.join_outcome().unwrap(), VirtualTime(50_000));
    }

    #[test]
    fn oneshot_wait_timeout_then_put_still_delivers() {
        let k = Kernel::new(CostModel::free());
        let slot = OneShot::<u64>::new(&k);
        let s2 = slot.clone();
        let h = k.spawn("taker", move || {
            let first = s2.wait_timeout(VirtualDuration::from_micros(5));
            let second = s2.wait_timeout(VirtualDuration::from_micros(100));
            (first, second)
        });
        k.spawn("putter", move || {
            advance(VirtualDuration::from_micros(30));
            slot.put(7);
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (None, Some(7)));
    }

    #[test]
    fn mutex_exclusion_and_virtual_blocking() {
        let k = Kernel::new(CostModel::free());
        let m = SimMutex::new(&k, 0u64);
        let m2 = m.clone();
        let h1 = k.spawn("a", move || {
            let mut g = m2.lock();
            advance(VirtualDuration::from_micros(50));
            *g += 1;
            drop(g);
            now()
        });
        let m3 = m.clone();
        let h2 = k.spawn("b", move || {
            advance(VirtualDuration::from_micros(1)); // a locks first
            let mut g = m3.lock();
            *g += 1;
            drop(g);
            now()
        });
        k.run().unwrap();
        let ta = h1.join_outcome().unwrap();
        let tb = h2.join_outcome().unwrap();
        assert_eq!(ta, VirtualTime(50_000));
        // b had to wait for a's 50us critical section.
        assert!(tb >= ta, "b finished at {tb}, a at {ta}");
    }

    #[test]
    fn condvar_notify_one() {
        let k = Kernel::new(CostModel::free());
        let m = SimMutex::new(&k, false);
        let cv = SimCondvar::new(&k);
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = k.spawn("waiter", move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(&m2, g);
            }
            now()
        });
        k.spawn("setter", move || {
            advance(VirtualDuration::from_micros(33));
            *m.lock() = true;
            cv.notify_one();
        });
        k.run().unwrap();
        assert!(h.join_outcome().unwrap() >= VirtualTime(33_000));
    }

    #[test]
    fn condvar_notify_all_wakes_everyone() {
        let k = Kernel::new(CostModel::calibrated());
        let m = SimMutex::new(&k, false);
        let cv = SimCondvar::new(&k);
        let done = Arc::new(RealMutex::new(0));
        for i in 0..4 {
            let (m, cv, done) = (m.clone(), cv.clone(), done.clone());
            k.spawn(format!("w{i}"), move || {
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(&m, g);
                }
                drop(g);
                *done.lock() += 1;
            });
        }
        k.spawn("setter", move || {
            advance(VirtualDuration::from_micros(10));
            *m.lock() = true;
            cv.notify_all();
        });
        k.run().unwrap();
        assert_eq!(*done.lock(), 4);
    }

    #[test]
    fn oneshot_round_trip() {
        let k = Kernel::new(CostModel::free());
        let slot = OneShot::<u64>::new(&k);
        let s2 = slot.clone();
        let h = k.spawn("taker", move || s2.take());
        k.spawn("putter", move || {
            advance(VirtualDuration::from_micros(5));
            slot.put(99);
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), 99);
    }

    #[test]
    fn queue_fifo_across_threads() {
        let k = Kernel::new(CostModel::free());
        let q = Queue::<u32>::new(&k);
        let q2 = q.clone();
        let h = k.spawn("consumer", move || {
            (0..5).map(|_| q2.pop()).collect::<Vec<_>>()
        });
        k.spawn("producer", move || {
            for i in 0..5 {
                advance(VirtualDuration::from_micros(2));
                q.push(i);
            }
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_try_pop() {
        let k = Kernel::new(CostModel::free());
        let q = Queue::<u32>::new(&k);
        let h = k.spawn("t", move || {
            let empty = q.try_pop();
            q.push(7);
            let full = q.try_pop();
            (empty, full)
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (None, Some(7)));
    }

    #[test]
    fn spawn_inside_then_synchronize() {
        let k = Kernel::new(CostModel::calibrated());
        let h = k.spawn("main", || {
            let q = Queue::<u64>::current();
            let q2 = q.clone();
            let w = spawn("worker", move || {
                advance(VirtualDuration::from_micros(12));
                q2.push(1);
            });
            let v = q.pop();
            w.join();
            v
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), 1);
    }

    #[test]
    fn barrier_releases_all_parties_together() {
        let k = Kernel::new(CostModel::free());
        let b = SimBarrier::new(&k, 3);
        let times = Arc::new(RealMutex::new(Vec::new()));
        for i in 0..3u64 {
            let b = b.clone();
            let times = times.clone();
            k.spawn(format!("p{i}"), move || {
                advance(VirtualDuration::from_micros(i * 50));
                b.wait();
                times.lock().push(now());
            });
        }
        k.run().unwrap();
        let times = times.lock().clone();
        assert_eq!(times.len(), 3);
        // Nobody leaves before the slowest arrival at 100us.
        for t in &times {
            assert!(t.as_micros_f64() >= 100.0, "left early at {t}");
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let k = Kernel::new(CostModel::free());
        let b = SimBarrier::new(&k, 2);
        let counter = Arc::new(RealMutex::new(0u32));
        for i in 0..2 {
            let b = b.clone();
            let counter = counter.clone();
            k.spawn(format!("p{i}"), move || {
                for _ in 0..5 {
                    if b.wait() {
                        *counter.lock() += 1;
                    }
                }
            });
        }
        k.run().unwrap();
        // Exactly one leader per round.
        assert_eq!(*counter.lock(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let k = Kernel::new(CostModel::free());
        let lock = SimRwLock::new(&k, 7u64);
        let done = Arc::new(RealMutex::new(Vec::new()));
        for i in 0..3u64 {
            let lock = lock.clone();
            let done = done.clone();
            k.spawn(format!("r{i}"), move || {
                let g = lock.read();
                assert_eq!(*g, 7);
                // Long overlapping critical sections: if readers
                // serialized, the last one would finish at 300us.
                advance(VirtualDuration::from_micros(100));
                drop(g);
                done.lock().push(now());
            });
        }
        k.run().unwrap();
        for t in done.lock().iter() {
            assert!(
                t.as_micros_f64() < 150.0,
                "readers must overlap, one finished at {t}"
            );
        }
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        let k = Kernel::new(CostModel::free());
        let lock = SimRwLock::new(&k, 0u64);
        let l2 = lock.clone();
        let writer = k.spawn("writer", move || {
            let mut g = l2.write();
            advance(VirtualDuration::from_micros(80));
            *g = 42;
            drop(g);
            now()
        });
        let l3 = lock.clone();
        let reader = k.spawn("reader", move || {
            // Arrive after the writer took the lock.
            advance(VirtualDuration::from_micros(10));
            let g = l3.read();
            (*g, now())
        });
        k.run().unwrap();
        let w_done = writer.join_outcome().unwrap();
        let (value, r_done) = reader.join_outcome().unwrap();
        assert_eq!(value, 42, "reader must observe the write");
        assert!(
            r_done >= w_done,
            "reader finished at {r_done}, writer at {w_done}"
        );
    }
}
