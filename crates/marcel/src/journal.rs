//! Durable journal: an append-only, length-prefixed, checksummed record
//! stream over the typed [`Event`](crate::obs::Event) trace, plus
//! periodic world snapshots — the substrate that turns the deterministic
//! simulator into crash-resumable infrastructure (ROADMAP item 5).
//!
//! # Record framing
//!
//! ```text
//! journal  := MAGIC("MADJRNL1") version(u32 LE) record*
//! record   := len(u32 LE) payload(len bytes) checksum(u64 LE)
//! payload  := kind(u8) body
//! checksum := FNV-1a 64 over payload
//! ```
//!
//! Every record is independently verifiable: a reader walks records
//! front to back, and the first length/checksum violation marks a
//! **torn tail** — the truncated final record(s) a crash mid-`append`
//! leaves behind. [`scan`] reports the torn region so a resume can drop
//! it and re-execute the interrupted work (see `mpich::journal`).
//!
//! # Record kinds
//!
//! * [`Record::Campaign`] — journal identity: one per journal, first.
//! * [`Record::RunBegin`] — one campaign *leg* (a complete world run)
//!   starts.
//! * [`Record::Event`] — one typed trace event of the running leg.
//! * [`Record::RunEnd`] — the leg finished: end time, metrics digest,
//!   fault counters and the per-rank receive buffers.
//! * [`Record::Snapshot`] — periodic world snapshot at a quiescent
//!   point: kernel thread state, RNG state, FaultPlan cursor, and
//!   opaque per-layer sections (madeleine reliability windows, ADI
//!   matching stores). Snapshots are the resume points.
//!
//! Simulated threads are backed by real OS threads (see
//! [`crate::kernel`]), so mid-step thread stacks cannot be serialized;
//! snapshots are therefore taken at *leg boundaries*, where every
//! thread has finished and all state is observable data.
//!
//! # Sinks
//!
//! [`JournalSink`] decouples the writer from storage: [`MemSink`] backs
//! tests (with an optional byte budget that simulates a crash mid-write,
//! producing a real torn tail), [`FileSink`] backs benches and CI.
//!
//! # Bisect
//!
//! [`bisect`] compares two journals: a binary search over the snapshot
//! records finds the first divergent interval in `O(log s)` record
//! comparisons, then a linear scan inside that interval reports the
//! first divergent event — the debugging primitive for "these two runs
//! should have been identical" (two fault seeds, or Seed vs Ticketed
//! during engine development).

use std::fmt;
use std::fs::File;
use std::io::{self, Write as IoWrite};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::obs::{Event, SpanKind};
use crate::time::VirtualTime;

/// Journal file magic: identifies the format and its major revision.
pub const MAGIC: &[u8; 8] = b"MADJRNL1";
/// Format version written after the magic (bump on layout changes).
pub const VERSION: u32 = 1;

/// Largest accepted record payload. A length prefix beyond this is
/// treated as corruption (torn tail), not an allocation request.
const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// FNV-1a 64-bit: the per-record checksum and the digest primitive used
/// for snapshot/metrics fingerprints throughout the journal layer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a 64 fold from a previous state (used by the writer
/// to digest the whole journal incrementally).
pub fn fnv1a64_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structural journal errors (distinct from a torn tail, which is a
/// normal crash artifact reported by [`scan`], not an error).
#[derive(Debug)]
pub enum JournalError {
    /// The byte stream does not start with [`MAGIC`] + [`VERSION`].
    BadHeader,
    /// A record body failed to decode after its checksum verified —
    /// a writer/reader version skew, not wire corruption.
    Malformed { offset: usize, what: String },
    /// Underlying sink I/O failure (including simulated crashes from
    /// [`MemSink::with_budget`]).
    Io(io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadHeader => write!(f, "not a journal: bad magic/version header"),
            JournalError::Malformed { offset, what } => {
                write!(f, "malformed record at offset {offset}: {what}")
            }
            JournalError::Io(e) => write!(f, "journal sink I/O error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Append-only byte sink behind the journal writer.
pub trait JournalSink: Send {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    fn flush(&mut self) -> io::Result<()>;
}

/// In-memory sink over a shared buffer, with an optional byte budget
/// that simulates a crash: once the budget is exhausted the sink writes
/// the remaining bytes it can afford (possibly cutting a record in
/// half — a genuine torn tail) and fails every append thereafter.
#[derive(Clone)]
pub struct MemSink {
    buf: Arc<Mutex<Vec<u8>>>,
    budget: Option<u64>,
}

impl MemSink {
    /// Unbounded sink over a fresh shared buffer.
    pub fn new(buf: Arc<Mutex<Vec<u8>>>) -> Self {
        MemSink { buf, budget: None }
    }

    /// Sink that "crashes" after writing exactly `budget` bytes.
    pub fn with_budget(buf: Arc<Mutex<Vec<u8>>>, budget: u64) -> Self {
        MemSink {
            buf,
            budget: Some(budget),
        }
    }
}

impl JournalSink for MemSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &mut self.budget {
            None => {
                self.buf.lock().unwrap().extend_from_slice(bytes);
                Ok(())
            }
            Some(left) => {
                let take = (*left as usize).min(bytes.len());
                self.buf.lock().unwrap().extend_from_slice(&bytes[..take]);
                *left -= take as u64;
                if take < bytes.len() {
                    Err(io::Error::other(
                        "simulated crash: sink byte budget exhausted",
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Rolling-segment state of a [`FileSink`].
struct RollState {
    prefix: std::path::PathBuf,
    /// Soft size limit: a segment rolls at the first append *after*
    /// crossing it, so records never split across segment files.
    limit: u64,
    seg: u32,
    /// Bytes written into the current segment.
    written: u64,
}

/// File-backed sink for benches and CI campaigns. Either a single file
/// ([`FileSink::create`]) or a rolling sequence of segment files
/// (`<prefix>.0000.seg`, `<prefix>.0001.seg`, …) whose concatenation is
/// byte-identical to the single-file stream — the format the journal
/// golden pins is unchanged, only the storage is sliced so a
/// 10⁸-message campaign never produces one unmanageable file.
pub struct FileSink {
    file: io::BufWriter<File>,
    roll: Option<RollState>,
}

impl FileSink {
    /// Create (truncate) the journal file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FileSink {
            file: io::BufWriter::new(File::create(path)?),
            roll: None,
        })
    }

    /// Create a rolling-segment sink: bytes go to
    /// `<prefix>.0000.seg`, and once a segment holds at least
    /// `roll_bytes` the next append opens the following segment. Since
    /// the writer appends whole frames, a roll never splits a record:
    /// every segment but the last ends on a record boundary and
    /// [`read_segments`] reassembles the exact single-file stream.
    pub fn create_rolling(prefix: impl AsRef<Path>, roll_bytes: u64) -> io::Result<Self> {
        let prefix = prefix.as_ref().to_path_buf();
        let file = io::BufWriter::new(File::create(segment_path(&prefix, 0))?);
        Ok(FileSink {
            file,
            roll: Some(RollState {
                prefix,
                limit: roll_bytes.max(1),
                seg: 0,
                written: 0,
            }),
        })
    }

    /// Segments written so far (1 for a fresh rolling sink, always 0
    /// for a single-file sink).
    pub fn segments(&self) -> u32 {
        self.roll.as_ref().map_or(0, |r| r.seg + 1)
    }
}

/// Path of segment `seg` for a rolling journal `prefix`.
pub fn segment_path(prefix: impl AsRef<Path>, seg: u32) -> std::path::PathBuf {
    let mut s = prefix.as_ref().as_os_str().to_os_string();
    s.push(format!(".{seg:04}.seg"));
    std::path::PathBuf::from(s)
}

/// Reassemble a rolling journal: concatenate `<prefix>.NNNN.seg` files
/// in order until the first missing index. Errors if segment 0 is
/// absent. The result is byte-identical to what a single-file sink
/// would have written, so [`scan`] (and everything above it) spans
/// segments for free.
pub fn read_segments(prefix: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let prefix = prefix.as_ref();
    let mut out = Vec::new();
    let mut seg = 0u32;
    loop {
        let path = segment_path(prefix, seg);
        match std::fs::read(&path) {
            Ok(bytes) => out.extend_from_slice(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if seg == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no journal segment {}", path.display()),
                    ));
                }
                return Ok(out);
            }
            Err(e) => return Err(e),
        }
        seg += 1;
    }
}

/// Load a journal byte stream from `path`: a plain file if one exists,
/// otherwise the reassembled `<path>.NNNN.seg` rolling segments.
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    match std::fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => read_segments(path),
        Err(e) => Err(e),
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(roll) = self.roll.as_mut() {
            if roll.written >= roll.limit {
                self.file.flush()?;
                roll.seg += 1;
                roll.written = 0;
                self.file = io::BufWriter::new(File::create(segment_path(&roll.prefix, roll.seg))?);
            }
            roll.written += bytes.len() as u64;
        }
        self.file.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

// ---------------------------------------------------------------------------
// Byte codec helpers (shared with the per-layer snapshot encoders in
// simnet / madeleine / mpich)
// ---------------------------------------------------------------------------

/// Little-endian append helpers over a plain `Vec<u8>`.
pub mod wire {
    /// Append a `u8`.
    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
        put_u32(out, v.len() as u32);
        out.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, v: &str) {
        put_bytes(out, v.as_bytes());
    }

    /// Sequential little-endian reader over a byte slice.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.remaining() < n {
                return Err(format!(
                    "short read: wanted {n} bytes, {} left",
                    self.remaining()
                ));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        pub fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        pub fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        pub fn bytes(&mut self) -> Result<&'a [u8], String> {
            let n = self.u32()? as usize;
            self.take(n)
        }

        pub fn str(&mut self) -> Result<&'a str, String> {
            std::str::from_utf8(self.bytes()?).map_err(|e| format!("invalid UTF-8: {e}"))
        }
    }
}

use wire::{put_bytes, put_str, put_u32, put_u64, put_u8, Reader};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Kernel thread state captured in a snapshot: final virtual clock and
/// committed op count of every simulated thread, in tid order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSnap {
    pub name: String,
    pub vtime_ns: u64,
    pub ops: u64,
}

/// A periodic world snapshot at a quiescent point (leg boundary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotData {
    /// Number of campaign legs completed when this snapshot was taken;
    /// a resume from here continues with leg `legs_done`.
    pub legs_done: u64,
    /// Virtual end time of the just-finished leg.
    pub end_ns: u64,
    /// Campaign RNG state *after* folding the finished leg's outcome —
    /// the seed chain cannot be reconstructed without it.
    pub rng_state: u64,
    /// FaultPlan-matrix position: fault cells consumed so far.
    pub fault_cursor: u64,
    /// FNV-1a digest of the finished leg's metrics report.
    pub metrics_digest: u64,
    /// Per-thread kernel state of the finished leg, in tid order.
    pub threads: Vec<ThreadSnap>,
    /// Named per-layer payloads (e.g. `"madeleine"` reliability
    /// windows, `"matching"` ADI store state), each encoded by its
    /// owning crate via [`wire`].
    pub sections: Vec<(String, Vec<u8>)>,
}

/// The terminal record of one campaign leg.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunEndData {
    pub leg: u64,
    /// Virtual end time of the leg.
    pub end_ns: u64,
    /// FNV-1a digest of the metrics report.
    pub metrics_digest: u64,
    /// Fault counters, in a fixed order defined by the campaign layer
    /// (retransmits, drops, duplicates, deferrals, dead_pairs,
    /// failovers, rndv_reissues).
    pub counters: Vec<u64>,
    /// Per-rank user results — the receive buffers the byte-equality
    /// contract covers.
    pub results: Vec<Vec<u8>>,
}

/// One journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Journal identity; always the first record. Deliberately excludes
    /// the execution policy: `Seed` and `Ticketed(n)` runs write
    /// byte-identical journals, so a campaign may crash under one
    /// policy and resume under another.
    Campaign {
        label: String,
        master_seed: u64,
        legs: u64,
        snapshot_every: u64,
    },
    /// A campaign leg (one complete world run) starts.
    RunBegin {
        leg: u64,
        label: String,
        config_digest: u64,
    },
    /// One typed trace event of the running leg.
    Event {
        time_ns: u64,
        tid: u64,
        event: Event,
    },
    /// Periodic world snapshot (a resume point).
    Snapshot(SnapshotData),
    /// The running leg finished.
    RunEnd(RunEndData),
}

const KIND_CAMPAIGN: u8 = 1;
const KIND_RUN_BEGIN: u8 = 2;
const KIND_EVENT: u8 = 3;
const KIND_SNAPSHOT: u8 = 4;
const KIND_RUN_END: u8 = 5;

impl Record {
    /// Encode the payload (kind byte + body) of this record.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Campaign {
                label,
                master_seed,
                legs,
                snapshot_every,
            } => {
                put_u8(&mut out, KIND_CAMPAIGN);
                put_str(&mut out, label);
                put_u64(&mut out, *master_seed);
                put_u64(&mut out, *legs);
                put_u64(&mut out, *snapshot_every);
            }
            Record::RunBegin {
                leg,
                label,
                config_digest,
            } => {
                put_u8(&mut out, KIND_RUN_BEGIN);
                put_u64(&mut out, *leg);
                put_str(&mut out, label);
                put_u64(&mut out, *config_digest);
            }
            Record::Event {
                time_ns,
                tid,
                event,
            } => {
                put_u8(&mut out, KIND_EVENT);
                put_u64(&mut out, *time_ns);
                put_u64(&mut out, *tid);
                encode_event(&mut out, event);
            }
            Record::Snapshot(s) => {
                put_u8(&mut out, KIND_SNAPSHOT);
                put_u64(&mut out, s.legs_done);
                put_u64(&mut out, s.end_ns);
                put_u64(&mut out, s.rng_state);
                put_u64(&mut out, s.fault_cursor);
                put_u64(&mut out, s.metrics_digest);
                put_u32(&mut out, s.threads.len() as u32);
                for t in &s.threads {
                    put_str(&mut out, &t.name);
                    put_u64(&mut out, t.vtime_ns);
                    put_u64(&mut out, t.ops);
                }
                put_u32(&mut out, s.sections.len() as u32);
                for (name, payload) in &s.sections {
                    put_str(&mut out, name);
                    put_bytes(&mut out, payload);
                }
            }
            Record::RunEnd(e) => {
                put_u8(&mut out, KIND_RUN_END);
                put_u64(&mut out, e.leg);
                put_u64(&mut out, e.end_ns);
                put_u64(&mut out, e.metrics_digest);
                put_u32(&mut out, e.counters.len() as u32);
                for c in &e.counters {
                    put_u64(&mut out, *c);
                }
                put_u32(&mut out, e.results.len() as u32);
                for r in &e.results {
                    put_bytes(&mut out, r);
                }
            }
        }
        out
    }

    /// Decode a record from its payload (kind byte + body).
    pub fn decode_payload(payload: &[u8]) -> Result<Record, String> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        let rec = match kind {
            KIND_CAMPAIGN => Record::Campaign {
                label: r.str()?.to_string(),
                master_seed: r.u64()?,
                legs: r.u64()?,
                snapshot_every: r.u64()?,
            },
            KIND_RUN_BEGIN => Record::RunBegin {
                leg: r.u64()?,
                label: r.str()?.to_string(),
                config_digest: r.u64()?,
            },
            KIND_EVENT => Record::Event {
                time_ns: r.u64()?,
                tid: r.u64()?,
                event: decode_event(&mut r)?,
            },
            KIND_SNAPSHOT => {
                let legs_done = r.u64()?;
                let end_ns = r.u64()?;
                let rng_state = r.u64()?;
                let fault_cursor = r.u64()?;
                let metrics_digest = r.u64()?;
                let n = r.u32()? as usize;
                let mut threads = Vec::with_capacity(n);
                for _ in 0..n {
                    threads.push(ThreadSnap {
                        name: r.str()?.to_string(),
                        vtime_ns: r.u64()?,
                        ops: r.u64()?,
                    });
                }
                let n = r.u32()? as usize;
                let mut sections = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_string();
                    sections.push((name, r.bytes()?.to_vec()));
                }
                Record::Snapshot(SnapshotData {
                    legs_done,
                    end_ns,
                    rng_state,
                    fault_cursor,
                    metrics_digest,
                    threads,
                    sections,
                })
            }
            KIND_RUN_END => {
                let leg = r.u64()?;
                let end_ns = r.u64()?;
                let metrics_digest = r.u64()?;
                let n = r.u32()? as usize;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    counters.push(r.u64()?);
                }
                let n = r.u32()? as usize;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(r.bytes()?.to_vec());
                }
                Record::RunEnd(RunEndData {
                    leg,
                    end_ns,
                    metrics_digest,
                    counters,
                    results,
                })
            }
            other => return Err(format!("unknown record kind {other}")),
        };
        if r.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", r.remaining()));
        }
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

fn span_kind_tag(k: SpanKind) -> u8 {
    match k {
        SpanKind::Pack => 0,
        SpanKind::Unpack => 1,
        SpanKind::Handle => 2,
        SpanKind::Setup => 3,
        SpanKind::Stripe => 4,
        SpanKind::Post => 5,
        SpanKind::Coll => 6,
    }
}

fn span_kind_from(tag: u8) -> Result<SpanKind, String> {
    Ok(match tag {
        0 => SpanKind::Pack,
        1 => SpanKind::Unpack,
        2 => SpanKind::Handle,
        3 => SpanKind::Setup,
        4 => SpanKind::Stripe,
        5 => SpanKind::Post,
        6 => SpanKind::Coll,
        other => return Err(format!("unknown span kind {other}")),
    })
}

/// Intern a decoded label as `&'static str`. [`Event`] carries static
/// labels (packet kinds, span labels) drawn from a small fixed set; the
/// interner leaks each *distinct* decoded label once, which is bounded
/// in practice and keeps the typed event round-trippable.
fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().unwrap();
    if let Some(hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn encode_event(out: &mut Vec<u8>, e: &Event) {
    use Event::*;
    match e {
        Spawn => put_u8(out, 0),
        Exit => put_u8(out, 1),
        SemBlock { sem } => {
            put_u8(out, 2);
            put_u64(out, *sem as u64);
        }
        SemBlockTimeout { sem, deadline } => {
            put_u8(out, 3);
            put_u64(out, *sem as u64);
            put_u64(out, deadline.as_nanos());
        }
        SemWake { sem, woken } => {
            put_u8(out, 4);
            put_u64(out, *sem as u64);
            put_u64(out, *woken as u64);
        }
        PollWake { source } => {
            put_u8(out, 5);
            put_u64(out, *source as u64);
        }
        PollQueued { source } => {
            put_u8(out, 6);
            put_u64(out, *source as u64);
        }
        PollWaited { source } => {
            put_u8(out, 7);
            put_u64(out, *source as u64);
        }
        Pack {
            channel,
            to,
            seq,
            bytes,
            segments,
        } => {
            put_u8(out, 8);
            put_str(out, channel);
            put_u64(out, *to as u64);
            put_u64(out, *seq);
            put_u64(out, *bytes as u64);
            put_u64(out, *segments as u64);
        }
        Unpack {
            channel,
            from,
            seq,
            bytes,
        } => {
            put_u8(out, 9);
            put_str(out, channel);
            put_u64(out, *from as u64);
            put_u64(out, *seq);
            put_u64(out, *bytes as u64);
        }
        Retransmit {
            channel,
            to,
            seq,
            attempt,
        } => {
            put_u8(out, 10);
            put_str(out, channel);
            put_u64(out, *to as u64);
            put_u64(out, *seq);
            put_u32(out, *attempt);
        }
        DedupDrop { channel, from, seq } => {
            put_u8(out, 11);
            put_str(out, channel);
            put_u64(out, *from as u64);
            put_u64(out, *seq);
        }
        PacketSent {
            rank,
            dst,
            kind,
            rail,
            bytes,
        } => {
            put_u8(out, 12);
            put_u64(out, *rank as u64);
            put_u64(out, *dst as u64);
            put_str(out, kind);
            put_str(out, rail);
            put_u64(out, *bytes as u64);
        }
        PacketDelivered { rank, src, kind } => {
            put_u8(out, 13);
            put_u64(out, *rank as u64);
            put_u64(out, *src as u64);
            put_str(out, kind);
        }
        RailSelected {
            rank,
            dst,
            rail,
            bytes,
        } => {
            put_u8(out, 14);
            put_u64(out, *rank as u64);
            put_u64(out, *dst as u64);
            put_str(out, rail);
            put_u64(out, *bytes as u64);
        }
        RailFailover {
            rank,
            dst,
            from_rail,
            to_rail,
        } => {
            put_u8(out, 15);
            put_u64(out, *rank as u64);
            put_u64(out, *dst as u64);
            put_str(out, from_rail);
            put_str(out, to_rail);
        }
        RndvRequest {
            rank,
            dst,
            token,
            bytes,
        } => {
            put_u8(out, 16);
            put_u64(out, *rank as u64);
            put_u64(out, *dst as u64);
            put_u64(out, *token);
            put_u64(out, *bytes as u64);
        }
        RndvAck { rank, src, token } => {
            put_u8(out, 17);
            put_u64(out, *rank as u64);
            put_u64(out, *src as u64);
            put_u64(out, *token);
        }
        RecvPosted { rank, depth } => {
            put_u8(out, 18);
            put_u64(out, *rank as u64);
            put_u64(out, *depth as u64);
        }
        RecvMatched {
            rank,
            src,
            tag,
            unexpected,
        } => {
            put_u8(out, 19);
            put_u64(out, *rank as u64);
            put_u64(out, *src as u64);
            put_u32(out, *tag as u32);
            put_u8(out, u8::from(*unexpected));
        }
        UnexpectedQueued {
            rank,
            src,
            tag,
            depth,
        } => {
            put_u8(out, 20);
            put_u64(out, *rank as u64);
            put_u64(out, *src as u64);
            put_u32(out, *tag as u32);
            put_u64(out, *depth as u64);
        }
        SpanBegin { id, kind, label } => {
            put_u8(out, 21);
            put_u64(out, *id);
            put_u8(out, span_kind_tag(*kind));
            put_str(out, label);
        }
        SpanEnd { id, kind, label } => {
            put_u8(out, 22);
            put_u64(out, *id);
            put_u8(out, span_kind_tag(*kind));
            put_str(out, label);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<Event, String> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Event::Spawn,
        1 => Event::Exit,
        2 => Event::SemBlock {
            sem: r.u64()? as usize,
        },
        3 => Event::SemBlockTimeout {
            sem: r.u64()? as usize,
            deadline: VirtualTime(r.u64()?),
        },
        4 => Event::SemWake {
            sem: r.u64()? as usize,
            woken: r.u64()? as usize,
        },
        5 => Event::PollWake {
            source: r.u64()? as usize,
        },
        6 => Event::PollQueued {
            source: r.u64()? as usize,
        },
        7 => Event::PollWaited {
            source: r.u64()? as usize,
        },
        8 => Event::Pack {
            channel: Arc::from(r.str()?),
            to: r.u64()? as usize,
            seq: r.u64()?,
            bytes: r.u64()? as usize,
            segments: r.u64()? as usize,
        },
        9 => Event::Unpack {
            channel: Arc::from(r.str()?),
            from: r.u64()? as usize,
            seq: r.u64()?,
            bytes: r.u64()? as usize,
        },
        10 => Event::Retransmit {
            channel: Arc::from(r.str()?),
            to: r.u64()? as usize,
            seq: r.u64()?,
            attempt: r.u32()?,
        },
        11 => Event::DedupDrop {
            channel: Arc::from(r.str()?),
            from: r.u64()? as usize,
            seq: r.u64()?,
        },
        12 => Event::PacketSent {
            rank: r.u64()? as usize,
            dst: r.u64()? as usize,
            kind: intern(r.str()?),
            rail: Arc::from(r.str()?),
            bytes: r.u64()? as usize,
        },
        13 => Event::PacketDelivered {
            rank: r.u64()? as usize,
            src: r.u64()? as usize,
            kind: intern(r.str()?),
        },
        14 => Event::RailSelected {
            rank: r.u64()? as usize,
            dst: r.u64()? as usize,
            rail: Arc::from(r.str()?),
            bytes: r.u64()? as usize,
        },
        15 => Event::RailFailover {
            rank: r.u64()? as usize,
            dst: r.u64()? as usize,
            from_rail: Arc::from(r.str()?),
            to_rail: Arc::from(r.str()?),
        },
        16 => Event::RndvRequest {
            rank: r.u64()? as usize,
            dst: r.u64()? as usize,
            token: r.u64()?,
            bytes: r.u64()? as usize,
        },
        17 => Event::RndvAck {
            rank: r.u64()? as usize,
            src: r.u64()? as usize,
            token: r.u64()?,
        },
        18 => Event::RecvPosted {
            rank: r.u64()? as usize,
            depth: r.u64()? as usize,
        },
        19 => Event::RecvMatched {
            rank: r.u64()? as usize,
            src: r.u64()? as usize,
            tag: r.u32()? as i32,
            unexpected: r.u8()? != 0,
        },
        20 => Event::UnexpectedQueued {
            rank: r.u64()? as usize,
            src: r.u64()? as usize,
            tag: r.u32()? as i32,
            depth: r.u64()? as usize,
        },
        21 => Event::SpanBegin {
            id: r.u64()?,
            kind: span_kind_from(r.u8()?)?,
            label: intern(r.str()?),
        },
        22 => Event::SpanEnd {
            id: r.u64()?,
            kind: span_kind_from(r.u8()?)?,
            label: intern(r.str()?),
        },
        other => return Err(format!("unknown event tag {other}")),
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only journal writer over a [`JournalSink`]. Tracks the
/// running FNV digest and byte count of everything written, so a
/// campaign report can fingerprint the journal without re-reading it.
pub struct JournalWriter<S: JournalSink> {
    sink: S,
    bytes: u64,
    records: u64,
    digest: u64,
}

impl<S: JournalSink> JournalWriter<S> {
    /// Start a fresh journal: writes the magic + version header.
    pub fn create(sink: S) -> Result<Self, JournalError> {
        let mut w = JournalWriter {
            sink,
            bytes: 0,
            records: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        };
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, VERSION);
        w.raw(&header)?;
        Ok(w)
    }

    /// Continue a journal whose retained prefix (header included) is
    /// `prefix`: the prefix is replayed into the sink verbatim — a byte
    /// copy, not a re-execution — and subsequent appends continue the
    /// stream. `records` counts only newly appended records.
    pub fn resume(sink: S, prefix: &[u8]) -> Result<Self, JournalError> {
        let mut w = JournalWriter {
            sink,
            bytes: 0,
            records: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        };
        w.raw(prefix)?;
        Ok(w)
    }

    fn raw(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        // Fold the digest before the sink write: a budgeted sink may
        // truncate, but the *intended* stream digest is what the
        // uninterrupted run would compare against.
        self.digest = fnv1a64_fold(self.digest, bytes);
        self.bytes += bytes.len() as u64;
        self.sink.append(bytes)?;
        Ok(())
    }

    /// Append one record (length prefix + payload + checksum).
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(payload.len() + 16);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        put_u64(&mut frame, fnv1a64(&payload));
        self.records += 1;
        self.raw(&frame)
    }

    pub fn flush(&mut self) -> Result<(), JournalError> {
        self.sink.flush()?;
        Ok(())
    }

    /// Bytes written (or intended — a crashed sink may hold fewer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Records appended through this writer (prefix excluded).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// FNV-1a digest over every byte of the intended stream.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

/// Why a scan stopped before the end of the byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tail {
    /// Every byte belongs to a complete, checksummed record.
    Clean,
    /// The stream ends in a truncated or corrupt record — the crash
    /// artifact. Bytes past `valid_len` must be dropped.
    Torn { reason: String },
}

/// One decoded record plus its position in the byte stream.
#[derive(Clone, Debug)]
pub struct ScannedRecord {
    /// Offset of the record's length prefix.
    pub offset: usize,
    /// Offset one past the record's checksum (= next record's offset).
    pub end: usize,
    pub record: Record,
}

/// Result of walking a journal byte stream front to back.
#[derive(Debug)]
pub struct ScanResult {
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix: header + all complete records.
    pub valid_len: usize,
    pub tail: Tail,
}

impl ScanResult {
    /// Offsets (into `records`) of the snapshot records, in order.
    pub fn snapshot_indices(&self) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| matches!(r.record, Record::Snapshot(_)).then_some(i))
            .collect()
    }
}

/// Walk `bytes` front to back, validating framing and checksums.
/// Returns all complete records plus the torn-tail state. Only a bad
/// header is a hard error: torn or corrupt tails are normal crash
/// artifacts and are *reported*, not rejected.
pub fn scan(bytes: &[u8]) -> Result<ScanResult, JournalError> {
    if bytes.len() < MAGIC.len() + 4
        || &bytes[..MAGIC.len()] != MAGIC
        || u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()) != VERSION
    {
        return Err(JournalError::BadHeader);
    }
    let mut pos = MAGIC.len() + 4;
    let mut records = Vec::new();
    let torn = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 4 {
            break Some("truncated length prefix".to_string());
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_RECORD {
            break Some(format!("implausible record length {len}"));
        }
        let need = 4 + len as usize + 8;
        if bytes.len() - pos < need {
            break Some(format!(
                "truncated record: need {need} bytes, {} left",
                bytes.len() - pos
            ));
        }
        let payload = &bytes[pos + 4..pos + 4 + len as usize];
        let sum = u64::from_le_bytes(
            bytes[pos + 4 + len as usize..pos + need]
                .try_into()
                .unwrap(),
        );
        if sum != fnv1a64(payload) {
            break Some("checksum mismatch".to_string());
        }
        let record = Record::decode_payload(payload)
            .map_err(|what| JournalError::Malformed { offset: pos, what })?;
        records.push(ScannedRecord {
            offset: pos,
            end: pos + need,
            record,
        });
        pos += need;
    };
    Ok(ScanResult {
        records,
        valid_len: pos,
        tail: match torn {
            None => Tail::Clean,
            Some(reason) => Tail::Torn { reason },
        },
    })
}

// ---------------------------------------------------------------------------
// Bisect
// ---------------------------------------------------------------------------

/// Where two journals diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Leg the first divergent record belongs to.
    pub leg: u64,
    /// Index (into the record list) of the first divergent record.
    pub record_index: usize,
    /// Human-readable rendering of the two sides (`"<absent>"` when one
    /// journal ends first).
    pub a: String,
    pub b: String,
    /// Snapshot comparisons the binary-search phase performed — stays
    /// `O(log snapshots)` by construction.
    pub snapshot_probes: usize,
}

/// Outcome of [`bisect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BisectOutcome {
    /// The journals are byte-identical over their common valid prefix
    /// and have equal length.
    Identical,
    Diverged(Divergence),
}

fn render(rec: Option<&ScannedRecord>) -> String {
    match rec {
        None => "<absent>".to_string(),
        Some(s) => match &s.record {
            Record::Event {
                time_ns,
                tid,
                event,
            } => format!("[{time_ns}ns #{tid}] {event}"),
            Record::Snapshot(snap) => format!(
                "snapshot legs_done={} end={}ns rng={:#x} cursor={}",
                snap.legs_done, snap.end_ns, snap.rng_state, snap.fault_cursor
            ),
            other => format!("{other:?}"),
        },
    }
}

fn leg_of(records: &[ScannedRecord], index: usize) -> u64 {
    records[..=index.min(records.len().saturating_sub(1))]
        .iter()
        .rev()
        .find_map(|r| match &r.record {
            Record::RunBegin { leg, .. } => Some(*leg),
            Record::RunEnd(e) => Some(e.leg),
            Record::Snapshot(s) => Some(s.legs_done.saturating_sub(1)),
            _ => None,
        })
        .unwrap_or(0)
}

/// Find the first divergent record between two journals: binary-search
/// the snapshot records (divergence in a deterministic simulation is
/// monotone — once states differ they stay different), then scan the
/// first divergent inter-snapshot interval record by record.
pub fn bisect(a: &[u8], b: &[u8]) -> Result<BisectOutcome, JournalError> {
    let sa = scan(a)?;
    let sb = scan(b)?;
    let snaps_a = sa.snapshot_indices();
    let snaps_b = sb.snapshot_indices();
    let common_snaps = snaps_a.len().min(snaps_b.len());

    // Phase 1: binary search for the first snapshot whose encoded record
    // differs. Snapshot payloads digest the entire world state, so equal
    // snapshots mean the runs agreed up to that point.
    let mut probes = 0usize;
    let (mut lo, mut hi) = (0usize, common_snaps); // first differing snapshot in [lo, hi]
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        let ra = &sa.records[snaps_a[mid]].record;
        let rb = &sb.records[snaps_b[mid]].record;
        if ra == rb {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }

    // Phase 2: linear scan from the last agreeing snapshot (or the
    // journal start) to the first divergent record.
    let start_a = if lo == 0 {
        0
    } else {
        sa.records[snaps_a[lo - 1]].end
    };
    let start_b = if lo == 0 {
        0
    } else {
        sb.records[snaps_b[lo - 1]].end
    };
    let ia = sa.records.partition_point(|r| r.offset < start_a);
    let ib = sb.records.partition_point(|r| r.offset < start_b);
    debug_assert_eq!(ia, ib, "snapshot-aligned journals disagree on record count");
    let (recs_a, recs_b) = (&sa.records[ia..], &sb.records[ib..]);
    for (k, (ra, rb)) in recs_a.iter().zip(recs_b.iter()).enumerate() {
        if ra.record != rb.record {
            return Ok(BisectOutcome::Diverged(Divergence {
                leg: leg_of(&sa.records, ia + k),
                record_index: ia + k,
                a: render(Some(ra)),
                b: render(Some(rb)),
                snapshot_probes: probes,
            }));
        }
    }
    if recs_a.len() != recs_b.len() {
        let k = recs_a.len().min(recs_b.len());
        return Ok(BisectOutcome::Diverged(Divergence {
            leg: leg_of(
                if recs_a.len() > recs_b.len() {
                    &sa.records
                } else {
                    &sb.records
                },
                ia + k,
            ),
            record_index: ia + k,
            a: render(recs_a.get(k).map(|r| r as _)),
            b: render(recs_b.get(k).map(|r| r as _)),
            snapshot_probes: probes,
        }));
    }
    Ok(BisectOutcome::Identical)
}

// ---------------------------------------------------------------------------
// Format witness
// ---------------------------------------------------------------------------

/// A synthetic journal exercising every record kind and every event
/// variant with fixed values. Committed to `ci/journal_golden.bin` and
/// compared byte for byte by `ci/check_journal.py`: any accidental
/// format change (field reorder, width change, new mandatory field)
/// breaks the comparison before it breaks someone's archived campaign.
pub fn format_witness() -> Vec<u8> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut w = JournalWriter::create(MemSink::new(buf.clone())).unwrap();
    w.append(&Record::Campaign {
        label: "witness".into(),
        master_seed: 0xF00D,
        legs: 2,
        snapshot_every: 1,
    })
    .unwrap();
    w.append(&Record::RunBegin {
        leg: 0,
        label: "leg0".into(),
        config_digest: 0x1234_5678_9ABC_DEF0,
    })
    .unwrap();
    let ch: Arc<str> = Arc::from("tcp0");
    let events = vec![
        Event::Spawn,
        Event::Exit,
        Event::SemBlock { sem: 3 },
        Event::SemBlockTimeout {
            sem: 4,
            deadline: VirtualTime(1_000),
        },
        Event::SemWake { sem: 3, woken: 7 },
        Event::PollWake { source: 1 },
        Event::PollQueued { source: 2 },
        Event::PollWaited { source: 3 },
        Event::Pack {
            channel: ch.clone(),
            to: 1,
            seq: 42,
            bytes: 512,
            segments: 2,
        },
        Event::Unpack {
            channel: ch.clone(),
            from: 0,
            seq: 42,
            bytes: 512,
        },
        Event::Retransmit {
            channel: ch.clone(),
            to: 1,
            seq: 43,
            attempt: 2,
        },
        Event::DedupDrop {
            channel: ch.clone(),
            from: 0,
            seq: 41,
        },
        Event::PacketSent {
            rank: 0,
            dst: 1,
            kind: "EAGER",
            rail: ch.clone(),
            bytes: 128,
        },
        Event::PacketDelivered {
            rank: 1,
            src: 0,
            kind: "EAGER",
        },
        Event::RailSelected {
            rank: 0,
            dst: 1,
            rail: ch.clone(),
            bytes: 128,
        },
        Event::RailFailover {
            rank: 0,
            dst: 1,
            from_rail: ch.clone(),
            to_rail: Arc::from("sci0"),
        },
        Event::RndvRequest {
            rank: 0,
            dst: 1,
            token: 9,
            bytes: 1 << 20,
        },
        Event::RndvAck {
            rank: 0,
            src: 1,
            token: 9,
        },
        Event::RecvPosted { rank: 1, depth: 2 },
        Event::RecvMatched {
            rank: 1,
            src: 0,
            tag: -1,
            unexpected: true,
        },
        Event::UnexpectedQueued {
            rank: 1,
            src: 0,
            tag: 7,
            depth: 3,
        },
        Event::SpanBegin {
            id: 5,
            kind: SpanKind::Handle,
            label: "handle",
        },
        Event::SpanEnd {
            id: 5,
            kind: SpanKind::Handle,
            label: "handle",
        },
    ];
    for (i, e) in events.into_iter().enumerate() {
        w.append(&Record::Event {
            time_ns: 100 * (i as u64 + 1),
            tid: i as u64 % 4,
            event: e,
        })
        .unwrap();
    }
    w.append(&Record::RunEnd(RunEndData {
        leg: 0,
        end_ns: 123_456,
        metrics_digest: 0xDEAD_BEEF,
        counters: vec![1, 2, 3, 4, 5, 6, 7],
        results: vec![vec![0xAA; 4], vec![0xBB; 4]],
    }))
    .unwrap();
    w.append(&Record::Snapshot(SnapshotData {
        legs_done: 1,
        end_ns: 123_456,
        rng_state: 0x0123_4567_89AB_CDEF,
        fault_cursor: 1,
        metrics_digest: 0xDEAD_BEEF,
        threads: vec![
            ThreadSnap {
                name: "rank0".into(),
                vtime_ns: 123_456,
                ops: 99,
            },
            ThreadSnap {
                name: "rank1".into(),
                vtime_ns: 123_400,
                ops: 98,
            },
        ],
        sections: vec![
            ("madeleine".into(), vec![1, 2, 3]),
            ("matching".into(), vec![4, 5, 6]),
        ],
    }))
    .unwrap();
    let out = buf.lock().unwrap().clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        let witness = format_witness();
        scan(&witness)
            .unwrap()
            .records
            .into_iter()
            .map(|r| r.record)
            .collect()
    }

    #[test]
    fn every_record_kind_round_trips() {
        let scanned = sample_records();
        assert!(
            scanned.len() > 20,
            "witness should cover all event variants"
        );
        for rec in &scanned {
            let payload = rec.encode_payload();
            let back = Record::decode_payload(&payload).unwrap();
            assert_eq!(*rec, back, "record did not round-trip");
        }
    }

    #[test]
    fn witness_is_deterministic() {
        assert_eq!(format_witness(), format_witness());
    }

    #[test]
    fn scan_detects_clean_tail() {
        let bytes = format_witness();
        let s = scan(&bytes).unwrap();
        assert_eq!(s.tail, Tail::Clean);
        assert_eq!(s.valid_len, bytes.len());
    }

    #[test]
    fn scan_detects_torn_tail_at_every_cut() {
        let bytes = format_witness();
        let clean = scan(&bytes).unwrap();
        let mut boundaries: std::collections::HashSet<usize> =
            clean.records.iter().map(|r| r.end).collect();
        boundaries.insert(MAGIC.len() + 4); // a bare header is a valid (empty) journal
        for cut in (MAGIC.len() + 4)..bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            if boundaries.contains(&cut) {
                assert_eq!(s.tail, Tail::Clean, "boundary cut at {cut} reported torn");
                assert_eq!(s.valid_len, cut);
            } else {
                assert!(
                    matches!(s.tail, Tail::Torn { .. }),
                    "mid-record cut at {cut} not detected"
                );
                assert!(s.valid_len < cut);
                assert!(boundaries.contains(&s.valid_len) || s.valid_len == MAGIC.len() + 4);
            }
        }
    }

    #[test]
    fn scan_detects_corrupt_byte() {
        let mut bytes = format_witness();
        // Flip one payload byte of the second record: its checksum must
        // fail and everything from there on must be dropped.
        let s = scan(&bytes).unwrap();
        let r1 = &s.records[1];
        let flip = r1.offset + 5;
        bytes[flip] ^= 0x40;
        let s = scan(&bytes).unwrap();
        assert_eq!(s.valid_len, r1.offset);
        assert!(matches!(s.tail, Tail::Torn { ref reason } if reason.contains("checksum")));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(
            scan(b"not a journal"),
            Err(JournalError::BadHeader)
        ));
        let mut bytes = format_witness();
        bytes[0] ^= 1;
        assert!(matches!(scan(&bytes), Err(JournalError::BadHeader)));
    }

    #[test]
    fn mem_sink_budget_produces_torn_tail() {
        let full = format_witness();
        let cut = full.len() - 11; // inside the final record
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut w = JournalWriter::create(MemSink::with_budget(buf.clone(), cut as u64)).unwrap();
        let mut crashed = false;
        for rec in sample_records() {
            if w.append(&rec).is_err() {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "budgeted sink never crashed");
        let bytes = buf.lock().unwrap().clone();
        assert_eq!(bytes.len(), cut);
        assert_eq!(&bytes[..], &full[..cut], "prefix must match the clean run");
        let s = scan(&bytes).unwrap();
        assert!(matches!(s.tail, Tail::Torn { .. }));
    }

    #[test]
    fn resume_writer_continues_digest_and_bytes() {
        let full = format_witness();
        let s = scan(&full).unwrap();
        let cut = s.records[2].end;
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut w = JournalWriter::resume(MemSink::new(buf.clone()), &full[..cut]).unwrap();
        for rec in sample_records().into_iter().skip(3) {
            w.append(&rec).unwrap();
        }
        assert_eq!(*buf.lock().unwrap(), full);
        assert_eq!(w.digest(), fnv1a64(&full));
        assert_eq!(w.bytes_written(), full.len() as u64);
    }

    #[test]
    fn bisect_identical_journals() {
        let a = format_witness();
        assert_eq!(bisect(&a, &a).unwrap(), BisectOutcome::Identical);
    }

    #[test]
    fn bisect_finds_first_divergent_event() {
        // Build two journals that agree for 3 legs (3 snapshots) and
        // diverge at one event inside leg 3.
        let build = |divergent_bytes: usize| {
            let buf = Arc::new(Mutex::new(Vec::new()));
            let mut w = JournalWriter::create(MemSink::new(buf.clone())).unwrap();
            w.append(&Record::Campaign {
                label: "bisect".into(),
                master_seed: 1,
                legs: 5,
                snapshot_every: 1,
            })
            .unwrap();
            for leg in 0..5u64 {
                w.append(&Record::RunBegin {
                    leg,
                    label: format!("leg{leg}"),
                    config_digest: 7,
                })
                .unwrap();
                for i in 0..10u64 {
                    let bytes = if leg == 3 && i == 4 {
                        divergent_bytes
                    } else {
                        64
                    };
                    w.append(&Record::Event {
                        time_ns: leg * 1000 + i,
                        tid: i % 3,
                        event: Event::Pack {
                            channel: Arc::from("tcp0"),
                            to: 1,
                            seq: i,
                            bytes,
                            segments: 1,
                        },
                    })
                    .unwrap();
                }
                w.append(&Record::RunEnd(RunEndData {
                    leg,
                    end_ns: leg * 1000 + 999,
                    metrics_digest: if leg >= 3 { divergent_bytes as u64 } else { 0 },
                    counters: vec![0; 7],
                    results: vec![vec![leg as u8]],
                }))
                .unwrap();
                w.append(&Record::Snapshot(SnapshotData {
                    legs_done: leg + 1,
                    end_ns: leg * 1000 + 999,
                    rng_state: if leg >= 3 {
                        divergent_bytes as u64
                    } else {
                        leg
                    },
                    fault_cursor: leg + 1,
                    metrics_digest: 0,
                    threads: vec![],
                    sections: vec![],
                }))
                .unwrap();
            }
            let out = buf.lock().unwrap().clone();
            out
        };
        let a = build(64); // identical everywhere
        let b = build(4096);
        match bisect(&a, &b).unwrap() {
            BisectOutcome::Diverged(d) => {
                assert_eq!(d.leg, 3, "divergence leg: {d:?}");
                assert!(d.a.contains("4") && d.b.contains("4096"), "{d:?}");
                assert!(
                    d.snapshot_probes <= 4,
                    "binary search over 5 snapshots took {} probes",
                    d.snapshot_probes
                );
                // The divergent record must be the event, not the later
                // RunEnd/Snapshot that also differ.
                assert!(d.a.contains("pack"), "expected the pack event, got {}", d.a);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn bisect_detects_length_divergence() {
        let a = format_witness();
        let s = scan(&a).unwrap();
        let b = a[..s.records[s.records.len() - 2].end].to_vec();
        match bisect(&a, &b).unwrap() {
            BisectOutcome::Diverged(d) => assert_eq!(d.b, "<absent>"),
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
