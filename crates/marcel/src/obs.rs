//! Cross-layer observability: typed trace events, virtual-time spans, a
//! metrics registry, and exporters.
//!
//! # Typed events
//!
//! The kernel trace used to be a flat list of format strings. It now
//! records [`Event`] values: every layer of the stack (marcel kernel,
//! Madeleine channels, the ch_mad device, the ADI engine) has variants
//! carrying its own tags (channel, rank, message sequence number, rail),
//! so a message's life — pack, wire, poll detection, demultiplex,
//! delivery, completion — is reconstructable end-to-end from one trace.
//! [`Event`]'s `Display` reproduces the legacy strings byte-for-byte for
//! the original kernel events, so the human-readable timeline is
//! unchanged.
//!
//! # Spans
//!
//! A span is a begin/end pair in *virtual* time ([`span_begin`] /
//! [`span_end`]). Ends may occur on a different simulated thread than
//! the begin (e.g. the ch_mad *handling* span starts on the polling
//! thread and ends when the receiving rank observes completion), which
//! is why spans carry explicit ids and the Chrome exporter emits them as
//! async ("b"/"e") events. Every finished span feeds a virtual-time
//! histogram in the metrics registry — that is what `bench --bin
//! overhead` measures the paper's §5 packing-vs-handling decomposition
//! from.
//!
//! # Zero cost when disabled
//!
//! Instrumentation never advances virtual time and never reschedules:
//! with tracing off, runs are bit-identical to uninstrumented ones, and
//! with tracing *on* only host (real) time is spent. Metrics are always
//! collected (they are pure host-side bookkeeping); trace events are
//! gated on an atomic flag checked without taking the scheduler lock.
//!
//! # Exporters
//!
//! [`chrome_trace_json`] renders a trace as Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`): one virtual *process*
//! per cluster node, one *thread* per Marcel tid.
//! [`MetricsSnapshot`]'s `Display` is the plain-text stats report.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::TraceEvent;
use crate::time::{VirtualDuration, VirtualTime};

/// Which layer of the stack emitted an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layer {
    /// marcel kernel: threads, semaphores, polling.
    Marcel,
    /// Madeleine channels: pack/unpack, reliable delivery.
    Madeleine,
    /// The ch_mad multi-protocol device: packets, rails, rendezvous.
    ChMad,
    /// The ADI message engine: posted/unexpected queues.
    Adi,
    /// The generic MPI layer's collective engine.
    Coll,
}

impl Layer {
    pub fn name(self) -> &'static str {
        match self {
            Layer::Marcel => "marcel",
            Layer::Madeleine => "madeleine",
            Layer::ChMad => "ch_mad",
            Layer::Adi => "adi",
            Layer::Coll => "coll",
        }
    }
}

/// The kind of a measured span (selects the histogram family).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// Madeleine packing: `begin_packing` → `end_packing` returns.
    Pack,
    /// Madeleine unpacking: `begin_unpacking` returns → `end_unpacking`.
    Unpack,
    /// ch_mad receive-side handling: packet noticed → receiving rank
    /// observes completion (crosses threads).
    Handle,
    /// ch_mad send-side setup: `Device::send` entry → packing begins.
    Setup,
    /// One rail's share of a striped rendezvous send.
    Stripe,
    /// ADI receive posting: `Engine::post_recv` entry → return (queue
    /// lock, match attempt against the unexpected queue, enqueue).
    Post,
    /// One collective operation on one rank: engine entry → result
    /// available (the label carries the operation name; the selected
    /// algorithm is recorded in the `coll.<op>.<algorithm>` counters).
    Coll,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Pack => "pack",
            SpanKind::Unpack => "unpack",
            SpanKind::Handle => "handle",
            SpanKind::Setup => "setup",
            SpanKind::Stripe => "stripe",
            SpanKind::Post => "post",
            SpanKind::Coll => "coll",
        }
    }
}

/// One typed trace event. The first eight variants are the legacy
/// kernel events; their `Display` output is byte-identical to the
/// strings the kernel recorded before events were typed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    // ---- marcel: threads, semaphores, polling ----
    /// A simulated thread was spawned (recorded with the new thread's tid).
    Spawn,
    /// A simulated thread finished.
    Exit,
    /// `P` on a semaphore with count 0: the caller blocks.
    SemBlock { sem: usize },
    /// Timed `P` blocking until a deadline.
    SemBlockTimeout { sem: usize, deadline: VirtualTime },
    /// `V` granted the semaphore to a blocked waiter.
    SemWake { sem: usize, woken: usize },
    /// A message post woke the thread blocked in `poll_wait`.
    PollWake { source: usize },
    /// `poll_wait` found a message already queued.
    PollQueued { source: usize },
    /// `poll_wait` blocked and was woken by a later arrival.
    PollWaited { source: usize },
    // ---- madeleine: channels ----
    /// A packed message was injected into the wire.
    Pack {
        channel: Arc<str>,
        to: usize,
        seq: u64,
        bytes: usize,
        segments: usize,
    },
    /// A wire message was accepted by the receiver.
    Unpack {
        channel: Arc<str>,
        from: usize,
        seq: u64,
        bytes: usize,
    },
    /// The reliable-delivery sublayer re-sent a lost message.
    Retransmit {
        channel: Arc<str>,
        to: usize,
        seq: u64,
        attempt: u32,
    },
    /// The receiver dropped an already-delivered duplicate.
    DedupDrop {
        channel: Arc<str>,
        from: usize,
        seq: u64,
    },
    // ---- ch_mad: packets, rails, rendezvous ----
    /// A device packet left on some rail.
    PacketSent {
        rank: usize,
        dst: usize,
        kind: &'static str,
        rail: Arc<str>,
        bytes: usize,
    },
    /// A device packet was demultiplexed on the receiving rank.
    PacketDelivered {
        rank: usize,
        src: usize,
        kind: &'static str,
    },
    /// The policy picked a rail for an outgoing packet.
    RailSelected {
        rank: usize,
        dst: usize,
        rail: Arc<str>,
        bytes: usize,
    },
    /// A send failed over from a dead rail to the next live one.
    RailFailover {
        rank: usize,
        dst: usize,
        from_rail: Arc<str>,
        to_rail: Arc<str>,
    },
    /// Rendezvous REQUEST issued.
    RndvRequest {
        rank: usize,
        dst: usize,
        token: u64,
        bytes: usize,
    },
    /// Rendezvous OK_TO_SEND observed by the sender.
    RndvAck { rank: usize, src: usize, token: u64 },
    // ---- ADI engine: queues ----
    /// A receive was posted (depth = posted-queue depth after).
    RecvPosted { rank: usize, depth: usize },
    /// An incoming message matched a receive (posted or unexpected).
    RecvMatched {
        rank: usize,
        src: usize,
        tag: i32,
        unexpected: bool,
    },
    /// An incoming message found no posted receive and was queued.
    UnexpectedQueued {
        rank: usize,
        src: usize,
        tag: i32,
        depth: usize,
    },
    // ---- spans ----
    SpanBegin {
        id: u64,
        kind: SpanKind,
        label: &'static str,
    },
    SpanEnd {
        id: u64,
        kind: SpanKind,
        label: &'static str,
    },
}

impl Event {
    /// Short machine-readable variant name (the `kind` axis of replay
    /// queries; stable — `jrnl query --kind` matches on it).
    pub fn kind_name(&self) -> &'static str {
        use Event::*;
        match self {
            Spawn => "spawn",
            Exit => "exit",
            SemBlock { .. } => "sem_block",
            SemBlockTimeout { .. } => "sem_block_timeout",
            SemWake { .. } => "sem_wake",
            PollWake { .. } => "poll_wake",
            PollQueued { .. } => "poll_queued",
            PollWaited { .. } => "poll_waited",
            Pack { .. } => "pack",
            Unpack { .. } => "unpack",
            Retransmit { .. } => "retransmit",
            DedupDrop { .. } => "dedup_drop",
            PacketSent { .. } => "packet_sent",
            PacketDelivered { .. } => "packet_delivered",
            RailSelected { .. } => "rail_selected",
            RailFailover { .. } => "rail_failover",
            RndvRequest { .. } => "rndv_request",
            RndvAck { .. } => "rndv_ack",
            RecvPosted { .. } => "recv_posted",
            RecvMatched { .. } => "recv_matched",
            UnexpectedQueued { .. } => "unexpected_queued",
            SpanBegin { .. } => "span_begin",
            SpanEnd { .. } => "span_end",
        }
    }

    /// The rank tags this event carries, in `[primary, peer]` order
    /// (`None` where the variant has no such tag). A replay rank filter
    /// matches an event when *either* tag equals the queried rank, so a
    /// message shows up on both endpoints' timelines.
    pub fn rank_tags(&self) -> [Option<usize>; 2] {
        use Event::*;
        match self {
            Pack { to, .. } | Retransmit { to, .. } => [Some(*to), None],
            Unpack { from, .. } | DedupDrop { from, .. } => [Some(*from), None],
            PacketSent { rank, dst, .. }
            | RailSelected { rank, dst, .. }
            | RailFailover { rank, dst, .. }
            | RndvRequest { rank, dst, .. } => [Some(*rank), Some(*dst)],
            PacketDelivered { rank, src, .. }
            | RndvAck { rank, src, .. }
            | RecvMatched { rank, src, .. }
            | UnexpectedQueued { rank, src, .. } => [Some(*rank), Some(*src)],
            RecvPosted { rank, .. } => [Some(*rank), None],
            _ => [None, None],
        }
    }

    /// The channel (or rail) name this event carries, if any.
    pub fn channel(&self) -> Option<&str> {
        use Event::*;
        match self {
            Pack { channel, .. }
            | Unpack { channel, .. }
            | Retransmit { channel, .. }
            | DedupDrop { channel, .. } => Some(channel),
            PacketSent { rail, .. } | RailSelected { rail, .. } => Some(rail),
            RailFailover { to_rail, .. } => Some(to_rail),
            _ => None,
        }
    }

    /// The payload byte count this event carries, if any.
    pub fn bytes(&self) -> Option<usize> {
        use Event::*;
        match self {
            Pack { bytes, .. }
            | Unpack { bytes, .. }
            | PacketSent { bytes, .. }
            | RailSelected { bytes, .. }
            | RndvRequest { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }

    /// The stack layer this event belongs to.
    pub fn layer(&self) -> Layer {
        use Event::*;
        match self {
            Spawn
            | Exit
            | SemBlock { .. }
            | SemBlockTimeout { .. }
            | SemWake { .. }
            | PollWake { .. }
            | PollQueued { .. }
            | PollWaited { .. } => Layer::Marcel,
            Pack { .. } | Unpack { .. } | Retransmit { .. } | DedupDrop { .. } => Layer::Madeleine,
            PacketSent { .. }
            | PacketDelivered { .. }
            | RailSelected { .. }
            | RailFailover { .. }
            | RndvRequest { .. }
            | RndvAck { .. } => Layer::ChMad,
            RecvPosted { .. } | RecvMatched { .. } | UnexpectedQueued { .. } => Layer::Adi,
            SpanBegin { kind, .. } | SpanEnd { kind, .. } => match kind {
                SpanKind::Pack | SpanKind::Unpack => Layer::Madeleine,
                SpanKind::Handle | SpanKind::Setup | SpanKind::Stripe => Layer::ChMad,
                SpanKind::Post => Layer::Adi,
                SpanKind::Coll => Layer::Coll,
            },
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Event::*;
        match self {
            // Legacy kernel strings, byte-identical to the pre-typed trace.
            Spawn => write!(f, "spawn"),
            Exit => write!(f, "exit"),
            SemBlock { sem } => write!(f, "P sem#{sem} blocks"),
            SemBlockTimeout { sem, deadline } => {
                write!(f, "P sem#{sem} blocks until {deadline}")
            }
            SemWake { sem, woken } => write!(f, "V sem#{sem} wakes #{woken}"),
            PollWake { source } => write!(f, "post->wake src#{source}"),
            PollQueued { source } => write!(f, "polled src#{source} (queued)"),
            PollWaited { source } => write!(f, "polled src#{source} (waited)"),
            // Madeleine.
            Pack {
                channel,
                to,
                seq,
                bytes,
                segments,
            } => write!(f, "pack {channel}->#{to} seq={seq} {bytes}B x{segments}"),
            Unpack {
                channel,
                from,
                seq,
                bytes,
            } => write!(f, "unpack {channel}<-#{from} seq={seq} {bytes}B"),
            Retransmit {
                channel,
                to,
                seq,
                attempt,
            } => write!(f, "retransmit {channel}->#{to} seq={seq} attempt={attempt}"),
            DedupDrop { channel, from, seq } => {
                write!(f, "dedup-drop {channel}<-#{from} seq={seq}")
            }
            // ch_mad.
            PacketSent {
                rank,
                dst,
                kind,
                rail,
                bytes,
            } => write!(f, "packet {kind} #{rank}->#{dst} via {rail} {bytes}B"),
            PacketDelivered { rank, src, kind } => {
                write!(f, "packet {kind} #{src}->#{rank} delivered")
            }
            RailSelected {
                rank,
                dst,
                rail,
                bytes,
            } => write!(f, "rail {rail} selected #{rank}->#{dst} {bytes}B"),
            RailFailover {
                rank,
                dst,
                from_rail,
                to_rail,
            } => write!(f, "rail failover #{rank}->#{dst}: {from_rail} -> {to_rail}"),
            RndvRequest {
                rank,
                dst,
                token,
                bytes,
            } => write!(f, "rndv REQUEST #{rank}->#{dst} token={token} {bytes}B"),
            RndvAck { rank, src, token } => {
                write!(f, "rndv OK_TO_SEND #{src}->#{rank} token={token}")
            }
            // ADI.
            RecvPosted { rank, depth } => write!(f, "adi post-recv rank{rank} depth={depth}"),
            RecvMatched {
                rank,
                src,
                tag,
                unexpected,
            } => write!(
                f,
                "adi match rank{rank} src=#{src} tag={tag} ({})",
                if *unexpected { "unexpected" } else { "posted" }
            ),
            UnexpectedQueued {
                rank,
                src,
                tag,
                depth,
            } => write!(
                f,
                "adi unexpected rank{rank} src=#{src} tag={tag} depth={depth}"
            ),
            // Spans.
            SpanBegin { id, kind, label } => {
                write!(f, "begin {}:{label} span#{id}", kind.name())
            }
            SpanEnd { id, kind, label } => write!(f, "end {}:{label} span#{id}", kind.name()),
        }
    }
}

/// String comparison goes through `Display`, so existing code and tests
/// that matched the stringly trace (`e.what == "spawn"`) keep working.
impl PartialEq<&str> for Event {
    fn eq(&self, other: &&str) -> bool {
        self.to_string() == **other
    }
}

impl PartialEq<Event> for &str {
    fn eq(&self, other: &Event) -> bool {
        other == self
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Summary statistics of one virtual-time histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Log2 buckets: `buckets[i]` counts observations with
    /// `bit_length(ns) == i` (bucket 0 holds zero-duration samples).
    pub buckets: [u64; 32],
}

impl HistSnapshot {
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistSnapshot>,
}

/// The per-kernel metrics registry: counters, high-water gauges and
/// virtual-time histograms, keyed by `/`-separated string names.
///
/// All updates are pure host-side bookkeeping — they never advance
/// virtual time or reschedule, so collection is always on and cannot
/// perturb the simulation. Exactly one simulated thread runs at a time,
/// so the update order (and therefore every snapshot) is deterministic.
pub struct Metrics {
    store: Mutex<Store>,
    next_span: AtomicU64,
}

impl Metrics {
    /// A fresh, empty registry. The kernel owns one per run; replay's
    /// window aggregation builds standalone instances host-side.
    pub fn new() -> Metrics {
        Metrics {
            store: Mutex::new(Store::default()),
            next_span: AtomicU64::new(1),
        }
    }

    /// Add `delta` to the counter `name` (created at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut s = self.store.lock();
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Raise the high-water gauge `name` to `v` if `v` exceeds it.
    pub fn gauge_max(&self, name: &str, v: u64) {
        let mut s = self.store.lock();
        match s.gauges.get_mut(name) {
            Some(g) => *g = (*g).max(v),
            None => {
                s.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record one observation into the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        let mut s = self.store.lock();
        if !s.hists.contains_key(name) {
            s.hists.insert(name.to_string(), HistSnapshot::default());
        }
        let h = s.hists.get_mut(name).expect("histogram just ensured");
        if h.count == 0 {
            h.min_ns = ns;
            h.max_ns = ns;
        } else {
            h.min_ns = h.min_ns.min(ns);
            h.max_ns = h.max_ns.max(ns);
        }
        h.count += 1;
        h.sum_ns += ns;
        let bucket = (64 - ns.leading_zeros()) as usize;
        h.buckets[bucket.min(31)] += 1;
    }

    /// Record one observation from a [`VirtualDuration`].
    pub fn observe(&self, name: &str, d: VirtualDuration) {
        self.observe_ns(name, d.as_nanos());
    }

    /// Allocate a fresh span id (deterministic: one simulated thread
    /// runs at a time).
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Clear all counters, gauges and histograms (span ids keep
    /// counting). Benchmarks call this between warm-up and the measured
    /// iterations.
    pub fn reset(&self) {
        *self.store.lock() = Store::default();
    }

    /// Copy the registry's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.store.lock();
        MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            hists: s.hists.clone(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// A point-in-time copy of the registry. `Display` renders the
/// plain-text stats report; `PartialEq` makes determinism testable.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// High-water gauge value (zero when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }

    /// Counters whose name starts with `prefix`, in sorted order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- counters --")?;
        for (k, v) in &self.counters {
            writeln!(f, "{k:<44} {v:>12}")?;
        }
        writeln!(f, "-- gauges (high-water) --")?;
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<44} {v:>12}")?;
        }
        writeln!(f, "-- histograms (virtual time, us) --")?;
        writeln!(
            f,
            "{:<44} {:>8} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "min", "max"
        )?;
        for (k, h) in &self.hists {
            writeln!(
                f,
                "{:<44} {:>8} {:>10.3} {:>10.3} {:>10.3}",
                k,
                h.count,
                h.mean_us(),
                h.min_ns as f64 / 1_000.0,
                h.max_ns as f64 / 1_000.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Ambient emission API (usable from any simulated thread)
// ---------------------------------------------------------------------------

/// Record a trace event for the calling simulated thread. The closure
/// only runs when tracing is enabled; outside a simulated thread this is
/// a no-op. Never advances virtual time.
///
/// Under `ExecPolicy::Ticketed` the record is routed through the
/// committer, so trace order is defined by ticket (= virtual time)
/// order, not by which worker got to the trace buffer first. With
/// tracing off there is nothing order-observable and no effect is
/// emitted.
pub fn emit(f: impl FnOnce() -> Event) {
    let Some((shared, me)) = crate::thread::try_current() else {
        return;
    };
    if !shared.trace_on.load(Ordering::Relaxed) {
        return;
    }
    if shared.in_sim_ticketed().is_some() {
        let ev = f();
        shared.critical(move |sched, _, me| {
            sched.record(me.expect("in-sim emit"), move || ev);
        });
        return;
    }
    let mut sched = shared.state.lock();
    sched.record(me, f);
}

/// Run `f` against the kernel's metrics registry; `None` outside a
/// simulated thread.
pub fn with_metrics<R>(f: impl FnOnce(&Metrics) -> R) -> Option<R> {
    crate::thread::try_current().map(|(shared, _)| f(&shared.metrics))
}

/// Ambient [`Metrics::counter_add`].
pub fn counter_add(name: &str, delta: u64) {
    with_metrics(|m| m.counter_add(name, delta));
}

/// Ambient [`Metrics::gauge_max`].
pub fn gauge_max(name: &str, v: u64) {
    with_metrics(|m| m.gauge_max(name, v));
}

/// Ambient [`Metrics::observe_ns`].
pub fn observe_ns(name: &str, ns: u64) {
    with_metrics(|m| m.observe_ns(name, ns));
}

/// Ambient [`Metrics::reset`] — benchmarks call this from inside the
/// simulation between warm-up and the measured iterations.
///
/// Unlike counter/gauge/histogram updates (commutative, so any
/// interleaving produces the same snapshot), a reset is order-sensitive:
/// under `ExecPolicy::Ticketed` it is committed at the caller's ticket.
/// Call it from a quiescent point (after a barrier, with peers blocked),
/// as the seed engine's benchmarks always have.
pub fn reset_metrics() {
    let Some((shared, _)) = crate::thread::try_current() else {
        return;
    };
    if shared.in_sim_ticketed().is_some() {
        shared.critical(|_, sh, _| sh.metrics.reset());
        return;
    }
    shared.metrics.reset();
}

/// An open span. `Copy`, so it can be stashed in shared state and ended
/// on a different simulated thread than it began on.
#[derive(Clone, Copy, Debug)]
pub struct ActiveSpan {
    id: u64,
    kind: SpanKind,
    label: &'static str,
    begin: VirtualTime,
}

impl ActiveSpan {
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Open a span at the calling thread's current virtual time. `label`
/// selects the histogram (`span/<kind>/<label>`) — by convention the
/// protocol name. `None` outside a simulated thread.
pub fn span_begin(kind: SpanKind, label: &'static str) -> Option<ActiveSpan> {
    let (shared, me) = crate::thread::try_current()?;
    // With tracing on, span ids are trace-visible, so their allocation
    // order must be ticket order under `Ticketed`: allocate inside the
    // committed record. With tracing off, ids only pair begins with ends
    // in-process and any order will do.
    if shared.trace_on.load(Ordering::Relaxed) && shared.in_sim_ticketed().is_some() {
        let (id, begin) = shared.critical(move |sched, sh, me| {
            let me = me.expect("in-sim span_begin");
            let begin = sched.threads[me.index()].vtime;
            let id = sh.metrics.next_span_id();
            sched.record(me, || Event::SpanBegin { id, kind, label });
            (id, begin)
        });
        return Some(ActiveSpan {
            id,
            kind,
            label,
            begin,
        });
    }
    let mut sched = shared.state.lock();
    let begin = sched.threads[me.index()].vtime;
    let id = shared.metrics.next_span_id();
    if shared.trace_on.load(Ordering::Relaxed) {
        sched.record(me, || Event::SpanBegin { id, kind, label });
    }
    Some(ActiveSpan {
        id,
        kind,
        label,
        begin,
    })
}

/// Like [`span_begin`], but backdated to `begin` (e.g. a wire-arrival
/// timestamp the observing thread learned after the fact). The trace
/// event is still recorded at the caller's current time — only the
/// measured duration is backdated.
pub fn span_begin_at(
    kind: SpanKind,
    label: &'static str,
    begin: VirtualTime,
) -> Option<ActiveSpan> {
    span_begin(kind, label).map(|s| ActiveSpan { begin, ..s })
}

/// Interned `span/<kind>/<label>` histogram key. Both components are
/// `&'static str`, so the key space is bounded (kinds × static
/// labels); interning via `Box::leak` keeps [`span_end`] free of a
/// per-call `format!` on the hot path.
fn span_key(kind: SpanKind, label: &'static str) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex as StdMutex, OnceLock};
    static KEYS: OnceLock<StdMutex<HashMap<(&'static str, &'static str), &'static str>>> =
        OnceLock::new();
    let mut keys = KEYS
        .get_or_init(|| StdMutex::new(HashMap::new()))
        .lock()
        .expect("span-key cache poisoned");
    keys.entry((kind.name(), label))
        .or_insert_with(|| Box::leak(format!("span/{}/{label}", kind.name()).into_boxed_str()))
}

/// Close a span on the calling thread, feeding its histogram. Accepts
/// the `Option` from [`span_begin`] so call sites stay unconditional.
pub fn span_end(span: Option<ActiveSpan>) {
    let Some(span) = span else { return };
    let Some((shared, me)) = crate::thread::try_current() else {
        return;
    };
    let end = if shared.trace_on.load(Ordering::Relaxed) && shared.in_sim_ticketed().is_some() {
        let (id, kind, label) = (span.id, span.kind, span.label);
        shared.critical(move |sched, _, me| {
            let me = me.expect("in-sim span_end");
            let end = sched.threads[me.index()].vtime;
            sched.record(me, || Event::SpanEnd { id, kind, label });
            end
        })
    } else {
        let mut sched = shared.state.lock();
        let end = sched.threads[me.index()].vtime;
        if shared.trace_on.load(Ordering::Relaxed) {
            let (id, kind, label) = (span.id, span.kind, span.label);
            sched.record(me, || Event::SpanEnd { id, kind, label });
        }
        end
    };
    shared.metrics.observe_ns(
        span_key(span.kind, span.label),
        end.saturating_since(span.begin).as_nanos(),
    );
}

// ---------------------------------------------------------------------------
// Trace validation & export
// ---------------------------------------------------------------------------

/// Check the span invariant: every `SpanBegin` in `trace` has exactly
/// one matching `SpanEnd` (same id) and no end lacks a begin.
// The clippy-suggested collapse would move the map mutations into
// match guards; the nested form keeps them visible.
#[allow(clippy::collapsible_match)]
pub fn validate_spans(trace: &[TraceEvent]) -> Result<(), String> {
    let mut open: BTreeMap<u64, &'static str> = BTreeMap::new();
    for e in trace {
        match &e.what {
            Event::SpanBegin { id, label, .. } => {
                if open.insert(*id, label).is_some() {
                    return Err(format!("span #{id} began twice"));
                }
            }
            Event::SpanEnd { id, .. } => {
                if open.remove(id).is_none() {
                    return Err(format!("span #{id} ended without a begin (or twice)"));
                }
            }
            _ => {}
        }
    }
    if open.is_empty() {
        Ok(())
    } else {
        let dangling: Vec<String> = open
            .iter()
            .map(|(id, label)| format!("#{id} ({label})"))
            .collect();
        Err(format!("unclosed spans: {}", dangling.join(", ")))
    }
}

/// Per-tid metadata for the Chrome exporter: the Marcel thread's name
/// and the virtual "process" (cluster node) it belongs to.
#[derive(Clone, Debug)]
pub struct ThreadMeta {
    pub name: String,
    pub pid: u32,
}

/// One sampled counter group for the Chrome exporter: rendered as a
/// `"ph":"C"` counter event, which Perfetto draws as a stacked gauge
/// track. Replay emits one per journal snapshot / leg boundary inside
/// an exported window, so sliced traces carry the campaign's fault
/// counters and progress gauges, not just spans.
#[derive(Clone, Debug)]
pub struct CounterSample {
    /// Virtual timestamp of the sample.
    pub ts: VirtualTime,
    /// Virtual process the counter track belongs to.
    pub pid: u32,
    /// Track name (e.g. `"faults"`, `"campaign"`).
    pub name: String,
    /// Series within the track, in display order.
    pub values: Vec<(String, u64)>,
}

/// Render a trace as Chrome trace-event JSON (the "JSON array format"
/// Perfetto and `chrome://tracing` load). One virtual process per
/// cluster node, one thread per Marcel tid; spans become async
/// nestable "b"/"e" pairs (they may cross threads), everything else an
/// instant "i". Every record carries `ph`, `ts` (virtual µs), `pid` and
/// `tid`.
pub fn chrome_trace_json(trace: &[TraceEvent], threads: &[ThreadMeta]) -> String {
    chrome_trace_json_with_counters(trace, threads, &[])
}

/// [`chrome_trace_json`] plus `"ph":"C"` counter events: each
/// [`CounterSample`] becomes one counter record whose `args` carry the
/// series values. Counter records are appended after the event stream
/// (trace viewers order by `ts`, not file position).
pub fn chrome_trace_json_with_counters(
    trace: &[TraceEvent],
    threads: &[ThreadMeta],
    counters: &[CounterSample],
) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };
    // Process/thread name metadata.
    let mut pids: Vec<u32> = threads.iter().map(|t| t.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"node{pid}\"}}}}"
            ),
            &mut out,
        );
    }
    for (tid, meta) in threads.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                meta.pid,
                json_str(&meta.name)
            ),
            &mut out,
        );
    }
    let fallback = ThreadMeta {
        name: String::new(),
        pid: 0,
    };
    for e in trace {
        let meta = threads.get(e.tid).unwrap_or(&fallback);
        let ts = e.time.as_micros_f64();
        let line = match &e.what {
            Event::SpanBegin { id, kind, label } => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"b\",\"id\":{id},\"ts\":{ts},\
                 \"pid\":{},\"tid\":{}}}",
                json_str(&format!("{}:{label}", kind.name())),
                json_str(kind.name()),
                meta.pid,
                e.tid
            ),
            Event::SpanEnd { id, kind, label } => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"e\",\"id\":{id},\"ts\":{ts},\
                 \"pid\":{},\"tid\":{}}}",
                json_str(&format!("{}:{label}", kind.name())),
                json_str(kind.name()),
                meta.pid,
                e.tid
            ),
            other => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{}}}",
                json_str(&other.to_string()),
                json_str(other.layer().name()),
                meta.pid,
                e.tid
            ),
        };
        push(line, &mut out);
    }
    for c in counters {
        let args = c
            .values
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect::<Vec<_>>()
            .join(",");
        push(
            format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{{args}}}}}",
                json_str(&c.name),
                c.ts.as_micros_f64(),
                c.pid
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escaping (the build has no serde available).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_strings_are_byte_identical() {
        assert_eq!(Event::Spawn.to_string(), "spawn");
        assert_eq!(Event::Exit.to_string(), "exit");
        assert_eq!(Event::SemBlock { sem: 7 }.to_string(), "P sem#7 blocks");
        assert_eq!(
            Event::SemBlockTimeout {
                sem: 2,
                deadline: VirtualTime(1_500)
            }
            .to_string(),
            "P sem#2 blocks until 1.500us"
        );
        assert_eq!(
            Event::SemWake { sem: 3, woken: 9 }.to_string(),
            "V sem#3 wakes #9"
        );
        assert_eq!(
            Event::PollWake { source: 4 }.to_string(),
            "post->wake src#4"
        );
        assert_eq!(
            Event::PollQueued { source: 1 }.to_string(),
            "polled src#1 (queued)"
        );
        assert_eq!(
            Event::PollWaited { source: 0 }.to_string(),
            "polled src#0 (waited)"
        );
        // And the string comparison shim.
        assert!(Event::Spawn == "spawn");
        assert!("exit" == Event::Exit);
    }

    #[test]
    fn layers_are_attributed() {
        assert_eq!(Event::Spawn.layer(), Layer::Marcel);
        assert_eq!(
            Event::Pack {
                channel: "sisci#0".into(),
                to: 1,
                seq: 0,
                bytes: 4,
                segments: 2
            }
            .layer(),
            Layer::Madeleine
        );
        assert_eq!(Event::RecvPosted { rank: 0, depth: 1 }.layer(), Layer::Adi);
        assert_eq!(
            Event::SpanBegin {
                id: 1,
                kind: SpanKind::Handle,
                label: "tcp"
            }
            .layer(),
            Layer::ChMad
        );
        assert_eq!(
            Event::SpanEnd {
                id: 2,
                kind: SpanKind::Coll,
                label: "allreduce"
            }
            .layer(),
            Layer::Coll
        );
        assert_eq!(Layer::Coll.name(), "coll");
        assert_eq!(SpanKind::Coll.name(), "coll");
    }

    #[test]
    fn metrics_registry_counts_and_observes() {
        let m = Metrics::new();
        m.counter_add("a/x", 2);
        m.counter_add("a/x", 3);
        m.gauge_max("g", 4);
        m.gauge_max("g", 2);
        m.observe_ns("h", 1_000);
        m.observe_ns("h", 3_000);
        let s = m.snapshot();
        assert_eq!(s.counter("a/x"), 5);
        assert_eq!(s.counter("a/missing"), 0);
        assert_eq!(s.gauge("g"), 4);
        let h = s.hist("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min_ns, 1_000);
        assert_eq!(h.max_ns, 3_000);
        assert!((h.mean_us() - 2.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        let text = s.to_string();
        assert!(text.contains("a/x"));
        assert!(text.contains("histograms"));
    }

    #[test]
    fn prefix_iteration_is_sorted() {
        let m = Metrics::new();
        m.counter_add("chan/tcp#0/bytes", 10);
        m.counter_add("chan/sisci#0/bytes", 20);
        m.counter_add("other", 1);
        let s = m.snapshot();
        let got: Vec<(&str, u64)> = s.counters_with_prefix("chan/").collect();
        assert_eq!(
            got,
            vec![("chan/sisci#0/bytes", 20), ("chan/tcp#0/bytes", 10)]
        );
    }

    #[test]
    fn span_validation_catches_dangling() {
        let ev = |what| TraceEvent {
            time: VirtualTime::ZERO,
            tid: 0,
            what,
        };
        let good = vec![
            ev(Event::SpanBegin {
                id: 1,
                kind: SpanKind::Pack,
                label: "tcp",
            }),
            ev(Event::SpanEnd {
                id: 1,
                kind: SpanKind::Pack,
                label: "tcp",
            }),
        ];
        assert!(validate_spans(&good).is_ok());
        let dangling = vec![ev(Event::SpanBegin {
            id: 2,
            kind: SpanKind::Handle,
            label: "bip",
        })];
        assert!(validate_spans(&dangling).unwrap_err().contains("#2"));
        let orphan = vec![ev(Event::SpanEnd {
            id: 3,
            kind: SpanKind::Handle,
            label: "bip",
        })];
        assert!(validate_spans(&orphan).is_err());
    }

    #[test]
    fn chrome_export_has_required_fields() {
        let threads = vec![
            ThreadMeta {
                name: "rank0".into(),
                pid: 0,
            },
            ThreadMeta {
                name: "rank1-poll-tcp#0".into(),
                pid: 1,
            },
        ];
        let trace = vec![
            TraceEvent {
                time: VirtualTime(2_000),
                tid: 0,
                what: Event::SpanBegin {
                    id: 1,
                    kind: SpanKind::Pack,
                    label: "tcp",
                },
            },
            TraceEvent {
                time: VirtualTime(9_000),
                tid: 1,
                what: Event::SpanEnd {
                    id: 1,
                    kind: SpanKind::Pack,
                    label: "tcp",
                },
            },
            TraceEvent {
                time: VirtualTime(9_500),
                tid: 1,
                what: Event::PollWake { source: 0 },
            },
        ];
        let json = chrome_trace_json(&trace, &threads);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Every record carries the required fields.
        for line in json.lines().filter(|l| l.trim_start().starts_with('{')) {
            for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("rank1-poll-tcp#0"));
    }
}
