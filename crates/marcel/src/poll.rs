//! Poll sources: the Marcel/Madeleine polling integration.
//!
//! A [`PollSource`] models one pollable communication endpoint (one
//! Madeleine channel's incoming side on one process). A *polling thread*
//! blocks in [`PollSource::poll_wait`]; senders [`PollSource::post`]
//! messages with an absolute *arrival* virtual time computed by the
//! network model.
//!
//! # Detection-delay model
//!
//! Marcel factorizes the poll requests of all channels of a process into
//! one polling loop (paper §3.3). One loop iteration therefore costs the
//! *sum* of the per-protocol poll costs of every channel currently being
//! serviced. The kernel models the observable consequence: a message
//! arriving at `a` is noticed at
//!
//! ```text
//! max(a, waiter clock) + Σ poll_cost(attached sources of the process)
//! ```
//!
//! Attaching a second channel (e.g. TCP, whose poll is an expensive
//! `select`) therefore slows *every* detection on the first channel
//! (e.g. SCI) — precisely the effect the paper measures in Figure 9. The
//! `CostModel::poll_cycle_scale` knob turns this into an ablation.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::kernel::{Kernel, OpOutcome, ProcId, Sched, Shared, SourceId, SourceState, TState};
use crate::thread::current;
use crate::time::{VirtualDuration, VirtualTime};

/// Commit-ordered mutation of source bookkeeping (attach/detach and
/// creation). From inside a ticketed simulation this routes through the
/// effect list; from the host (or under `ExecPolicy::Seed`) it runs
/// directly under the scheduler lock, exactly as before.
fn ordered<R: Send + 'static>(
    shared: &Arc<Shared>,
    f: impl FnOnce(&mut Sched) -> R + Send + 'static,
) -> R {
    if shared.in_sim_ticketed().is_some() {
        shared.critical(move |sched, _, _| f(sched))
    } else {
        f(&mut shared.state.lock())
    }
}

/// A message received from a poll source: the wire arrival time and the
/// payload.
#[derive(Debug, PartialEq, Eq)]
pub struct Polled<T> {
    pub arrival: VirtualTime,
    pub payload: T,
}

/// Typed pollable message source. Clone to share between the posting and
/// polling sides.
pub struct PollSource<T> {
    shared: Arc<Shared>,
    id: SourceId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PollSource<T> {
    fn clone(&self) -> Self {
        PollSource {
            shared: self.shared.clone(),
            id: self.id,
            _marker: PhantomData,
        }
    }
}

impl<T: Send + 'static> PollSource<T> {
    /// Create a source belonging to process `proc` whose single poll
    /// attempt costs `poll_cost` (protocol-dependent: cheap for SCI,
    /// expensive for TCP's `select`).
    pub fn new(kernel: &Kernel, proc: ProcId, poll_cost: VirtualDuration) -> Self {
        Self::with_shared(kernel.shared.clone(), proc, poll_cost)
    }

    /// Create on the current simulated thread's kernel.
    pub fn current(proc: ProcId, poll_cost: VirtualDuration) -> Self {
        let (shared, _) = current();
        Self::with_shared(shared, proc, poll_cost)
    }

    fn with_shared(shared: Arc<Shared>, proc: ProcId, poll_cost: VirtualDuration) -> Self {
        let id = ordered(&shared, move |sched| {
            let id = SourceId(sched.sources.len());
            sched.sources.push(SourceState {
                proc,
                poll_cost,
                queue: Default::default(),
                waiter: None,
                attached: false,
                closed: false,
                empty_polls: 0,
                parked: false,
            });
            id
        });
        PollSource {
            shared,
            id,
            _marker: PhantomData,
        }
    }

    /// Kernel-level id (diagnostics).
    pub fn id(&self) -> usize {
        self.id.0
    }

    /// Register this source in its process's polling cycle without
    /// blocking. `poll_wait` attaches implicitly; an explicit attach lets
    /// a benchmark model "a polling thread exists for this channel" even
    /// before its first wait.
    pub fn attach(&self) {
        let id = self.id;
        ordered(&self.shared, move |sched| {
            let s = &mut sched.sources[id.0];
            s.attached = true;
            // An explicit (re)attach models a polling thread arriving: the
            // source starts armed regardless of its idle history.
            s.parked = false;
            s.empty_polls = 0;
        });
    }

    /// Remove this source from its process's polling cycle (the polling
    /// thread exited).
    pub fn detach(&self) {
        let id = self.id;
        ordered(&self.shared, move |sched| {
            sched.sources[id.0].attached = false;
        });
    }

    /// Post a message that arrives on the wire at absolute virtual time
    /// `arrival`. Must be called from a simulated thread. Messages are
    /// delivered in `(arrival, post order)` order.
    pub fn post(&self, arrival: VirtualTime, payload: T) {
        let (shared, me) = current();
        debug_assert!(
            Arc::ptr_eq(&shared, &self.shared),
            "source used across kernels"
        );
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                assert!(
                    !sched.sources[id.0].closed,
                    "post on closed poll source #{}",
                    id.0
                );
                // The first post aimed at a parked source re-arms it *before*
                // the detection cycle is computed: the re-armed channel's own
                // poll is what will find the message, so it rejoins the loop
                // immediately.
                if sh.cost.poll_policy == crate::cost::PollPolicy::Parking {
                    let s = &mut sched.sources[id.0];
                    s.parked = false;
                    s.empty_polls = 0;
                }
                let seq = sched.post_seq;
                sched.post_seq += 1;
                // Insert sorted by (arrival, seq): scan from the back, since
                // arrivals are mostly monotone.
                {
                    let queue = &mut sched.sources[id.0].queue;
                    let pos = queue
                        .iter()
                        .rposition(|(a, s, _)| (*a, *s) <= (arrival, seq))
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    queue.insert(pos, (arrival, seq, Box::new(payload)));
                }
                if let Some(w) = sched.sources[id.0].waiter.take() {
                    let proc = sched.sources[id.0].proc;
                    let cycle = sh.cost.scaled_cycle(Shared::polling_cycle(sched, proc));
                    let (head_arrival, _, head) = sched.sources[id.0]
                        .queue
                        .pop_front()
                        .expect("just inserted");
                    let blocked_at = sched.threads[w.0].vtime;
                    let notice = std::cmp::max(head_arrival, blocked_at) + cycle;
                    sched.threads[w.0].wake_payload = Some(Box::new(Polled {
                        arrival: head_arrival,
                        payload: *head.downcast::<T>().expect("poll source type confusion"),
                    }));
                    Shared::make_ready(sched, w, notice);
                    sched.record(t, || crate::obs::Event::PollWake { source: id.0 });
                    sh.note_detection(sched, proc, id);
                }
                OpOutcome::Done(())
            },
            |_, _, _| unreachable!("post never blocks"),
        );
    }

    /// Block until a message is noticed by the polling loop; returns
    /// `None` once the source is closed and drained. The caller's clock
    /// advances to the notice time.
    pub fn poll_wait(&self) -> Option<Polled<T>> {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sched.sources[id.0].attached = true;
                let proc = sched.sources[id.0].proc;
                if let Some((arrival, _, payload)) = sched.sources[id.0].queue.pop_front() {
                    let cycle = sh.cost.scaled_cycle(Shared::polling_cycle(sched, proc));
                    let slot = &mut sched.threads[t.0];
                    let notice = std::cmp::max(arrival, slot.vtime) + cycle;
                    slot.vtime = notice;
                    sched.record(t, || crate::obs::Event::PollQueued { source: id.0 });
                    sh.note_detection(sched, proc, id);
                    return OpOutcome::Done(Some(Polled {
                        arrival,
                        payload: *payload.downcast::<T>().expect("poll source type confusion"),
                    }));
                }
                if sched.sources[id.0].closed {
                    return OpOutcome::Done(None);
                }
                assert!(
                    sched.sources[id.0].waiter.is_none(),
                    "two threads poll-waiting on source #{}",
                    id.0
                );
                sched.sources[id.0].waiter = Some(t);
                // Runs when the thread is next dispatched, i.e. in commit
                // order right before the waiter resumes.
                sched.threads[t.0].wake_hook = Some(Box::new(move |sched, t| {
                    sched.record(t, || crate::obs::Event::PollWaited { source: id.0 });
                }));
                OpOutcome::Blocked(TState::BlockedPoll(id))
            },
            // Woken either by a post (payload present) or by close (absent).
            |sched, _, t| {
                sched.threads[t.0].wake_payload.take().map(|p| {
                    *p.downcast::<Polled<T>>()
                        .expect("poll source type confusion")
                })
            },
        )
    }

    /// One explicit poll attempt: charges this source's own poll cost and
    /// returns a message only if one had arrived by the (charged) clock.
    pub fn try_poll(&self) -> Option<Polled<T>> {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                let cost = sched.sources[id.0].poll_cost;
                if sh.cost.poll_policy == crate::cost::PollPolicy::Parking {
                    // An explicit poll is this channel's own thread doing
                    // work: it is evidently not idle, so re-arm it.
                    let s = &mut sched.sources[id.0];
                    s.parked = false;
                    s.empty_polls = 0;
                }
                sched.threads[t.0].vtime += cost;
                let now = sched.threads[t.0].vtime;
                let due = sched.sources[id.0]
                    .queue
                    .front()
                    .is_some_and(|(a, _, _)| *a <= now);
                OpOutcome::Done(if due {
                    let (arrival, _, payload) = sched.sources[id.0].queue.pop_front().unwrap();
                    Some(Polled {
                        arrival,
                        payload: *payload.downcast::<T>().expect("poll source type confusion"),
                    })
                } else {
                    None
                })
            },
            |_, _, _| unreachable!("try_poll never blocks"),
        )
    }

    /// Close the source: the blocked poller (if any) wakes with `None`,
    /// and future `poll_wait`s return `None` once the queue drains.
    pub fn close(&self) {
        let (shared, me) = current();
        let id = self.id;
        shared.op(
            me,
            move |sched, sh, t| {
                sched.sources[id.0].closed = true;
                if let Some(w) = sched.sources[id.0].waiter.take() {
                    let at = sched.threads[t.0].vtime + sh.cost.wake;
                    Shared::make_ready(sched, w, at);
                }
                OpOutcome::Done(())
            },
            |_, _, _| unreachable!("close never blocks"),
        );
    }

    /// Number of queued (arrived or in-flight) messages.
    pub fn backlog(&self) -> usize {
        self.shared.state.lock().sources[self.id.0].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::kernel::Kernel;
    use crate::thread::{advance, now};
    use crate::time::{VirtualDuration, VirtualTime};

    fn us(n: u64) -> VirtualDuration {
        VirtualDuration::from_micros(n)
    }

    #[test]
    fn message_noticed_one_cycle_after_arrival() {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<u32>::new(&k, ProcId(0), us(2));
        let rx = src.clone();
        let h = k.spawn("poller", move || {
            let m = rx.poll_wait().unwrap();
            (m.arrival, m.payload, now())
        });
        k.spawn("sender", move || {
            advance(us(10));
            // Arrives 5us after the send clock.
            src.post(now() + us(5), 7);
        });
        k.run().unwrap();
        let (arrival, payload, noticed) = h.join_outcome().unwrap();
        assert_eq!(payload, 7);
        assert_eq!(arrival, VirtualTime(15_000));
        // Noticed = arrival + own poll cost (only source in the proc).
        assert_eq!(noticed, VirtualTime(17_000));
    }

    #[test]
    fn second_attached_source_slows_detection() {
        // The Figure 9 mechanism: attaching a TCP-like source (expensive
        // poll) to the same process delays SCI-like detections by the
        // TCP poll cost.
        fn detection(with_tcp: bool) -> VirtualTime {
            let k = Kernel::new(CostModel::free());
            let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
            if with_tcp {
                let tcp = PollSource::<u32>::new(&k, ProcId(0), us(6));
                tcp.attach();
            }
            let rx = sci.clone();
            let h = k.spawn("poller", move || {
                rx.poll_wait().unwrap();
                now()
            });
            k.spawn("sender", move || {
                sci.post(VirtualTime(10_000), 1);
            });
            k.run().unwrap();
            h.join_outcome().unwrap()
        }
        assert_eq!(detection(false), VirtualTime(11_000));
        assert_eq!(detection(true), VirtualTime(17_000));
    }

    #[test]
    fn sources_in_other_processes_do_not_interfere() {
        let k = Kernel::new(CostModel::free());
        let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let other = PollSource::<u32>::new(&k, ProcId(1), us(50));
        other.attach();
        let rx = sci.clone();
        let h = k.spawn("poller", move || {
            rx.poll_wait().unwrap();
            now()
        });
        k.spawn("sender", move || sci.post(VirtualTime(10_000), 1));
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(11_000));
    }

    #[test]
    fn oracle_polling_ablation_removes_cycle() {
        let k = Kernel::new(CostModel::free().with_oracle_polling());
        let src = PollSource::<u32>::new(&k, ProcId(0), us(4));
        let rx = src.clone();
        let h = k.spawn("poller", move || {
            rx.poll_wait().unwrap();
            now()
        });
        k.spawn("sender", move || src.post(VirtualTime(10_000), 1));
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(10_000));
    }

    #[test]
    fn delivery_order_is_by_arrival_then_post_order() {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<&'static str>::new(&k, ProcId(0), VirtualDuration::ZERO);
        let rx = src.clone();
        let h = k.spawn("poller", move || {
            // Wait until everything is posted.
            advance(us(100));
            (0..3)
                .map(|_| rx.poll_wait().unwrap().payload)
                .collect::<Vec<_>>()
        });
        k.spawn("sender", move || {
            src.post(VirtualTime(30_000), "late");
            src.post(VirtualTime(10_000), "early");
            src.post(VirtualTime(10_000), "early2");
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), vec!["early", "early2", "late"]);
    }

    #[test]
    fn poll_wait_with_queued_message_does_not_block() {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let h = k.spawn("t", move || {
            src.post(VirtualTime(5_000), 42);
            advance(us(20));
            let m = src.poll_wait().unwrap();
            (m.payload, now())
        });
        k.run().unwrap();
        let (v, t) = h.join_outcome().unwrap();
        assert_eq!(v, 42);
        // Already arrived; notice = now + cycle.
        assert_eq!(t, VirtualTime(21_000));
    }

    #[test]
    fn close_wakes_poller_with_none() {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let rx = src.clone();
        let h = k.spawn("poller", move || rx.poll_wait().is_none());
        k.spawn("closer", move || {
            advance(us(5));
            src.close();
        });
        k.run().unwrap();
        assert!(h.join_outcome().unwrap());
    }

    #[test]
    fn try_poll_charges_cost_and_respects_arrival() {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<u32>::new(&k, ProcId(0), us(2));
        let h = k.spawn("t", move || {
            src.post(VirtualTime(9_000), 5);
            // First attempt at clock 2us: nothing arrived yet.
            let a = src.try_poll().is_none();
            advance(us(10)); // clock 12us
            let b = src.try_poll().map(|p| p.payload);
            (a, b, now())
        });
        k.run().unwrap();
        let (a, b, t) = h.join_outcome().unwrap();
        assert!(a);
        assert_eq!(b, Some(5));
        assert_eq!(t, VirtualTime(14_000)); // 2 + 10 + 2
    }

    #[test]
    fn parking_removes_idle_channel_tax() {
        // The §3.3 scenario behind Figure 9: an idle TCP channel
        // (expensive select) attached next to a busy SCI channel. Under
        // Seed it taxes every SCI detection forever; under Parking it is
        // parked after `park_after` empty detections and SCI latency
        // returns to its TCP-free value.
        fn detection_delays(with_tcp: bool, parking: bool) -> Vec<VirtualDuration> {
            let cost = if parking {
                CostModel::free().with_parking()
            } else {
                CostModel::free()
            };
            let k = Kernel::new(cost);
            let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
            if with_tcp {
                let tcp = PollSource::<u32>::new(&k, ProcId(0), us(6));
                tcp.attach();
            }
            let rx = sci.clone();
            let h = k.spawn("poller", move || {
                (0..10)
                    .map(|_| {
                        let m = rx.poll_wait().unwrap();
                        now() - m.arrival
                    })
                    .collect::<Vec<_>>()
            });
            k.spawn("sender", move || {
                for i in 0..10u32 {
                    advance(us(100));
                    sci.post(now(), i);
                }
            });
            k.run().unwrap();
            h.join_outcome().unwrap()
        }
        // Seed: 7us on every detection, forever.
        assert_eq!(detection_delays(true, false), vec![us(7); 10]);
        // Parking (park_after = 8): eight taxed detections, then the TCP
        // source parks and detection delay matches the SCI-only world.
        let parked = detection_delays(true, true);
        assert_eq!(&parked[..8], &vec![us(7); 8][..]);
        assert_eq!(&parked[8..], &vec![us(1); 2][..]);
        assert_eq!(parked[9], detection_delays(false, false)[9]);
    }

    #[test]
    fn parked_source_rearms_on_post() {
        // After the TCP source parks, traffic aimed at it re-arms it:
        // the message is detected (paying the full re-armed cycle) and
        // subsequent SCI detections are taxed again.
        let k = Kernel::new(CostModel::free().with_parking());
        let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let tcp = PollSource::<u32>::new(&k, ProcId(0), us(6));
        tcp.attach();
        let (sci_rx, tcp_rx) = (sci.clone(), tcp.clone());
        let h = k.spawn("poller", move || {
            let mut delays = Vec::new();
            for _ in 0..9 {
                let m = sci_rx.poll_wait().unwrap();
                delays.push(now() - m.arrival);
            }
            let m = tcp_rx.poll_wait().unwrap();
            delays.push(now() - m.arrival);
            let m = sci_rx.poll_wait().unwrap();
            delays.push(now() - m.arrival);
            delays
        });
        k.spawn("sender", move || {
            for i in 0..9u32 {
                advance(us(100));
                sci.post(now(), i);
            }
            advance(us(100));
            tcp.post(now(), 99);
            advance(us(100));
            sci.post(now(), 9);
        });
        k.run().unwrap();
        let delays = h.join_outcome().unwrap();
        // 8 taxed detections park the TCP source; the 9th is SCI-only.
        assert_eq!(&delays[..8], &vec![us(7); 8][..]);
        assert_eq!(delays[8], us(1));
        // The TCP post re-arms it: its own detection and the following
        // SCI detection both pay the full two-channel cycle again.
        assert_eq!(delays[9], us(7));
        assert_eq!(delays[10], us(7));
    }

    #[test]
    fn inflight_traffic_keeps_source_armed() {
        // A source with a message still in flight (posted, not yet
        // arrived) is not idle: it must not park, or the in-flight
        // message would be detected late.
        let k = Kernel::new(CostModel::free().with_parking());
        let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let tcp = PollSource::<u32>::new(&k, ProcId(0), us(6));
        tcp.attach();
        let (sci_rx, tcp_rx) = (sci.clone(), tcp.clone());
        let h = k.spawn("poller", move || {
            for _ in 0..10 {
                sci_rx.poll_wait().unwrap();
            }
            let m = tcp_rx.poll_wait().unwrap();
            now() - m.arrival
        });
        k.spawn("sender", move || {
            // Far-future TCP message is in flight the whole time.
            tcp.post(VirtualTime(2_000_000), 99);
            for i in 0..10u32 {
                advance(us(100));
                sci.post(now(), i);
            }
        });
        k.run().unwrap();
        // TCP never parked (queue non-empty), so its detection pays the
        // normal two-channel cycle, not a late re-arm penalty.
        assert_eq!(h.join_outcome().unwrap(), us(7));
    }

    #[test]
    fn detached_source_leaves_cycle() {
        let k = Kernel::new(CostModel::free());
        let sci = PollSource::<u32>::new(&k, ProcId(0), us(1));
        let tcp = PollSource::<u32>::new(&k, ProcId(0), us(6));
        tcp.attach();
        tcp.detach();
        let rx = sci.clone();
        let h = k.spawn("poller", move || {
            rx.poll_wait().unwrap();
            now()
        });
        k.spawn("sender", move || sci.post(VirtualTime(10_000), 1));
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(11_000));
    }
}
