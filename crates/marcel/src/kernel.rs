//! The deterministic virtual-time thread kernel.
//!
//! # Execution model
//!
//! Every simulated ("Marcel") thread is backed by a real OS thread, but
//! **exactly one simulated thread executes at a time**. Whenever the
//! running thread performs a kernel operation (advance, yield, semaphore
//! op, poll, spawn, join, exit) the kernel re-evaluates which thread should
//! run next: the runnable thread with the smallest `(virtual time, thread
//! id)` pair. Between kernel operations a thread only touches its own
//! data, so this total order of kernel operations by virtual time yields a
//! *deterministic, causally consistent* simulation: the same program
//! produces the same virtual-time trace on every run.
//!
//! # Why real threads and not an event loop
//!
//! The system under reproduction (MPICH/Madeleine, §4.2.3 of the paper) is
//! written in blocking style: polling threads block in
//! `mad_begin_unpacking`, the MPI control thread blocks on a rendezvous
//! semaphore, `MPI_Isend` spawns a worker thread. Backing simulated
//! threads with real stacks lets the reproduction keep exactly that
//! structure instead of inverting it into state machines.
//!
//! # Polling model
//!
//! Madeleine/Marcel integrate polling: each network channel is polled by a
//! dedicated thread, and Marcel *factorizes* the poll requests into one
//! polling loop whose iteration cost is the sum of the per-protocol poll
//! costs. The kernel models the consequence directly: a message arriving
//! at virtual time `a` on a source whose process currently poll-waits on
//! sources with total poll cost `C` is *noticed* at `max(a, block time) +
//! C`. This is what makes the paper's Figure 9 (SCI + TCP polling thread)
//! reproducible: adding a TCP channel adds TCP's expensive `select`-style
//! poll cost to every detection on the SCI channel.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::cost::{CostModel, ExecPolicy};
use crate::obs::{Event, Metrics};
use crate::time::{VirtualDuration, VirtualTime};

/// Identifier of a simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub(crate) usize);

impl Tid {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a poll source (see [`crate::poll`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SourceId(pub(crate) usize);

/// Identifier of a kernel semaphore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct SemId(pub(crate) usize);

/// Process grouping for polling interference: poll sources of the same
/// process share one polling loop, so their poll costs add up (this is a
/// *simulation* process, i.e. an MPI rank, not an OS process).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcId(pub u32);

/// Errors surfaced by [`Kernel::run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// No thread can ever make progress again; the message contains a
    /// dump of every live thread's state.
    Deadlock(String),
    /// A simulated thread panicked; the simulation was aborted.
    ThreadPanicked(String),
    /// The configuration is invalid (e.g. `ExecPolicy::Ticketed(0)`);
    /// rejected before any thread runs.
    InvalidConfig(crate::cost::ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock:\n{d}"),
            SimError::ThreadPanicked(m) => write!(f, "simulated thread panicked: {m}"),
            SimError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// What a kernel-operation body decided (see [`Shared::op`]): finish
/// with a result, or block in the given state until woken.
pub(crate) enum OpOutcome<R> {
    Done(R),
    Blocked(TState),
}

pub(crate) enum TState {
    /// Eligible to run.
    Ready,
    /// Currently executing (at most one thread).
    Running,
    /// Waiting on a semaphore.
    BlockedSem(SemId),
    /// Waiting on a semaphore with a deadline: wakes at the deadline
    /// (empty-handed) if no release arrives first.
    BlockedSemTimeout(SemId, VirtualTime),
    /// Waiting for another thread to finish.
    BlockedJoin(Tid),
    /// Waiting in `poll_wait` on a source with an empty queue.
    BlockedPoll(SourceId),
    /// Sleeping until an absolute virtual time.
    Sleeping(VirtualTime),
    /// Finished.
    Done,
}

impl TState {
    fn describe(&self) -> String {
        match self {
            TState::Ready => "ready".into(),
            TState::Running => "running".into(),
            TState::BlockedSem(s) => format!("blocked on semaphore #{}", s.0),
            TState::BlockedSemTimeout(s, dl) => {
                format!("blocked on semaphore #{} until {dl}", s.0)
            }
            TState::BlockedJoin(t) => format!("joining thread #{}", t.0),
            TState::BlockedPoll(s) => format!("poll-waiting on source #{}", s.0),
            TState::Sleeping(t) => format!("sleeping until {t}"),
            TState::Done => "done".into(),
        }
    }
}

/// Per-thread handshake between the committer (which dispatches) and the
/// worker OS thread (which parks between kernel operations) under
/// `ExecPolicy::Ticketed`. `resume` is level-triggered so a dispatch that
/// lands before the OS thread even exists is not lost; the condvar is
/// only ever used with the one scheduler mutex.
pub(crate) struct ParkSlot {
    pub(crate) resume: AtomicBool,
    pub(crate) cv: Condvar,
}

/// A deferred trace record run on the committer at the owning thread's
/// next dispatch (see [`ThreadSlot::wake_hook`]).
pub(crate) type WakeHook = Box<dyn FnOnce(&mut Sched, Tid) + Send>;

/// A boxed effect body: the mutation a kernel op performs, applied
/// against committed state (see [`PendingOp`]).
pub(crate) type EffectFn = Box<dyn FnOnce(&mut Sched, &Shared, Tid) + Send>;

pub(crate) struct ThreadSlot {
    pub(crate) name: String,
    pub(crate) vtime: VirtualTime,
    pub(crate) state: TState,
    pub(crate) joiners: Vec<Tid>,
    /// Payload handed to a thread woken from `poll_wait`.
    pub(crate) wake_payload: Option<Box<dyn Any + Send>>,
    /// Speculation domain (`ExecPolicy::Ticketed`): threads of one domain
    /// never execute concurrently with each other, so data shared only
    /// within a domain needs no effect-ordering. Host-spawned threads get
    /// domain 0; children inherit the parent's domain.
    pub(crate) domain: u32,
    /// Ordinal of kernel operations performed by this thread. Drives the
    /// per-step RNG seed (`crate::thread::step_seed`); identical across
    /// execution policies because it counts *operations*, not dispatches.
    pub(crate) ops: u64,
    /// Result of the last committed kernel op (`ExecPolicy::Ticketed`
    /// only): the committer parks it here, the worker picks it up.
    pub(crate) op_result: Option<Box<dyn Any + Send>>,
    /// Dispatched and currently executing its segment (between dispatch
    /// and effect emission). Only meaningful under `Ticketed`.
    pub(crate) in_flight: bool,
    /// Deferred trace record to run when the thread is next dispatched
    /// (e.g. `PollWaited` after a wake): under `Ticketed` it must run on
    /// the committer so trace order is defined by ticket order.
    pub(crate) wake_hook: Option<WakeHook>,
    pub(crate) park: Arc<ParkSlot>,
}

/// Who may operate on a semaphore (`ExecPolicy::Ticketed` only; ignored
/// under `Seed`). Declared at creation: semaphores created from inside
/// the simulation are local to the creator's domain, semaphores created
/// from the host (before `run`) are shared. The speculation wake-horizon
/// check may ignore domain-local semaphores — any release necessarily
/// comes from the same (serialized) domain — which is what makes
/// speculation profitable; a cross-domain op on a local semaphore is a
/// contract violation and panics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SemScope {
    Shared,
    Local(u32),
}

pub(crate) struct SemState {
    pub(crate) count: u64,
    pub(crate) waiters: VecDeque<Tid>,
    pub(crate) scope: SemScope,
}

pub(crate) struct SourceState {
    pub(crate) proc: ProcId,
    pub(crate) poll_cost: VirtualDuration,
    /// In-flight and arrived messages, sorted by (arrival, post sequence).
    pub(crate) queue: VecDeque<(VirtualTime, u64, Box<dyn Any + Send>)>,
    /// The thread currently blocked in `poll_wait` on this source, if any.
    pub(crate) waiter: Option<Tid>,
    /// A source counts toward the process polling cycle while some thread
    /// services it (a polling thread is attached, even if momentarily not
    /// blocked). Registered on first `poll_wait`, cleared on `detach`.
    pub(crate) attached: bool,
    pub(crate) closed: bool,
    /// Consecutive detections in this process during which this source's
    /// queue was empty. Only maintained under `PollPolicy::Parking`.
    pub(crate) empty_polls: u32,
    /// Parked out of the polling cycle (idle too long); re-armed by the
    /// next `post`. Never set under `PollPolicy::Seed`.
    pub(crate) parked: bool,
}

/// One entry of the (optional) deterministic event trace. `what` is a
/// typed [`Event`] whose `Display` reproduces the legacy trace strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: VirtualTime,
    pub tid: usize,
    pub what: Event,
}

/// One emitted-but-uncommitted kernel operation (`ExecPolicy::Ticketed`).
/// `key` is the operation's position in the virtual-time total order: the
/// emitting thread's `(vtime, tid)` at emission. The closure applies the
/// operation against *committed* state — holding it here until its key is
/// the global minimum is the "re-enqueue on conflict" rule: an effect
/// that raced ahead simply waits its turn.
pub(crate) struct PendingOp {
    pub(crate) key: (VirtualTime, usize),
    /// Push order, the tie-break among equal keys. Equal keys only occur
    /// within one thread (the key includes the tid): a queued wake hook
    /// vs. the effects the thread emits afterwards at the same virtual
    /// time. FIFO is exactly the seed's order. The vec itself cannot
    /// serve as the tie-break — `swap_remove` shuffles it.
    pub(crate) seq: u64,
    pub(crate) tid: Tid,
    /// True for a real segment-ending effect (emitted via `emit_effect`);
    /// applying it frees the thread's domain slot. False for bookkeeping
    /// entries (a queued wake hook) that merely need commit-order
    /// placement.
    pub(crate) ends_segment: bool,
    pub(crate) run: EffectFn,
}

/// Committer-side state for `ExecPolicy::Ticketed`.
pub(crate) struct ExecState {
    pub(crate) workers: usize,
    /// Emitted effects not yet applied, unordered (scanned for the min).
    pub(crate) pending: Vec<PendingOp>,
    /// Threads currently executing a segment (dispatched, not yet
    /// emitted). Bounded by `workers`.
    pub(crate) inflight: usize,
    /// Domain -> number of threads between dispatch and effect *apply*.
    /// A domain with a busy slot never gets another dispatch, which is
    /// what serializes same-domain threads.
    pub(crate) domain_busy: HashMap<u32, usize>,
    /// Committed tickets (dispatches), monotonically increasing.
    pub(crate) tickets: u64,
    /// Dispatches that were speculative (not at the global frontier).
    pub(crate) speculated: u64,
    /// Last applied effect key; applies must be monotone in this.
    pub(crate) last_key: Option<(VirtualTime, usize)>,
    /// Next [`PendingOp::seq`] to hand out.
    pub(crate) next_seq: u64,
}

/// Execution statistics of a `Ticketed` run (see [`Kernel::exec_stats`]).
/// Kept out of the metrics registry on purpose: the metrics snapshot is
/// part of the bit-identical replay contract, host-side scheduling
/// counters are not.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Total dispatches committed by the sequencer.
    pub tickets: u64,
    /// How many of those ran speculatively (ahead of the frontier).
    pub speculated: u64,
}

pub(crate) struct Sched {
    pub(crate) threads: Vec<ThreadSlot>,
    pub(crate) running: Option<Tid>,
    pub(crate) live: usize,
    pub(crate) started: bool,
    pub(crate) abort: Option<String>,
    pub(crate) deadlock: Option<String>,
    pub(crate) sems: Vec<SemState>,
    pub(crate) sources: Vec<SourceState>,
    pub(crate) post_seq: u64,
    pub(crate) trace: Option<Vec<TraceEvent>>,
    /// Present while a `Ticketed` run is in progress.
    pub(crate) exec: Option<ExecState>,
}

impl Sched {
    pub(crate) fn record(&mut self, tid: Tid, what: impl FnOnce() -> Event) {
        if let Some(trace) = &mut self.trace {
            let time = self.threads[tid.0].vtime;
            trace.push(TraceEvent {
                time,
                tid: tid.0,
                what: what(),
            });
        }
    }

    fn dump(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            if matches!(t.state, TState::Done) {
                continue;
            }
            out.push_str(&format!(
                "  thread #{i} '{}' at {}: {}\n",
                t.name,
                t.vtime,
                t.state.describe()
            ));
        }
        out
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<Sched>,
    pub(crate) cv: Condvar,
    /// Wakes the committer (`ExecPolicy::Ticketed`) when a worker emits
    /// an effect or a thread aborts. Always used with `state`.
    pub(crate) commit_cv: Condvar,
    pub(crate) cost: CostModel,
    /// The kernel's metrics registry (see [`crate::obs`]): always on,
    /// never touches virtual time.
    pub(crate) metrics: Arc<Metrics>,
    /// Fast tracing-enabled check for [`crate::obs::emit`] — avoids the
    /// scheduler lock on the (default) disabled path.
    pub(crate) trace_on: AtomicBool,
}

impl Shared {
    /// Sum of poll costs of all *attached* sources in `proc` — the cost of
    /// one iteration of that process's factorized polling loop.
    pub(crate) fn polling_cycle(sched: &Sched, proc: ProcId) -> VirtualDuration {
        sched
            .sources
            .iter()
            .filter(|s| s.attached && s.proc == proc && !s.closed && !s.parked)
            .map(|s| s.poll_cost)
            .sum()
    }

    /// Account one detection (one observed polling-loop iteration) in
    /// `proc` under `PollPolicy::Parking`: the source that produced the
    /// message — and any source with traffic queued — stays armed, while
    /// every other attached source accrues an empty poll and is parked
    /// once it has been empty for `park_after` consecutive detections.
    /// No-op under `PollPolicy::Seed`.
    pub(crate) fn note_detection(&self, sched: &mut Sched, proc: ProcId, active: SourceId) {
        if self.cost.poll_policy != crate::cost::PollPolicy::Parking {
            return;
        }
        for (i, s) in sched.sources.iter_mut().enumerate() {
            if !s.attached || s.closed || s.proc != proc {
                continue;
            }
            if i == active.0 || !s.queue.is_empty() {
                s.empty_polls = 0;
                s.parked = false;
            } else {
                s.empty_polls += 1;
                if s.empty_polls >= self.cost.park_after {
                    s.parked = true;
                }
            }
        }
    }

    /// Pick the best next thread: the Ready thread or due Sleeper with the
    /// smallest `(vtime, tid)`. Returns `None` when nothing can run.
    fn best_candidate(sched: &Sched) -> Option<Tid> {
        let mut best: Option<(VirtualTime, usize)> = None;
        for (i, t) in sched.threads.iter().enumerate() {
            let key = match t.state {
                TState::Ready => t.vtime,
                TState::Sleeping(wake) => wake,
                // A timed semaphore waiter is due at its deadline; an
                // earlier release makes it Ready through `make_ready`.
                TState::BlockedSemTimeout(_, deadline) => deadline,
                _ => continue,
            };
            if best.is_none_or(|(bt, bi)| (key, i) < (bt, bi)) {
                best = Some((key, i));
            }
        }
        best.map(|(_, i)| Tid(i))
    }

    /// Pre-dispatch bookkeeping shared by both execution policies: a
    /// thread scheduled out of `Sleeping` has its clock bumped to the
    /// wake time; one scheduled out of `BlockedSemTimeout` additionally
    /// timed out and must leave the semaphore's queue so a later release
    /// can't also grant it.
    fn prepare_wake(sched: &mut Sched, next: Tid) {
        let wake = match sched.threads[next.0].state {
            TState::Sleeping(wake) => Some((None, wake)),
            TState::BlockedSemTimeout(sid, deadline) => Some((Some(sid), deadline)),
            _ => None,
        };
        if let Some((timed_out_sem, at)) = wake {
            if let Some(sid) = timed_out_sem {
                sched.sems[sid.0].waiters.retain(|t| *t != next);
            }
            let slot = &mut sched.threads[next.0];
            if at > slot.vtime {
                slot.vtime = at;
            }
        }
    }

    /// Make `next` the running thread (waking it from Sleeping if needed)
    /// and notify every parked OS thread so the right one resumes.
    fn commit(&self, sched: &mut Sched, next: Tid) {
        Self::prepare_wake(sched, next);
        let slot = &mut sched.threads[next.0];
        slot.state = TState::Running;
        sched.running = Some(next);
        self.cv.notify_all();
    }

    /// Schedule the next thread after the current one stopped running
    /// (blocked or exited). Declares a deadlock when no thread can ever
    /// run again.
    pub(crate) fn dispatch(&self, sched: &mut Sched) {
        sched.running = None;
        if let Some(next) = Self::best_candidate(sched) {
            self.commit(sched, next);
            return;
        }
        if sched.live == 0 {
            // Normal termination: wake `run()`.
            self.cv.notify_all();
            return;
        }
        let msg = format!(
            "no runnable thread among {} live:\n{}",
            sched.live,
            sched.dump()
        );
        sched.deadlock = Some(msg);
        self.cv.notify_all();
    }

    /// Re-evaluate scheduling at the end of a kernel operation performed
    /// by the running thread `me`. If another thread now has a smaller
    /// `(vtime, tid)`, switch to it and park until rescheduled.
    pub(crate) fn reschedule(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid) {
        debug_assert!(matches!(sched.threads[me.0].state, TState::Running));
        sched.threads[me.0].state = TState::Ready;
        let next = Self::best_candidate(sched).expect("running thread is always a candidate");
        self.commit(sched, next);
        if next != me {
            self.wait_until_running(sched, me);
        }
    }

    /// Block the running thread `me` with `state` and run something else.
    /// Returns once `me` is scheduled again.
    pub(crate) fn block(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid, state: TState) {
        sched.threads[me.0].state = state;
        self.dispatch(sched);
        self.wait_until_running(sched, me);
    }

    /// Mark `target` runnable no earlier than `at`.
    pub(crate) fn make_ready(sched: &mut Sched, target: Tid, at: VirtualTime) {
        let slot = &mut sched.threads[target.0];
        if at > slot.vtime {
            slot.vtime = at;
        }
        slot.state = TState::Ready;
    }

    /// Whether this kernel runs under `ExecPolicy::Ticketed`.
    pub(crate) fn ticketed(&self) -> bool {
        matches!(self.cost.exec, ExecPolicy::Ticketed(_))
    }

    /// `Some(me)` when the calling OS thread is a simulated thread of
    /// *this* kernel and the kernel is ticketed — i.e. when a shared
    /// mutation must be routed through the effect list to stay in commit
    /// order instead of real-time order.
    pub(crate) fn in_sim_ticketed(self: &Arc<Self>) -> Option<Tid> {
        if !self.ticketed() {
            return None;
        }
        crate::thread::try_current().and_then(|(s, t)| Arc::ptr_eq(&s, self).then_some(t))
    }

    /// Panic unless `me` may operate on semaphore `sid` (see
    /// [`SemScope`]). Only enforced under `Ticketed` — the check exists
    /// to keep the speculation wake-horizon argument sound, and `Seed`
    /// must stay bit-identical to the pre-knob kernel.
    pub(crate) fn check_sem_domain(&self, sched: &Sched, me: Tid, sid: SemId) {
        if !self.ticketed() {
            return;
        }
        if let SemScope::Local(owner) = sched.sems[sid.0].scope {
            let d = sched.threads[me.0].domain;
            assert!(
                d == owner,
                "semaphore #{} is domain-local to {owner} but used from domain {d}; \
                 create it with a shared scope",
                sid.0
            );
        }
    }

    /// The uniform kernel-operation driver, shared by both policies.
    ///
    /// `f` is the operation body: it inspects and mutates scheduler state
    /// and returns either `Done(result)` or `Blocked(state)`. It must
    /// *not* reschedule or block itself — the driver does that. Under
    /// `Seed`, `f` runs immediately on the calling thread (exactly the
    /// pre-refactor code path: body, then reschedule-or-block). Under
    /// `Ticketed`, `f` becomes a pending effect applied by the committer
    /// in ticket order against committed state — which is why `f` may
    /// make scheduling decisions (grant vs. block, pop vs. wait) without
    /// any rollback: it never sees speculative state.
    ///
    /// `g` is the post-wake continuation for the `Blocked` path: it runs
    /// under the lock once the thread is scheduled again (both policies)
    /// and may only touch the thread's own slot (e.g. take a wake
    /// payload). For commit-ordered post-wake *trace records*, set
    /// `ThreadSlot::wake_hook` from within `f` instead.
    pub(crate) fn op<R, F, G>(self: &Arc<Self>, me: Tid, f: F, g: G) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Sched, &Shared, Tid) -> OpOutcome<R> + Send + 'static,
        G: FnOnce(&mut Sched, &Shared, Tid) -> R,
    {
        let mut sched = self.state.lock();
        sched.threads[me.0].ops += 1;
        if !self.ticketed() {
            return match f(&mut sched, self, me) {
                OpOutcome::Done(r) => {
                    self.reschedule(&mut sched, me);
                    r
                }
                OpOutcome::Blocked(st) => {
                    self.block(&mut sched, me, st);
                    if let Some(hook) = sched.threads[me.0].wake_hook.take() {
                        hook(&mut sched, me);
                    }
                    g(&mut sched, self, me)
                }
            };
        }
        self.emit_effect(
            &mut sched,
            me,
            Box::new(move |sched, shared, tid| match f(sched, shared, tid) {
                OpOutcome::Done(r) => {
                    sched.threads[tid.0].op_result = Some(Box::new(r));
                    sched.threads[tid.0].state = TState::Ready;
                }
                OpOutcome::Blocked(st) => {
                    sched.threads[tid.0].state = st;
                }
            }),
        );
        let mut sched = self.wait_for_commit(sched, me);
        match sched.threads[me.0].op_result.take() {
            Some(b) => *b.downcast::<R>().expect("kernel op result type confusion"),
            None => g(&mut sched, self, me),
        }
    }

    /// A commit-ordered closure with no virtual cost and no scheduling
    /// point: under `Seed` (or from the host) this is a plain run under
    /// the scheduler lock; under `Ticketed`, called from a simulated
    /// thread, it becomes a pending effect so its position in the global
    /// mutation order is the thread's ticket order, not real-time worker
    /// order. Use it for shared bookkeeping whose *order* is observable
    /// (trace records, counters that gate decisions, ID allocation).
    pub(crate) fn critical<R, F>(self: &Arc<Self>, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Sched, &Shared, Option<Tid>) -> R + Send + 'static,
    {
        if let Some(me) = self.in_sim_ticketed() {
            let mut sched = self.state.lock();
            self.emit_effect(
                &mut sched,
                me,
                Box::new(move |sched, shared, tid| {
                    let r = f(sched, shared, Some(tid));
                    sched.threads[tid.0].op_result = Some(Box::new(r));
                    sched.threads[tid.0].state = TState::Ready;
                }),
            );
            let mut sched = self.wait_for_commit(sched, me);
            return *sched.threads[me.0]
                .op_result
                .take()
                .expect("critical closure did not run")
                .downcast::<R>()
                .expect("critical result type confusion");
        }
        let mut sched = self.state.lock();
        let me = crate::thread::try_current().and_then(|(s, t)| Arc::ptr_eq(&s, self).then_some(t));
        f(&mut sched, self, me)
    }

    /// Ticketed only: turn the calling thread's next mutation into a
    /// pending effect keyed by its current `(vtime, tid)` and free its
    /// worker slot. The committer is woken to (eventually) apply it.
    pub(crate) fn emit_effect(&self, sched: &mut Sched, me: Tid, run: EffectFn) {
        let key = (sched.threads[me.0].vtime, me.0);
        let slot = &mut sched.threads[me.0];
        debug_assert!(
            slot.in_flight,
            "effect emitted by a thread that was never dispatched"
        );
        slot.in_flight = false;
        let exec = sched
            .exec
            .as_mut()
            .expect("effect emitted outside a ticketed run");
        exec.inflight -= 1;
        let seq = exec.next_seq;
        exec.next_seq += 1;
        exec.pending.push(PendingOp {
            key,
            seq,
            tid: me,
            ends_segment: true,
            run,
        });
        self.commit_cv.notify_one();
    }

    /// Ticketed worker park: wait until the committer dispatches `me`
    /// again. Spins briefly on the lock-free resume flag first — the
    /// committer usually turns an effect around in well under a
    /// microsecond, and avoiding the condvar round-trip is where most of
    /// the parallel speedup comes from — then falls back to the
    /// per-thread condvar. On a single-core host the spin is skipped
    /// entirely: the committer cannot make progress while we burn the
    /// only CPU, so spinning just delays our own wake-up. On
    /// abort/deadlock the OS thread parks forever (same unrecoverability
    /// contract as `wait_until_running`).
    pub(crate) fn wait_for_commit<'a>(
        &'a self,
        sched: MutexGuard<'a, Sched>,
        me: Tid,
    ) -> MutexGuard<'a, Sched> {
        fn spin_budget() -> u32 {
            static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
            *BUDGET.get_or_init(|| {
                match std::thread::available_parallelism().map_or(1, |n| n.get()) {
                    0 | 1 => 0,
                    _ => 20_000,
                }
            })
        }
        let park = sched.threads[me.0].park.clone();
        drop(sched);
        let mut spun = 0;
        let budget = spin_budget();
        while !park.resume.load(Ordering::Acquire) {
            spun += 1;
            if spun >= budget {
                break;
            }
            std::hint::spin_loop();
        }
        let mut sched = self.state.lock();
        loop {
            if sched.abort.is_some() || sched.deadlock.is_some() {
                loop {
                    self.cv.wait(&mut sched);
                }
            }
            if park.resume.swap(false, Ordering::AcqRel) {
                debug_assert!(matches!(sched.threads[me.0].state, TState::Running));
                return sched;
            }
            park.cv.wait(&mut sched);
        }
    }

    /// Ticketed dispatch: hand `next` a worker slot and resume its OS
    /// thread. The domain slot stays busy until the thread's *effect is
    /// applied*, not merely emitted — same-domain threads must never
    /// pipeline, or a zero-cost segment could commit behind an
    /// already-applied same-domain key.
    fn ticketed_dispatch(&self, sched: &mut Sched, next: Tid) {
        Self::prepare_wake(sched, next);
        let slot = &mut sched.threads[next.0];
        slot.state = TState::Running;
        slot.in_flight = true;
        let domain = slot.domain;
        let park = slot.park.clone();
        let key = (slot.vtime, next.0);
        let hook = slot.wake_hook.take();
        let exec = sched
            .exec
            .as_mut()
            .expect("dispatch outside a ticketed run");
        // A wake hook (post-wake trace record) must land at the thread's
        // wake key in *commit* order, which for a speculative dispatch is
        // not "now": queue it like an effect. It is pushed before the
        // thread can emit its next effect at the same key, so its `seq`
        // tie-break keeps it ahead of them.
        if let Some(hook) = hook {
            let seq = exec.next_seq;
            exec.next_seq += 1;
            exec.pending.push(PendingOp {
                key,
                seq,
                tid: next,
                ends_segment: false,
                run: Box::new(move |sched, _, tid| hook(sched, tid)),
            });
        }
        exec.inflight += 1;
        *exec.domain_busy.entry(domain).or_insert(0) += 1;
        exec.tickets += 1;
        park.resume.store(true, Ordering::Release);
        park.cv.notify_one();
    }

    /// Apply one pending effect (the caller picked it as the global
    /// minimum). Panics inside the effect (e.g. an assert in a kernel op)
    /// become the same `ThreadPanicked` abort the seed policy produces.
    fn apply_effect(&self, sched: &mut Sched, idx: usize) {
        let op = {
            let exec = sched.exec.as_mut().unwrap();
            let op = exec.pending.swap_remove(idx);
            debug_assert!(
                exec.last_key.is_none_or(|lk| op.key >= lk),
                "effect committed out of ticket order"
            );
            exec.last_key = Some(op.key);
            op
        };
        if op.ends_segment {
            let domain = sched.threads[op.tid.0].domain;
            let exec = sched.exec.as_mut().unwrap();
            *exec
                .domain_busy
                .get_mut(&domain)
                .expect("domain not busy at apply") -= 1;
        }
        let PendingOp { tid, run, .. } = op;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(sched, self, tid))) {
            sched.abort = Some(crate::thread::panic_to_string(payload.as_ref(), tid));
            self.cv.notify_all();
        }
    }

    /// One committer round: apply every effect that has reached the
    /// frontier and dispatch every thread that may run. Returns whether
    /// anything happened (false -> the committer should sleep).
    fn drain(&self, sched: &mut Sched) -> bool {
        let mut progressed = false;
        loop {
            if sched.abort.is_some() || sched.deadlock.is_some() {
                return progressed;
            }
            // The three frontier components: emitted effects, in-flight
            // segments (their effect will carry the dispatch key), and
            // undispatched candidates.
            // Minimum by (key, seq): equal keys are one thread's wake
            // hook vs. its subsequent same-vtime effects, and push order
            // (seq) is the seed's order. The vec index cannot break the
            // tie — `swap_remove` shuffles it.
            let mut pend: Option<((VirtualTime, usize), u64, usize)> = None;
            {
                let exec = sched.exec.as_ref().unwrap();
                for (i, p) in exec.pending.iter().enumerate() {
                    if pend.is_none_or(|(k, s, _)| (p.key, p.seq) < (k, s)) {
                        pend = Some((p.key, p.seq, i));
                    }
                }
            }
            let mut infl: Option<(VirtualTime, usize)> = None;
            let mut cand: Option<((VirtualTime, usize), usize)> = None;
            for (i, t) in sched.threads.iter().enumerate() {
                if t.in_flight {
                    let k = (t.vtime, i);
                    if infl.is_none_or(|b| k < b) {
                        infl = Some(k);
                    }
                    continue;
                }
                let key = match t.state {
                    TState::Ready => t.vtime,
                    TState::Sleeping(wake) => wake,
                    TState::BlockedSemTimeout(_, deadline) => deadline,
                    _ => continue,
                };
                let k = (key, i);
                if cand.is_none_or(|(b, _)| k < b) {
                    cand = Some((k, i));
                }
            }
            // 1. An effect at the global frontier is committed.
            if let Some((pk, _, idx)) = pend {
                if infl.is_none_or(|k| pk <= k) && cand.is_none_or(|(k, _)| pk <= k) {
                    self.apply_effect(sched, idx);
                    progressed = true;
                    continue;
                }
            }
            let (workers, inflight) = {
                let exec = sched.exec.as_ref().unwrap();
                (exec.workers, exec.inflight)
            };
            // 2. A candidate at the global frontier dispatches
            // unconditionally (it is exactly what Seed would run next).
            if let Some((ck, i)) = cand {
                if pend.is_none_or(|(k, _, _)| ck < k)
                    && infl.is_none_or(|k| ck < k)
                    && inflight < workers
                {
                    let domain = sched.threads[i].domain;
                    let exec = sched.exec.as_ref().unwrap();
                    if exec.domain_busy.get(&domain).copied().unwrap_or(0) == 0 {
                        self.ticketed_dispatch(sched, Tid(i));
                        progressed = true;
                        continue;
                    }
                    // Provably unreachable (a busy domain's earlier key is
                    // still in pend/infl, so this candidate can't be the
                    // frontier); if it ever happens, commit the smallest
                    // effect rather than livelock.
                    debug_assert!(false, "frontier candidate in a busy domain");
                    if let Some((_, _, idx)) = pend {
                        self.apply_effect(sched, idx);
                        progressed = true;
                        continue;
                    }
                }
            }
            // 3. Speculation: dispatch ahead of the frontier where the
            // wake-horizon check proves Seed would run the same segment.
            if inflight < workers && self.speculate(sched) {
                progressed = true;
                continue;
            }
            return progressed;
        }
    }

    /// Try to dispatch threads *ahead* of the frontier. A candidate `X`
    /// (domain `d`, key `kX`) is safe iff no committed-or-future effect
    /// can create a runnable domain-`d` thread with a key below `kX`:
    /// every same-domain blocked thread's earliest possible wake key,
    /// lower-bounded through the frontier `F` plus the wake path's
    /// virtual cost, must exceed `kX`. Returns whether anything was
    /// dispatched.
    fn speculate(&self, sched: &mut Sched) -> bool {
        // Full frontier (minimum over all three components).
        let mut frontier: Option<(VirtualTime, usize)> = None;
        {
            let exec = sched.exec.as_ref().unwrap();
            for p in &exec.pending {
                if frontier.is_none_or(|f| p.key < f) {
                    frontier = Some(p.key);
                }
            }
        }
        // Per-domain best candidate; a domain is only eligible if its
        // *overall* min candidate is plain Ready/Sleeping (a due
        // sem-timeout only ever dispatches at the frontier, because an
        // earlier release could still grant it).
        let mut per_domain: HashMap<u32, ((VirtualTime, usize), bool)> = HashMap::new();
        for (i, t) in sched.threads.iter().enumerate() {
            if t.in_flight {
                let k = (t.vtime, i);
                if frontier.is_none_or(|f| k < f) {
                    frontier = Some(k);
                }
                continue;
            }
            let (key, speculable) = match t.state {
                TState::Ready => (t.vtime, true),
                TState::Sleeping(wake) => (wake, true),
                TState::BlockedSemTimeout(_, deadline) => (deadline, false),
                _ => continue,
            };
            let k = (key, i);
            if frontier.is_none_or(|f| k < f) {
                frontier = Some(k);
            }
            let entry = per_domain.entry(t.domain).or_insert((k, speculable));
            if k < entry.0 {
                *entry = (k, speculable);
            }
        }
        let Some(f) = frontier else { return false };
        let mut eligible: Vec<((VirtualTime, usize), u32)> = Vec::new();
        {
            let exec = sched.exec.as_ref().unwrap();
            for (&d, &(k, speculable)) in &per_domain {
                if speculable && exec.domain_busy.get(&d).copied().unwrap_or(0) == 0 {
                    eligible.push((k, d));
                }
            }
        }
        eligible.sort_unstable();
        let mut dispatched = false;
        for (kx, _) in eligible {
            {
                let exec = sched.exec.as_ref().unwrap();
                if exec.inflight >= exec.workers {
                    break;
                }
            }
            let x = kx.1;
            if kx == f {
                // The frontier candidate is handled by drain step 2; it
                // reaches here only when the worker cap blocked it there.
                continue;
            }
            if self.wake_horizon_clear(sched, x, kx, f.0) {
                self.ticketed_dispatch(sched, Tid(x));
                sched.exec.as_mut().unwrap().speculated += 1;
                dispatched = true;
            }
        }
        dispatched
    }

    /// The admission check for speculating candidate `x` at key `kx`
    /// given frontier time `f`: prove no same-domain thread can become
    /// runnable below `kx`. Wake keys are `(lower-bound time, woken
    /// tid)`, so ties resolve exactly as the scheduler would.
    fn wake_horizon_clear(
        &self,
        sched: &Sched,
        x: usize,
        kx: (VirtualTime, usize),
        f: VirtualTime,
    ) -> bool {
        let d = sched.threads[x].domain;
        let c = &self.cost;
        // Any future release/wake is an effect with key time >= f, and
        // the wake path charges these costs on top before the woken
        // thread's new key. Domain-local semaphores tighten this: their
        // releases come from this very domain, which is serialized behind
        // `x` itself — but only when the wake path has nonzero cost, or a
        // same-time smaller-tid wake could still slip under `kx`.
        let sem_wake_cost = c.sem_op + c.wake + c.ctx_switch;
        let local_sems_ignorable = !sem_wake_cost.is_zero();
        for (i, t) in sched.threads.iter().enumerate() {
            if i == x || t.domain != d {
                continue;
            }
            let lb = match t.state {
                TState::BlockedSem(sid) | TState::BlockedSemTimeout(sid, _) => {
                    if local_sems_ignorable && sched.sems[sid.0].scope == SemScope::Local(d) {
                        continue;
                    }
                    std::cmp::max(t.vtime, f + sem_wake_cost)
                }
                TState::BlockedJoin(target) => {
                    if sched.threads[target.0].domain == d {
                        // The join wake needs the (serialized, in-domain)
                        // target to finish first; safe unless the target
                        // is itself blocked in a way we can't bound.
                        match sched.threads[target.0].state {
                            TState::Ready
                            | TState::Sleeping(_)
                            | TState::BlockedSemTimeout(_, _)
                            | TState::Done => continue,
                            _ => return false,
                        }
                    } else {
                        std::cmp::max(t.vtime, f + c.wake)
                    }
                }
                TState::BlockedPoll(sid) => {
                    // Woken by a post (>= one scaled poll cost after the
                    // block time) or by a close (>= f + wake).
                    let cycle = c.scaled_cycle(sched.sources[sid.0].poll_cost);
                    let post = t.vtime + cycle;
                    let close = std::cmp::max(t.vtime, f + c.wake);
                    std::cmp::min(post, close)
                }
                // Ready/Sleeping/Running/Done peers are either candidates
                // themselves (x is the domain min) or impossible (the
                // domain has no busy slot).
                _ => continue,
            };
            if (lb, i) <= kx {
                return false;
            }
        }
        true
    }

    /// Park the calling OS thread until its simulated thread is scheduled.
    /// On abort/deadlock the OS thread parks forever (the simulation is
    /// unrecoverable; `Kernel::run` reports the error).
    pub(crate) fn wait_until_running(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid) {
        loop {
            if sched.abort.is_some() || sched.deadlock.is_some() {
                loop {
                    self.cv.wait(sched);
                }
            }
            if sched.running == Some(me) {
                return;
            }
            self.cv.wait(sched);
        }
    }

    /// Exit bookkeeping shared by both policies: record, mark done, wake
    /// joiners.
    fn exit_body(sched: &mut Sched, me: Tid, wake_cost: VirtualDuration) {
        let vtime = sched.threads[me.0].vtime;
        sched.record(me, || Event::Exit);
        sched.threads[me.0].state = TState::Done;
        sched.live -= 1;
        let joiners = std::mem::take(&mut sched.threads[me.0].joiners);
        let wake_at = vtime + wake_cost;
        for j in joiners {
            Self::make_ready(sched, j, wake_at);
        }
    }

    /// Bookkeeping when a simulated thread finishes (normally or by
    /// panic). Wakes joiners and schedules the next thread. Under
    /// `Ticketed` a normal exit is the thread's final emitted effect; a
    /// panic aborts directly and out of order (the run is unrecoverable,
    /// so ordering no longer matters — only surfacing the error does).
    pub(crate) fn thread_exit(self: &Arc<Self>, me: Tid, panic_msg: Option<String>) {
        let mut sched = self.state.lock();
        if let Some(msg) = panic_msg {
            Self::exit_body(&mut sched, me, self.cost.wake);
            if self.ticketed() && sched.threads[me.0].in_flight {
                sched.threads[me.0].in_flight = false;
                if let Some(exec) = sched.exec.as_mut() {
                    exec.inflight -= 1;
                }
            }
            sched.abort = Some(msg);
            self.cv.notify_all();
            self.commit_cv.notify_all();
            return;
        }
        if self.ticketed() {
            let wake_cost = self.cost.wake;
            self.emit_effect(
                &mut sched,
                me,
                Box::new(move |sched, _shared, tid| {
                    Self::exit_body(sched, tid, wake_cost);
                }),
            );
            return;
        }
        Self::exit_body(&mut sched, me, self.cost.wake);
        self.dispatch(&mut sched);
    }
}

/// Handle to a virtual-time simulation.
///
/// Spawn the root threads with [`Kernel::spawn`], then call
/// [`Kernel::run`], which blocks (in real time) until every simulated
/// thread has finished and returns the simulation outcome.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) shared: Arc<Shared>,
}

impl Kernel {
    /// Create a kernel with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(Sched {
                    threads: Vec::new(),
                    running: None,
                    live: 0,
                    started: false,
                    abort: None,
                    deadlock: None,
                    sems: Vec::new(),
                    sources: Vec::new(),
                    post_seq: 0,
                    trace: None,
                    exec: None,
                }),
                cv: Condvar::new(),
                commit_cv: Condvar::new(),
                cost,
                metrics: Arc::new(Metrics::new()),
                trace_on: AtomicBool::new(false),
            }),
        }
    }

    /// Create a kernel with the calibrated default cost model.
    pub fn calibrated() -> Self {
        Kernel::new(CostModel::calibrated())
    }

    /// The kernel's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.shared.cost
    }

    /// Record a deterministic event trace during the run (see
    /// [`Kernel::take_trace`]).
    pub fn enable_trace(&self) {
        self.shared.state.lock().trace = Some(Vec::new());
        self.shared.trace_on.store(true, Ordering::Relaxed);
    }

    /// Whether tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace_on.load(Ordering::Relaxed)
    }

    /// Take the recorded trace (empty if tracing was never enabled).
    /// Tracing stays armed: events recorded after this call land in a
    /// fresh buffer instead of silently vanishing.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        let mut sched = self.shared.state.lock();
        match sched.trace.take() {
            Some(t) => {
                sched.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far, without consuming the trace.
    pub fn trace_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .trace
            .as_ref()
            .map_or(0, |t| t.len())
    }

    /// Handle to the kernel's metrics registry (see [`crate::obs`]).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Names of all simulated threads, indexed by tid — the Chrome
    /// exporter uses them to label (and group) timeline rows.
    pub fn thread_names(&self) -> Vec<String> {
        self.shared
            .state
            .lock()
            .threads
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Snapshot hook for the journal layer: the committed per-thread
    /// kernel state (name, virtual clock, op count), in tid order.
    /// Meaningful at quiescent points — after [`Kernel::run`] returned,
    /// every value is final and deterministic.
    pub fn thread_snapshots(&self) -> Vec<crate::journal::ThreadSnap> {
        self.shared
            .state
            .lock()
            .threads
            .iter()
            .map(|t| crate::journal::ThreadSnap {
                name: t.name.clone(),
                vtime_ns: t.vtime.as_nanos(),
                ops: t.ops,
            })
            .collect()
    }

    /// Spawn a simulated thread starting at virtual time zero. Must be
    /// called before [`Kernel::run`]; inside the simulation use
    /// [`crate::spawn`] instead, which charges the spawn cost to the
    /// parent.
    pub fn spawn<T, F>(&self, name: impl Into<String>, f: F) -> crate::thread::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_in(name, 0, f)
    }

    /// Like [`Kernel::spawn`], but placing the thread in a speculation
    /// domain (see [`crate::cost::ExecPolicy`]): threads of different
    /// domains may execute concurrently under `Ticketed`; threads of one
    /// domain are always serialized. Children spawned from inside the
    /// simulation inherit their parent's domain. Ignored under `Seed`.
    pub fn spawn_in<T, F>(
        &self,
        name: impl Into<String>,
        domain: u32,
        f: F,
    ) -> crate::thread::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let name = name.into();
        let tid = {
            let mut sched = self.shared.state.lock();
            crate::thread::alloc_slot(&mut sched, &name, VirtualTime::ZERO, domain)
        };
        crate::thread::launch_os(&self.shared, tid, &name, f)
    }

    /// Run the simulation to completion. Returns an error on deadlock or
    /// when a simulated thread panics (in which case remaining parked OS
    /// threads are leaked — the simulation is unrecoverable).
    pub fn run(&self) -> Result<(), SimError> {
        self.shared
            .cost
            .validate()
            .map_err(SimError::InvalidConfig)?;
        match self.shared.cost.exec {
            ExecPolicy::Seed => self.run_seed(),
            ExecPolicy::Ticketed(workers) => self.run_ticketed(workers),
        }
    }

    fn run_seed(&self) -> Result<(), SimError> {
        let mut sched = self.shared.state.lock();
        assert!(!sched.started, "Kernel::run called twice");
        sched.started = true;
        if sched.live > 0 {
            self.shared.dispatch(&mut sched);
        }
        loop {
            if let Some(msg) = &sched.abort {
                return Err(SimError::ThreadPanicked(msg.clone()));
            }
            if let Some(msg) = &sched.deadlock {
                return Err(SimError::Deadlock(msg.clone()));
            }
            if sched.live == 0 {
                return Ok(());
            }
            self.shared.cv.wait(&mut sched);
        }
    }

    /// The committer loop of `ExecPolicy::Ticketed`: the calling thread
    /// plays sequencer and committer; simulated threads are the workers.
    fn run_ticketed(&self, workers: usize) -> Result<(), SimError> {
        // workers > 0 was validated by `CostModel::validate` in `run`.
        let shared = &self.shared;
        let mut sched = shared.state.lock();
        assert!(!sched.started, "Kernel::run called twice");
        sched.started = true;
        sched.exec = Some(ExecState {
            workers,
            pending: Vec::new(),
            inflight: 0,
            domain_busy: HashMap::new(),
            tickets: 0,
            speculated: 0,
            last_key: None,
            next_seq: 0,
        });
        loop {
            if let Some(msg) = &sched.abort {
                return Err(SimError::ThreadPanicked(msg.clone()));
            }
            if let Some(msg) = &sched.deadlock {
                return Err(SimError::Deadlock(msg.clone()));
            }
            if shared.drain(&mut sched) {
                continue;
            }
            let outstanding = {
                let exec = sched.exec.as_ref().unwrap();
                exec.inflight + exec.pending.len()
            };
            if outstanding == 0 {
                if sched.live == 0 {
                    return Ok(());
                }
                // Quiescent with live threads and nothing dispatchable:
                // every thread is parked at an op boundary, so the state
                // (and the report) is exactly what Seed would see.
                let msg = format!(
                    "no runnable thread among {} live:\n{}",
                    sched.live,
                    sched.dump()
                );
                sched.deadlock = Some(msg.clone());
                return Err(SimError::Deadlock(msg));
            }
            shared.commit_cv.wait(&mut sched);
        }
    }

    /// Scheduling statistics of a `Ticketed` run (`None` under `Seed`).
    /// Host-side only — deliberately not part of the metrics registry,
    /// whose snapshot is bit-identical across policies.
    pub fn exec_stats(&self) -> Option<ExecStats> {
        let sched = self.shared.state.lock();
        sched.exec.as_ref().map(|e| ExecStats {
            tickets: e.tickets,
            speculated: e.speculated,
        })
    }

    /// Virtual time at which the last simulated thread finished.
    pub fn end_time(&self) -> VirtualTime {
        let sched = self.shared.state.lock();
        sched
            .threads
            .iter()
            .map(|t| t.vtime)
            .max()
            .unwrap_or(VirtualTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Semaphore;
    use crate::thread;

    #[test]
    fn empty_kernel_runs() {
        let k = Kernel::new(CostModel::free());
        k.run().unwrap();
    }

    #[test]
    fn single_thread_advances_time() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("t", || {
            thread::advance(VirtualDuration::from_micros(5));
            thread::now()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(5_000));
    }

    #[test]
    fn threads_interleave_by_virtual_time() {
        // Thread A advances 10us per step, thread B 3us per step; the
        // kernel must always run the thread with the smaller clock, so
        // B completes several steps before A's first step finishes.
        let k = Kernel::new(CostModel::free());
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let la = log.clone();
        k.spawn("a", move || {
            for i in 0..3 {
                thread::advance(VirtualDuration::from_micros(10));
                la.lock().push(("a", i, thread::now()));
            }
        });
        let lb = log.clone();
        k.spawn("b", move || {
            for i in 0..3 {
                thread::advance(VirtualDuration::from_micros(3));
                lb.lock().push(("b", i, thread::now()));
            }
        });
        k.run().unwrap();
        let events = log.lock().clone();
        let times: Vec<u64> = events.iter().map(|(_, _, t)| t.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "events must be logged in virtual-time order");
        // b at 3,6,9 all precede a's 10.
        assert_eq!(events[0].0, "b");
        assert_eq!(events[1].0, "b");
        assert_eq!(events[2].0, "b");
        assert_eq!(events[3].0, "a");
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        k.spawn("stuck", move || {
            sem.acquire();
        });
        match k.run() {
            Err(SimError::Deadlock(msg)) => {
                assert!(msg.contains("stuck"), "dump should name the thread: {msg}");
                assert!(msg.contains("semaphore"), "dump should say why: {msg}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_thread_aborts_run() {
        let k = Kernel::new(CostModel::free());
        k.spawn("boom", || panic!("intentional"));
        match k.run() {
            Err(SimError::ThreadPanicked(msg)) => assert!(msg.contains("intentional")),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn trace_is_deterministic_across_runs() {
        fn run_once() -> Vec<TraceEvent> {
            let k = Kernel::new(CostModel::calibrated());
            k.enable_trace();
            let sem = Semaphore::new(&k, 0);
            let sem2 = sem.clone();
            k.spawn("producer", move || {
                for _ in 0..10 {
                    thread::advance(VirtualDuration::from_micros(7));
                    sem2.release();
                }
            });
            k.spawn("consumer", move || {
                for _ in 0..10 {
                    sem.acquire();
                    thread::advance(VirtualDuration::from_micros(2));
                }
            });
            k.run().unwrap();
            k.take_trace()
        }
        let a = run_once();
        let b = run_once();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // The trace is typed now: the producer/consumer handshake shows
        // up as structured semaphore events, not just strings.
        use crate::obs::Event;
        assert!(a.iter().any(|e| matches!(e.what, Event::SemBlock { .. })));
        assert!(a.iter().any(|e| matches!(e.what, Event::SemWake { .. })));
        assert_eq!(a.iter().filter(|e| e.what == Event::Exit).count(), 2);
        // And the legacy string view still works through Display.
        assert!(a.iter().any(|e| e.what == "exit"));
    }

    #[test]
    fn take_trace_rearms_and_trace_len_is_nonconsuming() {
        let k = Kernel::new(CostModel::calibrated());
        k.enable_trace();
        k.spawn("a", || thread::advance(VirtualDuration::from_micros(1)));
        k.run().unwrap();
        assert!(k.trace_enabled());
        let n = k.trace_len();
        assert!(n > 0);
        assert_eq!(k.trace_len(), n, "trace_len must not consume");
        let first = k.take_trace();
        assert_eq!(first.len(), n);
        // Tracing stayed armed: a second take returns the (empty) fresh
        // buffer rather than silently disabling tracing.
        assert!(k.trace_enabled());
        assert!(k.take_trace().is_empty());
        assert_eq!(k.trace_len(), 0);
    }

    #[test]
    fn end_time_reflects_last_thread() {
        let k = Kernel::new(CostModel::free());
        k.spawn("short", || thread::advance(VirtualDuration::from_micros(1)));
        k.spawn("long", || thread::advance(VirtualDuration::from_micros(90)));
        k.run().unwrap();
        assert_eq!(k.end_time(), VirtualTime(90_000));
    }

    #[test]
    fn sleep_wakes_in_order() {
        let k = Kernel::new(CostModel::free());
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (name, us) in [("late", 50u64), ("early", 10), ("mid", 30)] {
            let log = log.clone();
            k.spawn(name, move || {
                thread::sleep(VirtualDuration::from_micros(us));
                log.lock().push(name);
            });
        }
        k.run().unwrap();
        assert_eq!(*log.lock(), vec!["early", "mid", "late"]);
    }
}
