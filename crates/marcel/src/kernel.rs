//! The deterministic virtual-time thread kernel.
//!
//! # Execution model
//!
//! Every simulated ("Marcel") thread is backed by a real OS thread, but
//! **exactly one simulated thread executes at a time**. Whenever the
//! running thread performs a kernel operation (advance, yield, semaphore
//! op, poll, spawn, join, exit) the kernel re-evaluates which thread should
//! run next: the runnable thread with the smallest `(virtual time, thread
//! id)` pair. Between kernel operations a thread only touches its own
//! data, so this total order of kernel operations by virtual time yields a
//! *deterministic, causally consistent* simulation: the same program
//! produces the same virtual-time trace on every run.
//!
//! # Why real threads and not an event loop
//!
//! The system under reproduction (MPICH/Madeleine, §4.2.3 of the paper) is
//! written in blocking style: polling threads block in
//! `mad_begin_unpacking`, the MPI control thread blocks on a rendezvous
//! semaphore, `MPI_Isend` spawns a worker thread. Backing simulated
//! threads with real stacks lets the reproduction keep exactly that
//! structure instead of inverting it into state machines.
//!
//! # Polling model
//!
//! Madeleine/Marcel integrate polling: each network channel is polled by a
//! dedicated thread, and Marcel *factorizes* the poll requests into one
//! polling loop whose iteration cost is the sum of the per-protocol poll
//! costs. The kernel models the consequence directly: a message arriving
//! at virtual time `a` on a source whose process currently poll-waits on
//! sources with total poll cost `C` is *noticed* at `max(a, block time) +
//! C`. This is what makes the paper's Figure 9 (SCI + TCP polling thread)
//! reproducible: adding a TCP channel adds TCP's expensive `select`-style
//! poll cost to every detection on the SCI channel.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::cost::CostModel;
use crate::obs::{Event, Metrics};
use crate::time::{VirtualDuration, VirtualTime};

/// Identifier of a simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub(crate) usize);

impl Tid {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a poll source (see [`crate::poll`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SourceId(pub(crate) usize);

/// Identifier of a kernel semaphore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct SemId(pub(crate) usize);

/// Process grouping for polling interference: poll sources of the same
/// process share one polling loop, so their poll costs add up (this is a
/// *simulation* process, i.e. an MPI rank, not an OS process).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcId(pub u32);

/// Errors surfaced by [`Kernel::run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// No thread can ever make progress again; the message contains a
    /// dump of every live thread's state.
    Deadlock(String),
    /// A simulated thread panicked; the simulation was aborted.
    ThreadPanicked(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock:\n{d}"),
            SimError::ThreadPanicked(m) => write!(f, "simulated thread panicked: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

pub(crate) enum TState {
    /// Eligible to run.
    Ready,
    /// Currently executing (at most one thread).
    Running,
    /// Waiting on a semaphore.
    BlockedSem(SemId),
    /// Waiting on a semaphore with a deadline: wakes at the deadline
    /// (empty-handed) if no release arrives first.
    BlockedSemTimeout(SemId, VirtualTime),
    /// Waiting for another thread to finish.
    BlockedJoin(Tid),
    /// Waiting in `poll_wait` on a source with an empty queue.
    BlockedPoll(SourceId),
    /// Sleeping until an absolute virtual time.
    Sleeping(VirtualTime),
    /// Finished.
    Done,
}

impl TState {
    fn describe(&self) -> String {
        match self {
            TState::Ready => "ready".into(),
            TState::Running => "running".into(),
            TState::BlockedSem(s) => format!("blocked on semaphore #{}", s.0),
            TState::BlockedSemTimeout(s, dl) => {
                format!("blocked on semaphore #{} until {dl}", s.0)
            }
            TState::BlockedJoin(t) => format!("joining thread #{}", t.0),
            TState::BlockedPoll(s) => format!("poll-waiting on source #{}", s.0),
            TState::Sleeping(t) => format!("sleeping until {t}"),
            TState::Done => "done".into(),
        }
    }
}

pub(crate) struct ThreadSlot {
    pub(crate) name: String,
    pub(crate) vtime: VirtualTime,
    pub(crate) state: TState,
    pub(crate) joiners: Vec<Tid>,
    /// Payload handed to a thread woken from `poll_wait`.
    pub(crate) wake_payload: Option<Box<dyn Any + Send>>,
}

pub(crate) struct SemState {
    pub(crate) count: u64,
    pub(crate) waiters: VecDeque<Tid>,
}

pub(crate) struct SourceState {
    pub(crate) proc: ProcId,
    pub(crate) poll_cost: VirtualDuration,
    /// In-flight and arrived messages, sorted by (arrival, post sequence).
    pub(crate) queue: VecDeque<(VirtualTime, u64, Box<dyn Any + Send>)>,
    /// The thread currently blocked in `poll_wait` on this source, if any.
    pub(crate) waiter: Option<Tid>,
    /// A source counts toward the process polling cycle while some thread
    /// services it (a polling thread is attached, even if momentarily not
    /// blocked). Registered on first `poll_wait`, cleared on `detach`.
    pub(crate) attached: bool,
    pub(crate) closed: bool,
    /// Consecutive detections in this process during which this source's
    /// queue was empty. Only maintained under `PollPolicy::Parking`.
    pub(crate) empty_polls: u32,
    /// Parked out of the polling cycle (idle too long); re-armed by the
    /// next `post`. Never set under `PollPolicy::Seed`.
    pub(crate) parked: bool,
}

/// One entry of the (optional) deterministic event trace. `what` is a
/// typed [`Event`] whose `Display` reproduces the legacy trace strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: VirtualTime,
    pub tid: usize,
    pub what: Event,
}

pub(crate) struct Sched {
    pub(crate) threads: Vec<ThreadSlot>,
    pub(crate) running: Option<Tid>,
    pub(crate) live: usize,
    pub(crate) started: bool,
    pub(crate) abort: Option<String>,
    pub(crate) deadlock: Option<String>,
    pub(crate) sems: Vec<SemState>,
    pub(crate) sources: Vec<SourceState>,
    pub(crate) post_seq: u64,
    pub(crate) trace: Option<Vec<TraceEvent>>,
}

impl Sched {
    pub(crate) fn record(&mut self, tid: Tid, what: impl FnOnce() -> Event) {
        if let Some(trace) = &mut self.trace {
            let time = self.threads[tid.0].vtime;
            trace.push(TraceEvent {
                time,
                tid: tid.0,
                what: what(),
            });
        }
    }

    fn dump(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            if matches!(t.state, TState::Done) {
                continue;
            }
            out.push_str(&format!(
                "  thread #{i} '{}' at {}: {}\n",
                t.name,
                t.vtime,
                t.state.describe()
            ));
        }
        out
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<Sched>,
    pub(crate) cv: Condvar,
    pub(crate) cost: CostModel,
    /// The kernel's metrics registry (see [`crate::obs`]): always on,
    /// never touches virtual time.
    pub(crate) metrics: Arc<Metrics>,
    /// Fast tracing-enabled check for [`crate::obs::emit`] — avoids the
    /// scheduler lock on the (default) disabled path.
    pub(crate) trace_on: AtomicBool,
}

impl Shared {
    /// Sum of poll costs of all *attached* sources in `proc` — the cost of
    /// one iteration of that process's factorized polling loop.
    pub(crate) fn polling_cycle(sched: &Sched, proc: ProcId) -> VirtualDuration {
        sched
            .sources
            .iter()
            .filter(|s| s.attached && s.proc == proc && !s.closed && !s.parked)
            .map(|s| s.poll_cost)
            .sum()
    }

    /// Account one detection (one observed polling-loop iteration) in
    /// `proc` under `PollPolicy::Parking`: the source that produced the
    /// message — and any source with traffic queued — stays armed, while
    /// every other attached source accrues an empty poll and is parked
    /// once it has been empty for `park_after` consecutive detections.
    /// No-op under `PollPolicy::Seed`.
    pub(crate) fn note_detection(&self, sched: &mut Sched, proc: ProcId, active: SourceId) {
        if self.cost.poll_policy != crate::cost::PollPolicy::Parking {
            return;
        }
        for (i, s) in sched.sources.iter_mut().enumerate() {
            if !s.attached || s.closed || s.proc != proc {
                continue;
            }
            if i == active.0 || !s.queue.is_empty() {
                s.empty_polls = 0;
                s.parked = false;
            } else {
                s.empty_polls += 1;
                if s.empty_polls >= self.cost.park_after {
                    s.parked = true;
                }
            }
        }
    }

    /// Pick the best next thread: the Ready thread or due Sleeper with the
    /// smallest `(vtime, tid)`. Returns `None` when nothing can run.
    fn best_candidate(sched: &Sched) -> Option<Tid> {
        let mut best: Option<(VirtualTime, usize)> = None;
        for (i, t) in sched.threads.iter().enumerate() {
            let key = match t.state {
                TState::Ready => t.vtime,
                TState::Sleeping(wake) => wake,
                // A timed semaphore waiter is due at its deadline; an
                // earlier release makes it Ready through `make_ready`.
                TState::BlockedSemTimeout(_, deadline) => deadline,
                _ => continue,
            };
            if best.is_none_or(|(bt, bi)| (key, i) < (bt, bi)) {
                best = Some((key, i));
            }
        }
        best.map(|(_, i)| Tid(i))
    }

    /// Make `next` the running thread (waking it from Sleeping if needed)
    /// and notify every parked OS thread so the right one resumes.
    fn commit(&self, sched: &mut Sched, next: Tid) {
        let wake = match sched.threads[next.0].state {
            TState::Sleeping(wake) => Some((None, wake)),
            // Scheduled *at the deadline*: the wait timed out. Leave the
            // semaphore's queue so a later release can't also grant us.
            TState::BlockedSemTimeout(sid, deadline) => Some((Some(sid), deadline)),
            _ => None,
        };
        if let Some((timed_out_sem, at)) = wake {
            if let Some(sid) = timed_out_sem {
                sched.sems[sid.0].waiters.retain(|t| *t != next);
            }
            let slot = &mut sched.threads[next.0];
            if at > slot.vtime {
                slot.vtime = at;
            }
        }
        let slot = &mut sched.threads[next.0];
        slot.state = TState::Running;
        sched.running = Some(next);
        self.cv.notify_all();
    }

    /// Schedule the next thread after the current one stopped running
    /// (blocked or exited). Declares a deadlock when no thread can ever
    /// run again.
    pub(crate) fn dispatch(&self, sched: &mut Sched) {
        sched.running = None;
        if let Some(next) = Self::best_candidate(sched) {
            self.commit(sched, next);
            return;
        }
        if sched.live == 0 {
            // Normal termination: wake `run()`.
            self.cv.notify_all();
            return;
        }
        let msg = format!(
            "no runnable thread among {} live:\n{}",
            sched.live,
            sched.dump()
        );
        sched.deadlock = Some(msg);
        self.cv.notify_all();
    }

    /// Re-evaluate scheduling at the end of a kernel operation performed
    /// by the running thread `me`. If another thread now has a smaller
    /// `(vtime, tid)`, switch to it and park until rescheduled.
    pub(crate) fn reschedule(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid) {
        debug_assert!(matches!(sched.threads[me.0].state, TState::Running));
        sched.threads[me.0].state = TState::Ready;
        let next = Self::best_candidate(sched).expect("running thread is always a candidate");
        self.commit(sched, next);
        if next != me {
            self.wait_until_running(sched, me);
        }
    }

    /// Block the running thread `me` with `state` and run something else.
    /// Returns once `me` is scheduled again.
    pub(crate) fn block(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid, state: TState) {
        sched.threads[me.0].state = state;
        self.dispatch(sched);
        self.wait_until_running(sched, me);
    }

    /// Mark `target` runnable no earlier than `at`.
    pub(crate) fn make_ready(sched: &mut Sched, target: Tid, at: VirtualTime) {
        let slot = &mut sched.threads[target.0];
        if at > slot.vtime {
            slot.vtime = at;
        }
        slot.state = TState::Ready;
    }

    /// Park the calling OS thread until its simulated thread is scheduled.
    /// On abort/deadlock the OS thread parks forever (the simulation is
    /// unrecoverable; `Kernel::run` reports the error).
    pub(crate) fn wait_until_running(&self, sched: &mut MutexGuard<'_, Sched>, me: Tid) {
        loop {
            if sched.abort.is_some() || sched.deadlock.is_some() {
                loop {
                    self.cv.wait(sched);
                }
            }
            if sched.running == Some(me) {
                return;
            }
            self.cv.wait(sched);
        }
    }

    /// Bookkeeping when a simulated thread finishes (normally or by
    /// panic). Wakes joiners and schedules the next thread.
    pub(crate) fn thread_exit(&self, me: Tid, panic_msg: Option<String>) {
        let mut sched = self.state.lock();
        let vtime = sched.threads[me.0].vtime;
        sched.record(me, || Event::Exit);
        sched.threads[me.0].state = TState::Done;
        sched.live -= 1;
        let joiners = std::mem::take(&mut sched.threads[me.0].joiners);
        let wake_at = vtime + self.cost.wake;
        for j in joiners {
            Self::make_ready(&mut sched, j, wake_at);
        }
        if let Some(msg) = panic_msg {
            sched.abort = Some(msg);
            self.cv.notify_all();
            return;
        }
        self.dispatch(&mut sched);
    }
}

/// Handle to a virtual-time simulation.
///
/// Spawn the root threads with [`Kernel::spawn`], then call
/// [`Kernel::run`], which blocks (in real time) until every simulated
/// thread has finished and returns the simulation outcome.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) shared: Arc<Shared>,
}

impl Kernel {
    /// Create a kernel with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(Sched {
                    threads: Vec::new(),
                    running: None,
                    live: 0,
                    started: false,
                    abort: None,
                    deadlock: None,
                    sems: Vec::new(),
                    sources: Vec::new(),
                    post_seq: 0,
                    trace: None,
                }),
                cv: Condvar::new(),
                cost,
                metrics: Arc::new(Metrics::new()),
                trace_on: AtomicBool::new(false),
            }),
        }
    }

    /// Create a kernel with the calibrated default cost model.
    pub fn calibrated() -> Self {
        Kernel::new(CostModel::calibrated())
    }

    /// The kernel's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.shared.cost
    }

    /// Record a deterministic event trace during the run (see
    /// [`Kernel::take_trace`]).
    pub fn enable_trace(&self) {
        self.shared.state.lock().trace = Some(Vec::new());
        self.shared.trace_on.store(true, Ordering::Relaxed);
    }

    /// Whether tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace_on.load(Ordering::Relaxed)
    }

    /// Take the recorded trace (empty if tracing was never enabled).
    /// Tracing stays armed: events recorded after this call land in a
    /// fresh buffer instead of silently vanishing.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        let mut sched = self.shared.state.lock();
        match sched.trace.take() {
            Some(t) => {
                sched.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far, without consuming the trace.
    pub fn trace_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .trace
            .as_ref()
            .map_or(0, |t| t.len())
    }

    /// Handle to the kernel's metrics registry (see [`crate::obs`]).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Names of all simulated threads, indexed by tid — the Chrome
    /// exporter uses them to label (and group) timeline rows.
    pub fn thread_names(&self) -> Vec<String> {
        self.shared
            .state
            .lock()
            .threads
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Spawn a simulated thread starting at virtual time zero. Must be
    /// called before [`Kernel::run`]; inside the simulation use
    /// [`crate::spawn`] instead, which charges the spawn cost to the
    /// parent.
    pub fn spawn<T, F>(&self, name: impl Into<String>, f: F) -> crate::thread::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        crate::thread::spawn_inner(&self.shared, name.into(), VirtualTime::ZERO, f)
    }

    /// Run the simulation to completion. Returns an error on deadlock or
    /// when a simulated thread panics (in which case remaining parked OS
    /// threads are leaked — the simulation is unrecoverable).
    pub fn run(&self) -> Result<(), SimError> {
        let mut sched = self.shared.state.lock();
        assert!(!sched.started, "Kernel::run called twice");
        sched.started = true;
        if sched.live > 0 {
            self.shared.dispatch(&mut sched);
        }
        loop {
            if let Some(msg) = &sched.abort {
                return Err(SimError::ThreadPanicked(msg.clone()));
            }
            if let Some(msg) = &sched.deadlock {
                return Err(SimError::Deadlock(msg.clone()));
            }
            if sched.live == 0 {
                return Ok(());
            }
            self.shared.cv.wait(&mut sched);
        }
    }

    /// Virtual time at which the last simulated thread finished.
    pub fn end_time(&self) -> VirtualTime {
        let sched = self.shared.state.lock();
        sched
            .threads
            .iter()
            .map(|t| t.vtime)
            .max()
            .unwrap_or(VirtualTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Semaphore;
    use crate::thread;

    #[test]
    fn empty_kernel_runs() {
        let k = Kernel::new(CostModel::free());
        k.run().unwrap();
    }

    #[test]
    fn single_thread_advances_time() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("t", || {
            thread::advance(VirtualDuration::from_micros(5));
            thread::now()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(5_000));
    }

    #[test]
    fn threads_interleave_by_virtual_time() {
        // Thread A advances 10us per step, thread B 3us per step; the
        // kernel must always run the thread with the smaller clock, so
        // B completes several steps before A's first step finishes.
        let k = Kernel::new(CostModel::free());
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let la = log.clone();
        k.spawn("a", move || {
            for i in 0..3 {
                thread::advance(VirtualDuration::from_micros(10));
                la.lock().push(("a", i, thread::now()));
            }
        });
        let lb = log.clone();
        k.spawn("b", move || {
            for i in 0..3 {
                thread::advance(VirtualDuration::from_micros(3));
                lb.lock().push(("b", i, thread::now()));
            }
        });
        k.run().unwrap();
        let events = log.lock().clone();
        let times: Vec<u64> = events.iter().map(|(_, _, t)| t.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "events must be logged in virtual-time order");
        // b at 3,6,9 all precede a's 10.
        assert_eq!(events[0].0, "b");
        assert_eq!(events[1].0, "b");
        assert_eq!(events[2].0, "b");
        assert_eq!(events[3].0, "a");
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let k = Kernel::new(CostModel::free());
        let sem = Semaphore::new(&k, 0);
        k.spawn("stuck", move || {
            sem.acquire();
        });
        match k.run() {
            Err(SimError::Deadlock(msg)) => {
                assert!(msg.contains("stuck"), "dump should name the thread: {msg}");
                assert!(msg.contains("semaphore"), "dump should say why: {msg}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_thread_aborts_run() {
        let k = Kernel::new(CostModel::free());
        k.spawn("boom", || panic!("intentional"));
        match k.run() {
            Err(SimError::ThreadPanicked(msg)) => assert!(msg.contains("intentional")),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn trace_is_deterministic_across_runs() {
        fn run_once() -> Vec<TraceEvent> {
            let k = Kernel::new(CostModel::calibrated());
            k.enable_trace();
            let sem = Semaphore::new(&k, 0);
            let sem2 = sem.clone();
            k.spawn("producer", move || {
                for _ in 0..10 {
                    thread::advance(VirtualDuration::from_micros(7));
                    sem2.release();
                }
            });
            k.spawn("consumer", move || {
                for _ in 0..10 {
                    sem.acquire();
                    thread::advance(VirtualDuration::from_micros(2));
                }
            });
            k.run().unwrap();
            k.take_trace()
        }
        let a = run_once();
        let b = run_once();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // The trace is typed now: the producer/consumer handshake shows
        // up as structured semaphore events, not just strings.
        use crate::obs::Event;
        assert!(a.iter().any(|e| matches!(e.what, Event::SemBlock { .. })));
        assert!(a.iter().any(|e| matches!(e.what, Event::SemWake { .. })));
        assert_eq!(a.iter().filter(|e| e.what == Event::Exit).count(), 2);
        // And the legacy string view still works through Display.
        assert!(a.iter().any(|e| e.what == "exit"));
    }

    #[test]
    fn take_trace_rearms_and_trace_len_is_nonconsuming() {
        let k = Kernel::new(CostModel::calibrated());
        k.enable_trace();
        k.spawn("a", || thread::advance(VirtualDuration::from_micros(1)));
        k.run().unwrap();
        assert!(k.trace_enabled());
        let n = k.trace_len();
        assert!(n > 0);
        assert_eq!(k.trace_len(), n, "trace_len must not consume");
        let first = k.take_trace();
        assert_eq!(first.len(), n);
        // Tracing stayed armed: a second take returns the (empty) fresh
        // buffer rather than silently disabling tracing.
        assert!(k.trace_enabled());
        assert!(k.take_trace().is_empty());
        assert_eq!(k.trace_len(), 0);
    }

    #[test]
    fn end_time_reflects_last_thread() {
        let k = Kernel::new(CostModel::free());
        k.spawn("short", || thread::advance(VirtualDuration::from_micros(1)));
        k.spawn("long", || thread::advance(VirtualDuration::from_micros(90)));
        k.run().unwrap();
        assert_eq!(k.end_time(), VirtualTime(90_000));
    }

    #[test]
    fn sleep_wakes_in_order() {
        let k = Kernel::new(CostModel::free());
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (name, us) in [("late", 50u64), ("early", 10), ("mid", 30)] {
            let log = log.clone();
            k.spawn(name, move || {
                thread::sleep(VirtualDuration::from_micros(us));
                log.lock().push(name);
            });
        }
        k.run().unwrap();
        assert_eq!(*log.lock(), vec!["early", "mid", "late"]);
    }
}
