//! Cost model for kernel-level operations.
//!
//! The paper decomposes the `ch_mad` overhead over raw Madeleine into an
//! *extra packing operation* (network-dependent) and a *message handling*
//! part (§5.2–5.4: ≈7 µs on TCP, ≈8.5 µs on SCI, ≈6.5 µs on BIP). The
//! handling part is the price of going through the polling thread: a
//! semaphore release, a context switch back to the MPI control thread, and
//! queue bookkeeping. Those primitive costs live here so that the observed
//! handling overhead *emerges* from the implementation rather than being a
//! single fudge constant.
//!
//! Defaults are tuned for a late-90s dual Pentium-II 450 MHz running the
//! user-level Marcel threads the paper uses (thread operations are cheap —
//! no kernel crossing).

use crate::time::VirtualDuration;

/// Idle-channel handling in the factorized polling loop (§3.3).
///
/// Under `Seed`, every attached channel is polled on every loop
/// iteration forever — an idle TCP channel taxes every SCI detection by
/// the full `select` cost (the Figure 9 effect). Under `Parking`, a
/// channel whose poll has come up empty for `CostModel::park_after`
/// consecutive detections is *parked* out of the loop (its poll cost no
/// longer contributes to the cycle) and re-armed by the first `post`
/// aimed at it. `Seed` is the default and is bit-identical to the
/// pre-knob behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PollPolicy {
    /// Poll every attached channel on every cycle (paper-faithful).
    #[default]
    Seed,
    /// Park channels idle for `park_after` cycles; re-arm on post.
    Parking,
}

/// Execution engine for the kernel's step loop.
///
/// Under `Seed`, the kernel runs its original monolithic loop: exactly
/// one simulated thread executes at a time, picked min-`(vtime, tid)`
/// first. Under `Ticketed(workers)` the loop is split into three roles
/// — a sequencer that assigns monotonic tickets and per-step RNG seeds
/// (see [`crate::rng::step_seed`]), a pool of up to `workers`
/// concurrently executing simulated threads whose cross-thread effects
/// are *emitted* as pending closures instead of applied, and a
/// committer that applies those effects in strict ticket (= virtual
/// time) order, re-validating every speculative dispatch against
/// committed state. The trace, metrics snapshot and all simulation
/// results are bit-identical to `Seed` for every worker count; only
/// host wall-clock changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecPolicy {
    /// The original serial step loop (bit-identical to the seed).
    #[default]
    Seed,
    /// Sequencer → worker pool → committer, with this many workers.
    Ticketed(usize),
}

/// A configuration rejected at build/validate time — the typed
/// replacement for the config-time panics the builders used to hide
/// until deep inside `Kernel::run` (e.g. `ExecPolicy::Ticketed(0)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `ExecPolicy::Ticketed(0)`: the worker pool cannot be empty.
    ZeroTicketedWorkers,
    /// `PollPolicy::Parking` with `park_after == 0`: a channel would be
    /// parked before its first poll and never observed again.
    ZeroParkAfter,
    /// `poll_cycle_scale` above 10 000 % — a three-orders-of-magnitude
    /// slowdown is a typo, not a model.
    PollScaleOutOfRange(u32),
    /// A cost parameter that must be a finite, non-negative number
    /// (named by the `&'static str`) was negative or NaN.
    NegativeCost(&'static str),
    /// `forwarding: true` with a non-ch_mad remote device: gateway
    /// forwarding is a ch_mad feature.
    ForwardingRequiresChMad,
    /// A campaign knob that must be non-zero (named) was zero.
    ZeroCampaignParam(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTicketedWorkers => {
                write!(f, "ExecPolicy::Ticketed needs at least one worker")
            }
            ConfigError::ZeroParkAfter => {
                write!(f, "PollPolicy::Parking needs park_after >= 1")
            }
            ConfigError::PollScaleOutOfRange(v) => {
                write!(f, "poll_cycle_scale {v}% is out of range (max 10000)")
            }
            ConfigError::NegativeCost(which) => {
                write!(
                    f,
                    "cost parameter `{which}` must be finite and non-negative"
                )
            }
            ConfigError::ForwardingRequiresChMad => {
                write!(f, "forwarding requires the ch_mad remote device")
            }
            ConfigError::ZeroCampaignParam(which) => {
                write!(f, "campaign parameter `{which}` must be non-zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Virtual cost of each kernel primitive.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Switching execution from one user-level thread to another
    /// (register save/restore + run-queue manipulation).
    pub ctx_switch: VirtualDuration,
    /// One semaphore P or V operation (uncontended part).
    pub sem_op: VirtualDuration,
    /// Extra latency for a cross-thread wake-up (the woken thread becomes
    /// runnable this long after the waker's V operation).
    pub wake: VirtualDuration,
    /// Creating a user-level thread (Marcel creation is advertised as very
    /// cheap; this also covers stack handoff).
    pub spawn: VirtualDuration,
    /// An explicit `yield` with no better thread to run.
    pub yield_op: VirtualDuration,
    /// Scale factor (percent) applied to every polling-cycle detection
    /// delay. 100 = the faithful model (a message is noticed one full
    /// polling cycle after arrival); 0 = oracle polling (ablation).
    pub poll_cycle_scale: u32,
    /// Idle-channel handling in the factorized polling loop.
    pub poll_policy: PollPolicy,
    /// Under [`PollPolicy::Parking`]: consecutive empty detections after
    /// which an idle channel is parked out of the polling cycle.
    pub park_after: u32,
    /// Execution engine for the kernel step loop (serial vs ticketed).
    pub exec: ExecPolicy,
}

impl CostModel {
    /// Calibrated defaults (see module docs).
    pub fn calibrated() -> Self {
        CostModel {
            ctx_switch: VirtualDuration::from_nanos(600),
            sem_op: VirtualDuration::from_nanos(250),
            wake: VirtualDuration::from_nanos(900),
            spawn: VirtualDuration::from_micros(2),
            yield_op: VirtualDuration::from_nanos(200),
            poll_cycle_scale: 100,
            poll_policy: PollPolicy::Seed,
            park_after: 8,
            exec: ExecPolicy::Seed,
        }
    }

    /// A zero-cost model: every kernel primitive is free. Useful for unit
    /// tests that want to assert exact virtual times without accounting
    /// for scheduling overheads.
    pub fn free() -> Self {
        CostModel {
            ctx_switch: VirtualDuration::ZERO,
            sem_op: VirtualDuration::ZERO,
            wake: VirtualDuration::ZERO,
            spawn: VirtualDuration::ZERO,
            yield_op: VirtualDuration::ZERO,
            poll_cycle_scale: 100,
            poll_policy: PollPolicy::Seed,
            park_after: 8,
            exec: ExecPolicy::Seed,
        }
    }

    /// Oracle-polling variant of `self` (ablation 1 in DESIGN.md):
    /// messages are noticed the instant they arrive.
    pub fn with_oracle_polling(mut self) -> Self {
        self.poll_cycle_scale = 0;
        self
    }

    /// Parking variant of `self`: idle channels leave the polling loop
    /// after `park_after` empty detections (see [`PollPolicy`]).
    pub fn with_parking(mut self) -> Self {
        self.poll_policy = PollPolicy::Parking;
        self
    }

    /// Ticketed variant of `self`: run the kernel step loop as
    /// sequencer → `workers` workers → committer (see [`ExecPolicy`]).
    pub fn with_ticketed(mut self, workers: usize) -> Self {
        self.exec = ExecPolicy::Ticketed(workers);
        self
    }

    /// Fallible variant of [`CostModel::with_ticketed`]: rejects an
    /// empty worker pool up front instead of at `Kernel::run`.
    pub fn try_with_ticketed(self, workers: usize) -> Result<Self, ConfigError> {
        if workers == 0 {
            return Err(ConfigError::ZeroTicketedWorkers);
        }
        Ok(self.with_ticketed(workers))
    }

    /// Validate the model: every misconfiguration that used to panic
    /// deep inside the kernel is reported here as a typed
    /// [`ConfigError`]. `Kernel::run` calls this before dispatching and
    /// surfaces failures as [`crate::SimError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if matches!(self.exec, ExecPolicy::Ticketed(0)) {
            return Err(ConfigError::ZeroTicketedWorkers);
        }
        if self.poll_policy == PollPolicy::Parking && self.park_after == 0 {
            return Err(ConfigError::ZeroParkAfter);
        }
        if self.poll_cycle_scale > 10_000 {
            return Err(ConfigError::PollScaleOutOfRange(self.poll_cycle_scale));
        }
        Ok(())
    }

    /// Apply the polling scale to a raw cycle cost.
    pub(crate) fn scaled_cycle(&self, cycle: VirtualDuration) -> VirtualDuration {
        VirtualDuration::from_nanos(cycle.as_nanos() * self.poll_cycle_scale as u64 / 100)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_costs_are_positive() {
        let c = CostModel::calibrated();
        assert!(c.ctx_switch.as_nanos() > 0);
        assert!(c.sem_op.as_nanos() > 0);
        assert!(c.wake.as_nanos() > 0);
        assert!(c.spawn.as_nanos() > 0);
        assert_eq!(c.poll_cycle_scale, 100);
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        assert!(c.ctx_switch.is_zero());
        assert!(c.sem_op.is_zero());
        assert!(c.wake.is_zero());
        assert!(c.spawn.is_zero());
    }

    #[test]
    fn oracle_polling_zeroes_cycles() {
        let c = CostModel::calibrated().with_oracle_polling();
        assert_eq!(
            c.scaled_cycle(VirtualDuration::from_micros(5)),
            VirtualDuration::ZERO
        );
    }

    #[test]
    fn validate_rejects_zero_ticketed_workers() {
        let c = CostModel::calibrated().with_ticketed(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroTicketedWorkers));
        assert_eq!(
            CostModel::calibrated().try_with_ticketed(0).unwrap_err(),
            ConfigError::ZeroTicketedWorkers
        );
        assert!(CostModel::calibrated().try_with_ticketed(4).is_ok());
    }

    #[test]
    fn validate_rejects_zero_park_after() {
        let mut c = CostModel::calibrated().with_parking();
        c.park_after = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroParkAfter));
        // Under Seed polling the knob is inert, so zero is fine.
        let mut c = CostModel::calibrated();
        c.park_after = 0;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_absurd_poll_scale() {
        let mut c = CostModel::calibrated();
        c.poll_cycle_scale = 10_001;
        assert_eq!(c.validate(), Err(ConfigError::PollScaleOutOfRange(10_001)));
        c.poll_cycle_scale = 10_000;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn config_error_display_is_descriptive() {
        assert!(ConfigError::ZeroTicketedWorkers
            .to_string()
            .contains("at least one worker"));
        assert!(ConfigError::NegativeCost("demux")
            .to_string()
            .contains("demux"));
    }

    #[test]
    fn scaled_cycle_applies_percentage() {
        let mut c = CostModel::calibrated();
        c.poll_cycle_scale = 50;
        assert_eq!(
            c.scaled_cycle(VirtualDuration::from_micros(10)),
            VirtualDuration::from_micros(5)
        );
    }
}
