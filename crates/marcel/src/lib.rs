//! # marcel — deterministic virtual-time thread kernel
//!
//! Reproduction of the execution substrate of MPICH/Madeleine (Aumage,
//! Mercier, Namyst — INRIA RR-4016): the **Marcel** user-level thread
//! library and its cooperation with the Madeleine communication library's
//! polling loops, re-cast as a *deterministic virtual-time simulator* so
//! the paper's experiments can run without 2001-era NICs.
//!
//! Highlights:
//!
//! * [`Kernel`] — spawn simulated threads, run to completion, collect a
//!   deterministic trace.
//! * [`thread`] — ambient operations (`advance`, `now`, `spawn`, `sleep`,
//!   `yield_now`) on the current simulated thread.
//! * [`sync`] — semaphores, mutexes, condvars, one-shot slots, blocking
//!   queues; all blocking happens in virtual time.
//! * [`poll`] — the Marcel/Madeleine factorized-polling model: message
//!   detection delay equals one polling-loop cycle (sum of the attached
//!   sources' poll costs), which is what makes the paper's multi-protocol
//!   overhead experiment (Fig. 9) reproducible.
//! * [`CostModel`] — per-primitive virtual costs, calibrated so that the
//!   `ch_mad` "message handling" overhead emerges at the magnitude the
//!   paper reports (≈7 µs).
//! * [`obs`] — cross-layer observability: typed trace events, begin/end
//!   spans in virtual time, an always-on metrics registry, and a Chrome
//!   trace-event JSON exporter. Instrumentation never advances virtual
//!   time, so tracing on/off cannot change simulation results.
//!
//! ```
//! use marcel::{Kernel, CostModel, VirtualDuration};
//!
//! let kernel = Kernel::new(CostModel::calibrated());
//! let h = kernel.spawn("worker", || {
//!     marcel::advance(VirtualDuration::from_micros(10));
//!     marcel::now()
//! });
//! kernel.run().unwrap();
//! assert_eq!(h.join_outcome().unwrap().as_micros_f64(), 10.0);
//! ```

pub mod cost;
pub mod journal;
pub mod kernel;
pub mod obs;
pub mod poll;
pub mod replay;
pub mod rng;
pub mod sync;
pub mod thread;
pub mod time;

pub use cost::{ConfigError, CostModel, ExecPolicy, PollPolicy};
pub use journal::{
    bisect, fnv1a64, read_journal, read_segments, scan, segment_path, BisectOutcome, Divergence,
    FileSink, JournalError, JournalSink, JournalWriter, MemSink, Record, RunEndData, ScanResult,
    SnapshotData, Tail, ThreadSnap,
};
pub use kernel::{ExecStats, Kernel, ProcId, SimError, TraceEvent};
pub use obs::{
    chrome_trace_json, chrome_trace_json_with_counters, validate_spans, ActiveSpan, CounterSample,
    Event, HistSnapshot, Layer, Metrics, MetricsSnapshot, SpanKind, ThreadMeta,
};
pub use poll::{PollSource, Polled};
pub use replay::{
    layer_from_name, EventFilter, JournalIndex, LegSpan, MatchedEvent, ReplayState, Seek,
    SnapPoint, ThreadCursor,
};
pub use sync::{
    OneShot, Queue, Semaphore, SimBarrier, SimCondvar, SimMutex, SimMutexGuard, SimRwLock,
};
pub use thread::{
    advance, advance_to, in_simulation, name, now, sleep, sleep_until, spawn, step_seed, yield_now,
    JoinHandle,
};
pub use time::{VirtualDuration, VirtualTime};
