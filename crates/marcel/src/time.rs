//! Virtual time representation.
//!
//! The whole MPICH/Madeleine reproduction runs on a *virtual* clock: every
//! cost in the system (wire latency, per-byte transmission, a semaphore
//! operation, one polling-loop iteration, ...) is expressed as a
//! [`VirtualDuration`] and accumulated on per-thread [`VirtualTime`] clocks
//! by the `marcel` kernel. Nanosecond resolution comfortably covers the
//! paper's measurement range (microseconds to seconds) without overflow:
//! a `u64` of nanoseconds spans ~584 years.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    /// The beginning of the simulation.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (fractional) since the start of the run.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds (fractional) since the start of the run.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero rather than
    /// panicking, because receivers may legitimately observe message
    /// timestamps from "their past" (the message arrived while they were
    /// busy).
    #[inline]
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }
}

impl VirtualDuration {
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Build a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualDuration(ns)
    }

    /// Build a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us * 1_000)
    }

    /// Build a duration from fractional microseconds (handy for the
    /// calibration tables, which the paper quotes in µs).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        VirtualDuration((us * 1_000.0).round() as u64)
    }

    /// Build a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000_000)
    }

    /// Build a duration from fractional seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        VirtualDuration((s * 1_000_000_000.0).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    /// Panics on time going backwards; use [`VirtualTime::saturating_since`]
    /// when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time subtraction underflow"),
        )
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 * rhs)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> Self {
        iter.fold(VirtualDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(VirtualDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(VirtualDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(VirtualDuration::from_micros_f64(4.4).as_nanos(), 4_400);
        assert_eq!(VirtualDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::ZERO + VirtualDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let d = (t + VirtualDuration::from_micros(5)) - t;
        assert_eq!(d, VirtualDuration::from_micros(5));
        assert_eq!(
            VirtualDuration::from_micros(3) * 4,
            VirtualDuration::from_micros(12)
        );
        assert_eq!(
            VirtualDuration::from_micros(12) / 4,
            VirtualDuration::from_micros(3)
        );
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let early = VirtualTime(100);
        let late = VirtualTime(300);
        assert_eq!(late.saturating_since(early).as_nanos(), 200);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
    }

    #[test]
    fn ordering() {
        assert!(VirtualTime(1) < VirtualTime(2));
        assert!(VirtualDuration::from_micros(1) < VirtualDuration::from_micros(2));
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualDuration = (1..=4).map(VirtualDuration::from_micros).sum();
        assert_eq!(total, VirtualDuration::from_micros(10));
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(format!("{}", VirtualDuration::from_nanos(1500)), "1.500us");
        assert_eq!(format!("{}", VirtualTime(2_000)), "2.000us");
    }
}
