//! Simulated thread operations: spawn, join, advance, yield, sleep.
//!
//! Functions in this module operate on the *current* simulated thread via
//! a thread-local set up by the spawn wrapper, mirroring how Marcel (and
//! `std::thread`) expose ambient operations.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::kernel::{OpOutcome, ParkSlot, Sched, Shared, TState, ThreadSlot, Tid};
use crate::time::{VirtualDuration, VirtualTime};

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Shared>, Tid)>> = const { RefCell::new(None) };
}

/// The current simulated thread's kernel handle and id.
///
/// Panics when called from outside a simulated thread.
pub(crate) fn current() -> (Arc<Shared>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("marcel operation outside a simulated thread")
    })
}

/// Like [`current`], but `None` outside a simulated thread — the
/// observability layer uses this so instrumentation degrades to a
/// no-op in unit tests that run outside a kernel.
pub(crate) fn try_current() -> Option<(Arc<Shared>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the calling OS thread is a simulated thread.
pub fn in_simulation() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Handle to a spawned simulated thread. Joining from inside the
/// simulation blocks in *virtual* time until the target finishes.
pub struct JoinHandle<T> {
    tid: Tid,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Simulated thread id of the target.
    pub fn tid(&self) -> usize {
        self.tid.0
    }

    /// Block the *current simulated thread* until the target finishes and
    /// return its result. Must be called from inside the simulation.
    pub fn join(self) -> T {
        let (shared, me) = current();
        let target = self.tid;
        shared.op(
            me,
            move |sched, _shared, t| {
                if matches!(sched.threads[target.0].state, TState::Done) {
                    let end = sched.threads[target.0].vtime;
                    let slot = &mut sched.threads[t.0];
                    if end > slot.vtime {
                        slot.vtime = end;
                    }
                    OpOutcome::Done(())
                } else {
                    sched.threads[target.0].joiners.push(t);
                    OpOutcome::Blocked(TState::BlockedJoin(target))
                }
            },
            |_, _, _| (),
        );
        self.slot
            .lock()
            .take()
            .expect("joined thread finished without a result")
    }

    /// Retrieve the result *after* `Kernel::run` returned, from outside
    /// the simulation. Returns `None` when the thread never completed
    /// (deadlock/abort).
    pub fn join_outcome(self) -> Option<T> {
        self.slot.lock().take()
    }
}

/// Push a fresh thread slot into the scheduler (shared by host spawn and
/// the in-simulation spawn op; under `Ticketed` the latter runs this at
/// commit time, which is what makes tid assignment deterministic).
pub(crate) fn alloc_slot(sched: &mut Sched, name: &str, start: VirtualTime, domain: u32) -> Tid {
    let tid = Tid(sched.threads.len());
    sched.threads.push(ThreadSlot {
        name: name.to_string(),
        vtime: start,
        state: TState::Ready,
        joiners: Vec::new(),
        wake_payload: None,
        domain,
        ops: 0,
        op_result: None,
        in_flight: false,
        wake_hook: None,
        park: Arc::new(ParkSlot {
            resume: AtomicBool::new(false),
            cv: Condvar::new(),
        }),
    });
    sched.live += 1;
    sched.record(tid, || crate::obs::Event::Spawn);
    tid
}

/// Create the backing OS thread for an already-allocated slot. Safe to
/// call after the scheduler has already dispatched `tid` (ticketed): the
/// park slot's resume flag is level-triggered, so the dispatch is not
/// lost.
pub(crate) fn launch_os<T, F>(shared: &Arc<Shared>, tid: Tid, name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let os_shared = shared.clone();
    let os_slot = slot.clone();
    std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((os_shared.clone(), tid)));
            {
                let sched = os_shared.state.lock();
                if os_shared.ticketed() {
                    drop(os_shared.wait_for_commit(sched, tid));
                } else {
                    let mut sched = sched;
                    os_shared.wait_until_running(&mut sched, tid);
                }
            }
            let result = catch_unwind(AssertUnwindSafe(f));
            let panic_msg = match result {
                Ok(v) => {
                    *os_slot.lock() = Some(v);
                    None
                }
                Err(payload) => Some(panic_to_string(payload.as_ref(), tid)),
            };
            os_shared.thread_exit(tid, panic_msg);
        })
        .expect("failed to spawn backing OS thread");
    JoinHandle { tid, slot }
}

pub(crate) fn panic_to_string(payload: &(dyn std::any::Any + Send), tid: Tid) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    format!("thread #{}: {msg}", tid.0)
}

/// Spawn a simulated thread from inside the simulation. The parent is
/// charged the spawn cost; the child starts at the parent's (charged)
/// clock, modelling Marcel's cheap user-level thread creation.
pub fn spawn<T, F>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (shared, me) = current();
    let name = name.into();
    if shared.ticketed() {
        // One commit-ordered op: charge the parent and allocate the
        // child's slot. The OS thread is created after the op returns;
        // the level-triggered park slot tolerates the child being
        // dispatched before its OS thread exists.
        let op_name = name.clone();
        let tid = shared.op(
            me,
            move |sched, sh, t| {
                let spawn_cost = sh.cost.spawn;
                let slot = &mut sched.threads[t.0];
                slot.vtime += spawn_cost;
                let start = slot.vtime;
                let domain = slot.domain;
                OpOutcome::Done(alloc_slot(sched, &op_name, start, domain))
            },
            |_, _, _| unreachable!("spawn op never blocks"),
        );
        return launch_os(&shared, tid, &name, f);
    }
    // Seed: the OS thread must exist before the reschedule, because the
    // scheduler could pick the child immediately.
    let tid = {
        let mut sched = shared.state.lock();
        sched.threads[me.0].ops += 1;
        let spawn_cost = shared.cost.spawn;
        let slot = &mut sched.threads[me.0];
        slot.vtime += spawn_cost;
        let start = slot.vtime;
        let domain = slot.domain;
        alloc_slot(&mut sched, &name, start, domain)
    };
    let handle = launch_os(&shared, tid, &name, f);
    // The child is now Ready; re-evaluate scheduling (the child has the
    // same vtime but a larger tid, so the parent keeps running — the
    // reschedule keeps the invariant that every kernel op re-dispatches).
    let mut sched = shared.state.lock();
    shared.reschedule(&mut sched, me);
    handle
}

/// Current thread's virtual clock.
pub fn now() -> VirtualTime {
    let (shared, me) = current();
    let sched = shared.state.lock();
    sched.threads[me.0].vtime
}

/// Charge `d` of computation/occupancy to the current thread's clock.
pub fn advance(d: VirtualDuration) {
    let (shared, me) = current();
    shared.op(
        me,
        move |sched, _, t| {
            sched.threads[t.0].vtime += d;
            OpOutcome::Done(())
        },
        |_, _, _| (),
    );
}

/// Yield the processor (charges the yield cost).
pub fn yield_now() {
    let (shared, me) = current();
    shared.op(
        me,
        |sched, sh, t| {
            sched.threads[t.0].vtime += sh.cost.yield_op;
            OpOutcome::Done(())
        },
        |_, _, _| (),
    );
}

/// Sleep for `d` of virtual time.
pub fn sleep(d: VirtualDuration) {
    let (shared, me) = current();
    shared.op(
        me,
        move |sched, _, t| {
            let wake = sched.threads[t.0].vtime + d;
            OpOutcome::Blocked(TState::Sleeping(wake))
        },
        |_, _, _| (),
    );
}

/// Sleep until the absolute virtual time `t` (no-op if already past).
pub fn sleep_until(t: VirtualTime) {
    let (shared, me) = current();
    shared.op(
        me,
        move |sched, _, tr| {
            if sched.threads[tr.0].vtime >= t {
                OpOutcome::Done(())
            } else {
                OpOutcome::Blocked(TState::Sleeping(t))
            }
        },
        |_, _, _| (),
    );
}

/// Name of the current simulated thread (for diagnostics).
pub fn name() -> String {
    let (shared, me) = current();
    let sched = shared.state.lock();
    sched.threads[me.0].name.clone()
}

/// Escape hatch used by higher layers to attribute an externally computed
/// absolute timestamp (e.g. "this receive completed at wire time T") to
/// the current thread: sets the clock to `max(now, t)`.
pub fn advance_to(t: VirtualTime) {
    let (shared, me) = current();
    shared.op(
        me,
        move |sched, _, tr| {
            if t > sched.threads[tr.0].vtime {
                sched.threads[tr.0].vtime = t;
            }
            OpOutcome::Done(())
        },
        |_, _, _| (),
    );
}

/// The current thread's deterministic per-step RNG seed (the sequencer
/// role of the ticketed engine, but available under every policy): a
/// [`crate::rng`] mix of the step identity `(vtime, tid, op ordinal)`.
/// All three inputs are committed state, so the value is bit-identical
/// between `ExecPolicy::Seed` and `ExecPolicy::Ticketed(n)` for any `n`.
pub fn step_seed() -> u64 {
    let (shared, me) = current();
    let sched = shared.state.lock();
    let slot = &sched.threads[me.0];
    crate::rng::step_seed(slot.vtime.as_nanos(), me.0 as u64, slot.ops)
}

#[allow(dead_code)]
pub(crate) fn with_sched<R>(f: impl FnOnce(&mut Sched, &Shared, Tid) -> R) -> R {
    let (shared, me) = current();
    let mut sched = shared.state.lock();
    f(&mut sched, &shared, me)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::kernel::Kernel;

    #[test]
    fn join_synchronizes_clocks() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("parent", || {
            let child = spawn("child", || {
                advance(VirtualDuration::from_micros(42));
            });
            child.join();
            now()
        });
        k.run().unwrap();
        // Parent joined a child that finished at 42us, so its clock must
        // be at least 42us.
        assert!(h.join_outcome().unwrap() >= VirtualTime(42_000));
    }

    #[test]
    fn join_after_completion_takes_max_clock() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("parent", || {
            let child = spawn("child", || advance(VirtualDuration::from_micros(5)));
            advance(VirtualDuration::from_micros(100));
            child.join();
            now()
        });
        k.run().unwrap();
        // Parent was already past the child's end; join must not move the
        // parent's clock backwards.
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(100_000));
    }

    #[test]
    fn spawn_charges_parent() {
        let mut cost = CostModel::free();
        cost.spawn = VirtualDuration::from_micros(3);
        let k = Kernel::new(cost);
        let h = k.spawn("parent", || {
            let c = spawn("child", || {});
            let t = now();
            c.join();
            t
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(3_000));
    }

    #[test]
    fn child_starts_at_parent_clock() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("parent", || {
            advance(VirtualDuration::from_micros(10));
            let c = spawn("child", now);
            c.join()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(10_000));
    }

    #[test]
    fn sleep_until_past_time_is_noop() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("t", || {
            advance(VirtualDuration::from_micros(50));
            sleep_until(VirtualTime(10_000));
            now()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), VirtualTime(50_000));
    }

    #[test]
    fn advance_to_moves_forward_only() {
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("t", || {
            advance(VirtualDuration::from_micros(20));
            advance_to(VirtualTime(5_000));
            let a = now();
            advance_to(VirtualTime(60_000));
            (a, now())
        });
        k.run().unwrap();
        let (a, b) = h.join_outcome().unwrap();
        assert_eq!(a, VirtualTime(20_000));
        assert_eq!(b, VirtualTime(60_000));
    }

    #[test]
    fn nested_spawns() {
        let k = Kernel::new(CostModel::calibrated());
        let h = k.spawn("root", || {
            let mut handles = Vec::new();
            for i in 0..4 {
                handles.push(spawn(format!("w{i}"), move || {
                    advance(VirtualDuration::from_micros(i * 10));
                    i
                }));
            }
            handles.into_iter().map(|h| h.join()).sum::<u64>()
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), 6);
    }

    #[test]
    fn in_simulation_flag() {
        assert!(!in_simulation());
        let k = Kernel::new(CostModel::free());
        let h = k.spawn("t", in_simulation);
        k.run().unwrap();
        assert!(h.join_outcome().unwrap());
    }
}
