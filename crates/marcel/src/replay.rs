//! Time-travel over the durable journal: seek, state reconstruction,
//! window queries and window export — the read side of
//! [`crate::journal`].
//!
//! PR 7 made campaigns durable; this module makes the recorded history
//! *interrogable*. A [`JournalIndex`] is built once per journal (one
//! linear scan) and then answers everything in sub-linear time:
//!
//! * [`JournalIndex::seek`] — the last leg-boundary snapshot at or
//!   before an event index, found by binary search over the snapshot
//!   list (`O(log snapshots)` probes, reported for the CI gate).
//! * [`JournalIndex::state_at`] — the reconstructed [`ReplayState`] at
//!   any event index: the seeked snapshot plus a fold of the event
//!   records after it. Because the journal bytes are deterministic and
//!   execution-policy-free, a state reconstructed from a *re-executed*
//!   journal (see `mpich::replay`) is bit-identical to one folded from
//!   the uninterrupted original.
//! * [`JournalIndex::query`] / [`JournalIndex::aggregate`] — filter the
//!   event stream by layer / kind / rank / channel / tid / leg /
//!   virtual-time window, either as a record list or aggregated into a
//!   fresh metrics registry (the same counters / gauges / span
//!   histograms PR 3 computes for whole runs, now for any window).
//! * [`JournalIndex::window_trace`] + [`JournalIndex::window_counters`]
//!   — any event-index window as a `TraceEvent` slice plus `"ph":"C"`
//!   counter samples at leg boundaries, ready for
//!   [`crate::obs::chrome_trace_json_with_counters`]: a 10⁶-event
//!   campaign slices into a loadable Perfetto trace.
//!
//! The state model is honest about what a journal can know: simulated
//! threads are real OS threads, so there is no mid-step memory image to
//! restore. A [`ReplayState`] is therefore the *observable* world at a
//! point — the last boundary snapshot (kernel thread clocks, matching
//! stores, reliability windows, RNG chain, fault cursor) plus the typed
//! events since it, folded into per-thread cursors, per-layer counts
//! and a running digest. Two runs agree at index `i` iff their
//! `ReplayState`s at `i` are equal — the property `tests/replay.rs`
//! checks across the fault matrix and both execution policies.

use std::collections::BTreeMap;

use crate::journal::{
    fnv1a64, fnv1a64_fold, scan, JournalError, Record, RunEndData, ScanResult, SnapshotData,
};
use crate::kernel::TraceEvent;
use crate::obs::{CounterSample, Event, Layer, Metrics, MetricsSnapshot, ThreadMeta};
use crate::time::VirtualTime;

/// Names of the [`RunEndData::counters`] slots, in journal order (the
/// order `mpich::journal::run_leg` writes them).
pub const RUN_END_COUNTER_NAMES: [&str; 7] = [
    "retransmits",
    "drops",
    "duplicates",
    "deferrals",
    "dead_pairs",
    "failovers",
    "rndv_reissues",
];

/// One snapshot record's position in the index.
#[derive(Clone, Copy, Debug)]
pub struct SnapPoint {
    /// Index into the scan's record list.
    pub record_index: usize,
    /// Global event count preceding this snapshot.
    pub events_before: u64,
}

/// One campaign leg's extent in the record / event streams.
#[derive(Clone, Copy, Debug)]
pub struct LegSpan {
    pub leg: u64,
    /// Record index of the leg's `RunBegin`.
    pub begin_record: usize,
    /// Global index of the leg's first event.
    pub first_event: u64,
    /// Events the leg contributed.
    pub events: u64,
    /// Whether the leg's `RunEnd` made it into the journal (false for
    /// the torn trailing leg of a crashed run).
    pub complete: bool,
}

/// Result of [`JournalIndex::seek`].
#[derive(Clone, Copy, Debug)]
pub struct Seek {
    /// Index into [`JournalIndex::snapshots`] of the last snapshot at
    /// or before the event index (`None` before the first snapshot).
    pub snapshot: Option<usize>,
    /// Binary-search comparisons performed — `O(log snapshots)` by
    /// construction, asserted by the CI gate.
    pub probes: usize,
}

/// Queryable index over one scanned journal.
pub struct JournalIndex {
    /// The underlying scan (records + torn-tail state).
    pub scan: ScanResult,
    /// Snapshot records, in order.
    pub snapshots: Vec<SnapPoint>,
    /// Leg extents, in order.
    pub legs: Vec<LegSpan>,
    /// Record index of each event (global event index → record index).
    event_records: Vec<usize>,
}

impl JournalIndex {
    /// Scan `bytes` and build the index (one linear pass; every
    /// subsequent operation is sub-linear or proportional to its
    /// window).
    pub fn build(bytes: &[u8]) -> Result<JournalIndex, JournalError> {
        Ok(Self::from_scan(scan(bytes)?))
    }

    /// Build from an existing scan.
    pub fn from_scan(scan: ScanResult) -> JournalIndex {
        let mut snapshots = Vec::new();
        let mut legs: Vec<LegSpan> = Vec::new();
        let mut event_records = Vec::new();
        for (i, r) in scan.records.iter().enumerate() {
            match &r.record {
                Record::Event { .. } => event_records.push(i),
                Record::Snapshot(_) => snapshots.push(SnapPoint {
                    record_index: i,
                    events_before: event_records.len() as u64,
                }),
                Record::RunBegin { leg, .. } => legs.push(LegSpan {
                    leg: *leg,
                    begin_record: i,
                    first_event: event_records.len() as u64,
                    events: 0,
                    complete: false,
                }),
                Record::RunEnd(e) => {
                    if let Some(span) = legs.last_mut() {
                        if span.leg == e.leg {
                            span.events = event_records.len() as u64 - span.first_event;
                            span.complete = true;
                        }
                    }
                }
                Record::Campaign { .. } => {}
            }
        }
        // A torn trailing leg: count the events it managed to journal.
        if let Some(span) = legs.last_mut() {
            if !span.complete {
                span.events = event_records.len() as u64 - span.first_event;
            }
        }
        JournalIndex {
            scan,
            snapshots,
            legs,
            event_records,
        }
    }

    /// Total journaled events.
    pub fn events(&self) -> u64 {
        self.event_records.len() as u64
    }

    /// The journal's `Campaign` record, if present (label, master seed,
    /// legs, snapshot_every).
    pub fn campaign(&self) -> Option<(&str, u64, u64, u64)> {
        self.scan.records.first().and_then(|r| match &r.record {
            Record::Campaign {
                label,
                master_seed,
                legs,
                snapshot_every,
            } => Some((label.as_str(), *master_seed, *legs, *snapshot_every)),
            _ => None,
        })
    }

    /// Binary-search the snapshot list for the last snapshot at or
    /// before `event_index`. `O(log snapshots)` comparisons, counted in
    /// the result.
    pub fn seek(&self, event_index: u64) -> Seek {
        let mut probes = 0usize;
        // Greatest i with snapshots[i].events_before <= event_index.
        let (mut lo, mut hi) = (0usize, self.snapshots.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            if self.snapshots[mid].events_before <= event_index {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Seek {
            snapshot: lo.checked_sub(1),
            probes,
        }
    }

    /// Number of complete legs whose journal records must exist for
    /// event index `event_index` to be reachable — what a re-execution
    /// has to run before the state can be folded.
    pub fn legs_needed(&self, event_index: u64) -> u64 {
        for span in &self.legs {
            if span.first_event + span.events >= event_index {
                return span.leg + 1;
            }
        }
        self.legs.last().map_or(0, |s| s.leg + 1)
    }

    /// Reconstruct the observable world state after `event_index`
    /// events: seek to the last snapshot at or before the point, then
    /// fold the records after it. Errors if `event_index` exceeds the
    /// journaled event count.
    pub fn state_at(&self, event_index: u64) -> Result<ReplayState, String> {
        if event_index > self.events() {
            return Err(format!(
                "event index {event_index} out of range: journal holds {} events",
                self.events()
            ));
        }
        let seek = self.seek(event_index);
        let (mut state, start_record) = match seek.snapshot {
            Some(si) => {
                let sp = &self.snapshots[si];
                let snap = match &self.scan.records[sp.record_index].record {
                    Record::Snapshot(s) => s.clone(),
                    _ => unreachable!("snapshot index points at a non-snapshot"),
                };
                let state = ReplayState {
                    event_index: sp.events_before,
                    legs_done: snap.legs_done,
                    current_leg: None,
                    vtime_ns: snap.end_ns,
                    base: Some(snap),
                    threads: Vec::new(),
                    events_digest: 0xcbf2_9ce4_8422_2325,
                    events_since_base: 0,
                    layer_counts: BTreeMap::new(),
                    last_run_end: None,
                };
                (state, sp.record_index + 1)
            }
            None => (
                ReplayState {
                    event_index: 0,
                    legs_done: 0,
                    current_leg: None,
                    vtime_ns: 0,
                    base: None,
                    threads: Vec::new(),
                    events_digest: 0xcbf2_9ce4_8422_2325,
                    events_since_base: 0,
                    layer_counts: BTreeMap::new(),
                    last_run_end: None,
                },
                0,
            ),
        };

        let needed = event_index - state.event_index;
        let mut cursors: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut folded = 0u64;
        for r in &self.scan.records[start_record..] {
            match &r.record {
                Record::Event {
                    time_ns,
                    tid,
                    event,
                } => {
                    if folded == needed {
                        break;
                    }
                    folded += 1;
                    state.events_digest =
                        fnv1a64_fold(state.events_digest, &r.record.encode_payload());
                    state.vtime_ns = state.vtime_ns.max(*time_ns);
                    let c = cursors.entry(*tid).or_insert((0, 0));
                    c.0 = c.0.max(*time_ns);
                    c.1 += 1;
                    *state
                        .layer_counts
                        .entry(format!("{}/{}", event.layer().name(), event.kind_name()))
                        .or_insert(0) += 1;
                }
                Record::RunBegin { leg, .. } => {
                    if folded == needed {
                        break;
                    }
                    state.current_leg = Some(*leg);
                    cursors.clear();
                }
                Record::RunEnd(e) => {
                    // A boundary record rides along with the last event
                    // of its leg: state at a leg boundary reflects the
                    // completed leg.
                    state.legs_done = e.leg + 1;
                    state.current_leg = None;
                    state.vtime_ns = state.vtime_ns.max(e.end_ns);
                    state.last_run_end = Some(e.clone());
                }
                Record::Snapshot(_) => break,
                Record::Campaign { .. } => {}
            }
        }
        state.event_index = event_index;
        state.events_since_base = folded;
        state.threads = cursors
            .into_iter()
            .map(|(tid, (vtime_ns, events))| ThreadCursor {
                tid,
                vtime_ns,
                events,
            })
            .collect();
        Ok(state)
    }

    /// All events matching `filter`, with their positions.
    pub fn query(&self, filter: &EventFilter) -> Vec<MatchedEvent<'_>> {
        let mut out = Vec::new();
        let mut leg = None;
        let mut event_index = 0u64;
        for (record_index, r) in self.scan.records.iter().enumerate() {
            match &r.record {
                Record::RunBegin { leg: l, .. } => leg = Some(*l),
                Record::RunEnd(_) => leg = None,
                Record::Event {
                    time_ns,
                    tid,
                    event,
                } => {
                    let idx = event_index;
                    event_index += 1;
                    if filter.matches(*time_ns, *tid, leg, idx, event) {
                        out.push(MatchedEvent {
                            event_index: idx,
                            record_index,
                            leg: leg.unwrap_or(u64::MAX),
                            time_ns: *time_ns,
                            tid: *tid,
                            event,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Aggregate the events matching `filter` into a fresh metrics
    /// registry: `events/<layer>/<kind>` counters, `bytes/<layer>`
    /// byte counters, queue-depth high-water gauges, and the PR-3
    /// `span/<kind>/<label>` virtual-time histograms recomputed from
    /// the span pairs *inside the window* (a span whose begin falls
    /// outside is ignored).
    pub fn aggregate(&self, filter: &EventFilter) -> MetricsSnapshot {
        let m = Metrics::new();
        let mut open: BTreeMap<u64, (crate::obs::SpanKind, &'static str, u64)> = BTreeMap::new();
        for e in self.query(filter) {
            let layer = e.event.layer().name();
            m.counter_add(&format!("events/{layer}/{}", e.event.kind_name()), 1);
            if let Some(b) = e.event.bytes() {
                m.counter_add(&format!("bytes/{layer}"), b as u64);
            }
            match e.event {
                Event::RecvPosted { depth, .. } => m.gauge_max("depth/posted", *depth as u64),
                Event::UnexpectedQueued { depth, .. } => {
                    m.gauge_max("depth/unexpected", *depth as u64)
                }
                Event::SpanBegin { id, kind, label } => {
                    open.insert(*id, (*kind, label, e.time_ns));
                }
                Event::SpanEnd { id, .. } => {
                    if let Some((kind, label, begin)) = open.remove(id) {
                        m.observe_ns(
                            &format!("span/{}/{label}", kind.name()),
                            e.time_ns.saturating_sub(begin),
                        );
                    }
                }
                _ => {}
            }
        }
        m.snapshot()
    }

    /// The events of the half-open window `[from_event, to_event)` as a
    /// `TraceEvent` slice — the Chrome exporter's input.
    pub fn window_trace(&self, from_event: u64, to_event: u64) -> Vec<TraceEvent> {
        let from = (from_event as usize).min(self.event_records.len());
        let to = (to_event as usize).min(self.event_records.len());
        self.event_records[from..to]
            .iter()
            .map(|&ri| match &self.scan.records[ri].record {
                Record::Event {
                    time_ns,
                    tid,
                    event,
                } => TraceEvent {
                    time: VirtualTime(*time_ns),
                    tid: *tid as usize,
                    what: event.clone(),
                },
                _ => unreachable!("event_records points at a non-event"),
            })
            .collect()
    }

    /// Counter samples for the window `[from_event, to_event)`: one
    /// `"faults"` sample per `RunEnd` and one `"campaign"` sample per
    /// snapshot falling inside the window's record range — rendered by
    /// the Chrome exporter as `"ph":"C"` gauge tracks.
    pub fn window_counters(&self, from_event: u64, to_event: u64) -> Vec<CounterSample> {
        let from = (from_event as usize).min(self.event_records.len());
        let to = (to_event as usize).min(self.event_records.len());
        let lo = from
            .checked_sub(1)
            .map_or(0, |i| self.event_records[i] + 1)
            .min(self.scan.records.len());
        let lo = if from == 0 { 0 } else { lo };
        let hi = if to == 0 {
            0
        } else if to == self.event_records.len() {
            self.scan.records.len()
        } else {
            self.event_records[to]
        };
        let mut out = Vec::new();
        for r in &self.scan.records[lo..hi.max(lo)] {
            match &r.record {
                Record::RunEnd(e) => out.push(CounterSample {
                    ts: VirtualTime(e.end_ns),
                    pid: 0,
                    name: "faults".to_string(),
                    values: RUN_END_COUNTER_NAMES
                        .iter()
                        .zip(&e.counters)
                        .map(|(n, v)| (n.to_string(), *v))
                        .collect(),
                }),
                Record::Snapshot(s) => out.push(CounterSample {
                    ts: VirtualTime(s.end_ns),
                    pid: 0,
                    name: "campaign".to_string(),
                    values: vec![
                        ("legs_done".to_string(), s.legs_done),
                        ("fault_cursor".to_string(), s.fault_cursor),
                    ],
                }),
                _ => {}
            }
        }
        out
    }

    /// Thread metadata for the Chrome exporter: names from the latest
    /// snapshot's per-thread state (tids are stable across legs of a
    /// campaign with a fixed world shape), generic `tid<N>` labels
    /// beyond it. All threads land in virtual process 0 — the journal
    /// does not record the node placement.
    pub fn thread_metas(&self) -> Vec<ThreadMeta> {
        let names: Vec<String> = self
            .snapshots
            .last()
            .and_then(|sp| match &self.scan.records[sp.record_index].record {
                Record::Snapshot(s) => Some(s.threads.iter().map(|t| t.name.clone()).collect()),
                _ => None,
            })
            .unwrap_or_default();
        let max_tid = self
            .scan
            .records
            .iter()
            .filter_map(|r| match &r.record {
                Record::Event { tid, .. } => Some(*tid as usize),
                _ => None,
            })
            .max()
            .map_or(0, |t| t + 1);
        (0..max_tid.max(names.len()))
            .map(|tid| ThreadMeta {
                name: names
                    .get(tid)
                    .cloned()
                    .unwrap_or_else(|| format!("tid{tid}")),
                pid: 0,
            })
            .collect()
    }
}

/// Per-thread fold of the events since the base snapshot: the thread's
/// last journaled virtual time and its event count within the current
/// leg (cursors reset at `RunBegin` — each leg is a fresh world).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadCursor {
    pub tid: u64,
    pub vtime_ns: u64,
    pub events: u64,
}

/// The observable world at one event index: the last leg-boundary
/// snapshot plus a fold of the typed events after it. Equality is the
/// replay-determinism contract; [`ReplayState::digest`] is the compact
/// fingerprint the `jrnl` inspector prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayState {
    /// The reconstruction point (events folded from journal start).
    pub event_index: u64,
    /// Complete legs at this point.
    pub legs_done: u64,
    /// The in-flight leg, if the point is inside one.
    pub current_leg: Option<u64>,
    /// Maximum virtual time observed up to this point.
    pub vtime_ns: u64,
    /// The seeked base snapshot (kernel threads, RNG chain, fault
    /// cursor, per-layer sections), if one precedes the point.
    pub base: Option<SnapshotData>,
    /// Per-thread cursors of the current leg, in tid order.
    pub threads: Vec<ThreadCursor>,
    /// FNV-1a fold over the encoded event records since the base.
    pub events_digest: u64,
    /// Events folded since the base snapshot.
    pub events_since_base: u64,
    /// `layer/kind` event counts since the base, sorted.
    pub layer_counts: BTreeMap<String, u64>,
    /// The most recent completed leg's `RunEnd` since the base.
    pub last_run_end: Option<RunEndData>,
}

impl ReplayState {
    /// Compact fingerprint of the whole state (base snapshot bytes
    /// included).
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(256);
        crate::journal::wire::put_u64(&mut bytes, self.event_index);
        crate::journal::wire::put_u64(&mut bytes, self.legs_done);
        crate::journal::wire::put_u64(&mut bytes, self.current_leg.unwrap_or(u64::MAX));
        crate::journal::wire::put_u64(&mut bytes, self.vtime_ns);
        crate::journal::wire::put_u64(&mut bytes, self.events_digest);
        crate::journal::wire::put_u64(&mut bytes, self.events_since_base);
        if let Some(base) = &self.base {
            bytes.extend_from_slice(&Record::Snapshot(base.clone()).encode_payload());
        }
        for t in &self.threads {
            crate::journal::wire::put_u64(&mut bytes, t.tid);
            crate::journal::wire::put_u64(&mut bytes, t.vtime_ns);
            crate::journal::wire::put_u64(&mut bytes, t.events);
        }
        for (k, v) in &self.layer_counts {
            bytes.extend_from_slice(k.as_bytes());
            crate::journal::wire::put_u64(&mut bytes, *v);
        }
        if let Some(e) = &self.last_run_end {
            bytes.extend_from_slice(&Record::RunEnd(e.clone()).encode_payload());
        }
        fnv1a64(&bytes)
    }
}

/// One query hit: the event plus its coordinates in the journal.
#[derive(Clone, Debug)]
pub struct MatchedEvent<'a> {
    pub event_index: u64,
    pub record_index: usize,
    /// Leg the event belongs to (`u64::MAX` if outside any leg — a
    /// malformed journal).
    pub leg: u64,
    pub time_ns: u64,
    pub tid: u64,
    pub event: &'a Event,
}

/// Event-stream filter: every populated field must match. Kind and
/// channel match exactly against [`Event::kind_name`] /
/// [`Event::channel`]; the rank filter matches either endpoint tag.
#[derive(Clone, Debug, Default)]
pub struct EventFilter {
    pub layer: Option<Layer>,
    pub kind: Option<String>,
    pub rank: Option<usize>,
    pub channel: Option<String>,
    pub tid: Option<u64>,
    pub leg: Option<u64>,
    /// Inclusive virtual-time window start (ns).
    pub min_ns: Option<u64>,
    /// Inclusive virtual-time window end (ns).
    pub max_ns: Option<u64>,
    /// Inclusive event-index window.
    pub min_index: Option<u64>,
    pub max_index: Option<u64>,
}

impl EventFilter {
    fn matches(
        &self,
        time_ns: u64,
        tid: u64,
        leg: Option<u64>,
        event_index: u64,
        event: &Event,
    ) -> bool {
        if self.layer.is_some_and(|l| event.layer() != l) {
            return false;
        }
        if self.kind.as_deref().is_some_and(|k| event.kind_name() != k) {
            return false;
        }
        if self
            .rank
            .is_some_and(|r| !event.rank_tags().contains(&Some(r)))
        {
            return false;
        }
        if self
            .channel
            .as_deref()
            .is_some_and(|c| event.channel() != Some(c))
        {
            return false;
        }
        if self.tid.is_some_and(|t| tid != t) {
            return false;
        }
        if self.leg.is_some_and(|l| leg != Some(l)) {
            return false;
        }
        if self.min_ns.is_some_and(|t| time_ns < t) {
            return false;
        }
        if self.max_ns.is_some_and(|t| time_ns > t) {
            return false;
        }
        if self.min_index.is_some_and(|i| event_index < i) {
            return false;
        }
        if self.max_index.is_some_and(|i| event_index > i) {
            return false;
        }
        true
    }
}

/// Parse a layer name as used by [`Layer::name`] (the `jrnl query
/// --layer` argument).
pub fn layer_from_name(name: &str) -> Option<Layer> {
    Some(match name {
        "marcel" => Layer::Marcel,
        "madeleine" => Layer::Madeleine,
        "ch_mad" => Layer::ChMad,
        "adi" => Layer::Adi,
        "coll" => Layer::Coll,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::format_witness;

    #[test]
    fn index_counts_witness_shape() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        assert_eq!(idx.events(), 23, "witness carries every event variant");
        assert_eq!(idx.snapshots.len(), 1);
        assert_eq!(idx.legs.len(), 1);
        assert!(idx.legs[0].complete);
        assert_eq!(idx.legs[0].events, 23);
        let (label, seed, legs, every) = idx.campaign().unwrap();
        assert_eq!((label, seed, legs, every), ("witness", 0xF00D, 2, 1));
    }

    #[test]
    fn seek_is_logarithmic_and_correct() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        // Before the snapshot (which sits after all 23 events).
        let s = idx.seek(0);
        assert!(s.snapshot.is_none());
        let s = idx.seek(23);
        assert_eq!(s.snapshot, Some(0));
        assert!(
            s.probes <= 1 + 1,
            "1 snapshot must need <= 1 probe, got {}",
            s.probes
        );
    }

    #[test]
    fn state_at_boundary_uses_snapshot() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        let st = idx.state_at(23).unwrap();
        assert_eq!(st.legs_done, 1);
        assert!(st.base.is_some());
        assert_eq!(st.events_since_base, 0);
        assert_eq!(st.current_leg, None);
        let mid = idx.state_at(5).unwrap();
        assert_eq!(mid.current_leg, Some(0));
        assert_eq!(mid.events_since_base, 5);
        assert!(idx.state_at(24).is_err());
    }

    #[test]
    fn query_filters_by_layer_and_kind() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        let all = idx.query(&EventFilter::default());
        assert_eq!(all.len(), 23);
        let marcel_only = idx.query(&EventFilter {
            layer: Some(Layer::Marcel),
            ..Default::default()
        });
        assert!(marcel_only.iter().all(|e| e.event.layer() == Layer::Marcel));
        assert_eq!(marcel_only.len(), 8);
        let packs = idx.query(&EventFilter {
            kind: Some("pack".to_string()),
            ..Default::default()
        });
        assert_eq!(packs.len(), 1);
        let by_rank = idx.query(&EventFilter {
            rank: Some(1),
            ..Default::default()
        });
        assert!(!by_rank.is_empty());
        assert!(by_rank
            .iter()
            .all(|e| e.event.rank_tags().contains(&Some(1))));
    }

    #[test]
    fn aggregate_rebuilds_span_histograms() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        let snap = idx.aggregate(&EventFilter::default());
        assert_eq!(snap.counter("events/marcel/spawn"), 1);
        assert!(snap.counter("bytes/madeleine") > 0);
        let h = snap.hist("span/handle/handle").expect("witness span");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn window_export_carries_counters() {
        let idx = JournalIndex::build(&format_witness()).unwrap();
        let trace = idx.window_trace(0, idx.events());
        assert_eq!(trace.len(), 23);
        let counters = idx.window_counters(0, idx.events());
        assert_eq!(counters.len(), 2, "one RunEnd + one Snapshot sample");
        let json =
            crate::obs::chrome_trace_json_with_counters(&trace, &idx.thread_metas(), &counters);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"retransmits\":"));
        assert!(json.contains("\"legs_done\":"));
    }
}
