//! The shared deterministic mixer used across the simulation stack.
//!
//! Two consumers sit on top of this module:
//!
//! * the kernel's **sequencer** (`ExecPolicy::Ticketed`), which derives a
//!   per-step seed for every committed kernel operation from the step's
//!   identity `(virtual time, thread id, per-thread op ordinal)` — see
//!   [`crate::thread::step_seed`]. Because the identity triple is a pure
//!   function of committed state, the seed stream is bit-identical
//!   between `ExecPolicy::Seed` and `ExecPolicy::Ticketed(n)` for any
//!   worker count;
//! * `simnet`'s jitter and fault injection, which hash **message
//!   identity** `(seed, seq, bytes)` (re-exported there as
//!   `simnet::rng`).
//!
//! Everything pseudo-random anywhere in the stack must be derived from
//! one of those identities, never from call order or host entropy —
//! that is the whole replay contract.

/// SplitMix64 increment; also used to spread sequence numbers before
/// seeding so that consecutive values land far apart.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: a tiny, high-quality deterministic mixer (Steele,
/// Lea, Flood — "Fast splittable pseudorandom number generators").
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN_GAMMA);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sequencer's per-step seed: a mix of the step identity. `vtime_ns`
/// is the thread's virtual clock at the step, `tid` its thread id and
/// `ops` the 1-based ordinal of this kernel operation on that thread.
pub fn step_seed(vtime_ns: u64, tid: u64, ops: u64) -> u64 {
    splitmix64(vtime_ns ^ tid.wrapping_mul(GOLDEN_GAMMA) ^ splitmix64(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        let outs: std::collections::HashSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(outs.len(), 64);
    }

    #[test]
    fn step_seed_separates_identities() {
        let a = step_seed(1_000, 3, 7);
        assert_eq!(a, step_seed(1_000, 3, 7));
        assert_ne!(a, step_seed(1_000, 3, 8));
        assert_ne!(a, step_seed(1_000, 4, 7));
        assert_ne!(a, step_seed(1_001, 3, 7));
    }
}
