//! The three protocol/network pairs evaluated in the paper, with link
//! models calibrated against its Table 1 (raw Madeleine: latency of a
//! small message, bandwidth of an 8 MB message) and the overhead
//! decompositions of §5.2–5.4.
//!
//! Calibration constraints per protocol (one-way, single packing
//! operation, dedicated polling thread):
//!
//! ```text
//! send_fixed + wire_latency + poll_cost + recv_fixed  = small-message latency
//! send_per_byte + wire_per_byte + recv_per_byte       = 1 / bandwidth
//! ```
//!
//! The entire per-byte cost is attributed to the *wire* stage so that a
//! chunked/pipelined stream over one connection is still bounded by the
//! physical link rate (the wire is a serial resource, enforced through
//! `LinkModel::wire_serialization`); senders and receivers pay only
//! fixed per-message overheads. The observable ping-pong sums are
//! unaffected by this attribution.
//!
//! | protocol | latency target | bandwidth target | extra pack (§5) |
//! |----------|----------------|------------------|-----------------|
//! | TCP      | 121 µs         | 11.2 MB/s        | 21 µs           |
//! | SISCI    | 4.4 µs         | 82.6 MB/s        | 6.5 µs          |
//! | BIP      | 9.2 µs         | 122 MB/s         | 4.5 µs          |

use crate::model::LinkModel;
use marcel::VirtualDuration;

/// Network protocol identity (the paper's three stacks).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Protocol {
    /// TCP over 100 Mb/s Fast-Ethernet (DEC 21140 boards).
    Tcp,
    /// Dolphin's SISCI API over SCI (D310 boards).
    Sisci,
    /// BIP over Myrinet (32-bit LANai 4.3 boards).
    Bip,
}

impl Protocol {
    pub const ALL: [Protocol; 3] = [Protocol::Tcp, Protocol::Sisci, Protocol::Bip];

    /// Short lowercase name, as used in channel identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Sisci => "sisci",
            Protocol::Bip => "bip",
        }
    }

    /// Calibrated default link model (see module docs for targets).
    pub fn model(self) -> LinkModel {
        match self {
            Protocol::Tcp => LinkModel {
                name: "TCP/Fast-Ethernet",
                send_fixed: VirtualDuration::from_micros_f64(40.0),
                send_per_byte_ns: 0.0,
                wire_latency: VirtualDuration::from_micros_f64(60.0),
                wire_per_byte_ns: 85.15,
                recv_fixed: VirtualDuration::from_micros_f64(14.3),
                recv_per_byte_ns: 0.0,
                poll_cost: VirtualDuration::from_micros_f64(6.0),
                extra_segment: VirtualDuration::from_micros_f64(21.0),
                eager_copy_per_byte_ns: 10.2,
                internal_switch: None,
                jitter: None,
            },
            Protocol::Sisci => LinkModel {
                name: "SISCI/SCI",
                send_fixed: VirtualDuration::from_micros_f64(1.1),
                send_per_byte_ns: 0.0,
                wire_latency: VirtualDuration::from_micros_f64(1.6),
                wire_per_byte_ns: 11.546,
                recv_fixed: VirtualDuration::from_micros_f64(1.1),
                recv_per_byte_ns: 0.0,
                poll_cost: VirtualDuration::from_micros_f64(0.3),
                extra_segment: VirtualDuration::from_micros_f64(6.5),
                eager_copy_per_byte_ns: 10.0,
                internal_switch: None,
                jitter: None,
            },
            Protocol::Bip => LinkModel {
                name: "BIP/Myrinet",
                send_fixed: VirtualDuration::from_micros_f64(2.4),
                send_per_byte_ns: 0.0,
                wire_latency: VirtualDuration::from_micros_f64(4.0),
                wire_per_byte_ns: 7.817,
                recv_fixed: VirtualDuration::from_micros_f64(2.0),
                recv_per_byte_ns: 0.0,
                poll_cost: VirtualDuration::from_micros_f64(0.5),
                extra_segment: VirtualDuration::from_micros_f64(4.5),
                eager_copy_per_byte_ns: 10.0,
                // BIP switches internal protocols around 1 KB — the
                // "particular point for 1 KB messages" of Fig. 8b.
                internal_switch: Some((1024, VirtualDuration::from_micros_f64(10.0))),
                jitter: None,
            },
        }
    }

    /// The eager→rendezvous switch point the paper determined
    /// experimentally for this network (§4.2.2): TCP 64 KB, SCI 8 KB,
    /// Myrinet 7 KB.
    pub fn switch_point(self) -> usize {
        match self {
            Protocol::Tcp => 64 * 1024,
            Protocol::Sisci => 8 * 1024,
            Protocol::Bip => 7 * 1024,
        }
    }

    /// Priority used when several networks connect the same pair of
    /// nodes: pick the highest-bandwidth one.
    pub fn transfer_priority(self) -> u32 {
        match self {
            Protocol::Bip => 3,
            Protocol::Sisci => 2,
            Protocol::Tcp => 1,
        }
    }

    /// Priority used by the ADI single-switch-point *election* (§4.2.2):
    /// "the network with the most influent switch point value is SCI",
    /// otherwise the most performant network's value is used.
    pub fn election_priority(self) -> u32 {
        match self {
            Protocol::Sisci => 3,
            Protocol::Bip => 2,
            Protocol::Tcp => 1,
        }
    }
}

/// The single switch point elected for a `ch_mad` device that supports
/// `protocols` (§4.2.2 of the paper): SCI's value when SCI is present,
/// otherwise the most performant supported network's value.
pub fn elect_switch_point(protocols: &[Protocol]) -> usize {
    protocols
        .iter()
        .max_by_key(|p| p.election_priority())
        .map(|p| p.switch_point())
        .expect("electing a switch point requires at least one protocol")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_latency_matches_table_1() {
        // Table 1 latency targets. The analytic model excludes the
        // Madeleine pack/unpack call CPU (~0.25us), so the hardware-only
        // figure sits slightly *below* the target; the end-to-end check
        // lives in the madeleine crate.
        for (p, target_us) in [
            (Protocol::Tcp, 121.0),
            (Protocol::Sisci, 4.4),
            (Protocol::Bip, 9.2),
        ] {
            let got = p.model().oneway_latency(4).as_micros_f64();
            assert!(
                got <= target_us,
                "{}: {got}us exceeds target {target_us}us",
                p.name()
            );
            let err = (got - target_us).abs() / target_us;
            assert!(
                err < 0.08,
                "{}: latency {got}us vs target {target_us}us",
                p.name()
            );
        }
    }

    #[test]
    fn calibration_bandwidth_matches_table_1() {
        // Table 1 bandwidth targets, within 2%.
        for (p, target) in [
            (Protocol::Tcp, 11.2),
            (Protocol::Sisci, 82.6),
            (Protocol::Bip, 122.0),
        ] {
            let got = p.model().asymptotic_bandwidth_mb_s();
            let err = (got - target).abs() / target;
            assert!(
                err < 0.02,
                "{}: bandwidth {got} vs target {target}",
                p.name()
            );
        }
    }

    #[test]
    fn extra_segment_costs_match_section_5() {
        assert_eq!(Protocol::Tcp.model().extra_segment.as_micros_f64(), 21.0);
        assert_eq!(Protocol::Sisci.model().extra_segment.as_micros_f64(), 6.5);
        assert_eq!(Protocol::Bip.model().extra_segment.as_micros_f64(), 4.5);
    }

    #[test]
    fn switch_points_match_section_4() {
        assert_eq!(Protocol::Tcp.switch_point(), 65536);
        assert_eq!(Protocol::Sisci.switch_point(), 8192);
        assert_eq!(Protocol::Bip.switch_point(), 7168);
    }

    #[test]
    fn switch_point_election_prefers_sci() {
        use Protocol::*;
        assert_eq!(elect_switch_point(&[Tcp, Sisci, Bip]), 8192);
        assert_eq!(elect_switch_point(&[Sisci, Bip]), 8192);
        assert_eq!(elect_switch_point(&[Tcp, Bip]), 7168);
        assert_eq!(elect_switch_point(&[Tcp]), 65536);
        assert_eq!(elect_switch_point(&[Bip]), 7168);
    }

    #[test]
    #[should_panic(expected = "at least one protocol")]
    fn election_requires_a_protocol() {
        elect_switch_point(&[]);
    }

    #[test]
    fn tcp_poll_is_much_more_expensive_than_sci() {
        // §3.3: per-protocol polling frequency exists because TCP only
        // offers the expensive select call.
        let tcp = Protocol::Tcp.model().poll_cost;
        let sci = Protocol::Sisci.model().poll_cost;
        assert!(tcp.as_nanos() >= 10 * sci.as_nanos());
    }

    #[test]
    fn transfer_priority_orders_by_bandwidth() {
        let mut all = Protocol::ALL;
        all.sort_by_key(|p| std::cmp::Reverse(p.transfer_priority()));
        assert_eq!(all, [Protocol::Bip, Protocol::Sisci, Protocol::Tcp]);
    }

    #[test]
    fn bip_has_the_1kb_quirk() {
        let m = Protocol::Bip.model();
        let (t, _) = m.internal_switch.unwrap();
        assert_eq!(t, 1024);
    }
}
