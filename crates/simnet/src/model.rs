//! The parametric link model.
//!
//! A [`LinkModel`] captures everything the reproduction needs to know
//! about one network protocol stack (e.g. BIP over Myrinet): fixed and
//! per-byte costs on the sender, the wire, and the receiver, the cost of
//! one poll attempt, and two behavioural quirks the paper's figures
//! depend on (the extra cost of each additional packing operation, and
//! BIP's internal protocol switch around 1 KB).
//!
//! The model deliberately splits one-way transfer time into three
//! *chargeable* parts, because the layers above charge them to different
//! clocks:
//!
//! ```text
//! sender clock   += sender_occupancy(bytes, segments)
//! arrival time    = sender clock + wire_delay(bytes)
//! receiver clock += receiver_occupancy(bytes)        (after notice)
//! ```
//!
//! For a ping-pong (the paper's benchmark) the three parts simply add up,
//! so the calibration constraint is on their sums: the fixed parts must
//! total the protocol's small-message latency and the per-byte parts must
//! total `1 / bandwidth`.

use marcel::{VirtualDuration, VirtualTime};

/// Cost/behaviour model for one network protocol stack.
#[derive(Clone, Debug)]
pub struct LinkModel {
    /// Human-readable protocol/network name ("TCP/Fast-Ethernet", ...).
    pub name: &'static str,
    /// Fixed per-message sender-side software + hardware overhead.
    pub send_fixed: VirtualDuration,
    /// Sender occupancy per byte, in nanoseconds (copies into socket
    /// buffers, PIO stores, DMA descriptor setup).
    pub send_per_byte_ns: f64,
    /// Fixed wire/NIC traversal latency.
    pub wire_latency: VirtualDuration,
    /// Wire serialization cost per byte, in nanoseconds.
    pub wire_per_byte_ns: f64,
    /// Fixed receiver-side overhead per message (interrupt/poll handler,
    /// protocol bookkeeping).
    pub recv_fixed: VirtualDuration,
    /// Receiver occupancy per byte, in nanoseconds (copy out of the
    /// receive ring / mapped segment).
    pub recv_per_byte_ns: f64,
    /// Cost of one poll attempt on this protocol (cheap for SCI mapped
    /// memory, expensive for TCP's `select`). Drives the paper's Fig. 9.
    pub poll_cost: VirtualDuration,
    /// Cost of each packing operation beyond the first in one Madeleine
    /// message (paper §5.2–5.4 measures it directly: ≈21 µs on TCP,
    /// ≈6.5 µs on SISCI, ≈4.5 µs on BIP).
    pub extra_segment: VirtualDuration,
    /// Per-byte cost of the eager-mode intermediate receive copy
    /// (memcpy through the cache on the receiving host).
    pub eager_copy_per_byte_ns: f64,
    /// `Some((threshold, extra))`: messages strictly larger than
    /// `threshold` bytes pay `extra` once — BIP switches internal
    /// protocols around 1 KB, producing the notch in Fig. 8b.
    pub internal_switch: Option<(usize, VirtualDuration)>,
    /// Deterministic arrival jitter (failure-injection/robustness
    /// testing): each message's wire delay is stretched by a
    /// pseudo-random amount in `[0, amplitude)`, derived from the seed,
    /// the per-connection sequence number and the size — identical on
    /// every run.
    pub jitter: Option<Jitter>,
}

/// Deterministic jitter parameters (see [`LinkModel::jitter`]).
#[derive(Clone, Copy, Debug)]
pub struct Jitter {
    pub amplitude_ns: u64,
    pub seed: u64,
}

impl LinkModel {
    /// Time the *sender's CPU* is busy injecting a message of
    /// `bytes` built from `segments` packing operations.
    pub fn sender_occupancy(&self, bytes: usize, segments: usize) -> VirtualDuration {
        let mut t = self.send_fixed + per_byte(self.send_per_byte_ns, bytes);
        if segments > 1 {
            t += self.extra_segment * (segments as u64 - 1);
        }
        if let Some((threshold, extra)) = self.internal_switch {
            if bytes > threshold {
                t += extra;
            }
        }
        t
    }

    /// Wire time from injection to availability at the receiving NIC.
    pub fn wire_delay(&self, bytes: usize) -> VirtualDuration {
        self.wire_latency + per_byte(self.wire_per_byte_ns, bytes)
    }

    /// Time the *receiver's CPU* is busy draining the message, without
    /// any MPI-level intermediate copy.
    pub fn receiver_occupancy(&self, bytes: usize) -> VirtualDuration {
        self.recv_fixed + per_byte(self.recv_per_byte_ns, bytes)
    }

    /// Extra receiver cost when the payload lands in a bounce buffer and
    /// must be copied to its final destination (eager mode).
    pub fn eager_copy(&self, bytes: usize) -> VirtualDuration {
        per_byte(self.eager_copy_per_byte_ns, bytes)
    }

    /// Absolute arrival time for a message injected when the sender's
    /// clock reads `send_done` (i.e. after `sender_occupancy`).
    pub fn arrival(&self, send_done: VirtualTime, bytes: usize) -> VirtualTime {
        send_done + self.wire_delay(bytes)
    }

    /// Deterministic pseudo-random extra delay for the `sequence`-th
    /// message of a connection (zero without a jitter model). The
    /// seeding scheme is documented in [`crate::rng`], which this
    /// shares with [`crate::FaultPlan`]; the hash is reduced to
    /// `[0, amplitude)` with the unbiased multiply-shift ([`crate::rng::bounded`])
    /// rather than a biased modulo.
    pub fn jitter_delay(&self, sequence: u64, bytes: usize) -> VirtualDuration {
        match self.jitter {
            None => VirtualDuration::ZERO,
            Some(Jitter {
                amplitude_ns: 0, ..
            }) => VirtualDuration::ZERO,
            Some(Jitter { amplitude_ns, seed }) => {
                let h = crate::rng::message_hash(seed, sequence, bytes);
                VirtualDuration::from_nanos(crate::rng::bounded(h, amplitude_ns))
            }
        }
    }

    /// Copy of `self` with deterministic jitter attached.
    pub fn with_jitter(mut self, amplitude_ns: u64, seed: u64) -> LinkModel {
        self.jitter = Some(Jitter { amplitude_ns, seed });
        self
    }

    /// Time the wire itself is busy with this message: back-to-back
    /// messages on one connection cannot arrive closer together than
    /// this (the transport layers enforce it through the per-connection
    /// FIFO floor). This is what keeps chunked transfers from exceeding
    /// the physical link rate.
    pub fn wire_serialization(&self, bytes: usize) -> VirtualDuration {
        per_byte(self.wire_per_byte_ns, bytes)
    }

    /// Analytic one-way small-message latency (single segment), assuming
    /// a dedicated polling thread on this protocol alone. Used by tests
    /// and by calibration checks; the *measured* value additionally
    /// includes the Madeleine/MPI software on top.
    pub fn oneway_latency(&self, bytes: usize) -> VirtualDuration {
        self.sender_occupancy(bytes, 1)
            + self.wire_delay(bytes)
            + self.poll_cost
            + self.receiver_occupancy(bytes)
    }

    /// Analytic asymptotic bandwidth in MB/s (1 MB = 2^20 bytes), i.e.
    /// the reciprocal of the summed per-byte costs.
    pub fn asymptotic_bandwidth_mb_s(&self) -> f64 {
        let per_byte_ns = self.send_per_byte_ns + self.wire_per_byte_ns + self.recv_per_byte_ns;
        1e9 / per_byte_ns / (1 << 20) as f64
    }
}

/// `bytes * ns_per_byte` rounded to whole nanoseconds.
pub(crate) fn per_byte(ns_per_byte: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LinkModel {
        LinkModel {
            name: "toy",
            send_fixed: VirtualDuration::from_micros(2),
            send_per_byte_ns: 1.0,
            wire_latency: VirtualDuration::from_micros(5),
            wire_per_byte_ns: 8.0,
            recv_fixed: VirtualDuration::from_micros(1),
            recv_per_byte_ns: 1.0,
            poll_cost: VirtualDuration::from_micros(1),
            extra_segment: VirtualDuration::from_micros(4),
            eager_copy_per_byte_ns: 10.0,
            internal_switch: Some((1024, VirtualDuration::from_micros(12))),
            jitter: None,
        }
    }

    #[test]
    fn sender_occupancy_charges_segments() {
        let m = toy();
        assert_eq!(m.sender_occupancy(0, 1), VirtualDuration::from_micros(2));
        assert_eq!(m.sender_occupancy(0, 2), VirtualDuration::from_micros(6));
        assert_eq!(m.sender_occupancy(0, 3), VirtualDuration::from_micros(10));
        assert_eq!(
            m.sender_occupancy(100, 1),
            VirtualDuration::from_nanos(2_100)
        );
    }

    #[test]
    fn internal_switch_fires_above_threshold_only() {
        let m = toy();
        let below = m.sender_occupancy(1024, 1);
        let above = m.sender_occupancy(1025, 1);
        assert_eq!(
            above.as_nanos() - below.as_nanos(),
            12_000 + 1 // 12us switch penalty + 1ns for the extra byte
        );
    }

    #[test]
    fn wire_delay_scales_linearly() {
        let m = toy();
        assert_eq!(m.wire_delay(0), VirtualDuration::from_micros(5));
        assert_eq!(m.wire_delay(1000), VirtualDuration::from_micros(13));
    }

    #[test]
    fn oneway_latency_is_sum_of_parts() {
        let m = toy();
        // 2 + 5 + 1 + 1 = 9us fixed.
        assert_eq!(m.oneway_latency(0), VirtualDuration::from_micros(9));
    }

    #[test]
    fn asymptotic_bandwidth_matches_per_byte_sum() {
        let m = toy();
        // 10 ns/B -> 100 MB/s (decimal) = 95.37 MB/s binary.
        let bw = m.asymptotic_bandwidth_mb_s();
        assert!((bw - 95.367).abs() < 0.01, "bw={bw}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = toy().with_jitter(5_000, 42);
        for seq in 0..64u64 {
            let a = m.jitter_delay(seq, 100);
            let b = m.jitter_delay(seq, 100);
            assert_eq!(a, b, "same inputs, same jitter");
            assert!(a.as_nanos() < 5_000);
        }
        // Different sequences produce different delays somewhere.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| m.jitter_delay(s, 100).as_nanos()).collect();
        assert!(distinct.len() > 10, "jitter should vary: {distinct:?}");
        assert_eq!(toy().jitter_delay(3, 100), VirtualDuration::ZERO);
    }

    #[test]
    fn arrival_adds_wire_delay() {
        let m = toy();
        let t = m.arrival(VirtualTime(1_000), 1000);
        assert_eq!(t, VirtualTime(1_000 + 13_000));
    }
}
