//! Per-network utilization accounting.
//!
//! A [`NetUtilization`] counts the messages and payload bytes a network
//! actually carried. One instance hangs off every Madeleine channel
//! (one channel per [`crate::Network`]), is updated on each successful
//! wire injection, and is mirrored into the observability metrics
//! registry so utilization shows up in the per-run stats report — the
//! multi-rail striping experiments read it to verify how traffic split
//! across rails.
//!
//! Counting uses host-side atomics only: it never advances virtual time
//! and cannot perturb the simulation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Message/byte counters for one network (wire-level, payload bytes).
#[derive(Debug, Default)]
pub struct NetUtilization {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetUtilization {
    pub fn new() -> NetUtilization {
        NetUtilization::default()
    }

    /// Account one wire message of `bytes` payload bytes.
    pub fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages carried so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes carried so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Clear both counters (benchmarks reset after warm-up).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        let u = NetUtilization::new();
        assert_eq!((u.messages(), u.bytes()), (0, 0));
        u.record(100);
        u.record(28);
        assert_eq!((u.messages(), u.bytes()), (2, 128));
        u.reset();
        assert_eq!((u.messages(), u.bytes()), (0, 0));
    }
}
