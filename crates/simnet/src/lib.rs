//! # simnet — network substrate models for the MPICH/Madeleine reproduction
//!
//! The original system runs over three 2001-era networks (TCP on
//! Fast-Ethernet, SISCI on Dolphin SCI, BIP on Myrinet/LANai 4.3). This
//! crate replaces the physical NICs and kernel stacks with *parametric
//! link models* ([`LinkModel`]) calibrated against the paper's Table 1,
//! plus the cluster [`Topology`] description (nodes, SMP width, which
//! networks connect which node subsets).
//!
//! The crate is deliberately pure data + arithmetic: actual message
//! movement (poll sources, channels, timestamps) lives in the
//! `madeleine` crate, which charges the costs computed here to the
//! virtual clocks of the `marcel` kernel.

pub mod fault;
pub mod model;
pub mod protocol;
pub mod rng;
pub mod topology;
pub mod util;

pub use fault::{Fate, FaultPlan};
pub use model::{Jitter, LinkModel};
pub use protocol::{elect_switch_point, Protocol};
pub use topology::{Network, NetworkId, Node, NodeId, NodeModel, Topology, TopologyError};
pub use util::NetUtilization;
