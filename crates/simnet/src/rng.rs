//! The deterministic RNG contract shared by jitter and fault injection.
//!
//! Everything pseudo-random in the simulation is derived from **message
//! identity**, never from call order or host entropy: a per-network
//! `seed`, the per-connection wire sequence number `seq` (each
//! transmission attempt, including retransmissions, gets a fresh one),
//! and the message size in bytes. The three are folded into a single
//! 64-bit hash:
//!
//! ```text
//! h = splitmix64(seed ^ seq * GOLDEN_GAMMA ^ bytes)
//! ```
//!
//! with `GOLDEN_GAMMA = 0x9E37_79B9_7F4A_7C15` (the SplitMix64
//! increment). Distinct consumers that must not correlate (jitter
//! amplitude vs. loss decision vs. ack loss) XOR a fixed *stream
//! constant* into the seed before hashing, which gives each consumer an
//! independent splitmix stream over the same message identities.
//!
//! Because the hash depends only on `(seed, seq, bytes)`, any run with
//! the same topology and program replays the exact same jitter, losses
//! and degradations — the seed-invariance tests in `tests/faults.rs`
//! assert this end to end.

// The mixer itself lives in `marcel::rng` (the kernel's sequencer seeds
// and simnet's message hashing must agree on one definition); the
// re-export keeps this module the canonical import path for network
// code.
pub use marcel::rng::{splitmix64, GOLDEN_GAMMA};

/// The canonical per-message hash (see module docs). Both
/// [`crate::LinkModel::jitter_delay`] and [`crate::FaultPlan`] go
/// through this function so the contract lives in exactly one place.
pub fn message_hash(seed: u64, seq: u64, bytes: usize) -> u64 {
    splitmix64(seed ^ seq.wrapping_mul(GOLDEN_GAMMA) ^ bytes as u64)
}

/// Map a hash to `[0, bound)` without modulo bias: widen to 128 bits,
/// multiply, keep the high word (Lemire's multiply-shift reduction).
/// `bound = 0` maps everything to 0.
pub fn bounded(h: u64, bound: u64) -> u64 {
    ((h as u128 * bound as u128) >> 64) as u64
}

/// Map a hash to a uniform `f64` in `[0, 1)` (53 significant bits).
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Low-entropy inputs must spread across the full word.
        let outs: std::collections::HashSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(outs.len(), 64);
    }

    #[test]
    fn bounded_is_unbiased_in_range() {
        for h in [0, 1, u64::MAX / 2, u64::MAX] {
            assert!(bounded(h, 5_000) < 5_000);
        }
        assert_eq!(bounded(u64::MAX, 0), 0);
        // The multiply-shift maps the top of the hash range to the top
        // of the bound range.
        assert_eq!(bounded(u64::MAX, 100), 99);
        assert_eq!(bounded(0, 100), 0);
    }

    #[test]
    fn unit_f64_spans_the_interval() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
        assert!(unit_f64(u64::MAX) > 0.9999);
        let mid = unit_f64(splitmix64(12345));
        assert!((0.0..1.0).contains(&mid));
    }

    #[test]
    fn message_hash_separates_streams() {
        const STREAM_A: u64 = 0x5157_4A2B_9D3E_0001;
        let base = message_hash(42, 7, 100);
        let other = message_hash(42 ^ STREAM_A, 7, 100);
        assert_ne!(base, other, "stream constants must decorrelate");
    }
}
