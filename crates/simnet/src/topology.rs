//! Cluster topology: nodes, intra-node cost model, and the networks that
//! connect node subsets ("clusters of clusters", the paper's motivating
//! configuration).
//!
//! The current MPICH/Madeleine prototype cannot forward packets across
//! heterogeneous networks (paper §6: "all nodes have to be connected
//! two-by-two by a direct network link"), so [`Topology::validate`]
//! enforces exactly that property.

use std::collections::BTreeSet;

use crate::fault::FaultPlan;
use crate::model::{per_byte, LinkModel};
use crate::protocol::Protocol;
use marcel::VirtualDuration;

/// Identifier of a physical node (host) in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Identifier of a network (one protocol instance over one adapter set).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetworkId(pub usize);

/// A physical host.
#[derive(Clone, Debug)]
pub struct Node {
    pub name: String,
    /// Number of processors (the paper's nodes are dual Pentium II).
    pub cpus: usize,
}

/// One network: a protocol with a calibrated model, connecting a set of
/// nodes through one adapter per node.
#[derive(Clone, Debug)]
pub struct Network {
    pub protocol: Protocol,
    pub model: LinkModel,
    pub members: BTreeSet<NodeId>,
    /// Deterministic fault injection for this network (None = the
    /// paper's perfectly reliable wire).
    pub fault: Option<FaultPlan>,
}

/// Intra-node costs (loop-back and shared-memory paths, used by the
/// `ch_self` and `smp_plug` devices).
#[derive(Clone, Debug)]
pub struct NodeModel {
    /// Fixed cost of an intra-process (loop-back) message.
    pub self_fixed: VirtualDuration,
    /// Per-byte cost of the loop-back memcpy.
    pub self_per_byte_ns: f64,
    /// Fixed cost of an intra-node (shared-memory) message.
    pub smp_fixed: VirtualDuration,
    /// Per-byte cost of the shared-memory double copy.
    pub smp_per_byte_ns: f64,
}

impl NodeModel {
    /// Calibrated for a dual Pentium II 450 with ~100 MB/s usable copy
    /// bandwidth.
    pub fn calibrated() -> Self {
        NodeModel {
            self_fixed: VirtualDuration::from_nanos(700),
            self_per_byte_ns: 5.0,
            smp_fixed: VirtualDuration::from_micros(3),
            smp_per_byte_ns: 9.0,
        }
    }

    pub fn self_cost(&self, bytes: usize) -> VirtualDuration {
        self.self_fixed + per_byte(self.self_per_byte_ns, bytes)
    }

    pub fn smp_cost(&self, bytes: usize) -> VirtualDuration {
        self.smp_fixed + per_byte(self.smp_per_byte_ns, bytes)
    }
}

impl Default for NodeModel {
    fn default() -> Self {
        NodeModel::calibrated()
    }
}

/// Errors from [`Topology::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two nodes share no network: the prototype cannot forward.
    Disconnected(NodeId, NodeId),
    /// A network references a node that does not exist.
    UnknownNode(NetworkId, NodeId),
    /// A network connects fewer than two nodes.
    DegenerateNetwork(NetworkId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Disconnected(a, b) => write!(
                f,
                "nodes {} and {} share no direct network (MPICH/Madeleine cannot forward across gateways)",
                a.0, b.0
            ),
            TopologyError::UnknownNode(n, node) => {
                write!(f, "network {} references unknown node {}", n.0, node.0)
            }
            TopologyError::DegenerateNetwork(n) => {
                write!(f, "network {} connects fewer than two nodes", n.0)
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The full cluster description.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    networks: Vec<Network>,
    node_model: NodeModel,
}

impl Topology {
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            networks: Vec::new(),
            node_model: NodeModel::calibrated(),
        }
    }

    /// Override the intra-node cost model.
    pub fn with_node_model(mut self, model: NodeModel) -> Self {
        self.node_model = model;
        self
    }

    /// Add a host; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, cpus: usize) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            cpus,
        });
        id
    }

    /// Add a network with the protocol's calibrated default model.
    pub fn add_network(
        &mut self,
        protocol: Protocol,
        members: impl IntoIterator<Item = NodeId>,
    ) -> NetworkId {
        self.add_network_with_model(protocol, protocol.model(), members)
    }

    /// Add a network with an explicit (e.g. customized) link model.
    pub fn add_network_with_model(
        &mut self,
        protocol: Protocol,
        model: LinkModel,
        members: impl IntoIterator<Item = NodeId>,
    ) -> NetworkId {
        let id = NetworkId(self.networks.len());
        self.networks.push(Network {
            protocol,
            model,
            members: members.into_iter().collect(),
            fault: None,
        });
        id
    }

    /// Add a network with the protocol's calibrated model plus a
    /// deterministic fault plan.
    pub fn add_network_with_fault(
        &mut self,
        protocol: Protocol,
        fault: FaultPlan,
        members: impl IntoIterator<Item = NodeId>,
    ) -> NetworkId {
        let id = self.add_network(protocol, members);
        self.networks[id.0].fault = Some(fault);
        id
    }

    /// Attach (or replace) the fault plan of an existing network.
    pub fn set_fault(&mut self, net: NetworkId, fault: FaultPlan) {
        self.networks[net.0].fault = Some(fault);
    }

    /// Convenience: `n` single-CPU nodes all connected by one network.
    pub fn single_network(n: usize, protocol: Protocol) -> Self {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("node{i}"), 1)).collect();
        t.add_network(protocol, nodes);
        t
    }

    /// Convenience: the paper's meta-cluster — one SCI cluster and one
    /// Myrinet cluster of `per_cluster` dual-CPU nodes each, with
    /// Fast-Ethernet connecting everything.
    pub fn meta_cluster(per_cluster: usize) -> Self {
        let mut t = Topology::new();
        let sci: Vec<NodeId> = (0..per_cluster)
            .map(|i| t.add_node(format!("sci{i}"), 2))
            .collect();
        let myri: Vec<NodeId> = (0..per_cluster)
            .map(|i| t.add_node(format!("myri{i}"), 2))
            .collect();
        t.add_network(Protocol::Sisci, sci.clone());
        t.add_network(Protocol::Bip, myri.clone());
        t.add_network(Protocol::Tcp, sci.into_iter().chain(myri));
        t
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    pub fn network(&self, id: NetworkId) -> &Network {
        &self.networks[id.0]
    }

    pub fn node_model(&self) -> &NodeModel {
        &self.node_model
    }

    /// All networks directly connecting `a` and `b` (excludes `a == b`,
    /// which is intra-node territory).
    pub fn networks_between(&self, a: NodeId, b: NodeId) -> Vec<NetworkId> {
        if a == b {
            return Vec::new();
        }
        self.networks
            .iter()
            .enumerate()
            .filter(|(_, n)| n.members.contains(&a) && n.members.contains(&b))
            .map(|(i, _)| NetworkId(i))
            .collect()
    }

    /// The preferred (highest transfer priority) network between two
    /// distinct nodes.
    pub fn best_network_between(&self, a: NodeId, b: NodeId) -> Option<NetworkId> {
        self.networks_between(a, b)
            .into_iter()
            .max_by_key(|id| self.networks[id.0].protocol.transfer_priority())
    }

    /// Networks a node is attached to.
    pub fn networks_at(&self, node: NodeId) -> Vec<NetworkId> {
        self.networks
            .iter()
            .enumerate()
            .filter(|(_, n)| n.members.contains(&node))
            .map(|(i, _)| NetworkId(i))
            .collect()
    }

    /// The distinct protocols present in the whole configuration.
    pub fn protocols(&self) -> Vec<Protocol> {
        let mut ps: Vec<Protocol> = self.networks.iter().map(|n| n.protocol).collect();
        ps.sort();
        ps.dedup();
        ps
    }

    /// Partition the nodes into *clusters*: connected components over
    /// the "fast" networks — every network whose protocol outranks the
    /// slowest protocol present in the configuration (by
    /// [`Protocol::transfer_priority`]). On the paper's meta-cluster
    /// this yields one cluster per SAN (the SCI island and the Myrinet
    /// island), with the spanning Fast-Ethernet excluded; nodes attached
    /// only to slow networks become singleton clusters. A homogeneous
    /// configuration (one protocol everywhere) has no fast network at
    /// all, so every node is its own cluster — the degenerate case
    /// topology-aware collectives treat as "flat".
    ///
    /// Clusters are deterministic: ordered by their lowest node id, each
    /// member list ascending.
    pub fn clusters(&self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let floor = self
            .networks
            .iter()
            .map(|net| net.protocol.transfer_priority())
            .min();
        // Union-find over the fast networks only.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        if let Some(floor) = floor {
            for net in &self.networks {
                if net.protocol.transfer_priority() <= floor {
                    continue;
                }
                let mut it = net.members.iter();
                if let Some(first) = it.next() {
                    for m in it {
                        let (a, b) = (find(&mut parent, first.0), find(&mut parent, m.0));
                        // Root the union at the lower id for determinism.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
            }
        }
        let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for node in 0..n {
            let r = find(&mut parent, node);
            by_root.entry(r).or_default().push(NodeId(node));
        }
        by_root.into_values().collect()
    }

    /// The cluster index (into [`Topology::clusters`]) of each node, as
    /// a dense `node id -> cluster id` map.
    pub fn node_clusters(&self) -> Vec<usize> {
        let clusters = self.clusters();
        let mut of = vec![0usize; self.nodes.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for m in members {
                of[m.0] = ci;
            }
        }
        of
    }

    /// Shortest node path from `a` to `b` over the networks (BFS, ties
    /// broken by preferring higher-priority protocols for the first
    /// differing edge and then lower node ids — deterministic). Returns
    /// the inclusive node sequence, or `None` when disconnected.
    pub fn node_route(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.nodes.len();
        // Neighbour lists, deterministically ordered: by protocol
        // priority (descending) then node id (ascending).
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[a.0] = true;
        let mut frontier = std::collections::VecDeque::from([a]);
        while let Some(u) = frontier.pop_front() {
            let mut nets = self.networks_at(u);
            nets.sort_by_key(|id| {
                std::cmp::Reverse(self.networks[id.0].protocol.transfer_priority())
            });
            for net in nets {
                let mut members: Vec<NodeId> =
                    self.networks[net.0].members.iter().copied().collect();
                members.sort_unstable();
                for v in members {
                    if !visited[v.0] {
                        visited[v.0] = true;
                        prev[v.0] = Some(u);
                        frontier.push_back(v);
                    }
                }
            }
            if visited[b.0] {
                break;
            }
        }
        if !visited[b.0] {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while let Some(p) = prev[cur.0] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&a));
        Some(path)
    }

    /// Weaker validation for forwarding-enabled sessions (the extension
    /// implementing the paper's §6 future work): every node pair must be
    /// *reachable*, possibly through gateway nodes, rather than directly
    /// connected.
    pub fn validate_connected(&self) -> Result<(), TopologyError> {
        self.validate_networks()?;
        for b in 1..self.nodes.len() {
            if self.node_route(NodeId(0), NodeId(b)).is_none() {
                return Err(TopologyError::Disconnected(NodeId(0), NodeId(b)));
            }
        }
        Ok(())
    }

    fn validate_networks(&self) -> Result<(), TopologyError> {
        for (i, net) in self.networks.iter().enumerate() {
            if net.members.len() < 2 {
                return Err(TopologyError::DegenerateNetwork(NetworkId(i)));
            }
            for m in &net.members {
                if m.0 >= self.nodes.len() {
                    return Err(TopologyError::UnknownNode(NetworkId(i), *m));
                }
            }
        }
        Ok(())
    }

    /// Enforce the prototype's structural requirements (see module docs).
    pub fn validate(&self) -> Result<(), TopologyError> {
        self.validate_networks()?;
        for a in 0..self.nodes.len() {
            for b in (a + 1)..self.nodes.len() {
                if self.networks_between(NodeId(a), NodeId(b)).is_empty() {
                    return Err(TopologyError::Disconnected(NodeId(a), NodeId(b)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_network_validates() {
        let t = Topology::single_network(4, Protocol::Tcp);
        t.validate().unwrap();
        assert_eq!(t.nodes().len(), 4);
        assert_eq!(t.protocols(), vec![Protocol::Tcp]);
    }

    #[test]
    fn meta_cluster_is_fully_connected() {
        let t = Topology::meta_cluster(3);
        t.validate().unwrap();
        assert_eq!(t.nodes().len(), 6);
        assert_eq!(
            t.protocols(),
            vec![Protocol::Tcp, Protocol::Sisci, Protocol::Bip]
        );
    }

    #[test]
    fn best_network_prefers_fast_protocol() {
        let t = Topology::meta_cluster(2);
        // Within the SCI cluster: SCI preferred over TCP.
        let best = t.best_network_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.network(best).protocol, Protocol::Sisci);
        // Across clusters: only TCP.
        let best = t.best_network_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(t.network(best).protocol, Protocol::Tcp);
        // Within the Myrinet cluster: BIP preferred.
        let best = t.best_network_between(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(t.network(best).protocol, Protocol::Bip);
    }

    #[test]
    fn disconnected_pair_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        // a and c share no network; b would need to forward — unsupported.
        assert_eq!(t.validate(), Err(TopologyError::Disconnected(a, c)));
    }

    #[test]
    fn degenerate_network_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        t.add_network(Protocol::Tcp, [a]);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::DegenerateNetwork(_))
        ));
    }

    #[test]
    fn unknown_member_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        t.add_network(Protocol::Tcp, [a, NodeId(7)]);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::UnknownNode(_, NodeId(7)))
        ));
    }

    #[test]
    fn networks_between_same_node_is_empty() {
        let t = Topology::single_network(2, Protocol::Tcp);
        assert!(t.networks_between(NodeId(0), NodeId(0)).is_empty());
    }

    #[test]
    fn networks_at_lists_attachments() {
        let t = Topology::meta_cluster(2);
        // SCI node 0 is on SCI + TCP.
        let nets = t.networks_at(NodeId(0));
        let protos: Vec<Protocol> = nets.iter().map(|n| t.network(*n).protocol).collect();
        assert!(protos.contains(&Protocol::Sisci));
        assert!(protos.contains(&Protocol::Tcp));
        assert!(!protos.contains(&Protocol::Bip));
    }

    #[test]
    fn meta_cluster_has_two_fast_islands() {
        let t = Topology::meta_cluster(3);
        let clusters = t.clusters();
        assert_eq!(
            clusters,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4), NodeId(5)],
            ]
        );
        assert_eq!(t.node_clusters(), vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn homogeneous_network_is_all_singletons() {
        // One protocol everywhere: no network outranks the floor, so
        // clustering degenerates to one node per cluster ("flat").
        for p in Protocol::ALL {
            let t = Topology::single_network(4, p);
            assert_eq!(t.clusters().len(), 4, "{p:?}");
        }
    }

    #[test]
    fn slow_only_node_is_a_singleton_cluster() {
        // Two SCI nodes plus one node reachable only over TCP.
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Tcp, [a, b, c]);
        assert_eq!(t.clusters(), vec![vec![a, b], vec![c]]);
        assert_eq!(t.node_clusters(), vec![0, 0, 1]);
    }

    #[test]
    fn fast_chains_merge_into_one_cluster() {
        // SCI a-b and BIP b-c chain into one fast island over TCP floor.
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        let d = t.add_node("d", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        t.add_network(Protocol::Tcp, [a, b, c, d]);
        assert_eq!(t.clusters(), vec![vec![a, b, c], vec![d]]);
    }

    #[test]
    fn empty_topology_has_no_clusters() {
        assert!(Topology::new().clusters().is_empty());
    }

    #[test]
    fn node_model_costs() {
        let m = NodeModel::calibrated();
        assert_eq!(m.self_cost(0), m.self_fixed);
        assert!(m.smp_cost(1024) > m.smp_cost(0));
        assert!(
            m.self_cost(4096) < m.smp_cost(4096),
            "loop-back beats shm copy"
        );
    }
}

#[cfg(test)]
mod route_tests {
    use super::*;

    /// Chain: a -SCI- b -BIP- c (no common network for a and c).
    fn chain() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        t
    }

    #[test]
    fn route_through_gateway() {
        let t = chain();
        assert_eq!(
            t.node_route(NodeId(0), NodeId(2)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(t.node_route(NodeId(0), NodeId(0)), Some(vec![NodeId(0)]));
        assert_eq!(
            t.node_route(NodeId(2), NodeId(0)),
            Some(vec![NodeId(2), NodeId(1), NodeId(0)])
        );
    }

    #[test]
    fn direct_route_is_single_hop() {
        let t = Topology::meta_cluster(2);
        let r = t.node_route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.len(), 2, "TCP connects them directly: {r:?}");
    }

    #[test]
    fn connected_validation_accepts_chains() {
        let t = chain();
        assert!(t.validate().is_err(), "strict validation rejects the chain");
        t.validate_connected().unwrap();
    }

    #[test]
    fn connected_validation_rejects_islands() {
        let mut t = chain();
        let d = t.add_node("d", 1);
        let e = t.add_node("e", 1);
        t.add_network(Protocol::Tcp, [d, e]);
        assert!(t.validate_connected().is_err());
    }

    #[test]
    fn route_is_deterministic() {
        // Diamond: two equal-length routes; the tie-break must be stable.
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b1 = t.add_node("b1", 1);
        let b2 = t.add_node("b2", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b1]);
        t.add_network(Protocol::Sisci, [a, b2]);
        t.add_network(Protocol::Bip, [b1, c]);
        t.add_network(Protocol::Bip, [b2, c]);
        let r1 = t.node_route(NodeId(0), NodeId(3)).unwrap();
        let r2 = t.node_route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 3);
    }
}
