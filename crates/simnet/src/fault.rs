//! Deterministic fault injection: the [`FaultPlan`] attached to a
//! [`crate::Network`].
//!
//! The paper assumes perfectly reliable networks; this module is the
//! reproduction's robustness extension. A plan is pure data — seeded
//! per-message loss, latency-degradation windows, and hard link-down
//! intervals `[from, until)` in virtual time — and is queried by the
//! transport layer (madeleine's reliable channel sublayer) for every
//! transmission *attempt*:
//!
//! ```text
//! fate(seq, bytes, now) -> Deliver | Drop | Defer(t)
//! ```
//!
//! Determinism contract: the loss decision depends only on
//! `(seed, seq, bytes)` through [`crate::rng::message_hash`] (see the
//! `rng` module for the seeding scheme shared with
//! [`crate::LinkModel::jitter_delay`]); the window decisions depend only
//! on `now`. No state is kept, so a plan can be queried concurrently and
//! replayed bit-identically.

use crate::rng;
use marcel::{VirtualDuration, VirtualTime};

/// Stream constant decorrelating the loss hash from the jitter hash
/// (which uses the raw network seed).
const LOSS_STREAM: u64 = 0x4C4F_5353_0000_0001; // "LOSS"
/// Stream constant for the deliberate-duplicate ("ack lost") decision.
const ACK_STREAM: u64 = 0x4143_4B00_0000_0001; // "ACK"

/// What happens to one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// The attempt reaches the receiver (possibly with degraded delay).
    Deliver,
    /// The attempt vanishes on the wire; the sender must retransmit.
    Drop,
    /// The link is down but will come back: the sender should wait
    /// until the given virtual time and retry (the attempt does not
    /// occupy the wire).
    Defer(VirtualTime),
}

/// A seeded, fully deterministic fault plan for one network.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the per-message hash streams.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given transmission attempt is
    /// dropped (outside down windows, which override it).
    pub loss: f64,
    /// Probability that a *delivered* attempt's acknowledgement is
    /// lost, forcing the sender to retransmit an already-delivered
    /// message — this is what exercises receiver-side deduplication.
    pub ack_loss: f64,
    /// Hard link-down intervals `[from, until)`. An `until` of
    /// `VirtualTime::MAX` means the link never comes back: attempts
    /// inside such a window are dropped outright (no point deferring).
    pub down: Vec<(VirtualTime, VirtualTime)>,
    /// Latency-degradation windows `(from, until, extra_delay)`:
    /// attempts delivered while `from <= now < until` arrive
    /// `extra_delay` later than the clean model predicts.
    pub degraded: Vec<(VirtualTime, VirtualTime, VirtualDuration)>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the per-attempt loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Set the ack-loss (forced-duplicate) probability.
    pub fn with_ack_loss(mut self, ack_loss: f64) -> Self {
        self.ack_loss = ack_loss.clamp(0.0, 1.0);
        self
    }

    /// Add a finite link-down window `[from, until)`.
    pub fn with_down(mut self, from: VirtualTime, until: VirtualTime) -> Self {
        assert!(from < until, "empty down window");
        self.down.push((from, until));
        self
    }

    /// Take the link down at `from` and never bring it back.
    pub fn link_down_from(self, from: VirtualTime) -> Self {
        self.with_down(from, VirtualTime(u64::MAX))
    }

    /// Add a latency-degradation window.
    pub fn with_degraded(
        mut self,
        from: VirtualTime,
        until: VirtualTime,
        extra: VirtualDuration,
    ) -> Self {
        assert!(from < until, "empty degradation window");
        self.degraded.push((from, until, extra));
        self
    }

    /// The fate of transmission attempt `seq` of `bytes` at virtual
    /// time `now`. See the module docs for the determinism contract.
    pub fn fate(&self, seq: u64, bytes: usize, now: VirtualTime) -> Fate {
        // Down windows override the loss process entirely.
        for &(from, until) in &self.down {
            if now >= from && now < until {
                return if until.0 == u64::MAX {
                    Fate::Drop
                } else {
                    Fate::Defer(until)
                };
            }
        }
        if self.loss > 0.0 {
            let h = rng::message_hash(self.seed ^ LOSS_STREAM, seq, bytes);
            if rng::unit_f64(h) < self.loss {
                return Fate::Drop;
            }
        }
        Fate::Deliver
    }

    /// Extra arrival delay from degradation windows active at `now`
    /// (summed if windows overlap).
    pub fn extra_delay(&self, now: VirtualTime) -> VirtualDuration {
        let mut total = VirtualDuration::ZERO;
        for &(from, until, extra) in &self.degraded {
            if now >= from && now < until {
                total += extra;
            }
        }
        total
    }

    /// Whether the acknowledgement of delivered attempt `seq` is lost,
    /// forcing the sender to retransmit a duplicate.
    pub fn ack_lost(&self, seq: u64, bytes: usize) -> bool {
        self.ack_loss > 0.0
            && rng::unit_f64(rng::message_hash(self.seed ^ ACK_STREAM, seq, bytes)) < self.ack_loss
    }

    /// True when the plan can never permanently kill the link: loss
    /// strictly below 1 and every down window finite. Transfers under
    /// such a plan always complete (given enough retries).
    pub fn is_survivable(&self) -> bool {
        self.loss < 1.0 && self.down.iter().all(|&(_, until)| until.0 != u64::MAX)
    }

    /// Serialize the plan's parameters (journal snapshot hook). A plan
    /// is pure data — `fate` depends only on `(seed, seq, bytes)` and
    /// window checks on `now` — so this encoding plus the campaign's
    /// fault *cursor* (how far into the plan matrix a campaign has
    /// advanced) is everything a resume needs to reproduce the fault
    /// stream bit for bit.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use marcel::journal::wire::{put_u32, put_u64};
        put_u64(out, self.seed);
        put_u64(out, self.loss.to_bits());
        put_u64(out, self.ack_loss.to_bits());
        put_u32(out, self.down.len() as u32);
        for &(from, until) in &self.down {
            put_u64(out, from.0);
            put_u64(out, until.0);
        }
        put_u32(out, self.degraded.len() as u32);
        for &(from, until, extra) in &self.degraded {
            put_u64(out, from.0);
            put_u64(out, until.0);
            put_u64(out, extra.as_nanos());
        }
    }

    /// Stable fingerprint of the plan's parameters — campaigns fold it
    /// into per-leg config digests so `bisect` can tell "same traffic,
    /// different fault plan" apart from a real determinism bug.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        self.encode(&mut bytes);
        marcel::journal::fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_delivers_everything() {
        let p = FaultPlan::new(7);
        for seq in 0..100 {
            assert_eq!(p.fate(seq, 64, VirtualTime(seq * 1000)), Fate::Deliver);
        }
        assert_eq!(p.extra_delay(VirtualTime(5)), VirtualDuration::ZERO);
        assert!(!p.ack_lost(3, 64));
        assert!(p.is_survivable());
    }

    #[test]
    fn loss_is_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::new(42).with_loss(0.3);
        let dropped = (0..10_000)
            .filter(|&s| p.fate(s, 128, VirtualTime(0)) == Fate::Drop)
            .count();
        // Deterministic: exact same count every run.
        let again = (0..10_000)
            .filter(|&s| p.fate(s, 128, VirtualTime(0)) == Fate::Drop)
            .count();
        assert_eq!(dropped, again);
        // Statistically: within a few percent of 30%.
        assert!((2_700..=3_300).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn loss_stream_is_independent_of_jitter_stream() {
        // Same (seed, seq, bytes): the jitter hash and the loss hash
        // must differ, otherwise lossy links would correlate loss with
        // large jitter.
        let p = FaultPlan::new(9).with_loss(0.5);
        let jitter_h = rng::message_hash(9, 3, 64);
        let loss_h = rng::message_hash(9 ^ LOSS_STREAM, 3, 64);
        assert_ne!(jitter_h, loss_h);
        let _ = p; // plan participates via fate(); streams asserted above
    }

    #[test]
    fn finite_down_window_defers_then_recovers() {
        let p = FaultPlan::new(1).with_down(VirtualTime(1_000), VirtualTime(2_000));
        assert_eq!(p.fate(0, 64, VirtualTime(999)), Fate::Deliver);
        assert_eq!(
            p.fate(0, 64, VirtualTime(1_000)),
            Fate::Defer(VirtualTime(2_000))
        );
        assert_eq!(
            p.fate(0, 64, VirtualTime(1_999)),
            Fate::Defer(VirtualTime(2_000))
        );
        assert_eq!(p.fate(0, 64, VirtualTime(2_000)), Fate::Deliver);
        assert!(p.is_survivable());
    }

    #[test]
    fn permanent_down_window_drops() {
        let p = FaultPlan::new(1).link_down_from(VirtualTime(500));
        assert_eq!(p.fate(9, 64, VirtualTime(499)), Fate::Deliver);
        assert_eq!(p.fate(9, 64, VirtualTime(500)), Fate::Drop);
        assert_eq!(p.fate(9, 64, VirtualTime(u64::MAX - 1)), Fate::Drop);
        assert!(!p.is_survivable());
    }

    #[test]
    fn degradation_windows_sum() {
        let p = FaultPlan::new(1)
            .with_degraded(
                VirtualTime(0),
                VirtualTime(100),
                VirtualDuration::from_nanos(10),
            )
            .with_degraded(
                VirtualTime(50),
                VirtualTime(150),
                VirtualDuration::from_nanos(5),
            );
        assert_eq!(
            p.extra_delay(VirtualTime(10)),
            VirtualDuration::from_nanos(10)
        );
        assert_eq!(
            p.extra_delay(VirtualTime(60)),
            VirtualDuration::from_nanos(15)
        );
        assert_eq!(
            p.extra_delay(VirtualTime(120)),
            VirtualDuration::from_nanos(5)
        );
        assert_eq!(p.extra_delay(VirtualTime(150)), VirtualDuration::ZERO);
    }

    #[test]
    fn encode_and_digest_are_deterministic_and_parameter_sensitive() {
        let p = FaultPlan::new(7)
            .with_loss(0.2)
            .with_ack_loss(0.1)
            .with_down(VirtualTime(100), VirtualTime(200))
            .with_degraded(
                VirtualTime(0),
                VirtualTime(50),
                VirtualDuration::from_nanos(9),
            );
        assert_eq!(p.digest(), p.clone().digest());
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.encode(&mut a);
        p.encode(&mut b);
        assert_eq!(a, b);
        assert_ne!(p.digest(), FaultPlan::new(8).with_loss(0.2).digest());
        assert_ne!(p.digest(), p.clone().with_loss(0.25).digest());
    }

    #[test]
    fn ack_loss_forces_duplicates_deterministically() {
        let p = FaultPlan::new(11).with_ack_loss(0.5);
        let lost: Vec<bool> = (0..32).map(|s| p.ack_lost(s, 256)).collect();
        let again: Vec<bool> = (0..32).map(|s| p.ack_lost(s, 256)).collect();
        assert_eq!(lost, again);
        assert!(lost.iter().any(|&b| b) && lost.iter().any(|&b| !b));
    }
}
