//! # baselines — the paper's comparator MPI implementations
//!
//! The evaluation section of MPICH/Madeleine compares `ch_mad` against
//! four native MPI implementations, none of which can be run today
//! (closed source and/or dead hardware). This crate models each as a
//! simplified eager/rendezvous engine ([`NativeMpi`]) built *directly*
//! on the simulated links — the architectural property that explains
//! their curves: lower fixed overhead than `ch_mad` (no Madeleine/Marcel
//! layers) but, except for MPICH-PM, no zero-copy bulk path.
//!
//! See `DESIGN.md` §2 for the substitution rationale and
//! [`presets`] for the per-implementation calibration targets.

pub mod native;
pub mod presets;

pub use native::{bandwidth_mb_s, pingpong, NativeMpi, NativeMpiModel};
pub use presets::{mpi_gm, mpich_pm, scampi, sci_mpich};
