//! A generic "native MPI" engine: an MPI implementation built *directly*
//! on one network's link model, without the Madeleine layer — the shape
//! of every comparator in the paper's Figures 6–8 (ch_p4 aside, which
//! lives in the `mpich` crate because it shares the ADI machinery).
//!
//! The engine implements a two-rank eager/rendezvous protocol with the
//! comparator-specific parameters of [`NativeMpiModel`]; the presets in
//! [`crate::presets`] instantiate it per published implementation.

use std::sync::Arc;

use bytes::Bytes;
use marcel::{
    CostModel, Kernel, PollSource, Polled, ProcId, SimMutex, VirtualDuration, VirtualTime,
};
use simnet::LinkModel;

/// Parameters of one native MPI implementation.
#[derive(Clone, Debug)]
pub struct NativeMpiModel {
    pub name: &'static str,
    /// The network hardware/protocol underneath.
    pub link: LinkModel,
    /// Per-message software overhead on the sending side.
    pub sw_send: VirtualDuration,
    /// Per-message software overhead on the receiving side.
    pub sw_recv: VirtualDuration,
    /// Messages above this size use the rendezvous protocol.
    pub eager_threshold: usize,
    /// Receive-side per-byte cost in eager mode (bounce-buffer copy +
    /// protocol per-byte overheads), ns/B.
    pub eager_copy_ns: f64,
    /// Residual per-byte cost in rendezvous mode (0 = true zero-copy).
    pub rndv_copy_ns: f64,
}

impl NativeMpiModel {
    /// Analytic asymptotic bandwidth (MB/s, binary) of the bulk path.
    pub fn asymptotic_bandwidth_mb_s(&self) -> f64 {
        let per_byte = self.link.send_per_byte_ns
            + self.link.wire_per_byte_ns
            + self.link.recv_per_byte_ns
            + if (self.eager_threshold) == usize::MAX {
                self.eager_copy_ns
            } else {
                self.rndv_copy_ns
            };
        1e9 / per_byte / (1 << 20) as f64
    }
}

/// Control messages of the two-rank engine.
enum NativeMsg {
    Eager(Bytes),
    RndvReq(#[allow(dead_code)] usize),
    RndvAck,
    RndvData(Bytes),
}

/// Size on the wire of the rendezvous control messages.
const CTRL_LEN: usize = 32;

/// A two-rank instance of a native MPI (enough for the paper's
/// ping-pong evaluation).
pub struct NativeMpi {
    model: NativeMpiModel,
    sources: Vec<PollSource<NativeMsg>>,
    floors: Vec<SimMutex<VirtualTime>>,
}

impl NativeMpi {
    pub fn new(kernel: &Kernel, model: NativeMpiModel) -> Arc<NativeMpi> {
        let sources = (0..2)
            .map(|r| PollSource::new(kernel, ProcId(r as u32), model.link.poll_cost))
            .collect();
        let floors = (0..2)
            .map(|_| SimMutex::new(kernel, VirtualTime::ZERO))
            .collect();
        Arc::new(NativeMpi {
            model,
            sources,
            floors,
        })
    }

    pub fn model(&self) -> &NativeMpiModel {
        &self.model
    }

    fn send_raw(&self, from: usize, wire_len: usize, msg: NativeMsg) {
        let to = 1 - from;
        let mut floor = self.floors[from].lock();
        marcel::advance(self.model.link.sender_occupancy(wire_len, 1));
        let mut arrival = self.model.link.arrival(marcel::now(), wire_len);
        let min = *floor
            + (self.model.link.wire_serialization(wire_len) + VirtualDuration::from_nanos(1));
        if arrival < min {
            arrival = min;
        }
        *floor = arrival;
        self.sources[to].post(arrival, msg);
    }

    /// Blocking send of `data` to the other rank.
    pub fn send(&self, from: usize, data: Bytes) {
        marcel::advance(self.model.sw_send);
        if data.len() > self.model.eager_threshold {
            self.send_raw(from, CTRL_LEN, NativeMsg::RndvReq(data.len()));
            // Wait for the acknowledgement before the bulk transfer.
            match self.sources[from].poll_wait() {
                Some(Polled {
                    payload: NativeMsg::RndvAck,
                    ..
                }) => {}
                _ => panic!("{}: expected RndvAck", self.model.name),
            }
            let len = data.len();
            self.send_raw(from, len, NativeMsg::RndvData(data));
        } else {
            let len = data.len();
            self.send_raw(from, len, NativeMsg::Eager(data));
        }
    }

    /// Blocking receive from the other rank.
    pub fn recv(&self, me: usize) -> Bytes {
        let polled = self.sources[me].poll_wait().expect("source closed");
        match polled.payload {
            NativeMsg::Eager(data) => {
                marcel::advance(
                    self.model.link.receiver_occupancy(data.len())
                        + self.model.sw_recv
                        + per_byte(self.model.eager_copy_ns, data.len()),
                );
                data
            }
            NativeMsg::RndvReq(_) => {
                marcel::advance(self.model.link.receiver_occupancy(CTRL_LEN) + self.model.sw_recv);
                self.send_raw(me, CTRL_LEN, NativeMsg::RndvAck);
                match self.sources[me].poll_wait() {
                    Some(Polled {
                        payload: NativeMsg::RndvData(data),
                        ..
                    }) => {
                        marcel::advance(
                            self.model.link.receiver_occupancy(data.len())
                                + self.model.sw_recv
                                + per_byte(self.model.rndv_copy_ns, data.len()),
                        );
                        data
                    }
                    _ => panic!("{}: expected RndvData", self.model.name),
                }
            }
            _ => panic!("{}: unexpected control message in recv", self.model.name),
        }
    }
}

fn per_byte(ns: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns).round() as u64)
}

/// Run a ping-pong over a native MPI model and return the *one-way*
/// time per message size (round-trip halved, averaged over `iters`
/// iterations after one warm-up).
pub fn pingpong(
    model: &NativeMpiModel,
    sizes: &[usize],
    iters: usize,
) -> Vec<(usize, VirtualDuration)> {
    let kernel = Kernel::new(CostModel::calibrated());
    let mpi = NativeMpi::new(&kernel, model.clone());
    let sizes_owned: Vec<usize> = sizes.to_vec();
    let m0 = mpi.clone();
    let h = kernel.spawn("rank0", move || {
        let mut out = Vec::new();
        for &n in &sizes_owned {
            let payload = Bytes::from(vec![0u8; n]);
            // Warm-up round.
            m0.send(0, payload.clone());
            m0.recv(0);
            let t0 = marcel::now();
            for _ in 0..iters {
                m0.send(0, payload.clone());
                let back = m0.recv(0);
                assert_eq!(back.len(), n);
            }
            let elapsed = marcel::now() - t0;
            out.push((n, elapsed / (2 * iters as u64)));
        }
        out
    });
    let sizes_owned: Vec<usize> = sizes.to_vec();
    let m1 = mpi.clone();
    kernel.spawn("rank1", move || {
        for &n in &sizes_owned {
            for _ in 0..iters + 1 {
                let data = m1.recv(1);
                assert_eq!(data.len(), n);
                m1.send(1, data);
            }
        }
    });
    kernel.run().expect("baseline ping-pong must not deadlock");
    h.join_outcome().expect("rank0 result")
}

/// Bandwidth in MB/s (binary) for a (size, one-way time) sample.
pub fn bandwidth_mb_s(size: usize, oneway: VirtualDuration) -> f64 {
    size as f64 / (1 << 20) as f64 / oneway.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Protocol;

    fn toy() -> NativeMpiModel {
        NativeMpiModel {
            name: "toy",
            link: Protocol::Sisci.model(),
            sw_send: VirtualDuration::from_micros(1),
            sw_recv: VirtualDuration::from_micros(1),
            eager_threshold: 1024,
            eager_copy_ns: 10.0,
            rndv_copy_ns: 0.0,
        }
    }

    #[test]
    fn pingpong_round_trips_data() {
        let results = pingpong(&toy(), &[0, 4, 64, 4096], 3);
        assert_eq!(results.len(), 4);
        // Times strictly increase with size for a fixed protocol mode...
        assert!(results[1].1 <= results[2].1);
        // ...and the 4-byte latency is near link + 2us software.
        let lat = results[1].1.as_micros_f64();
        assert!(lat > 5.0 && lat < 8.0, "4B latency {lat}us");
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        // Same per-byte cost in both modes, so crossing the threshold
        // exposes exactly the extra handshake round trip.
        let mut model = toy();
        model.rndv_copy_ns = model.eager_copy_ns;
        let below = pingpong(&model, &[1024], 3)[0].1;
        let above = pingpong(&model, &[1025], 3)[0].1;
        let delta = above.as_micros_f64() - below.as_micros_f64();
        assert!(
            delta > 5.0,
            "rendezvous handshake not visible: delta {delta}us"
        );
    }

    #[test]
    fn zero_copy_rendezvous_beats_eager_for_bulk() {
        let mut eager_only = toy();
        eager_only.eager_threshold = usize::MAX;
        let rndv = toy();
        let n = 1 << 20;
        let t_eager = pingpong(&eager_only, &[n], 2)[0].1;
        let t_rndv = pingpong(&rndv, &[n], 2)[0].1;
        assert!(
            t_rndv < t_eager,
            "zero-copy 1MB {t_rndv} should beat eager {t_eager}"
        );
    }

    #[test]
    fn bandwidth_helper() {
        let bw = bandwidth_mb_s(1 << 20, VirtualDuration::from_secs_f64(0.5));
        assert!((bw - 2.0).abs() < 1e-9);
    }
}
