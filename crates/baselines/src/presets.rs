//! Calibrated models of the MPI implementations the paper compares
//! `ch_mad` against. The originals are closed-source (ScaMPI) or tied to
//! dead hardware/software stacks (SCI-MPICH, MPI-GM, MPICH-PM/SCore), so
//! each is reproduced as a [`NativeMpiModel`] whose parameters are fitted
//! to the curves in Figures 7 and 8:
//!
//! | implementation | small latency | bulk bandwidth | regime           |
//! |----------------|---------------|----------------|------------------|
//! | ScaMPI         | ≈ 5.5 µs      | ≈ 64 MB/s      | buffered always  |
//! | SCI-MPICH      | ≈ 11.5 µs     | ≈ 55 MB/s      | buffered always  |
//! | MPI-GM         | ≈ 25 µs       | ≈ 45 MB/s      | buffered always  |
//! | MPICH-PM       | ≈ 15 µs       | ≈ 118 MB/s     | zero-copy rndv   |
//!
//! The *relative* claims these need to support: ScaMPI and SCI-MPICH
//! beat `ch_mad` (≈20 µs) on SCI latency but lose past 16 KB once
//! `ch_mad`'s zero-copy rendezvous engages (Fig. 7); MPI-GM loses to
//! `ch_mad` below 512 B and everywhere on bandwidth, while MPICH-PM wins
//! below 4 KB and above 256 KB (Fig. 8).

use marcel::VirtualDuration;
use simnet::Protocol;

use crate::native::NativeMpiModel;

fn us(x: f64) -> VirtualDuration {
    VirtualDuration::from_micros_f64(x)
}

/// Scali's commercial MPI over SCI (paper ref [2]). Implemented
/// directly on the SCI hardware: very low software overhead, but every
/// transfer goes through its buffering scheme.
pub fn scampi() -> NativeMpiModel {
    NativeMpiModel {
        name: "ScaMPI",
        link: Protocol::Sisci.model(),
        sw_send: us(0.5),
        sw_recv: us(0.6),
        eager_threshold: usize::MAX,
        eager_copy_ns: 3.1,
        rndv_copy_ns: 3.1,
    }
}

/// RWTH Aachen's SCI-MPICH (`ch_smi` device, paper ref [17]). Also
/// direct on SCI, with a heavier protocol layer than ScaMPI.
pub fn sci_mpich() -> NativeMpiModel {
    NativeMpiModel {
        name: "SCI-MPICH",
        link: Protocol::Sisci.model(),
        sw_send: us(3.5),
        sw_recv: us(3.6),
        eager_threshold: usize::MAX,
        eager_copy_ns: 6.5,
        rndv_copy_ns: 6.5,
    }
}

/// Myricom's MPI over GM 1.2.3 (paper ref [1]). GM's driver path on the
/// 32-bit LANai 4.3 boards is slow on both latency and per-byte cost —
/// "definitely outperformed" in Fig. 8b.
pub fn mpi_gm() -> NativeMpiModel {
    NativeMpiModel {
        name: "MPI-GM",
        link: Protocol::Bip.model(),
        sw_send: us(8.0),
        sw_recv: us(8.0),
        eager_threshold: usize::MAX,
        eager_copy_ns: 13.0,
        rndv_copy_ns: 13.0,
    }
}

/// RWCP's zero-copy MPICH-PM/SCore (paper ref [13]). NOTE: the paper
/// measured it on a *different* cluster (Pentium Pro 200 vs dual PII
/// 450); the model reflects the published curves, not a same-hardware
/// port — exactly the caveat §5.4 makes.
pub fn mpich_pm() -> NativeMpiModel {
    NativeMpiModel {
        name: "MPICH-PM",
        link: Protocol::Bip.model(),
        sw_send: us(3.0),
        sw_recv: us(3.0),
        eager_threshold: 4 * 1024,
        // PM pins and remaps: nearly free on both paths.
        eager_copy_ns: 0.8,
        rndv_copy_ns: 0.1,
    }
}

/// Every preset, for sweep tooling.
pub fn all() -> Vec<NativeMpiModel> {
    vec![scampi(), sci_mpich(), mpi_gm(), mpich_pm()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{bandwidth_mb_s, pingpong};

    #[test]
    fn latency_ordering_matches_figures() {
        // Fig 7a: ScaMPI < SCI-MPICH < ch_mad(~20us);
        // Fig 8a: MPICH-PM(~15us) < ch_mad(~20us) < MPI-GM(~25us).
        let lat = |m: &NativeMpiModel| pingpong(m, &[4], 4)[0].1.as_micros_f64();
        let scampi = lat(&scampi());
        let smi = lat(&sci_mpich());
        let gm = lat(&mpi_gm());
        let pm = lat(&mpich_pm());
        assert!(scampi < smi, "ScaMPI {scampi} < SCI-MPICH {smi}");
        assert!(
            smi < 16.0,
            "SCI-MPICH small latency {smi}us below ch_mad's ~20us"
        );
        assert!(scampi > 3.0 && scampi < 8.0, "ScaMPI latency {scampi}us");
        assert!(pm > 12.0 && pm < 18.0, "MPICH-PM latency {pm}us");
        assert!(gm > 20.0 && gm < 30.0, "MPI-GM latency {gm}us");
    }

    #[test]
    fn bulk_bandwidth_matches_figures() {
        let bw = |m: &NativeMpiModel| {
            let n = 8 << 20;
            bandwidth_mb_s(n, pingpong(m, &[n], 1)[0].1)
        };
        let scampi = bw(&scampi());
        assert!((55.0..70.0).contains(&scampi), "ScaMPI bulk {scampi} MB/s");
        let smi = bw(&sci_mpich());
        assert!((48.0..62.0).contains(&smi), "SCI-MPICH bulk {smi} MB/s");
        let gm = bw(&mpi_gm());
        assert!((38.0..52.0).contains(&gm), "MPI-GM bulk {gm} MB/s");
        let pm = bw(&mpich_pm());
        assert!((110.0..125.0).contains(&pm), "MPICH-PM bulk {pm} MB/s");
    }

    #[test]
    fn pm_beats_gm_everywhere() {
        // Fig 8b: "MPI-GM is definitely outperformed".
        for n in [64usize, 1024, 16 * 1024, 1 << 20] {
            let t_gm = pingpong(&mpi_gm(), &[n], 2)[0].1;
            let t_pm = pingpong(&mpich_pm(), &[n], 2)[0].1;
            assert!(t_pm < t_gm, "at {n}B: PM {t_pm} vs GM {t_gm}");
        }
    }
}
