//! Ablations of the design choices listed in DESIGN.md §5. Each bench
//! runs the affected workload with the choice on vs off and prints the
//! virtual-time consequence (the criterion number is wall-clock; the
//! interesting output is the eprintln comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use mpich::{ChMadConfig, PolicyMode, RemoteDeviceKind, WorldConfig};
use simnet::{Protocol, Topology};

fn config_with(f: impl FnOnce(&mut ChMadConfig)) -> WorldConfig {
    let mut cfg = ChMadConfig::default();
    f(&mut cfg);
    WorldConfig {
        remote: RemoteDeviceKind::ChMad(cfg),
        ..WorldConfig::default()
    }
}

/// Ablation 1 — polling detection delay: faithful vs oracle polling.
fn ablation_polling(c: &mut Criterion) {
    let run = |oracle: bool| {
        let mut cfg = WorldConfig::default();
        if oracle {
            cfg.cost_model = cfg.cost_model.with_oracle_polling();
        }
        bench::mpi_pingpong(bench::fig9_topology(true), cfg, &[4], 2)[0].1
    };
    let faithful = run(false);
    let oracle = run(true);
    eprintln!("[ablation_polling] 4B latency over SCI+TCP: faithful {faithful}, oracle {oracle}");
    assert!(faithful > oracle);
    c.bench_function("ablation_polling", |b| b.iter(|| run(false)));
}

/// Ablation 2 — split short packets vs padded inline buffer (§4.2.2).
fn ablation_short_split(c: &mut Criterion) {
    let run = |split: bool| {
        let cfg = config_with(|c| c.split_short = split);
        bench::mpi_pingpong(
            Topology::single_network(2, Protocol::Sisci),
            cfg,
            &[4, 4096],
            2,
        )
    };
    let with = run(true);
    let without = run(false);
    eprintln!(
        "[ablation_short_split] SCI eager 4B: split {} vs padded {}; 4KB: split {} vs padded {}",
        with[0].1, without[0].1, with[1].1, without[1].1
    );
    // The padded scheme ships the full 8KB inline buffer even for 4B.
    assert!(without[0].1 > with[0].1);
    c.bench_function("ablation_short_split", |b| b.iter(|| run(true)));
}

/// Ablation 3 — elected switch point vs per-size alternatives.
fn ablation_switch_point(c: &mut Criterion) {
    let run = |switch: usize| {
        let cfg = config_with(|c| c.switch_point_override = Some(switch));
        bench::mpi_pingpong(
            Topology::single_network(2, Protocol::Sisci),
            cfg,
            &[4096, 16 * 1024, 64 * 1024],
            2,
        )
    };
    for sp in [1024usize, 8192, 65536] {
        let s = run(sp);
        eprintln!(
            "[ablation_switch_point] switch={sp}: 4KB {}, 16KB {}, 64KB {}",
            s[0].1, s[1].1, s[2].1
        );
    }
    c.bench_function("ablation_switch_point", |b| b.iter(|| run(8192)));
}

/// Ablation 4 — rendezvous zero-copy vs eager-always.
fn ablation_rendezvous(c: &mut Criterion) {
    let run = |rndv: bool| {
        let cfg = config_with(|c| c.rendezvous = rndv);
        bench::mpi_pingpong(
            Topology::single_network(2, Protocol::Sisci),
            cfg,
            &[1 << 20],
            1,
        )[0]
        .1
    };
    let with = run(true);
    let without = run(false);
    eprintln!("[ablation_rendezvous] SCI 1MB: rendezvous {with} vs eager-always {without}");
    assert!(with < without, "zero-copy must win for 1MB");
    c.bench_function("ablation_rendezvous", |b| b.iter(|| run(true)));
}

/// Ablation 5 — protocol policy: elected single threshold vs per-network
/// thresholds vs multi-rail striping, on a dual-rail (SCI+BIP) pair.
fn ablation_policy(c: &mut Criterion) {
    let run = |mode: PolicyMode| {
        let cfg = config_with(|c| c.policy = mode);
        bench::mpi_pingpong(bench::multirail_topology(), cfg, &[7_680, 8 << 20], 1)
    };
    let elected = run(PolicyMode::Elected);
    let per_network = run(PolicyMode::PerNetwork);
    let striped = run(PolicyMode::Striped);
    eprintln!(
        "[ablation_policy] SCI+BIP 7.5KB: elected {} vs per-network {} vs striped {}",
        elected[0].1, per_network[0].1, striped[0].1
    );
    eprintln!(
        "[ablation_policy] SCI+BIP 8MB: elected {} vs per-network {} vs striped {}",
        elected[1].1, per_network[1].1, striped[1].1
    );
    // 7.5KB sits between BIP's ideal threshold (7KB) and the elected SCI
    // one (8KB): the per-network policy already switches to rendezvous
    // on BIP where the elected threshold still forces eager.
    assert_ne!(elected[0].1, per_network[0].1);
    // For 8MB the two rails together must beat any single-rail policy.
    assert!(striped[1].1 < per_network[1].1);
    c.bench_function("ablation_policy", |b| b.iter(|| run(PolicyMode::Striped)));
}

criterion_group!(
    benches,
    ablation_polling,
    ablation_short_split,
    ablation_switch_point,
    ablation_rendezvous,
    ablation_policy
);
criterion_main!(benches);
