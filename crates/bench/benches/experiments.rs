//! Criterion wrappers: one bench per paper table/figure. These measure
//! the wall-clock of regenerating each experiment (the experiment's own
//! results are in *virtual* time and printed by the bin targets).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| bench::experiments::table1(1)));
    g.bench_function("table2", |b| b.iter(|| bench::experiments::table2(1)));
    g.bench_function("fig6", |b| b.iter(|| bench::experiments::fig6(1)));
    g.bench_function("fig7", |b| b.iter(|| bench::experiments::fig7(1)));
    g.bench_function("fig8", |b| b.iter(|| bench::experiments::fig8(1)));
    g.bench_function("fig9", |b| b.iter(|| bench::experiments::fig9(1)));
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
