//! Result formatting: aligned console tables, paper-vs-measured anchor
//! comparisons, and machine-readable JSON dumps (written under
//! `target/bench-results/` unless `BENCH_JSON_DIR` overrides it).

use std::io::Write;
use std::path::PathBuf;

use marcel::VirtualDuration;

use crate::pingpong::{bandwidth_mb_s, Series};

/// One named measured series of an experiment.
#[derive(Clone)]
pub struct NamedSeries {
    pub name: String,
    /// (bytes, one-way nanoseconds) samples.
    pub samples: Vec<(usize, u64)>,
}

impl NamedSeries {
    pub fn new(name: impl Into<String>, series: &Series) -> Self {
        NamedSeries {
            name: name.into(),
            samples: series.iter().map(|(n, d)| (*n, d.as_nanos())).collect(),
        }
    }
}

/// An explicit number the paper states (in a table or in the text),
/// paired with our measurement.
#[derive(Clone)]
pub struct Anchor {
    pub what: String,
    pub paper: f64,
    pub measured: f64,
    pub unit: &'static str,
}

impl Anchor {
    pub fn new(what: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Anchor {
        Anchor {
            what: what.into(),
            paper,
            measured,
            unit,
        }
    }

    pub fn deviation_pct(&self) -> f64 {
        if self.paper == 0.0 {
            return 0.0;
        }
        (self.measured - self.paper) / self.paper * 100.0
    }
}

/// A full experiment report.
#[derive(Clone)]
pub struct Report {
    pub experiment: String,
    pub title: String,
    pub series: Vec<NamedSeries>,
    pub anchors: Vec<Anchor>,
}

impl Report {
    pub fn new(experiment: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            experiment: experiment.into(),
            title: title.into(),
            series: Vec::new(),
            anchors: Vec::new(),
        }
    }

    pub fn add_series(&mut self, name: impl Into<String>, series: &Series) -> &mut Self {
        self.series.push(NamedSeries::new(name, series));
        self
    }

    pub fn add_anchor(&mut self, anchor: Anchor) -> &mut Self {
        self.anchors.push(anchor);
        self
    }

    /// Print the transfer-time view (µs per one-way message).
    pub fn print_time_table(&self) {
        println!(
            "\n== {} — {} : one-way transfer time (us) ==",
            self.experiment, self.title
        );
        self.print_table(
            |_size, ns| VirtualDuration::from_nanos(ns).as_micros_f64(),
            "us",
            |s| s <= 4096,
        );
    }

    /// Print the bandwidth view (MB/s).
    pub fn print_bandwidth_table(&self) {
        println!(
            "\n== {} — {} : bandwidth (MB/s) ==",
            self.experiment, self.title
        );
        self.print_table(
            |size, ns| bandwidth_mb_s(size, VirtualDuration::from_nanos(ns)),
            "MB/s",
            |_| true,
        );
    }

    fn print_table(
        &self,
        value: impl Fn(usize, u64) -> f64,
        _unit: &str,
        size_filter: impl Fn(usize) -> bool,
    ) {
        let mut sizes: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.samples.iter().map(|(n, _)| *n))
            .filter(|n| size_filter(*n))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        print!("{:>10}", "bytes");
        for s in &self.series {
            print!(" {:>14}", truncate(&s.name, 14));
        }
        println!();
        for n in sizes {
            print!("{n:>10}");
            for s in &self.series {
                match s.samples.iter().find(|(sz, _)| *sz == n) {
                    Some((_, ns)) => print!(" {:>14.3}", value(n, *ns)),
                    None => print!(" {:>14}", "-"),
                }
            }
            println!();
        }
    }

    /// Print the paper-vs-measured anchor table.
    pub fn print_anchors(&self) {
        if self.anchors.is_empty() {
            return;
        }
        println!("\n-- paper anchors vs measured --");
        println!(
            "{:<52} {:>10} {:>10} {:>8}",
            "quantity", "paper", "measured", "dev%"
        );
        for a in &self.anchors {
            println!(
                "{:<52} {:>8.2}{:<2} {:>8.2}{:<2} {:>7.1}%",
                truncate(&a.what, 52),
                a.paper,
                a.unit,
                a.measured,
                a.unit,
                a.deviation_pct()
            );
        }
    }

    /// Write the JSON dump and return its path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/bench-results"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Hand-rolled JSON emission (the build has no serde available).
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            json_str(&self.experiment)
        ));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let samples: Vec<String> = s
                .samples
                .iter()
                .map(|(n, ns)| format!("[{n}, {ns}]"))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"samples\": [{}]}}{}\n",
                json_str(&s.name),
                samples.join(", "),
                if i + 1 < self.series.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"anchors\": [\n");
        for (i, a) in self.anchors.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"what\": {}, \"paper\": {}, \"measured\": {}, \"unit\": {}}}{}\n",
                json_str(&a.what),
                json_num(a.paper),
                json_num(a.measured),
                json_str(a.unit),
                if i + 1 < self.anchors.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write gnuplot-ready data files (one `.dat` per series, columns:
    /// bytes, one-way µs, MB/s) plus a `.gp` script with the paper's
    /// log-log axes. Returns the script path.
    pub fn write_gnuplot(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/bench-results"))
            .join(&self.experiment);
        std::fs::create_dir_all(&dir)?;
        let mut plot_lines = Vec::new();
        for s in &self.series {
            let safe: String = s
                .name
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{safe}.dat"));
            let mut f = std::fs::File::create(&path)?;
            writeln!(f, "# bytes oneway_us bandwidth_mb_s")?;
            for (bytes, ns) in &s.samples {
                let d = VirtualDuration::from_nanos(*ns);
                writeln!(
                    f,
                    "{bytes} {:.3} {:.4}",
                    d.as_micros_f64(),
                    bandwidth_mb_s(*bytes, d)
                )?;
            }
            plot_lines.push(format!(
                "'{safe}.dat' using 1:3 with linespoints title \"{}\"",
                s.name
            ));
        }
        let script = dir.join("plot.gp");
        let mut f = std::fs::File::create(&script)?;
        writeln!(f, "# {} — {}", self.experiment, self.title)?;
        writeln!(f, "set logscale x 2")?;
        writeln!(f, "set xlabel 'Message Size (bytes)'")?;
        writeln!(f, "set ylabel 'Bandwidth (MByte/s)'")?;
        writeln!(f, "set key left top")?;
        writeln!(f, "plot {}", plot_lines.join(", \\\n     "))?;
        Ok(script)
    }

    /// Full console output + JSON + gnuplot dumps.
    pub fn emit(&self, time_table: bool, bandwidth_table: bool) {
        if time_table {
            self.print_time_table();
        }
        if bandwidth_table {
            self.print_bandwidth_table();
        }
        self.print_anchors();
        match self.write_json() {
            Ok(p) => println!("\n[json] {}", p.display()),
            Err(e) => eprintln!("[json] write failed: {e}"),
        }
        match self.write_gnuplot() {
            Ok(p) => println!("[gnuplot] {}", p.display()),
            Err(e) => eprintln!("[gnuplot] write failed: {e}"),
        }
    }

    /// Look up a measured value: one-way µs at `size` in series `name`.
    pub fn us_at(&self, name: &str, size: usize) -> f64 {
        self.ns_at(name, size) as f64 / 1_000.0
    }

    /// Look up a measured bandwidth (MB/s) at `size` in series `name`.
    pub fn mb_s_at(&self, name: &str, size: usize) -> f64 {
        bandwidth_mb_s(size, VirtualDuration::from_nanos(self.ns_at(name, size)))
    }

    fn ns_at(&self, name: &str, size: usize) -> u64 {
        self.series
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no series '{name}'"))
            .samples
            .iter()
            .find(|(n, _)| *n == size)
            .unwrap_or_else(|| panic!("series '{name}' has no sample at {size}"))
            .1
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_deviation() {
        let a = Anchor::new("x", 100.0, 110.0, "us");
        assert!((a.deviation_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_helpers() {
        let mut r = Report::new("t", "test");
        r.add_series(
            "s",
            &vec![
                (4, VirtualDuration::from_nanos(2_000)),
                (1 << 20, VirtualDuration::from_nanos(1_000_000_000)),
            ],
        );
        assert!((r.us_at("s", 4) - 2.0).abs() < 1e-9);
        assert!((r.mb_s_at("s", 1 << 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gnuplot_files_written() {
        let mut r = Report::new("unit_gp", "test");
        r.add_series("a b/c", &vec![(1024, VirtualDuration::from_micros(100))]);
        std::env::set_var("BENCH_JSON_DIR", std::env::temp_dir().join("bench-gp-test"));
        let script = r.write_gnuplot().unwrap();
        let text = std::fs::read_to_string(&script).unwrap();
        assert!(text.contains("logscale"));
        assert!(text.contains("a_b_c.dat"));
        let dat = std::fs::read_to_string(script.parent().unwrap().join("a_b_c.dat")).unwrap();
        // 1024 bytes in 100us = 9.7656 MB/s.
        assert!(dat.contains("1024 100.000 9.7656"), "{dat}");
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report::new("unit_json", "test");
        r.add_series("s", &vec![(1, VirtualDuration::from_nanos(10))]);
        r.add_anchor(Anchor::new("a", 1.0, 1.1, "us"));
        std::env::set_var(
            "BENCH_JSON_DIR",
            std::env::temp_dir().join("bench-json-test"),
        );
        let path = r.write_json().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("unit_json"));
    }
}
