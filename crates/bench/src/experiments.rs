//! One constructor per paper experiment: runs the workloads and packages
//! measured series plus the paper's explicit numbers as anchors.

use marcel::{MetricsSnapshot, VirtualTime};
use mpich::{AdiCosts, ChMadConfig, PolicyMode, RemoteDeviceKind, WorldConfig};
use simnet::{FaultPlan, Protocol, Topology};

use crate::pingpong::{
    bandwidth_mb_s, bandwidth_sizes, fig9_topology, latency_sizes, mpi_pingpong,
    mpi_pingpong_metrics, mpi_pingpong_session, multirail_topology, raw_madeleine_pingpong,
    raw_madeleine_pingpong_metrics,
};
use crate::report::{Anchor, Report};

const MB8: usize = 8 << 20;

fn lat_and_bw_sizes() -> Vec<usize> {
    let mut v = latency_sizes();
    v.extend(bandwidth_sizes());
    v.sort_unstable();
    v.dedup();
    v
}

fn ch_mad_world() -> WorldConfig {
    WorldConfig::default()
}

fn ch_mad_policy(mode: PolicyMode) -> WorldConfig {
    WorldConfig {
        remote: RemoteDeviceKind::ChMad(ChMadConfig {
            policy: mode,
            ..ChMadConfig::default()
        }),
        ..WorldConfig::default()
    }
}

/// Table 1: raw Madeleine latency and 8 MB bandwidth over the three
/// protocols.
pub fn table1(iters: usize) -> Report {
    let mut r = Report::new(
        "table1",
        "Latency and bandwidth for various network protocols (raw Madeleine)",
    );
    for (proto, lat_target, bw_target) in [
        (Protocol::Tcp, 121.0, 11.2),
        (Protocol::Bip, 9.2, 122.0),
        (Protocol::Sisci, 4.4, 82.6),
    ] {
        let series = raw_madeleine_pingpong(proto, &[4, MB8], iters);
        let name = proto.name().to_string();
        r.add_series(&name, &series);
        r.add_anchor(Anchor::new(
            format!("{name}: 4B one-way latency"),
            lat_target,
            series[0].1.as_micros_f64(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: 8MB bandwidth"),
            bw_target,
            bandwidth_mb_s(MB8, series[1].1),
            "MB",
        ));
    }
    r
}

/// Table 2: ch_mad summary — 0 B and 4 B latency plus 8 MB bandwidth,
/// device compiled "in a mono-protocol fashion" per network.
pub fn table2(iters: usize) -> Report {
    let mut r = Report::new("table2", "Summary of ch_mad performance");
    for (proto, lat0, lat4, bw) in [
        (Protocol::Tcp, 130.0, 148.7, 11.2),
        (Protocol::Bip, 16.9, 18.9, 115.0),
        (Protocol::Sisci, 13.0, 20.0, 82.5),
    ] {
        let topology = Topology::single_network(2, proto);
        let series = mpi_pingpong(topology, ch_mad_world(), &[0, 4, MB8], iters);
        let name = proto.name().to_string();
        r.add_series(&name, &series);
        r.add_anchor(Anchor::new(
            format!("{name}: 0B latency"),
            lat0,
            series[0].1.as_micros_f64(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: 4B latency"),
            lat4,
            series[1].1.as_micros_f64(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: 8MB bandwidth"),
            bw,
            bandwidth_mb_s(MB8, series[2].1),
            "MB",
        ));
    }
    r
}

/// Figure 6: TCP/Fast-Ethernet — ch_mad vs ch_p4 vs raw Madeleine.
pub fn fig6(iters: usize) -> Report {
    let sizes = lat_and_bw_sizes();
    let mut r = Report::new(
        "fig6",
        "TCP/Fast-Ethernet: ch_mad vs ch_p4 vs raw Madeleine",
    );
    let ch_mad = mpi_pingpong(
        Topology::single_network(2, Protocol::Tcp),
        ch_mad_world(),
        &sizes,
        iters,
    );
    let ch_p4 = mpi_pingpong(
        Topology::single_network(2, Protocol::Tcp),
        WorldConfig::ch_p4(),
        &sizes,
        iters,
    );
    let raw = raw_madeleine_pingpong(Protocol::Tcp, &sizes, iters);
    r.add_series("ch_mad", &ch_mad);
    r.add_series("ch_p4", &ch_p4);
    r.add_series("raw_Madeleine", &raw);
    r.add_anchor(Anchor::new(
        "raw Madeleine 4B latency (text)",
        121.0,
        r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad 4B latency (text)",
        148.0,
        r.us_at("ch_mad", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad overhead over raw Madeleine at 4B (max 28us)",
        28.0,
        r.us_at("ch_mad", 4) - r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_p4 1MB bandwidth ceiling",
        10.0,
        r.mb_s_at("ch_p4", 1 << 20),
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad 1MB bandwidth (exceeds 11)",
        11.0,
        r.mb_s_at("ch_mad", 1 << 20),
        "MB",
    ));
    r
}

/// Figure 7: SISCI/SCI — ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine.
pub fn fig7(iters: usize) -> Report {
    let sizes = lat_and_bw_sizes();
    let mut r = Report::new(
        "fig7",
        "SISCI/SCI: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine",
    );
    let ch_mad = mpi_pingpong(
        Topology::single_network(2, Protocol::Sisci),
        ch_mad_world(),
        &sizes,
        iters,
    );
    let scampi = baselines::pingpong(&baselines::scampi(), &sizes, iters);
    let smi = baselines::pingpong(&baselines::sci_mpich(), &sizes, iters);
    let raw = raw_madeleine_pingpong(Protocol::Sisci, &sizes, iters);
    r.add_series("ch_mad", &ch_mad);
    r.add_series("ScaMPI", &scampi);
    r.add_series("SCI-MPICH", &smi);
    r.add_series("raw_Madeleine", &raw);
    r.add_anchor(Anchor::new(
        "raw Madeleine small latency (text: 4.5us)",
        4.5,
        r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad small latency (text: ~20us)",
        20.0,
        r.us_at("ch_mad", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad overhead over raw Madeleine (text: 15us)",
        15.0,
        r.us_at("ch_mad", 4) - r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad sustained bandwidth past 16KB (text: >=80)",
        80.0,
        r.mb_s_at("ch_mad", 64 * 1024),
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad / best native ratio at 64KB (ch_mad wins: >1)",
        1.2,
        r.mb_s_at("ch_mad", 64 * 1024)
            / r.mb_s_at("ScaMPI", 64 * 1024)
                .max(r.mb_s_at("SCI-MPICH", 64 * 1024)),
        "x",
    ));
    r
}

/// Figure 8: BIP/Myrinet — ch_mad vs MPI-GM vs MPICH-PM vs raw Madeleine.
pub fn fig8(iters: usize) -> Report {
    let sizes = lat_and_bw_sizes();
    let mut r = Report::new(
        "fig8",
        "BIP/Myrinet: ch_mad vs MPI-GM vs MPICH-PM vs raw Madeleine",
    );
    let ch_mad = mpi_pingpong(
        Topology::single_network(2, Protocol::Bip),
        ch_mad_world(),
        &sizes,
        iters,
    );
    let gm = baselines::pingpong(&baselines::mpi_gm(), &sizes, iters);
    let pm = baselines::pingpong(&baselines::mpich_pm(), &sizes, iters);
    let raw = raw_madeleine_pingpong(Protocol::Bip, &sizes, iters);
    r.add_series("ch_mad", &ch_mad);
    r.add_series("MPI-GM", &gm);
    r.add_series("MPI-PM", &pm);
    r.add_series("raw_Madeleine", &raw);
    r.add_anchor(Anchor::new(
        "raw Madeleine small latency (text: 9us)",
        9.0,
        r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad small latency (text: ~20us)",
        20.0,
        r.us_at("ch_mad", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad overhead over raw Madeleine (text: 11us)",
        11.0,
        r.us_at("ch_mad", 4) - r.us_at("raw_Madeleine", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "ch_mad - MPICH-PM latency gap at 4B (text: ~5us)",
        5.0,
        r.us_at("ch_mad", 4) - r.us_at("MPI-PM", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "MPI-GM 4B latency above ch_mad (GM loses below 512B)",
        25.0,
        r.us_at("MPI-GM", 4),
        "us",
    ));
    r
}

/// Figure 9: multi-protocol impact — SCI alone vs SCI plus an active TCP
/// polling thread (all traffic on SCI).
pub fn fig9(iters: usize) -> Report {
    let sizes = lat_and_bw_sizes();
    let mut r = Report::new(
        "fig9",
        "SCI alone vs SCI + TCP polling thread (all traffic over SCI)",
    );
    let sci_only = mpi_pingpong(fig9_topology(false), ch_mad_world(), &sizes, iters);
    let sci_tcp = mpi_pingpong(fig9_topology(true), ch_mad_world(), &sizes, iters);
    r.add_series("SCI_thread_only", &sci_only);
    r.add_series("SCI_thread_+_TCP_thread", &sci_tcp);
    r.add_anchor(Anchor::new(
        "latency penalty of the TCP polling thread at 4B (~one TCP poll, 6us)",
        6.0,
        r.us_at("SCI_thread_+_TCP_thread", 4) - r.us_at("SCI_thread_only", 4),
        "us",
    ));
    r.add_anchor(Anchor::new(
        "1MB bandwidth ratio with/without TCP thread (close to 1)",
        0.97,
        r.mb_s_at("SCI_thread_+_TCP_thread", 1 << 20) / r.mb_s_at("SCI_thread_only", 1 << 20),
        "x",
    ));
    r
}

/// "Figure 10" (extension beyond the paper): multi-rail striping. Two
/// nodes share BOTH SCI and Myrinet; rendezvous DATA striped across the
/// two rails (weighted by calibrated link bandwidth) must beat the best
/// single rail for large messages.
pub fn multirail(iters: usize) -> Report {
    let sizes: Vec<usize> = (0..=23).map(|p| 1usize << p).collect(); // up to 8 MB
    let mut r = Report::new(
        "multirail",
        "Multi-rail striping over SCI+BIP: each rail alone vs dual-rail policies",
    );
    let sci = mpi_pingpong(
        Topology::single_network(2, Protocol::Sisci),
        ch_mad_world(),
        &sizes,
        iters,
    );
    let bip = mpi_pingpong(
        Topology::single_network(2, Protocol::Bip),
        ch_mad_world(),
        &sizes,
        iters,
    );
    let elected = mpi_pingpong(
        multirail_topology(),
        ch_mad_policy(PolicyMode::Elected),
        &sizes,
        iters,
    );
    let per_network = mpi_pingpong(
        multirail_topology(),
        ch_mad_policy(PolicyMode::PerNetwork),
        &sizes,
        iters,
    );
    let striped = mpi_pingpong(
        multirail_topology(),
        ch_mad_policy(PolicyMode::Striped),
        &sizes,
        iters,
    );
    r.add_series("SCI_only", &sci);
    r.add_series("BIP_only", &bip);
    r.add_series("dual_rail_elected", &elected);
    r.add_series("dual_rail_per_network", &per_network);
    r.add_series("dual_rail_striped", &striped);
    let best_single = r.mb_s_at("SCI_only", MB8).max(r.mb_s_at("BIP_only", MB8));
    r.add_anchor(Anchor::new(
        "best single rail 8MB bandwidth (BIP, Table 2: 115)",
        115.0,
        best_single,
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "striped 8MB bandwidth (SCI 82.6 + BIP 122 wires)",
        190.0,
        r.mb_s_at("dual_rail_striped", MB8),
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "striped / best single rail at 8MB (acceptance: >= 1.5)",
        1.67,
        r.mb_s_at("dual_rail_striped", MB8) / best_single,
        "x",
    ));
    r.add_anchor(Anchor::new(
        "non-striped dual rail rides BIP (ratio to BIP_only ~ 1)",
        1.0,
        r.mb_s_at("dual_rail_per_network", MB8) / r.mb_s_at("BIP_only", MB8),
        "x",
    ));
    r
}

/// Degraded-rail experiment (robustness extension, no paper analogue):
/// the dual-rail striped ping-pong of "Fig. 10" re-run with faults
/// injected on the Myrinet rail. A lossy rail pays a retransmission
/// tax; a rail that is hard down from the start is detected (attempts
/// exhausted), declared dead, and the pair falls back to the SCI wire
/// alone. The fault seed is fixed so the report is reproducible.
pub fn degraded(iters: usize) -> Report {
    degraded_with_channels(iters).0
}

/// Per-channel reliability counters of one scenario, in channel order.
pub type ChannelCounters = Vec<(String, madeleine::FaultCounters)>;

/// [`degraded`] plus each scenario's per-channel reliability breakdown
/// (the `degraded` binary prints it alongside the bandwidth tables —
/// the SCI rail should stay clean while the faulted BIP rail absorbs
/// every retransmission).
pub fn degraded_with_channels(iters: usize) -> (Report, Vec<(&'static str, ChannelCounters)>) {
    const SEED: u64 = 0xBEEF;
    let sizes = [4usize, 1 << 20, MB8];
    let faulted = |plan: Option<FaultPlan>| {
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        t.add_network(Protocol::Sisci, [a, b]);
        match plan {
            Some(p) => t.add_network_with_fault(Protocol::Bip, p, [a, b]),
            None => t.add_network(Protocol::Bip, [a, b]),
        };
        t
    };
    let mut r = Report::new(
        "degraded",
        "Dual-rail striping under faults: clean vs lossy BIP vs BIP hard down",
    );
    let (clean, clean_sess) = mpi_pingpong_session(
        faulted(None),
        ch_mad_policy(PolicyMode::Striped),
        &sizes,
        iters,
    );
    let (lossy, lossy_sess) = mpi_pingpong_session(
        faulted(Some(FaultPlan::new(SEED).with_loss(0.05))),
        ch_mad_policy(PolicyMode::Striped),
        &sizes,
        iters,
    );
    let (dead, dead_sess) = mpi_pingpong_session(
        faulted(Some(FaultPlan::new(SEED).link_down_from(VirtualTime(0)))),
        ch_mad_policy(PolicyMode::Striped),
        &sizes,
        iters,
    );
    let (lossy_c, dead_c) = (lossy_sess.fault_counters(), dead_sess.fault_counters());
    let dead_failovers = dead_sess.failovers();
    r.add_series("dual_rail_clean", &clean);
    r.add_series("BIP_5pct_loss", &lossy);
    r.add_series("BIP_hard_down", &dead);
    r.add_anchor(Anchor::new(
        "clean striped 8MB bandwidth (Fig 10 target)",
        190.0,
        r.mb_s_at("dual_rail_clean", MB8),
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "lossy rail 8MB bandwidth / clean (retransmit tax < 1)",
        0.95,
        r.mb_s_at("BIP_5pct_loss", MB8) / r.mb_s_at("dual_rail_clean", MB8),
        "x",
    ));
    r.add_anchor(Anchor::new(
        "hard-down 8MB bandwidth (falls back to the SCI wire)",
        82.6,
        r.mb_s_at("BIP_hard_down", MB8),
        "MB",
    ));
    r.add_anchor(Anchor::new(
        "lossy rail retransmissions over the sweep (nonzero)",
        2.0,
        lossy_c.retransmits as f64,
        "n",
    ));
    // Only the first sender storms the dead rail; the reverse
    // direction inherits the shared dead-pair set and never tries it.
    r.add_anchor(Anchor::new(
        "hard-down rail failovers (first sender discovers)",
        1.0,
        dead_failovers as f64,
        "n",
    ));
    r.add_anchor(Anchor::new(
        "hard-down rank pairs declared dead",
        1.0,
        dead_c.dead_pairs as f64,
        "n",
    ));
    let channels = vec![
        ("dual_rail_clean", clean_sess.per_channel_counters()),
        ("BIP_5pct_loss", lossy_sess.per_channel_counters()),
        ("BIP_hard_down", dead_sess.per_channel_counters()),
    ];
    (r, channels)
}

/// The paper's §5.2–5.4 overhead decomposition targets for a 4 B eager
/// message (µs): packing overhead (the second packing operation, i.e.
/// the header segment), handling overhead (request management, thread
/// switching, demultiplexing), and the resulting total ch_mad − raw
/// gap stated in the running text (Figures 6–8).
pub const OVERHEAD_TARGETS: [(Protocol, f64, f64, f64); 3] = [
    (Protocol::Tcp, 21.0, 7.0, 28.0),
    (Protocol::Sisci, 6.5, 8.5, 15.0),
    (Protocol::Bip, 4.5, 6.5, 11.0),
];

/// One protocol's measured overhead decomposition at 4 B, every figure
/// taken from the metrics registry's span histograms (means over the
/// measured iterations, warm-up excluded) plus the two ping-pong
/// latencies themselves.
pub struct OverheadRow {
    pub protocol: Protocol,
    /// One-way 4 B latency: raw Madeleine, and the full MPI stack.
    pub raw_us: f64,
    pub mpi_us: f64,
    /// Mean `span/pack/...` duration per packing operation.
    pub pack_raw_us: f64,
    pub pack_mpi_us: f64,
    /// Mean `span/unpack/...` duration per unpacking operation.
    pub unpack_raw_us: f64,
    pub unpack_mpi_us: f64,
    /// Mean `poll_detect/...` delay: message arrival → receiver notices.
    pub detect_raw_us: f64,
    pub detect_mpi_us: f64,
    /// Mean `span/setup/...`: ch_mad send entry → packing begins.
    pub setup_us: f64,
    /// Mean `span/handle/...`: packet noticed on the polling thread →
    /// the receiving rank observes the completion in `wait`.
    pub handle_us: f64,
    /// Mean `span/post/adi`: ADI receive-posting cost (request
    /// management, mostly overlapped with the flight in a ping-pong).
    pub post_us: f64,
    /// Full registry snapshots (the `overhead` binary's `--hists` flag
    /// dumps them for inspection).
    pub raw_metrics: MetricsSnapshot,
    pub mpi_metrics: MetricsSnapshot,
}

impl OverheadRow {
    /// Total overhead of the MPI stack over raw Madeleine (the paper's
    /// Figures 6–8 gap).
    pub fn total_us(&self) -> f64 {
        self.mpi_us - self.raw_us
    }

    /// Packing overhead: the growth of the packing span caused by
    /// sending the ch_mad header as a second packing operation. The
    /// paper measures this directly (≈ the link's `extra_segment`).
    pub fn packing_us(&self) -> f64 {
        self.pack_mpi_us - self.pack_raw_us
    }

    /// Handling overhead composed from span measurements: send-side
    /// setup, ADI receive posting, receive-side handling (demux →
    /// completion observed, which subsumes the unpacking work the raw
    /// baseline also does on its own thread — hence the subtraction),
    /// and the change in poll detection delay. This is per-message CPU
    /// cost; the posting part is normally overlapped with the flight,
    /// so handling can legitimately exceed the observed latency gap
    /// minus packing (see [`OverheadRow::overlap_us`]).
    pub fn handling_us(&self) -> f64 {
        self.setup_us + self.post_us + self.handle_us - (self.unpack_raw_us - self.recv_fixed_us())
            + (self.detect_mpi_us - self.detect_raw_us)
    }

    /// Handling work hidden from the latency gap: packing + handling
    /// minus the observed total. Positive when part of the handling
    /// (receive posting) overlaps the message flight; negative when
    /// costs outside any span (header wire serialization, MPI-layer
    /// glue) show up in the gap instead.
    pub fn overlap_us(&self) -> f64 {
        self.packing_us() + self.handling_us() - self.total_us()
    }

    fn recv_fixed_us(&self) -> f64 {
        self.protocol.model().recv_fixed.as_micros_f64()
    }

    /// CostModel cross-check for the packing column: the link model's
    /// `extra_segment` is what the second packing operation should
    /// cost by construction.
    pub fn model_packing_us(&self) -> f64 {
        self.protocol.model().extra_segment.as_micros_f64()
    }
}

/// Measure the §5 overhead decomposition: for each protocol run a 4 B
/// ping-pong over raw Madeleine and over the full MPI stack (metrics
/// reset after warm-up) and extract the span means.
pub fn overhead_rows(iters: usize) -> Vec<OverheadRow> {
    OVERHEAD_TARGETS
        .iter()
        .map(|&(proto, _, _, _)| {
            let name = proto.name();
            let (raw_s, raw_m) = raw_madeleine_pingpong_metrics(proto, &[4], iters);
            let (mpi_s, mpi_m) = mpi_pingpong_metrics(
                Topology::single_network(2, proto),
                ch_mad_world(),
                &[4],
                iters,
            );
            let mean =
                |m: &MetricsSnapshot, key: &str| m.hist(key).map(|h| h.mean_us()).unwrap_or(0.0);
            OverheadRow {
                protocol: proto,
                raw_us: raw_s[0].1.as_micros_f64(),
                mpi_us: mpi_s[0].1.as_micros_f64(),
                pack_raw_us: mean(&raw_m, &format!("span/pack/{name}")),
                pack_mpi_us: mean(&mpi_m, &format!("span/pack/{name}")),
                unpack_raw_us: mean(&raw_m, &format!("span/unpack/{name}")),
                unpack_mpi_us: mean(&mpi_m, &format!("span/unpack/{name}")),
                detect_raw_us: mean(&raw_m, &format!("poll_detect/{name}")),
                detect_mpi_us: mean(&mpi_m, &format!("poll_detect/{name}")),
                setup_us: mean(&mpi_m, &format!("span/setup/{name}")),
                handle_us: mean(&mpi_m, &format!("span/handle/{name}")),
                post_us: mean(&mpi_m, "span/post/adi"),
                raw_metrics: raw_m,
                mpi_metrics: mpi_m,
            }
        })
        .collect()
}

/// §5 overhead decomposition as a Report: packing and handling anchors
/// per protocol against the paper's stated numbers, plus a CostModel
/// cross-check (`extra_segment` vs the measured pack-span growth and
/// `AdiCosts::send_setup` vs the measured setup span).
pub fn overhead(iters: usize) -> Report {
    overhead_report(&overhead_rows(iters))
}

/// Package already-measured [`OverheadRow`]s as a Report (the
/// `overhead` binary measures once and both prints the decomposition
/// table and emits this).
pub fn overhead_report(rows: &[OverheadRow]) -> Report {
    let mut r = Report::new(
        "overhead",
        "§5 overhead decomposition: packing vs handling, from span measurements",
    );
    let adi = AdiCosts::calibrated();
    for (row, &(_, pack_t, handle_t, total_t)) in rows.iter().zip(OVERHEAD_TARGETS.iter()) {
        let name = row.protocol.name();
        r.add_anchor(Anchor::new(
            format!("{name}: packing overhead (pack-span growth)"),
            pack_t,
            row.packing_us(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: handling overhead (from spans)"),
            handle_t,
            row.handling_us(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: total ch_mad - raw gap at 4B"),
            total_t,
            row.total_us(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: pack-span growth vs model extra_segment"),
            row.model_packing_us(),
            row.packing_us(),
            "us",
        ));
        r.add_anchor(Anchor::new(
            format!("{name}: setup span vs AdiCosts::send_setup"),
            adi.send_setup.as_micros_f64(),
            row.setup_us,
            "us",
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    // The heavyweight shape assertions live in the workspace-level
    // integration tests; here we only make sure each constructor runs
    // with a tiny iteration count and produces the advertised series.
    #[test]
    fn table1_smoke() {
        let r = table1(1);
        assert_eq!(r.series.len(), 3);
        assert_eq!(r.anchors.len(), 6);
    }

    #[test]
    fn fig9_smoke() {
        let r = fig9(1);
        assert_eq!(r.series.len(), 2);
        // The TCP polling thread must cost something at small sizes.
        assert!(r.us_at("SCI_thread_+_TCP_thread", 4) > r.us_at("SCI_thread_only", 4));
    }

    #[test]
    fn multirail_striping_beats_best_single_rail() {
        let r = multirail(1);
        assert_eq!(r.series.len(), 5);
        let best_single = r.mb_s_at("SCI_only", MB8).max(r.mb_s_at("BIP_only", MB8));
        let striped = r.mb_s_at("dual_rail_striped", MB8);
        // The acceptance bar: striping exceeds the best single rail's
        // 8 MB ping-pong bandwidth by >= 50%.
        assert!(
            striped >= 1.5 * best_single,
            "striped {striped:.1} MB/s vs best single rail {best_single:.1} MB/s"
        );
        // Without striping, the dual-rail pair just rides BIP.
        let per_network = r.mb_s_at("dual_rail_per_network", MB8);
        let bip = r.mb_s_at("BIP_only", MB8);
        assert!(
            (per_network / bip - 1.0).abs() < 0.05,
            "{per_network} vs {bip}"
        );
    }

    #[test]
    fn degraded_rail_smoke() {
        let r = degraded(1);
        assert_eq!(r.series.len(), 3);
        let clean = r.mb_s_at("dual_rail_clean", MB8);
        let lossy = r.mb_s_at("BIP_5pct_loss", MB8);
        let dead = r.mb_s_at("BIP_hard_down", MB8);
        // A lossy rail can only slow the pair down.
        assert!(lossy <= clean, "lossy {lossy:.1} vs clean {clean:.1}");
        // A dead rail costs the striping win: bandwidth drops to
        // roughly the SCI wire alone (clean striped is ~2.3x SCI).
        assert!(
            dead < 0.6 * clean && dead > 60.0,
            "hard-down {dead:.1} MB/s vs clean striped {clean:.1} MB/s"
        );
        let measured = |what: &str| {
            r.anchors
                .iter()
                .find(|a| a.what.contains(what))
                .expect("anchor present")
                .measured
        };
        assert!(measured("retransmissions") > 0.0);
        assert!(measured("failovers") >= 1.0);
        assert!(measured("declared dead") >= 1.0);
    }
}
