//! Ping-pong harnesses (the paper's mpptest methodology): one-way time
//! is half the round trip, averaged over several iterations after a
//! warm-up round.

use bytes::Bytes;
use madeleine::{FaultCounters, ReceiveMode, SendMode, Session};
use marcel::{CostModel, Kernel, MetricsSnapshot, VirtualDuration};
use mpich::{run_world_full, Placement, WorldConfig};
use simnet::{Protocol, Topology};

/// A measured series: (message size, one-way time).
pub type Series = Vec<(usize, VirtualDuration)>;

/// One-way bandwidth in MB/s (1 MB = 2^20 bytes, as in the paper).
pub fn bandwidth_mb_s(size: usize, oneway: VirtualDuration) -> f64 {
    if oneway.is_zero() {
        return f64::INFINITY;
    }
    size as f64 / (1 << 20) as f64 / oneway.as_secs_f64()
}

/// Ping-pong through the full MPI stack between ranks 0 and 1 of a
/// 2-node world.
pub fn mpi_pingpong(
    topology: Topology,
    config: WorldConfig,
    sizes: &[usize],
    iters: usize,
) -> Series {
    mpi_pingpong_counters(topology, config, sizes, iters).0
}

/// Like [`mpi_pingpong`], additionally returning the session's
/// reliable-delivery counters and failover count — the degraded-rail
/// experiment reports them next to the bandwidth figures.
pub fn mpi_pingpong_counters(
    topology: Topology,
    config: WorldConfig,
    sizes: &[usize],
    iters: usize,
) -> (Series, FaultCounters, u64) {
    let (series, session) = mpi_pingpong_session(topology, config, sizes, iters);
    (series, session.fault_counters(), session.failovers())
}

/// Like [`mpi_pingpong`], additionally returning the finished Madeleine
/// session itself — callers that want the per-channel reliability
/// breakdown ([`Session::per_channel_counters`]) rather than the
/// aggregate totals read it off after the run.
pub fn mpi_pingpong_session(
    topology: Topology,
    config: WorldConfig,
    sizes: &[usize],
    iters: usize,
) -> (Series, std::sync::Arc<Session>) {
    let sizes: Vec<usize> = sizes.to_vec();
    let (results, _kernel, session) =
        run_world_full(topology, Placement::OneRankPerNode, config, move |comm| {
            assert!(comm.size() >= 2, "ping-pong needs two ranks");
            if comm.rank() == 0 {
                let mut out = Series::new();
                for &n in &sizes {
                    let data = vec![0u8; n];
                    comm.send(&data, 1, 0);
                    comm.recv(n, Some(1), Some(0));
                    let t0 = marcel::now();
                    for _ in 0..iters {
                        comm.send(&data, 1, 0);
                        let (back, _) = comm.recv(n, Some(1), Some(0));
                        assert_eq!(back.len(), n);
                    }
                    out.push((n, (marcel::now() - t0) / (2 * iters as u64)));
                }
                Some(out)
            } else if comm.rank() == 1 {
                for &n in &sizes {
                    for _ in 0..iters + 1 {
                        let (data, _) = comm.recv(n, Some(0), Some(0));
                        comm.send(&data, 0, 0);
                    }
                }
                None
            } else {
                None
            }
        })
        .expect("ping-pong world failed");
    let series = results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 produced the series");
    (series, session)
}

/// Like [`mpi_pingpong`], additionally returning the metrics-registry
/// snapshot covering the *measured* iterations only: rank 0 resets the
/// registry after each size's warm-up exchange and snapshots it right
/// after its timed loop, before the Finalize barrier — so span
/// histograms (`span/pack/...`, `span/handle/...`) are not polluted by
/// warm-up first-message effects or shutdown traffic. With several
/// sizes the snapshot covers only the last size's iterations; the
/// overhead bench calls this with a single size.
pub fn mpi_pingpong_metrics(
    topology: Topology,
    config: WorldConfig,
    sizes: &[usize],
    iters: usize,
) -> (Series, MetricsSnapshot) {
    let sizes: Vec<usize> = sizes.to_vec();
    let (results, _kernel, _session) =
        run_world_full(topology, Placement::OneRankPerNode, config, move |comm| {
            assert!(comm.size() >= 2, "ping-pong needs two ranks");
            if comm.rank() == 0 {
                let mut out = Series::new();
                for &n in &sizes {
                    let data = vec![0u8; n];
                    comm.send(&data, 1, 0);
                    comm.recv(n, Some(1), Some(0));
                    marcel::obs::reset_metrics();
                    let t0 = marcel::now();
                    for _ in 0..iters {
                        comm.send(&data, 1, 0);
                        let (back, _) = comm.recv(n, Some(1), Some(0));
                        assert_eq!(back.len(), n);
                    }
                    out.push((n, (marcel::now() - t0) / (2 * iters as u64)));
                }
                let snap = marcel::obs::with_metrics(|m| m.snapshot()).unwrap_or_default();
                // Release rank 1 only after the snapshot: its Finalize
                // traffic must not leak into the measured histograms.
                comm.send(&[0u8], 1, 1);
                Some((out, snap))
            } else if comm.rank() == 1 {
                for &n in &sizes {
                    for _ in 0..iters + 1 {
                        let (data, _) = comm.recv(n, Some(0), Some(0));
                        comm.send(&data, 0, 0);
                    }
                }
                comm.recv(1, Some(0), Some(1));
                None
            } else {
                None
            }
        })
        .expect("ping-pong world failed");
    results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 produced the series")
}

/// Ping-pong on the raw Madeleine interface (one packing operation per
/// message — the paper's Table 1 methodology).
pub fn raw_madeleine_pingpong(protocol: Protocol, sizes: &[usize], iters: usize) -> Series {
    let kernel = Kernel::new(CostModel::calibrated());
    let session = Session::single_network(&kernel, 2, protocol);
    let channel = session.channels()[0].clone();
    let e0 = channel.endpoint(0).expect("rank 0 is a member");
    let e1 = channel.endpoint(1).expect("rank 1 is a member");
    let sizes0: Vec<usize> = sizes.to_vec();
    let h = kernel.spawn("rank0", move || {
        let exchange = |payload: &Bytes, n: usize| {
            let mut conn = e0.begin_packing(1).expect("rank 1 is a member");
            conn.pack_bytes(payload.clone(), SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing().expect("fault-free send");
            let mut conn = e0.begin_unpacking().expect("open channel");
            let back = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_unpacking();
            assert_eq!(back.len(), n);
        };
        let mut out = Series::new();
        for &n in &sizes0 {
            let payload = Bytes::from(vec![0u8; n]);
            exchange(&payload, n); // warm-up
            let t0 = marcel::now();
            for _ in 0..iters {
                exchange(&payload, n);
            }
            out.push((n, (marcel::now() - t0) / (2 * iters as u64)));
        }
        out
    });
    let sizes1: Vec<usize> = sizes.to_vec();
    kernel.spawn("rank1", move || {
        for &n in &sizes1 {
            for _ in 0..iters + 1 {
                let mut conn = e1.begin_unpacking().expect("open channel");
                let data = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                assert_eq!(data.len(), n);
                let mut conn = e1.begin_packing(0).expect("rank 0 is a member");
                conn.pack_bytes(data, SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_packing().expect("fault-free send");
            }
        }
    });
    kernel.run().expect("raw madeleine ping-pong failed");
    h.join_outcome().expect("rank0 series")
}

/// Like [`raw_madeleine_pingpong`], additionally returning the
/// metrics-registry snapshot covering the measured iterations (reset
/// after each size's warm-up, snapshot right after rank 0's timed
/// loop). Used as the baseline of the §5 overhead decomposition: its
/// `span/pack/...` and `span/unpack/...` histograms are the cost of
/// one bare Madeleine packing/unpacking operation, without any MPI
/// layer on top.
pub fn raw_madeleine_pingpong_metrics(
    protocol: Protocol,
    sizes: &[usize],
    iters: usize,
) -> (Series, MetricsSnapshot) {
    let kernel = Kernel::new(CostModel::calibrated());
    let session = Session::single_network(&kernel, 2, protocol);
    let channel = session.channels()[0].clone();
    let e0 = channel.endpoint(0).expect("rank 0 is a member");
    let e1 = channel.endpoint(1).expect("rank 1 is a member");
    let sizes0: Vec<usize> = sizes.to_vec();
    let h = kernel.spawn("rank0", move || {
        let exchange = |payload: &Bytes, n: usize| {
            let mut conn = e0.begin_packing(1).expect("rank 1 is a member");
            conn.pack_bytes(payload.clone(), SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing().expect("fault-free send");
            let mut conn = e0.begin_unpacking().expect("open channel");
            let back = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_unpacking();
            assert_eq!(back.len(), n);
        };
        let mut out = Series::new();
        for &n in &sizes0 {
            let payload = Bytes::from(vec![0u8; n]);
            exchange(&payload, n); // warm-up
            marcel::obs::reset_metrics();
            let t0 = marcel::now();
            for _ in 0..iters {
                exchange(&payload, n);
            }
            out.push((n, (marcel::now() - t0) / (2 * iters as u64)));
        }
        let snap = marcel::obs::with_metrics(|m| m.snapshot()).unwrap_or_default();
        (out, snap)
    });
    let sizes1: Vec<usize> = sizes.to_vec();
    kernel.spawn("rank1", move || {
        for &n in &sizes1 {
            for _ in 0..iters + 1 {
                let mut conn = e1.begin_unpacking().expect("open channel");
                let data = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                assert_eq!(data.len(), n);
                let mut conn = e1.begin_packing(0).expect("rank 0 is a member");
                conn.pack_bytes(data, SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_packing().expect("fault-free send");
            }
        }
    });
    kernel.run().expect("raw madeleine ping-pong failed");
    h.join_outcome().expect("rank0 series")
}

/// The topology of the multi-protocol impact experiment (Fig. 9): two
/// nodes connected by SCI, optionally *also* by TCP. All measured
/// traffic rides SCI; the TCP channel's only effect is its polling
/// thread.
pub fn fig9_topology(with_tcp: bool) -> Topology {
    let mut t = Topology::new();
    let a = t.add_node("a", 2);
    let b = t.add_node("b", 2);
    t.add_network(Protocol::Sisci, [a, b]);
    if with_tcp {
        t.add_network(Protocol::Tcp, [a, b]);
    }
    t
}

/// The topology of the multi-rail striping experiment ("Fig. 10", an
/// extension beyond the paper): two nodes connected by BOTH SCI and
/// Myrinet. With the striped policy, rendezvous DATA splits across the
/// two rails; otherwise all traffic rides the faster one (BIP).
pub fn multirail_topology() -> Topology {
    let mut t = Topology::new();
    let a = t.add_node("a", 2);
    let b = t.add_node("b", 2);
    t.add_network(Protocol::Sisci, [a, b]);
    t.add_network(Protocol::Bip, [a, b]);
    t
}

/// The paper's standard sweep for transfer-time plots (1 B – 1 KB).
pub fn latency_sizes() -> Vec<usize> {
    let mut v = vec![1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    v.dedup();
    v
}

/// The paper's standard sweep for bandwidth plots (1 B – 1 MB).
pub fn bandwidth_sizes() -> Vec<usize> {
    (0..=20).map(|p| 1usize << p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweeps() {
        assert_eq!(latency_sizes().first(), Some(&1));
        assert_eq!(latency_sizes().last(), Some(&1024));
        assert_eq!(bandwidth_sizes().last(), Some(&(1 << 20)));
    }

    #[test]
    fn bandwidth_math() {
        // 1 MB in 0.1 s -> 10 MB/s.
        let bw = bandwidth_mb_s(1 << 20, VirtualDuration::from_secs_f64(0.1));
        assert!((bw - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig9_topologies_validate() {
        fig9_topology(false).validate().unwrap();
        fig9_topology(true).validate().unwrap();
        assert_eq!(fig9_topology(true).protocols().len(), 2);
    }

    #[test]
    fn multirail_topology_validates() {
        multirail_topology().validate().unwrap();
        assert_eq!(multirail_topology().protocols().len(), 2);
    }
}
