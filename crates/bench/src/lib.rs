//! # bench — experiment harnesses for the MPICH/Madeleine reproduction
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | binary   | reproduces | what it runs |
//! |----------|------------|--------------|
//! | `table1` | Table 1    | raw Madeleine latency + 8 MB bandwidth over TCP, BIP, SISCI |
//! | `table2` | Table 2    | ch_mad 0 B/4 B latency + 8 MB bandwidth over the three networks |
//! | `fig6`   | Figure 6   | TCP: ch_mad vs ch_p4 vs raw Madeleine (time + bandwidth) |
//! | `fig7`   | Figure 7   | SCI: ch_mad vs ScaMPI vs SCI-MPICH vs raw Madeleine |
//! | `fig8`   | Figure 8   | Myrinet: ch_mad vs MPI-GM vs MPICH-PM vs raw Madeleine |
//! | `fig9`   | Figure 9   | SCI alone vs SCI + TCP polling thread |
//! | `multirail` | "Fig 10" (extension) | multi-rail striping: SCI+BIP dual rail vs each rail alone |
//! | `degraded` | robustness (extension) | dual-rail striping with a lossy or hard-down Myrinet rail |
//! | `overhead` | §5.2–5.4 | packing-vs-handling decomposition of the ch_mad gap, from span measurements |
//! | `trace`  | Figure 4   | typed event timeline of one ping-pong; `--chrome` writes Perfetto JSON |
//! | `all`    | everything | runs the nine experiments back to back |
//!
//! Criterion benches (`cargo bench`) wrap the same harnesses
//! (`benches/experiments.rs`) plus the design-choice ablations from
//! DESIGN.md §5 (`benches/ablations.rs`).

pub mod experiments;
pub mod pingpong;
pub mod report;
pub mod soakcfg;

pub use pingpong::{
    bandwidth_mb_s, bandwidth_sizes, fig9_topology, latency_sizes, mpi_pingpong,
    mpi_pingpong_counters, mpi_pingpong_metrics, mpi_pingpong_session, multirail_topology,
    raw_madeleine_pingpong, raw_madeleine_pingpong_metrics, Series,
};
pub use report::{Anchor, NamedSeries, Report};
