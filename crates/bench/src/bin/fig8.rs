//! Regenerates the paper's fig8 (run: `cargo run -p bench --bin fig8 [--release] [-- <iters>]`).

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let report = bench::experiments::fig8(iters);
    report.emit(true, true);
}
