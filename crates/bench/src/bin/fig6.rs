//! Regenerates the paper's fig6 (run: `cargo run -p bench --bin fig6 [--release] [-- <iters>]`).

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let report = bench::experiments::fig6(iters);
    report.emit(true, true);
}
