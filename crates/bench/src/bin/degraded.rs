//! Degraded-rail experiment (robustness extension): dual-rail striping
//! with faults injected on the Myrinet rail. Alongside the bandwidth
//! tables it prints each scenario's per-channel reliability counters,
//! showing the faulted BIP rail absorbing the retransmissions while
//! the SCI rail stays clean.
//! `cargo run -p bench --bin degraded --release [-- <iters>]`.

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let (report, channels) = bench::experiments::degraded_with_channels(iters);
    report.emit(false, true);
    println!("\nper-channel reliability counters");
    println!(
        "{:<16} {:<10} {:>11} {:>7} {:>10} {:>9} {:>10}",
        "scenario", "channel", "retransmits", "drops", "duplicates", "deferrals", "dead_pairs"
    );
    for (scenario, chans) in &channels {
        for (name, c) in chans {
            println!(
                "{:<16} {:<10} {:>11} {:>7} {:>10} {:>9} {:>10}",
                scenario, name, c.retransmits, c.drops, c.duplicates, c.deferrals, c.dead_pairs
            );
        }
    }
}
