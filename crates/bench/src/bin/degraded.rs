//! Degraded-rail experiment (robustness extension): dual-rail striping
//! with faults injected on the Myrinet rail.
//! `cargo run -p bench --bin degraded --release [-- <iters>]`.

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    bench::experiments::degraded(iters).emit(false, true);
}
