//! Soak bench: a long faulted message-storm campaign driven through the
//! durable journal, with injected kill points — the crash-resume and
//! divergence-bisect machinery exercised end to end at bench scale.
//!
//! Output is line-oriented for `ci/check_journal.py`:
//!   `soak-det-a <json>` / `soak-det-b <json>` — journal digest and
//!     shape of two independent uninterrupted runs (must be identical).
//!   `soak-cross <json>` — the same campaign under `Ticketed(2)`; the
//!     journal deliberately excludes the execution policy, so its
//!     digest must equal the Seed runs'.
//!   `soak-resume <json>` — one line per kill point: the campaign is
//!     run against a byte-budgeted sink that dies mid-record, the
//!     salvaged prefix (torn tail and all) is resumed, and the resumed
//!     journal is compared byte for byte against the uninterrupted one.
//!   `soak-bisect <json>` — a deliberately perturbed campaign bisected
//!     against the reference: first divergent leg + snapshot probes.
//!   `soak-summary <json>` — totals.
//!
//! `cargo run -p bench --bin soak --release [-- <legs>]`
//! `cargo run -p bench --bin soak --release -- --golden PATH` writes
//! the journal format witness (every record kind and event variant with
//! fixed values) to PATH and exits — the source of the committed
//! `ci/journal_golden.bin`.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use bench::soakcfg::{full_run, leg_factory, soak_cfg, SNAPSHOT_EVERY};
use marcel::{ExecPolicy, MemSink};
use mpich::journal::{bisect, scan, BisectOutcome, Tail};
use mpich::{resume_campaign, run_campaign};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--golden") {
        let path = args.get(i + 1).expect("--golden needs a path");
        std::fs::write(path, marcel::journal::format_witness()).expect("write golden");
        println!("golden journal witness written to {path}");
        return;
    }
    let legs: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("== soak — {legs}-leg faulted storm campaign, snapshot every {SNAPSHOT_EVERY} ==");
    let t0 = Instant::now();

    // A/B determinism of the uninterrupted campaign.
    let (bytes_a, report_a) = full_run(legs, ExecPolicy::Seed);
    let (bytes_b, report_b) = full_run(legs, ExecPolicy::Seed);
    for (label, bytes, report) in [("a", &bytes_a, &report_a), ("b", &bytes_b, &report_b)] {
        println!(
            "soak-det-{label} {{\"digest\":{},\"bytes\":{},\"records\":{},\"events\":{},\"end_ns\":{}}}",
            report.digest, report.bytes, report.records_appended, report.events_appended,
            report.end_ns
        );
        assert_eq!(bytes.len() as u64, report.bytes);
    }
    assert_eq!(bytes_a, bytes_b, "A/B soak journals differ");

    // Cross-policy: Ticketed(2) must journal the exact same bytes.
    let (bytes_t, report_t) = full_run(legs, ExecPolicy::Ticketed(2));
    println!(
        "soak-cross {{\"workers\":2,\"digest\":{},\"identical\":{}}}",
        report_t.digest,
        bytes_t == bytes_a
    );
    assert_eq!(bytes_t, bytes_a, "Ticketed(2) soak journal differs");

    // Kill points: byte-budgeted sinks that die mid-record, then resume
    // from the salvaged prefix (alternating resume policy).
    let full_len = bytes_a.len();
    let kill_points = [full_len / 3, full_len * 2 / 3, full_len - 3];
    for (k, &budget) in kill_points.iter().enumerate() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let crash = run_campaign(
            &soak_cfg(legs, ExecPolicy::Seed),
            MemSink::with_budget(buf.clone(), budget as u64),
            leg_factory(None),
        );
        assert!(crash.is_err(), "budgeted sink failed to kill the campaign");
        let salvaged = buf.lock().unwrap().clone();
        let scanned = scan(&salvaged).expect("salvaged prefix scans");
        let torn = matches!(scanned.tail, Tail::Torn { .. });
        let resume_exec = if k % 2 == 0 {
            ExecPolicy::Ticketed(2)
        } else {
            ExecPolicy::Seed
        };
        let buf2 = Arc::new(Mutex::new(Vec::new()));
        let report = resume_campaign(
            &soak_cfg(legs, resume_exec),
            &salvaged,
            MemSink::new(buf2.clone()),
            leg_factory(None),
        )
        .expect("resume from kill point failed");
        let resumed = buf2.lock().unwrap().clone();
        let ok = resumed == bytes_a && report.digest == report_a.digest;
        println!(
            "soak-resume {{\"cut\":{budget},\"torn\":{torn},\"resumed_at_leg\":{},\"legs_run\":{},\"exec\":\"{resume_exec:?}\",\"ok\":{ok}}}",
            report.resumed_at_leg, report.legs_run
        );
        assert!(ok, "resume at cut {budget} is not byte-identical");
    }

    // Bisect demo: perturb the fault seed from the midpoint leg on and
    // locate the first divergent record.
    let perturb_at = legs / 2;
    let buf = Arc::new(Mutex::new(Vec::new()));
    run_campaign(
        &soak_cfg(legs, ExecPolicy::Seed),
        MemSink::new(buf.clone()),
        leg_factory(Some(perturb_at)),
    )
    .expect("perturbed campaign failed");
    let bytes_p = buf.lock().unwrap().clone();
    let identical_ok = matches!(
        bisect(&bytes_a, &bytes_b).expect("bisect a/b"),
        BisectOutcome::Identical
    );
    match bisect(&bytes_a, &bytes_p).expect("bisect a/perturbed") {
        BisectOutcome::Identical => panic!("perturbed campaign bisected as identical"),
        BisectOutcome::Diverged(d) => {
            println!(
                "soak-bisect {{\"identical_ok\":{identical_ok},\"diverged_leg\":{},\"expected_leg\":{perturb_at},\"probes\":{},\"first\":{}}}",
                d.leg,
                d.snapshot_probes,
                serde_free_json_string(&d.a)
            );
            assert_eq!(d.leg, perturb_at, "bisect landed on the wrong leg");
        }
    }

    println!(
        "soak-summary {{\"legs\":{legs},\"digest\":{},\"bytes\":{},\"kill_points\":{},\"wall_ms\":{:.1}}}",
        report_a.digest,
        report_a.bytes,
        kill_points.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
}

/// Minimal JSON string escaping (no serde in the workspace).
fn serde_free_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
