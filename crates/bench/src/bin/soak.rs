//! Soak bench: a long faulted message-storm campaign driven through the
//! durable journal, with injected kill points — the crash-resume and
//! divergence-bisect machinery exercised end to end at bench scale.
//!
//! Output is line-oriented for `ci/check_journal.py`:
//!   `soak-det-a <json>` / `soak-det-b <json>` — journal digest and
//!     shape of two independent uninterrupted runs (must be identical).
//!   `soak-cross <json>` — the same campaign under `Ticketed(2)`; the
//!     journal deliberately excludes the execution policy, so its
//!     digest must equal the Seed runs'.
//!   `soak-resume <json>` — one line per kill point: the campaign is
//!     run against a byte-budgeted sink that dies mid-record, the
//!     salvaged prefix (torn tail and all) is resumed, and the resumed
//!     journal is compared byte for byte against the uninterrupted one.
//!   `soak-bisect <json>` — a deliberately perturbed campaign bisected
//!     against the reference: first divergent leg + snapshot probes.
//!   `soak-summary <json>` — totals.
//!
//! `cargo run -p bench --bin soak --release [-- <legs>]`
//! `cargo run -p bench --bin soak --release -- --golden PATH` writes
//! the journal format witness (every record kind and event variant with
//! fixed values) to PATH and exits — the source of the committed
//! `ci/journal_golden.bin`.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use marcel::{ExecPolicy, MemSink};
use mpich::journal::{bisect, scan, BisectOutcome, Tail};
use mpich::{
    resume_campaign, run_campaign, CampaignConfig, LegCtx, LegSpec, Placement, WorldConfig,
};
use simnet::{FaultPlan, Protocol, Topology};

const SIZES: [usize; 3] = [1, 512, 9 * 1024];
const TAG: i32 = 7;
const SNAPSHOT_EVERY: u64 = 2;
const MASTER_SEED: u64 = 0x50AC; // "SOAK"

fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

fn soak_cfg(legs: u64, exec: ExecPolicy) -> CampaignConfig {
    CampaignConfig {
        label: "soak-storm".to_string(),
        legs,
        snapshot_every: SNAPSHOT_EVERY,
        master_seed: MASTER_SEED,
        exec,
    }
}

/// Dual-rail storm leg over a lossy link; `perturb_from` switches legs
/// at or past that index to a perturbed fault seed (the bisect demo's
/// controlled divergence).
fn leg_factory(perturb_from: Option<u64>) -> impl Fn(&LegCtx) -> LegSpec {
    move |ctx: &LegCtx| {
        let tweak = if perturb_from.is_some_and(|from| ctx.leg >= from) {
            0xB0057
        } else {
            0
        };
        let plan = FaultPlan::new(ctx.seed ^ ctx.fault_cursor ^ tweak)
            .with_loss(0.20)
            .with_ack_loss(0.10);
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        let sci = t.add_network(Protocol::Sisci, [a, b]);
        let bip = t.add_network(Protocol::Bip, [a, b]);
        let mut sci_plan = plan.clone();
        sci_plan.seed ^= 0x5C1_5C1;
        t.set_fault(sci, sci_plan);
        t.set_fault(bip, plan);
        LegSpec {
            label: format!("soak-leg{}", ctx.leg),
            topology: t,
            placement: Placement::OneRankPerNode,
            config: WorldConfig::default(),
            fault_cells: 2,
            program: Arc::new(|comm| {
                let me = comm.rank();
                let peer = 1 - me;
                let mut got = Vec::new();
                if me == 0 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                for &n in &SIZES {
                    got.extend_from_slice(&comm.recv(n, Some(peer), Some(TAG)).0);
                }
                if me == 1 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                got
            }),
        }
    }
}

/// One uninterrupted campaign: journal bytes + report.
fn full_run(legs: u64, exec: ExecPolicy) -> (Vec<u8>, mpich::CampaignReport) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let report = run_campaign(
        &soak_cfg(legs, exec),
        MemSink::new(buf.clone()),
        leg_factory(None),
    )
    .expect("soak campaign failed");
    let bytes = Arc::try_unwrap(buf).unwrap().into_inner().unwrap();
    (bytes, report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--golden") {
        let path = args.get(i + 1).expect("--golden needs a path");
        std::fs::write(path, marcel::journal::format_witness()).expect("write golden");
        println!("golden journal witness written to {path}");
        return;
    }
    let legs: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("== soak — {legs}-leg faulted storm campaign, snapshot every {SNAPSHOT_EVERY} ==");
    let t0 = Instant::now();

    // A/B determinism of the uninterrupted campaign.
    let (bytes_a, report_a) = full_run(legs, ExecPolicy::Seed);
    let (bytes_b, report_b) = full_run(legs, ExecPolicy::Seed);
    for (label, bytes, report) in [("a", &bytes_a, &report_a), ("b", &bytes_b, &report_b)] {
        println!(
            "soak-det-{label} {{\"digest\":{},\"bytes\":{},\"records\":{},\"events\":{},\"end_ns\":{}}}",
            report.digest, report.bytes, report.records_appended, report.events_appended,
            report.end_ns
        );
        assert_eq!(bytes.len() as u64, report.bytes);
    }
    assert_eq!(bytes_a, bytes_b, "A/B soak journals differ");

    // Cross-policy: Ticketed(2) must journal the exact same bytes.
    let (bytes_t, report_t) = full_run(legs, ExecPolicy::Ticketed(2));
    println!(
        "soak-cross {{\"workers\":2,\"digest\":{},\"identical\":{}}}",
        report_t.digest,
        bytes_t == bytes_a
    );
    assert_eq!(bytes_t, bytes_a, "Ticketed(2) soak journal differs");

    // Kill points: byte-budgeted sinks that die mid-record, then resume
    // from the salvaged prefix (alternating resume policy).
    let full_len = bytes_a.len();
    let kill_points = [full_len / 3, full_len * 2 / 3, full_len - 3];
    for (k, &budget) in kill_points.iter().enumerate() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let crash = run_campaign(
            &soak_cfg(legs, ExecPolicy::Seed),
            MemSink::with_budget(buf.clone(), budget as u64),
            leg_factory(None),
        );
        assert!(crash.is_err(), "budgeted sink failed to kill the campaign");
        let salvaged = buf.lock().unwrap().clone();
        let scanned = scan(&salvaged).expect("salvaged prefix scans");
        let torn = matches!(scanned.tail, Tail::Torn { .. });
        let resume_exec = if k % 2 == 0 {
            ExecPolicy::Ticketed(2)
        } else {
            ExecPolicy::Seed
        };
        let buf2 = Arc::new(Mutex::new(Vec::new()));
        let report = resume_campaign(
            &soak_cfg(legs, resume_exec),
            &salvaged,
            MemSink::new(buf2.clone()),
            leg_factory(None),
        )
        .expect("resume from kill point failed");
        let resumed = buf2.lock().unwrap().clone();
        let ok = resumed == bytes_a && report.digest == report_a.digest;
        println!(
            "soak-resume {{\"cut\":{budget},\"torn\":{torn},\"resumed_at_leg\":{},\"legs_run\":{},\"exec\":\"{resume_exec:?}\",\"ok\":{ok}}}",
            report.resumed_at_leg, report.legs_run
        );
        assert!(ok, "resume at cut {budget} is not byte-identical");
    }

    // Bisect demo: perturb the fault seed from the midpoint leg on and
    // locate the first divergent record.
    let perturb_at = legs / 2;
    let buf = Arc::new(Mutex::new(Vec::new()));
    run_campaign(
        &soak_cfg(legs, ExecPolicy::Seed),
        MemSink::new(buf.clone()),
        leg_factory(Some(perturb_at)),
    )
    .expect("perturbed campaign failed");
    let bytes_p = buf.lock().unwrap().clone();
    let identical_ok = matches!(
        bisect(&bytes_a, &bytes_b).expect("bisect a/b"),
        BisectOutcome::Identical
    );
    match bisect(&bytes_a, &bytes_p).expect("bisect a/perturbed") {
        BisectOutcome::Identical => panic!("perturbed campaign bisected as identical"),
        BisectOutcome::Diverged(d) => {
            println!(
                "soak-bisect {{\"identical_ok\":{identical_ok},\"diverged_leg\":{},\"expected_leg\":{perturb_at},\"probes\":{},\"first\":{}}}",
                d.leg,
                d.snapshot_probes,
                serde_free_json_string(&d.a)
            );
            assert_eq!(d.leg, perturb_at, "bisect landed on the wrong leg");
        }
    }

    println!(
        "soak-summary {{\"legs\":{legs},\"digest\":{},\"bytes\":{},\"kill_points\":{},\"wall_ms\":{:.1}}}",
        report_a.digest,
        report_a.bytes,
        kill_points.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
}

/// Minimal JSON string escaping (no serde in the workspace).
fn serde_free_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
