//! Hot-path wall-clock bench: a many-rank all-to-all small-message
//! storm driving the ADI matching engine and the madeleine eager path
//! as hard as the simulator allows. Unlike the paper-figure benches
//! (which report *virtual* time), this one reports HOST wall-clock
//! and allocator traffic — the quantities the O(1) matching store and
//! the copy-free eager path are meant to improve.
//!
//! Output is line-oriented for `ci/check_hotpath.py`:
//!   `hotpath: messages=<n> wall_ms=<t> events_per_sec=<r> allocs=<a> alloc_bytes=<b>`
//! plus a JSON summary on the final line.
//!
//! `cargo run -p bench --bin hotpath --release [-- <iters>]`
//!
//! With `--workers N` the bench instead runs the same storm under
//! `ExecPolicy::Seed` and `ExecPolicy::Ticketed(N)` and emits, for
//! `ci/check_ticketed.py`:
//!   `det-seed <json>` / `det-ticketed <json>` — the deterministic
//!   fingerprint of each run (message count, virtual end time, metrics
//!   digest); the two JSON payloads must be byte-identical.
//!   `wall <json>` — host wall-clock of both engines and the speedup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use marcel::VirtualTime;
use mpich::{run_world, run_world_kernel, ExecPolicy, Placement, PollPolicy, WorldConfig};
use simnet::{Protocol, Topology};

/// Counting wrapper around the system allocator: total allocation
/// calls and bytes requested (frees are not tracked — the interesting
/// figure is how much the hot path asks for, not peak usage).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RANKS: usize = 8;
const MSG: usize = 16;

/// All-to-all storm: every rank bursts `rounds` tagged small eager
/// messages to every peer, then drains its receives in *reverse*
/// arrival order — so the unexpected queue grows to `rounds × (n-1)`
/// entries and every match has to be dug out from the far end, the
/// worst case for a linear scan.
fn storm_once(rounds: usize) -> (u64, f64, u64, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    run_world(
        Topology::single_network(RANKS, Protocol::Sisci),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        move |comm| {
            let me = comm.rank();
            let n = comm.size();
            let payload = vec![me as u8; MSG];
            for round in 0..rounds {
                let tag = round as i32;
                for step in 1..n {
                    comm.send(&payload, (me + step) % n, tag);
                }
            }
            for round in (0..rounds).rev() {
                let tag = round as i32;
                for step in (1..n).rev() {
                    let src = (me + n - step) % n;
                    let (data, _) = comm.recv_bytes(MSG, Some(src), Some(tag));
                    assert_eq!(&data[..], &[src as u8; MSG][..]);
                }
            }
        },
    )
    .expect("storm world failed");
    let wall = t0.elapsed().as_secs_f64();
    let msgs = (RANKS * (RANKS - 1) * rounds) as u64;
    (
        msgs,
        wall,
        ALLOCS.load(Ordering::Relaxed) - a0,
        ALLOC_BYTES.load(Ordering::Relaxed) - b0,
    )
}

/// Best-of-3 storm after one warm-up run. Wall-clock is the min of the
/// measured runs (the standard noise-robust estimator); the allocation
/// figures come from the first measured run — after warm-up has
/// populated the one-time caches (metric-key interning, buffer pools,
/// histogram slots), per-run allocation counts are deterministic.
fn storm(rounds: usize) -> (u64, f64, u64, u64) {
    storm_once(rounds);
    let (msgs, mut wall, allocs, bytes) = storm_once(rounds);
    for _ in 0..2 {
        let r = storm_once(rounds);
        wall = wall.min(r.1);
    }
    (msgs, wall, allocs, bytes)
}

/// One storm under the given exec policy, returning its deterministic
/// fingerprint (virtual end time + metrics digest) and host wall-clock.
fn storm_det(rounds: usize, exec: ExecPolicy) -> (VirtualTime, u64, f64) {
    let t0 = Instant::now();
    let (_, kernel) = run_world_kernel(
        Topology::single_network(RANKS, Protocol::Sisci),
        Placement::OneRankPerNode,
        WorldConfig {
            exec,
            ..WorldConfig::default()
        },
        move |comm| {
            let me = comm.rank();
            let n = comm.size();
            let payload = vec![me as u8; MSG];
            for round in 0..rounds {
                let tag = round as i32;
                for step in 1..n {
                    comm.send(&payload, (me + step) % n, tag);
                }
            }
            for round in (0..rounds).rev() {
                let tag = round as i32;
                for step in (1..n).rev() {
                    let src = (me + n - step) % n;
                    let (data, _) = comm.recv_bytes(MSG, Some(src), Some(tag));
                    assert_eq!(&data[..], &[src as u8; MSG][..]);
                }
            }
        },
    )
    .expect("storm world failed");
    let wall = t0.elapsed().as_secs_f64();
    if let Some(stats) = kernel.exec_stats() {
        eprintln!(
            "  [exec] tickets={} speculated={} ({:.1}%)",
            stats.tickets,
            stats.speculated,
            100.0 * stats.speculated as f64 / stats.tickets.max(1) as f64
        );
    }
    // Digest the rendered metrics report: any divergence in any counter,
    // gauge or histogram shows up as a different fingerprint.
    let report = kernel.metrics().snapshot().to_string();
    let digest = report
        .bytes()
        .fold(0u64, |h, b| marcel::rng::splitmix64(h ^ u64::from(b)));
    (kernel.end_time(), digest, wall)
}

/// The `--workers N` mode: Seed vs Ticketed(N) over the identical storm,
/// best host wall-clock of 3 after one warm-up each.
fn ticketed_mode(rounds: usize, workers: usize) {
    let msgs = (RANKS * (RANKS - 1) * rounds) as u64;
    println!("== ticketed storm — {RANKS}-rank all-to-all, {MSG} B x {rounds} rounds, workers={workers} ==");
    let mut fp = Vec::new();
    for (label, exec) in [
        ("seed", ExecPolicy::Seed),
        ("ticketed", ExecPolicy::Ticketed(workers)),
    ] {
        storm_det(rounds, exec); // warm-up
        let (end, digest, mut wall) = storm_det(rounds, exec);
        for _ in 0..2 {
            wall = wall.min(storm_det(rounds, exec).2);
        }
        println!(
            "det-{label} {{\"messages\":{msgs},\"end_ns\":{},\"metrics_digest\":{digest}}}",
            end.0
        );
        fp.push(wall);
    }
    let (seed_wall, tick_wall) = (fp[0], fp[1]);
    println!(
        "wall {{\"workers\":{workers},\"seed_wall_ms\":{:.3},\"ticketed_wall_ms\":{:.3},\"speedup\":{:.3}}}",
        seed_wall * 1e3,
        tick_wall * 1e3,
        seed_wall / tick_wall
    );
}

/// Steady-state SCI one-way ping-pong latency in µs: 32 warm-up
/// exchanges (enough for `Parking` to park an idle TCP channel), then
/// a timed 16-exchange window. Virtual time, so exact.
fn steady_sci_oneway_us(with_tcp: bool, poll: PollPolicy) -> f64 {
    let results = run_world(
        bench::pingpong::fig9_topology(with_tcp),
        Placement::OneRankPerNode,
        WorldConfig {
            poll,
            ..WorldConfig::default()
        },
        |comm| {
            const WARM: usize = 32;
            const ITERS: u64 = 16;
            if comm.rank() == 0 {
                let data = vec![0u8; 4];
                for _ in 0..WARM {
                    comm.send(&data, 1, 0);
                    comm.recv(4, Some(1), Some(0));
                }
                let t0 = marcel::now();
                for _ in 0..ITERS {
                    comm.send(&data, 1, 0);
                    comm.recv(4, Some(1), Some(0));
                }
                Some((marcel::now() - t0) / (2 * ITERS))
            } else if comm.rank() == 1 {
                for _ in 0..WARM + ITERS as usize {
                    let (data, _) = comm.recv(4, Some(0), Some(0));
                    comm.send(&data, 0, 0);
                }
                None
            } else {
                None
            }
        },
    )
    .expect("fig9 world failed");
    results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 measured")
        .as_micros_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wpos = args.iter().position(|a| a == "--workers");
    let workers = wpos
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse::<usize>().ok());
    let iters: usize = args
        .iter()
        .enumerate()
        .filter(|(i, _)| wpos.is_none_or(|w| *i != w && *i != w + 1))
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(4);
    let rounds = 12 * iters;

    if let Some(workers) = workers {
        ticketed_mode(rounds, workers);
        return;
    }

    let (msgs, wall, allocs, bytes) = storm(rounds);
    let eps = msgs as f64 / wall;
    println!("== hotpath — {RANKS}-rank all-to-all storm, {MSG} B x {rounds} rounds ==");
    println!(
        "hotpath: messages={msgs} wall_ms={:.1} events_per_sec={:.0} allocs={allocs} alloc_bytes={bytes}",
        wall * 1e3,
        eps
    );

    println!("\n== §3.3 idle-channel impact — steady-state SCI one-way latency (us) ==");
    println!(
        "{:>10} {:>10} {:>14} {:>8}",
        "policy", "SCI only", "SCI+idle TCP", "tax"
    );
    let mut parked_tax = 0.0;
    for poll in [PollPolicy::Seed, PollPolicy::Parking] {
        let alone = steady_sci_oneway_us(false, poll);
        let taxed = steady_sci_oneway_us(true, poll);
        let tax = taxed - alone;
        if poll == PollPolicy::Parking {
            parked_tax = tax;
        }
        println!(
            "{:>10} {:>10.2} {:>14.2} {:>8.2}",
            format!("{poll:?}"),
            alone,
            taxed,
            tax
        );
    }

    println!(
        "\n{{\"messages\":{msgs},\"wall_ms\":{:.3},\"events_per_sec\":{:.1},\"allocs\":{allocs},\"alloc_bytes\":{bytes},\"parking_tax_us\":{parked_tax:.3}}}",
        wall * 1e3,
        eps
    );
}
