//! Timeline tool: run one ch_mad ping-pong with kernel tracing enabled
//! and print the typed event timeline — a window into the paper's
//! Figure 4 message flows (eager and rendezvous) as they actually
//! execute. With `--chrome <path>` the same trace is also exported as
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`):
//! one virtual process per cluster node, one thread per Marcel tid.
//!
//! `cargo run -p bench --bin trace [-- <bytes>] [--chrome <path>]`

use mpich::{run_world_full, thread_metas, Placement, WorldConfig};
use simnet::{Protocol, Topology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bytes: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(4);
    let chrome_path = args
        .iter()
        .position(|a| a == "--chrome")
        .map(|i| args.get(i + 1).expect("--chrome needs a path").clone());
    let cfg = WorldConfig {
        trace: true,
        ..WorldConfig::default()
    };
    let (_, kernel, session) = run_world_full(
        Topology::single_network(2, Protocol::Sisci),
        Placement::OneRankPerNode,
        cfg,
        move |comm| {
            if comm.rank() == 0 {
                comm.send(&vec![0u8; bytes], 1, 0);
                comm.recv(bytes, Some(1), Some(0));
            } else {
                let (d, _) = comm.recv(bytes, Some(0), Some(0));
                comm.send(&d, 0, 0);
            }
        },
    )
    .expect("trace world completes");
    let trace = kernel.take_trace();
    let mode = if bytes > Protocol::Sisci.switch_point() {
        "rendezvous (REQUEST -> OK_TO_SEND -> DATA, Fig. 4b)"
    } else {
        "eager (Fig. 4a)"
    };
    println!("ch_mad ping-pong of {bytes} B over SCI — transfer mode: {mode}");
    println!("{:>12}  {:>4}  event", "time", "tid");
    for e in &trace {
        println!("{:>12}  {:>4}  {}", format!("{}", e.time), e.tid, e.what);
    }
    println!(
        "\n{} events; finished at {} (one-way ~{:.1} us)",
        trace.len(),
        kernel.end_time(),
        kernel.end_time().as_micros_f64() / 2.0
    );
    if let Some(path) = chrome_path {
        let metas = thread_metas(&kernel, &session);
        let json = marcel::chrome_trace_json(&trace, &metas);
        std::fs::write(&path, json).expect("write chrome trace");
        println!("[chrome] {path} (open in Perfetto or chrome://tracing)");
    }
}
