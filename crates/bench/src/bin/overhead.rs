//! §5 overhead decomposition: where do the ~28/15/11 µs that ch_mad
//! adds over raw Madeleine go? Reproduces the paper's packing-vs-
//! handling split (§5.2–5.4) from span measurements: the pack-span
//! growth is the packing overhead (the header's second packing
//! operation), and the setup/handle spans plus the poll-detection
//! delta compose the handling overhead.
//!
//! `cargo run -p bench --bin overhead --release [-- <iters> [--hists]]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(8);
    let dump_hists = args.iter().any(|a| a == "--hists");

    let rows = bench::experiments::overhead_rows(iters);

    println!(
        "== overhead — §5 decomposition of the ch_mad - raw Madeleine gap at 4 B (us, one-way) =="
    );
    println!(
        "{:>8} {:>9} {:>9} {:>8} | {:>8} {:>9} {:>8} | {:>7} {:>6} {:>7} {:>8} {:>9}",
        "proto",
        "raw",
        "ch_mad",
        "total",
        "packing",
        "handling",
        "overlap",
        "setup",
        "post",
        "handle",
        "detect+",
        "paper p/h"
    );
    for (row, &(_, pack_t, handle_t, _)) in
        rows.iter().zip(bench::experiments::OVERHEAD_TARGETS.iter())
    {
        println!(
            "{:>8} {:>9.2} {:>9.2} {:>8.2} | {:>8.2} {:>9.2} {:>8.2} | {:>7.2} {:>6.2} {:>7.2} {:>8.2} {:>4.1}/{:<4.1}",
            row.protocol.name(),
            row.raw_us,
            row.mpi_us,
            row.total_us(),
            row.packing_us(),
            row.handling_us(),
            row.overlap_us(),
            row.setup_us,
            row.post_us,
            row.handle_us,
            row.detect_mpi_us - row.detect_raw_us,
            pack_t,
            handle_t,
        );
    }
    println!(
        "\npacking  = pack-span(ch_mad) - pack-span(raw)   [the header's second packing operation]\n\
         handling = setup + post + handle - raw unpack work beyond recv_fixed + poll-detect delta\n\
         overlap  = packing + handling - total          [handling work hidden by the flight (posting),\n\
                                                         minus costs outside spans (header wire bytes)]"
    );

    if dump_hists {
        for row in &rows {
            println!(
                "\n---- {} : raw Madeleine registry ----\n{}",
                row.protocol.name(),
                row.raw_metrics
            );
            println!(
                "---- {} : ch_mad registry ----\n{}",
                row.protocol.name(),
                row.mpi_metrics
            );
        }
    }

    bench::experiments::overhead_report(&rows).emit(false, false);
}
