//! Runs every table/figure harness back to back (the full evaluation
//! section). `cargo run -p bench --bin all --release [-- <iters>]`.

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    for (name, f) in [
        (
            "table1",
            bench::experiments::table1 as fn(usize) -> bench::Report,
        ),
        ("table2", bench::experiments::table2),
        ("fig6", bench::experiments::fig6),
        ("fig7", bench::experiments::fig7),
        ("fig8", bench::experiments::fig8),
        ("fig9", bench::experiments::fig9),
        ("multirail", bench::experiments::multirail),
        ("degraded", bench::experiments::degraded),
        ("overhead", bench::experiments::overhead),
    ] {
        eprintln!(">>> running {name} (iters = {iters})");
        f(iters).emit(true, true);
    }
}
