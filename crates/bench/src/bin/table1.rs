//! Regenerates the paper's table1 (run: `cargo run -p bench --bin table1 [--release] [-- <iters>]`).

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let report = bench::experiments::table1(iters);
    report.emit(true, true);
}
