//! "Figure 10" (extension beyond the paper): multi-rail striping.
//! `cargo run -p bench --bin multirail --release [-- <iters>]`.

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    bench::experiments::multirail(iters).emit(false, true);
}
