//! Extension benchmark: collective operations across the heterogeneous
//! meta-cluster (the application-level view the paper's introduction
//! motivates but never measures). For each collective and payload size,
//! reports the virtual completion time on the 6-node meta-cluster vs a
//! 6-node pure-SCI cluster — the price of spanning slow links.
//!
//! A second report (`coll_policy`) prices the collective algorithm
//! engine: the same operations on the meta-cluster under the default
//! `Seed` policy (the seed's binomial trees, byte-identical to the
//! historical numbers) vs `Adaptive` (two-level hierarchical
//! collectives, recursive-doubling / Rabenseifner allreduce, ring
//! allgather, scatter-gather bcast). CI pins the `Seed` rows to a
//! committed baseline and requires the `Adaptive` rows to win at large
//! payloads.
//!
//! `cargo run --release -p bench --bin collectives [-- <iters>]`

use bench::Report;
use marcel::VirtualDuration;
use mpich::{run_world, BaseType, CollPolicy, Placement, ReduceOp, WorldConfig};
use simnet::{Protocol, Topology};

type CollFn = fn(&mpich::Communicator, usize) -> ();

fn run_collective(
    topology: Topology,
    config: WorldConfig,
    f: CollFn,
    size: usize,
    iters: usize,
) -> VirtualDuration {
    let results = run_world(topology, Placement::OneRankPerNode, config, move |comm| {
        f(comm, size); // warm-up
        comm.barrier();
        let t0 = marcel::now();
        for _ in 0..iters {
            f(comm, size);
        }
        comm.barrier();
        (marcel::now() - t0) / iters as u64
    })
    .expect("collective world completes");
    // The slowest rank's view bounds the operation.
    results.into_iter().max().unwrap()
}

fn bcast(comm: &mpich::Communicator, size: usize) {
    let data = (comm.rank() == 0).then(|| vec![0u8; size]);
    comm.bcast_bytes(0, data);
}

fn allreduce(comm: &mpich::Communicator, size: usize) {
    let elems = (size / 8).max(1);
    comm.allreduce_bytes(vec![0u8; elems * 8], BaseType::Int64, ReduceOp::Sum);
}

fn alltoall(comm: &mpich::Communicator, size: usize) {
    let parts = vec![vec![0u8; size / comm.size().max(1)]; comm.size()];
    comm.alltoall_bytes(parts);
}

fn allgather(comm: &mpich::Communicator, size: usize) {
    comm.allgather_bytes(vec![0u8; size / comm.size().max(1)]);
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let sizes = [64usize, 1024, 16 * 1024, 256 * 1024, 1 << 20];
    let mut r = Report::new(
        "collectives",
        "Collectives on the 6-node meta-cluster vs a pure SCI cluster (extension)",
    );
    for (name, f) in [
        ("bcast", bcast as CollFn),
        ("allreduce", allreduce as CollFn),
        ("alltoall", alltoall as CollFn),
    ] {
        let meta: bench::Series = sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    run_collective(
                        Topology::meta_cluster(3),
                        WorldConfig::default(),
                        f,
                        s,
                        iters,
                    ),
                )
            })
            .collect();
        let sci: bench::Series = sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    run_collective(
                        Topology::single_network(6, Protocol::Sisci),
                        WorldConfig::default(),
                        f,
                        s,
                        iters,
                    ),
                )
            })
            .collect();
        r.add_series(format!("{name}/meta"), &meta);
        r.add_series(format!("{name}/sci"), &sci);
        let ratio = meta.last().unwrap().1.as_secs_f64() / sci.last().unwrap().1.as_secs_f64();
        r.add_anchor(bench::Anchor::new(
            format!("{name} 1MB: meta-cluster / pure-SCI time ratio"),
            // The SCI/TCP bandwidth gap is 7.4x, but the tree
            // algorithms overlap several transfers, landing around 5x.
            5.0,
            ratio,
            "x",
        ));
    }
    r.print_time_table();
    r.print_anchors();
    if let Ok(p) = r.write_json() {
        println!("\n[json] {}", p.display());
    }

    // ------------------------------------------------------------------
    // The algorithm engine: Seed vs Adaptive on the meta-cluster.
    // ------------------------------------------------------------------
    let mut p = Report::new(
        "coll_policy",
        "Seed binomial vs the Adaptive algorithm engine on the 6-node meta-cluster (extension)",
    );
    // Expected 1MB speedups: a binomial bcast on this topology is
    // already bounded by a single slow-link crossing, so hierarchy can
    // only shave the duplicate crossing (~1x); allreduce and allgather
    // cross the slow link on several tree rounds that the two-level
    // algorithms collapse to one per direction (~2x).
    for (name, f, expected) in [
        ("bcast", bcast as CollFn, 1.0),
        ("allreduce", allreduce as CollFn, 2.0),
        ("allgather", allgather as CollFn, 2.0),
    ] {
        let mut at_1mb = [0.0f64; 2];
        for (i, (pname, policy)) in [
            ("seed", CollPolicy::Seed),
            ("adaptive", CollPolicy::Adaptive),
        ]
        .into_iter()
        .enumerate()
        {
            let config = WorldConfig {
                coll: policy,
                ..WorldConfig::default()
            };
            let series: bench::Series = sizes
                .iter()
                .map(|&s| {
                    (
                        s,
                        run_collective(Topology::meta_cluster(3), config.clone(), f, s, iters),
                    )
                })
                .collect();
            at_1mb[i] = series.last().unwrap().1.as_secs_f64();
            p.add_series(format!("{name}/{pname}"), &series);
        }
        p.add_anchor(bench::Anchor::new(
            format!("{name} 1MB: seed / adaptive speedup"),
            expected,
            at_1mb[0] / at_1mb[1],
            "x",
        ));
    }
    p.print_time_table();
    p.print_anchors();
    if let Ok(path) = p.write_json() {
        println!("\n[json] {}", path.display());
    }
}
