//! Extension benchmark: collective operations across the heterogeneous
//! meta-cluster (the application-level view the paper's introduction
//! motivates but never measures). For each collective and payload size,
//! reports the virtual completion time on the 6-node meta-cluster vs a
//! 6-node pure-SCI cluster — the price of spanning slow links.
//!
//! `cargo run --release -p bench --bin collectives [-- <iters>]`

use bench::Report;
use marcel::VirtualDuration;
use mpich::{run_world, BaseType, Placement, ReduceOp, WorldConfig};
use simnet::{Protocol, Topology};

type CollFn = fn(&mpich::Communicator, usize) -> ();

fn run_collective(topology: Topology, f: CollFn, size: usize, iters: usize) -> VirtualDuration {
    let results = run_world(
        topology,
        Placement::OneRankPerNode,
        WorldConfig::default(),
        move |comm| {
            f(comm, size); // warm-up
            comm.barrier();
            let t0 = marcel::now();
            for _ in 0..iters {
                f(comm, size);
            }
            comm.barrier();
            (marcel::now() - t0) / iters as u64
        },
    )
    .expect("collective world completes");
    // The slowest rank's view bounds the operation.
    results.into_iter().max().unwrap()
}

fn bcast(comm: &mpich::Communicator, size: usize) {
    let data = (comm.rank() == 0).then(|| vec![0u8; size]);
    comm.bcast_bytes(0, data);
}

fn allreduce(comm: &mpich::Communicator, size: usize) {
    let elems = (size / 8).max(1);
    comm.allreduce_bytes(vec![0u8; elems * 8], BaseType::Int64, ReduceOp::Sum);
}

fn alltoall(comm: &mpich::Communicator, size: usize) {
    let parts = vec![vec![0u8; size / comm.size().max(1)]; comm.size()];
    comm.alltoall_bytes(parts);
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let sizes = [64usize, 1024, 16 * 1024, 256 * 1024, 1 << 20];
    let mut r = Report::new(
        "collectives",
        "Collectives on the 6-node meta-cluster vs a pure SCI cluster (extension)",
    );
    for (name, f) in [
        ("bcast", bcast as CollFn),
        ("allreduce", allreduce as CollFn),
        ("alltoall", alltoall as CollFn),
    ] {
        let meta: bench::Series = sizes
            .iter()
            .map(|&s| (s, run_collective(Topology::meta_cluster(3), f, s, iters)))
            .collect();
        let sci: bench::Series = sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    run_collective(Topology::single_network(6, Protocol::Sisci), f, s, iters),
                )
            })
            .collect();
        r.add_series(format!("{name}/meta"), &meta);
        r.add_series(format!("{name}/sci"), &sci);
        let ratio = meta.last().unwrap().1.as_secs_f64() / sci.last().unwrap().1.as_secs_f64();
        r.add_anchor(bench::Anchor::new(
            format!("{name} 1MB: meta-cluster / pure-SCI time ratio"),
            // The SCI/TCP bandwidth gap is 7.4x, but the tree
            // algorithms overlap several transfers, landing around 5x.
            5.0,
            ratio,
            "x",
        ));
    }
    r.print_time_table();
    r.print_anchors();
    if let Ok(p) = r.write_json() {
        println!("\n[json] {}", p.display());
    }
}
