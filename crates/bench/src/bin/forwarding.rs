//! Forwarding-extension benchmark (the paper's §6 future work,
//! implemented here): latency and bandwidth across a gateway node
//! joining an SCI cluster to a Myrinet cluster, with and without
//! chunked pipelining.
//!
//! `cargo run --release -p bench --bin forwarding [-- <iters>]`

use bench::{bandwidth_mb_s, Report};
use marcel::VirtualDuration;
use mpich::{run_world, ChMadConfig, Placement, RemoteDeviceKind, WorldConfig};
use simnet::{Protocol, Topology};

fn chain() -> Topology {
    let mut t = Topology::new();
    let a = t.add_node("a", 1);
    let b = t.add_node("b", 1);
    let c = t.add_node("c", 1);
    t.add_network(Protocol::Sisci, [a, b]);
    t.add_network(Protocol::Bip, [b, c]);
    t
}

/// Ping-pong between the chain's endpoints (through the gateway).
fn forwarded_pingpong(chunk: usize, sizes: &[usize], iters: usize) -> bench::Series {
    let cfg = WorldConfig {
        forwarding: true,
        remote: RemoteDeviceKind::ChMad(ChMadConfig {
            fwd_chunk: chunk,
            ..ChMadConfig::default()
        }),
        ..WorldConfig::default()
    };
    let sizes: Vec<usize> = sizes.to_vec();
    let results = run_world(chain(), Placement::OneRankPerNode, cfg, move |comm| {
        if comm.rank() == 0 {
            let mut out = bench::Series::new();
            for &n in &sizes {
                let data = vec![0u8; n];
                comm.send(&data, 2, 0);
                comm.recv(n, Some(2), Some(0));
                let t0 = marcel::now();
                for _ in 0..iters {
                    comm.send(&data, 2, 0);
                    comm.recv(n, Some(2), Some(0));
                }
                out.push((n, (marcel::now() - t0) / (2 * iters as u64)));
            }
            Some(out)
        } else if comm.rank() == 2 {
            for &n in &sizes {
                for _ in 0..iters + 1 {
                    let (d, _) = comm.recv(n, Some(0), Some(0));
                    comm.send(&d, 0, 0);
                }
            }
            None
        } else {
            None
        }
    })
    .expect("forwarding world completes");
    results.into_iter().flatten().next().unwrap()
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let sizes: Vec<usize> = (0..=22).map(|p| 1usize << p).collect();
    let mut r = Report::new(
        "forwarding",
        "SCI -> gateway -> Myrinet: store-and-forward vs chunked pipelining (extension)",
    );
    let pipelined = forwarded_pingpong(128 * 1024, &sizes, iters);
    let store_fwd = forwarded_pingpong(usize::MAX, &sizes, iters);
    let direct_sci = bench::mpi_pingpong(
        Topology::single_network(2, Protocol::Sisci),
        WorldConfig::default(),
        &sizes,
        iters,
    );
    r.add_series("fwd_chunked_128K", &pipelined);
    r.add_series("fwd_store_and_forward", &store_fwd);
    r.add_series("direct_SCI (lower bound)", &direct_sci);
    let four_mb = 4 << 20;
    let at = |series: &bench::Series, n: usize| {
        series
            .iter()
            .find(|(sz, _)| *sz == n)
            .map(|(_, d)| *d)
            .unwrap_or(VirtualDuration::ZERO)
    };
    r.add_anchor(bench::Anchor::new(
        "4MB gateway bandwidth, chunked (target: ~slower hop, 82.6)",
        78.0,
        bandwidth_mb_s(four_mb, at(&pipelined, four_mb)),
        "MB",
    ));
    r.add_anchor(bench::Anchor::new(
        "4MB gateway bandwidth, store-and-forward (~harmonic mean/2-ish)",
        49.0,
        bandwidth_mb_s(four_mb, at(&store_fwd, four_mb)),
        "MB",
    ));
    r.add_anchor(bench::Anchor::new(
        "16B latency through the gateway (sum of hops + relay)",
        42.0,
        at(&pipelined, 16).as_micros_f64(),
        "us",
    ));
    r.emit(true, true);
}
