//! Regenerates the paper's table2 (run: `cargo run -p bench --bin table2 [--release] [-- <iters>]`).

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let report = bench::experiments::table2(iters);
    report.emit(true, true);
}
