//! `jrnl` — time-travel inspector over a campaign journal.
//!
//! Output is line-oriented (`jrnl-<cmd> <json>`) for `ci/check_replay.py`.
//!
//! ```text
//! jrnl gen <path> [--legs N] [--roll BYTES] [--perturb LEG] [--workers N]
//!     Run the soak storm campaign into <path>. With --roll the journal
//!     is written as rolling segment files (<path>.0000.seg, ...);
//!     without it, one flat file. --perturb switches the fault seed
//!     from that leg on (the walkthrough's controlled divergence).
//! jrnl stat <journal>
//!     Shape + digest of the journal. Deterministic: two invocations
//!     over the same bytes print the same line.
//! jrnl seek <journal> <event>
//!     Snapshot seek for one event index: O(log snapshots) probes, the
//!     legs a re-execution would need, and the world digest there.
//! jrnl diff <journal> <a> <b> [--other <journal2>]
//!     WorldDiff between event indices a and b (b taken from
//!     --other's journal when given — cross-journal comparison).
//! jrnl query <journal> [--layer L] [--kind K] [--rank R] [--channel C]
//!            [--tid T] [--leg L] [--min-ns N] [--max-ns N]
//!            [--from I] [--to I] [--limit N] [--agg]
//!     Filtered event listing; --agg folds the window into the metrics
//!     registry instead of listing.
//! jrnl export <journal> <out.json> [--from I] [--to I]
//!     Chrome trace-event JSON of the window, counter samples included.
//! jrnl reexec <journal> <event> [--workers N]
//!     Re-execute from the nearest snapshot to <event> under Seed
//!     (default) or Ticketed(N), and compare the reconstructed world +
//!     journal prefix against the original, bit for bit.
//! jrnl bisect <journal_a> <journal_b>
//!     First divergent leg/record between two journals.
//! ```

use bench::soakcfg;
use marcel::{chrome_trace_json_with_counters, fnv1a64, JournalIndex, Tail};
use mpich::journal::{bisect, BisectOutcome};
use mpich::{diff, reexecute_world_at, world_state_at, CampaignConfig, ExecPolicy, WorldState};

fn die(msg: &str) -> ! {
    eprintln!("jrnl: {msg}");
    std::process::exit(2);
}

/// `--flag value` lookup over the raw argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| die(&format!("{name} needs a value")))
            .clone()
    })
}

fn flag_u64(args: &[String], name: &str) -> Option<u64> {
    flag(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("{name}: bad number {v}")))
    })
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn load(path: &str) -> Vec<u8> {
    marcel::read_journal(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")))
}

fn index(bytes: &[u8]) -> JournalIndex {
    JournalIndex::build(bytes).unwrap_or_else(|e| die(&format!("index: {e}")))
}

/// The campaign config the journal was recorded under — only the soak
/// storm is re-executable (the leg program lives in `bench::soakcfg`).
fn campaign_cfg(idx: &JournalIndex, exec: ExecPolicy) -> CampaignConfig {
    let Some((label, master_seed, legs, snapshot_every)) = idx.campaign() else {
        die("journal has no campaign record");
    };
    if label != "soak-storm" || master_seed != soakcfg::MASTER_SEED {
        die(&format!(
            "can only re-execute the soak campaign (journal is {label:?} seed {master_seed:#x})"
        ));
    }
    CampaignConfig {
        label: label.to_string(),
        legs,
        snapshot_every,
        master_seed,
        exec,
    }
}

fn world_digest(w: &WorldState) -> u64 {
    w.replay.digest()
}

fn cmd_gen(args: &[String]) {
    let path = args.first().unwrap_or_else(|| die("gen needs a path"));
    let legs = flag_u64(args, "--legs").unwrap_or(8);
    let roll = flag_u64(args, "--roll");
    let perturb = flag_u64(args, "--perturb");
    let workers = flag_u64(args, "--workers").unwrap_or(0);
    let exec = if workers > 1 {
        ExecPolicy::Ticketed(workers as usize)
    } else {
        ExecPolicy::Seed
    };
    let cfg = soakcfg::soak_cfg(legs, exec);
    let factory = soakcfg::leg_factory(perturb);
    let (digest, bytes, segments) = match roll {
        Some(limit) => {
            let sink = marcel::FileSink::create_rolling(path, limit)
                .unwrap_or_else(|e| die(&format!("create {path}: {e}")));
            let report = mpich::run_campaign(&cfg, sink, factory)
                .unwrap_or_else(|e| die(&format!("campaign: {e}")));
            let written = marcel::read_segments(path)
                .unwrap_or_else(|e| die(&format!("read back segments: {e}")));
            let segs = (0..)
                .take_while(|&s| marcel::segment_path(path, s).exists())
                .count();
            assert_eq!(written.len() as u64, report.bytes);
            (report.digest, report.bytes, segs as u64)
        }
        None => {
            let sink = marcel::FileSink::create(path)
                .unwrap_or_else(|e| die(&format!("create {path}: {e}")));
            let report = mpich::run_campaign(&cfg, sink, factory)
                .unwrap_or_else(|e| die(&format!("campaign: {e}")));
            (report.digest, report.bytes, 1)
        }
    };
    println!(
        "jrnl-gen {{\"path\":{},\"legs\":{legs},\"digest\":{digest},\"bytes\":{bytes},\"segments\":{segments},\"perturbed\":{}}}",
        json_str(path),
        perturb.is_some()
    );
}

fn cmd_stat(args: &[String]) {
    let path = args.first().unwrap_or_else(|| die("stat needs a journal"));
    let bytes = load(path);
    let idx = index(&bytes);
    let (label, seed, legs_cfg, every) = idx.campaign().unwrap_or(("<none>", 0, 0, 0));
    let clean = matches!(idx.scan.tail, Tail::Clean);
    let complete_legs = idx.legs.iter().filter(|l| l.complete).count();
    println!(
        "jrnl-stat {{\"digest\":{},\"bytes\":{},\"records\":{},\"events\":{},\"snapshots\":{},\"legs\":{},\"complete_legs\":{complete_legs},\"campaign\":{},\"master_seed\":{seed},\"cfg_legs\":{legs_cfg},\"snapshot_every\":{every},\"clean_tail\":{clean}}}",
        fnv1a64(&bytes),
        bytes.len(),
        idx.scan.records.len(),
        idx.events(),
        idx.snapshots.len(),
        idx.legs.len(),
        json_str(label),
    );
}

fn cmd_seek(args: &[String]) {
    let path = args.first().unwrap_or_else(|| die("seek needs a journal"));
    let event: u64 = args
        .get(1)
        .unwrap_or_else(|| die("seek needs an event index"))
        .parse()
        .unwrap_or_else(|_| die("bad event index"));
    let bytes = load(path);
    let idx = index(&bytes);
    let seek = idx.seek(event);
    let world = world_state_at(&idx, event).unwrap_or_else(|e| die(&e));
    // O(log snapshots) contract: probes never exceed ⌈log2(n)⌉ + 1.
    let bound = (idx.snapshots.len().max(1) as f64).log2().ceil() as usize + 1;
    println!(
        "jrnl-seek {{\"event\":{event},\"snapshot\":{},\"probes\":{},\"probe_bound\":{bound},\"legs_needed\":{},\"legs_done\":{},\"current_leg\":{},\"vtime_ns\":{},\"digest\":{}}}",
        seek.snapshot.map_or(-1i64, |s| s as i64),
        seek.probes,
        idx.legs_needed(event),
        world.replay.legs_done,
        world.replay.current_leg.map_or(-1i64, |l| l as i64),
        world.replay.vtime_ns,
        world_digest(&world)
    );
}

fn cmd_diff(args: &[String]) {
    let path = args.first().unwrap_or_else(|| die("diff needs a journal"));
    let a: u64 = args
        .get(1)
        .unwrap_or_else(|| die("diff needs two event indices"))
        .parse()
        .unwrap_or_else(|_| die("bad event index"));
    let b: u64 = args
        .get(2)
        .unwrap_or_else(|| die("diff needs two event indices"))
        .parse()
        .unwrap_or_else(|_| die("bad event index"));
    let bytes_a = load(path);
    let idx_a = index(&bytes_a);
    let wa = world_state_at(&idx_a, a).unwrap_or_else(|e| die(&e));
    let wb = match flag(args, "--other") {
        Some(other) => {
            let bytes_b = load(&other);
            let idx_b = index(&bytes_b);
            world_state_at(&idx_b, b).unwrap_or_else(|e| die(&e))
        }
        None => world_state_at(&idx_a, b).unwrap_or_else(|e| die(&e)),
    };
    let d = diff(&wa, &wb);
    print!("{d}");
    println!(
        "jrnl-diff {{\"a\":{a},\"b\":{b},\"empty\":{},\"deltas\":{},\"digest_a\":{},\"digest_b\":{}}}",
        d.is_empty(),
        d.deltas(),
        world_digest(&wa),
        world_digest(&wb)
    );
}

fn parse_filter(args: &[String]) -> marcel::EventFilter {
    marcel::EventFilter {
        layer: flag(args, "--layer").map(|l| {
            marcel::layer_from_name(&l).unwrap_or_else(|| die(&format!("unknown layer {l}")))
        }),
        kind: flag(args, "--kind"),
        rank: flag_u64(args, "--rank").map(|r| r as usize),
        channel: flag(args, "--channel"),
        tid: flag_u64(args, "--tid"),
        leg: flag_u64(args, "--leg"),
        min_ns: flag_u64(args, "--min-ns"),
        max_ns: flag_u64(args, "--max-ns"),
        min_index: flag_u64(args, "--from"),
        max_index: flag_u64(args, "--to"),
    }
}

fn cmd_query(args: &[String]) {
    let path = args.first().unwrap_or_else(|| die("query needs a journal"));
    let bytes = load(path);
    let idx = index(&bytes);
    let filter = parse_filter(args);
    if args.iter().any(|a| a == "--agg") {
        let snap = idx.aggregate(&filter);
        let counters: Vec<String> = snap
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect();
        let gauges: Vec<String> = snap
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect();
        let hists: Vec<String> = snap
            .hists
            .iter()
            .map(|(k, h)| {
                format!(
                    "{}:{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                    json_str(k),
                    h.count,
                    h.sum_ns,
                    h.min_ns,
                    h.max_ns
                )
            })
            .collect();
        println!(
            "jrnl-agg {{\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        );
        return;
    }
    let limit = flag_u64(args, "--limit").unwrap_or(50) as usize;
    let hits = idx.query(&filter);
    for m in hits.iter().take(limit) {
        println!(
            "jrnl-event {{\"index\":{},\"leg\":{},\"time_ns\":{},\"tid\":{},\"layer\":{},\"kind\":{},\"event\":{}}}",
            m.event_index,
            m.leg,
            m.time_ns,
            m.tid,
            json_str(m.event.layer().name()),
            json_str(m.event.kind_name()),
            json_str(&format!("{:?}", m.event))
        );
    }
    println!(
        "jrnl-query {{\"matched\":{},\"shown\":{}}}",
        hits.len(),
        hits.len().min(limit)
    );
}

fn cmd_export(args: &[String]) {
    let path = args
        .first()
        .unwrap_or_else(|| die("export needs a journal"));
    let out = args
        .get(1)
        .unwrap_or_else(|| die("export needs an output path"));
    let bytes = load(path);
    let idx = index(&bytes);
    let from = flag_u64(args, "--from").unwrap_or(0);
    let to = flag_u64(args, "--to").unwrap_or_else(|| idx.events());
    let trace = idx.window_trace(from, to);
    let counters = idx.window_counters(from, to);
    let json = chrome_trace_json_with_counters(&trace, &idx.thread_metas(), &counters);
    std::fs::write(out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!(
        "jrnl-export {{\"out\":{},\"from\":{from},\"to\":{to},\"events\":{},\"counter_samples\":{},\"bytes\":{}}}",
        json_str(out),
        trace.len(),
        counters.len(),
        json.len()
    );
}

fn cmd_reexec(args: &[String]) {
    let path = args
        .first()
        .unwrap_or_else(|| die("reexec needs a journal"));
    let event: u64 = args
        .get(1)
        .unwrap_or_else(|| die("reexec needs an event index"))
        .parse()
        .unwrap_or_else(|_| die("bad event index"));
    let workers = flag_u64(args, "--workers").unwrap_or(0);
    let exec = if workers > 1 {
        ExecPolicy::Ticketed(workers as usize)
    } else {
        ExecPolicy::Seed
    };
    let bytes = load(path);
    let idx = index(&bytes);
    let cfg = campaign_cfg(&idx, exec);
    let want = world_state_at(&idx, event).unwrap_or_else(|e| die(&e));
    let (got, regenerated) = reexecute_world_at(&cfg, &bytes, soakcfg::leg_factory(None), event)
        .unwrap_or_else(|e| die(&e));
    let state_ok = got == want;
    let prefix_ok =
        bytes.len() >= regenerated.len() && bytes[..regenerated.len()] == regenerated[..];
    println!(
        "jrnl-reexec {{\"event\":{event},\"exec\":\"{exec:?}\",\"ok\":{},\"state_ok\":{state_ok},\"prefix_ok\":{prefix_ok},\"regenerated_bytes\":{},\"digest\":{},\"legs_done\":{}}}",
        state_ok && prefix_ok,
        regenerated.len(),
        world_digest(&got),
        got.replay.legs_done
    );
    if !(state_ok && prefix_ok) {
        let d = diff(&want, &got);
        print!("{d}");
        std::process::exit(1);
    }
}

fn cmd_bisect(args: &[String]) {
    let pa = args
        .first()
        .unwrap_or_else(|| die("bisect needs two journals"));
    let pb = args
        .get(1)
        .unwrap_or_else(|| die("bisect needs two journals"));
    let a = load(pa);
    let b = load(pb);
    match bisect(&a, &b).unwrap_or_else(|e| die(&format!("bisect: {e}"))) {
        BisectOutcome::Identical => println!("jrnl-bisect {{\"identical\":true}}"),
        BisectOutcome::Diverged(d) => println!(
            "jrnl-bisect {{\"identical\":false,\"leg\":{},\"record\":{},\"probes\":{},\"a\":{},\"b\":{}}}",
            d.leg,
            d.record_index,
            d.snapshot_probes,
            json_str(&d.a),
            json_str(&d.b)
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        die("usage: jrnl <gen|stat|seek|diff|query|export|reexec|bisect> ...");
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "stat" => cmd_stat(rest),
        "seek" => cmd_seek(rest),
        "diff" => cmd_diff(rest),
        "query" => cmd_query(rest),
        "export" => cmd_export(rest),
        "reexec" => cmd_reexec(rest),
        "bisect" => cmd_bisect(rest),
        other => die(&format!("unknown subcommand {other}")),
    }
}
