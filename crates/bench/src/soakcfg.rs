//! The soak campaign's shared definition: the dual-rail faulted storm
//! leg used by the `soak` bench, the `jrnl` time-travel inspector, and
//! the replay-determinism tests. One definition, three consumers — the
//! inspector can only re-execute legs if it builds the exact `LegSpec`s
//! the original journal was recorded from.

use std::sync::{Arc, Mutex};

use marcel::{ExecPolicy, MemSink};
use mpich::{
    run_campaign, CampaignConfig, CampaignReport, LegCtx, LegSpec, Placement, WorldConfig,
};
use simnet::{FaultPlan, Protocol, Topology};

/// Message sizes each rank exchanges per leg.
pub const SIZES: [usize; 3] = [1, 512, 9 * 1024];
/// Tag of every storm message.
pub const TAG: i32 = 7;
/// Snapshot cadence of the soak campaign.
pub const SNAPSHOT_EVERY: u64 = 2;
/// Root of the soak campaign's seed chain.
pub const MASTER_SEED: u64 = 0x50AC; // "SOAK"

/// Deterministic per-message payload.
pub fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

/// The soak campaign configuration for `legs` legs under `exec`.
pub fn soak_cfg(legs: u64, exec: ExecPolicy) -> CampaignConfig {
    CampaignConfig {
        label: "soak-storm".to_string(),
        legs,
        snapshot_every: SNAPSHOT_EVERY,
        master_seed: MASTER_SEED,
        exec,
    }
}

/// Dual-rail storm leg over a lossy link; `perturb_from` switches legs
/// at or past that index to a perturbed fault seed (the bisect demo's
/// controlled divergence).
pub fn leg_factory(perturb_from: Option<u64>) -> impl Fn(&LegCtx) -> LegSpec {
    move |ctx: &LegCtx| {
        let tweak = if perturb_from.is_some_and(|from| ctx.leg >= from) {
            0xB0057
        } else {
            0
        };
        let plan = FaultPlan::new(ctx.seed ^ ctx.fault_cursor ^ tweak)
            .with_loss(0.20)
            .with_ack_loss(0.10);
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        let sci = t.add_network(Protocol::Sisci, [a, b]);
        let bip = t.add_network(Protocol::Bip, [a, b]);
        let mut sci_plan = plan.clone();
        sci_plan.seed ^= 0x5C1_5C1;
        t.set_fault(sci, sci_plan);
        t.set_fault(bip, plan);
        LegSpec {
            label: format!("soak-leg{}", ctx.leg),
            topology: t,
            placement: Placement::OneRankPerNode,
            config: WorldConfig::default(),
            fault_cells: 2,
            program: Arc::new(|comm| {
                let me = comm.rank();
                let peer = 1 - me;
                let mut got = Vec::new();
                if me == 0 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                for &n in &SIZES {
                    got.extend_from_slice(&comm.recv(n, Some(peer), Some(TAG)).0);
                }
                if me == 1 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                got
            }),
        }
    }
}

/// One uninterrupted soak campaign: journal bytes + report.
pub fn full_run(legs: u64, exec: ExecPolicy) -> (Vec<u8>, CampaignReport) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let report = run_campaign(
        &soak_cfg(legs, exec),
        MemSink::new(buf.clone()),
        leg_factory(None),
    )
    .expect("soak campaign failed");
    let bytes = Arc::try_unwrap(buf).unwrap().into_inner().unwrap();
    (bytes, report)
}
