//! Typed errors for library-level failures.
//!
//! The paper's prototype aborts on any misuse or link failure; the
//! reproduction's robustness sublayer instead surfaces typed errors so
//! the `ch_mad` device above can fail over to a surviving rail.

use simnet::TopologyError;

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The rank is not a member of the channel.
    NotMember { rank: usize, channel: String },
    /// The reliable sublayer exhausted its retransmit budget without a
    /// single successful delivery: the connection is declared dead.
    LinkDead {
        channel: String,
        from: usize,
        to: usize,
        attempts: u32,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::NotMember { rank, channel } => {
                write!(f, "rank {rank} is not a member of channel '{channel}'")
            }
            ChannelError::LinkDead {
                channel,
                from,
                to,
                attempts,
            } => write!(
                f,
                "link dead on channel '{channel}': {from} -> {to} gave up after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Errors from session construction and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MadError {
    /// The topology failed validation.
    Topology(TopologyError),
    /// The session has no ranks placed.
    EmptyPlacement,
    /// A rank was placed on a node the topology does not contain.
    RankOnUnknownNode { rank: usize, node: usize },
    /// A channel-level failure.
    Channel(ChannelError),
}

impl std::fmt::Display for MadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MadError::Topology(e) => write!(f, "invalid topology: {e}"),
            MadError::EmptyPlacement => write!(f, "session needs at least one rank"),
            MadError::RankOnUnknownNode { rank, node } => {
                write!(f, "rank {rank} placed on unknown node {node}")
            }
            MadError::Channel(e) => write!(f, "channel error: {e}"),
        }
    }
}

impl std::error::Error for MadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MadError::Topology(e) => Some(e),
            MadError::Channel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for MadError {
    fn from(e: TopologyError) -> Self {
        MadError::Topology(e)
    }
}

impl From<ChannelError> for MadError {
    fn from(e: ChannelError) -> Self {
        MadError::Channel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parties() {
        let e = ChannelError::LinkDead {
            channel: "BIP#1".into(),
            from: 0,
            to: 1,
            attempts: 30,
        };
        let s = e.to_string();
        assert!(s.contains("BIP#1") && s.contains("0 -> 1") && s.contains("30"));
        let m: MadError = e.into();
        assert!(m.to_string().contains("channel error"));
    }
}
