//! Packing/unpacking semantics flags.
//!
//! The pair of flags passed to `mad_pack`/`mad_unpack` is "an original
//! specificity of Madeleine with respect to other communication
//! libraries" (paper §3.2): the application states, per data block, how
//! much freedom the library has when transmitting it. The reproduction
//! keeps the full mode lattice of Madeleine II; the paper's example uses
//! `send_CHEAPER` with `receive_EXPRESS` (a size header that must be
//! available immediately) and `receive_CHEAPER` (bulk data that may be
//! delivered lazily, enabling zero-copy).

/// Sender-side constraint for one packed block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SendMode {
    /// The buffer may be reused as soon as `pack` returns: the library
    /// must copy or transmit it synchronously.
    Safer,
    /// The buffer must stay untouched until `end_packing` returns.
    Later,
    /// The buffer must stay untouched until the whole message is sent;
    /// maximal freedom for the library (the common fast path).
    Cheaper,
}

/// Receiver-side constraint for one unpacked block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReceiveMode {
    /// The data is guaranteed to be available as soon as the matching
    /// `unpack` returns — required when later unpacks *depend* on the
    /// value (e.g. a size field). Express blocks travel with the first
    /// packet of the message.
    Express,
    /// The data is only guaranteed after `end_unpacking`; the library
    /// may avoid intermediate copies.
    Cheaper,
}

impl SendMode {
    pub fn name(self) -> &'static str {
        match self {
            SendMode::Safer => "send_SAFER",
            SendMode::Later => "send_LATER",
            SendMode::Cheaper => "send_CHEAPER",
        }
    }
}

impl ReceiveMode {
    pub fn name(self) -> &'static str {
        match self {
            ReceiveMode::Express => "receive_EXPRESS",
            ReceiveMode::Cheaper => "receive_CHEAPER",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_madeleine_api() {
        assert_eq!(SendMode::Cheaper.name(), "send_CHEAPER");
        assert_eq!(SendMode::Safer.name(), "send_SAFER");
        assert_eq!(SendMode::Later.name(), "send_LATER");
        assert_eq!(ReceiveMode::Express.name(), "receive_EXPRESS");
        assert_eq!(ReceiveMode::Cheaper.name(), "receive_CHEAPER");
    }
}
