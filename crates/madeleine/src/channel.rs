//! Channels, connections, and the packing/unpacking interface.
//!
//! A [`Channel`] is Madeleine's unit of communication isolation (paper
//! §3.1): it is bound to one network protocol (and adapter set) and owns
//! one point-to-point [`Connection`] per ordered rank pair. In-order
//! delivery is guaranteed *within* a channel's connections only — exactly
//! the property the `ch_mad` device depends on when it restricts each MPI
//! message to a single channel (§4.2.1).
//!
//! A rank interacts with a channel through an [`Endpoint`], using the
//! paper's API shape:
//!
//! ```text
//! connection = mad_begin_packing(channel, remote);
//! mad_pack(connection, &size, sizeof(int), send_CHEAPER, receive_EXPRESS);
//! mad_pack(connection, array,  size,       send_CHEAPER, receive_CHEAPER);
//! mad_end_packing(connection);
//! ```
//!
//! # Cost accounting
//!
//! * each `pack`/`unpack` call charges a small constant CPU cost;
//! * `end_packing` charges the sender the link model's occupancy for the
//!   total byte count **plus one `extra_segment` per packing operation
//!   beyond the first** — the overhead the paper measures in §5.2–5.4;
//! * the wire arrival time is the sender's (charged) clock plus the link
//!   model's wire delay, floored to preserve per-connection FIFO order;
//! * `begin_unpacking` blocks in the rank's factorized polling loop (one
//!   cycle of detection delay — see `marcel::poll`), then charges the
//!   receiver's fixed drain cost; each `unpack` charges the per-byte
//!   drain cost of its block.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use marcel::{Kernel, PollSource, ProcId, SimMutex, VirtualDuration, VirtualTime};
use simnet::{LinkModel, Protocol};

use crate::message::{Block, WireMessage};
use crate::modes::{ReceiveMode, SendMode};

/// CPU cost of one `mad_pack`/`mad_unpack` library call (argument
/// handling, iovec bookkeeping). The per-*segment* protocol cost is the
/// link model's `extra_segment` and dwarfs this.
pub const PACK_CALL_CPU: VirtualDuration = VirtualDuration::from_nanos(120);

/// Minimum spacing between two messages on one connection, used to keep
/// per-connection arrivals strictly monotone (FIFO on the wire).
const FIFO_EPSILON: VirtualDuration = VirtualDuration::from_nanos(1);

/// Sender-side state of one point-to-point connection: the FIFO floor
/// and the message sequence number (drives deterministic jitter).
struct Connection {
    state: SimMutex<ConnState>,
}

#[derive(Clone, Copy)]
struct ConnState {
    floor: VirtualTime,
    seq: u64,
}

/// A Madeleine channel: one protocol, a set of member ranks, one
/// incoming message source per member, one connection per ordered pair.
pub struct Channel {
    name: String,
    protocol: Protocol,
    model: Arc<LinkModel>,
    /// Member ranks (session-global indices), sorted.
    members: Vec<usize>,
    /// rank -> incoming source.
    sources: HashMap<usize, PollSource<WireMessage>>,
    /// (from, to) -> connection.
    conns: HashMap<(usize, usize), Connection>,
}

impl Channel {
    /// Build a channel over `protocol` with the given link `model`
    /// connecting `members` (rank indices). Connections include the
    /// loop-back pair (rank, rank), which the `ch_mad` shutdown path
    /// uses to deliver its TERM packet to the local polling thread.
    pub fn new(
        kernel: &Kernel,
        name: impl Into<String>,
        protocol: Protocol,
        model: LinkModel,
        members: impl IntoIterator<Item = usize>,
    ) -> Arc<Channel> {
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        let mut sources = HashMap::new();
        let mut conns = HashMap::new();
        for &r in &members {
            sources.insert(
                r,
                PollSource::new(kernel, ProcId(r as u32), model.poll_cost),
            );
        }
        for &a in &members {
            for &b in &members {
                conns.insert(
                    (a, b),
                    Connection {
                        state: SimMutex::new(
                            kernel,
                            ConnState {
                                floor: VirtualTime::ZERO,
                                seq: 0,
                            },
                        ),
                    },
                );
            }
        }
        Arc::new(Channel {
            name: name.into(),
            protocol,
            model: Arc::new(model),
            members,
            sources,
            conns,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// The channel's weight when striping a transfer across several
    /// rails: its link's calibrated asymptotic bandwidth.
    pub fn stripe_weight(&self) -> f64 {
        self.model.asymptotic_bandwidth_mb_s()
    }

    pub fn members(&self) -> &[usize] {
        &self.members
    }

    pub fn is_member(&self, rank: usize) -> bool {
        self.sources.contains_key(&rank)
    }

    /// The view of this channel from `rank`.
    pub fn endpoint(self: &Arc<Self>, rank: usize) -> Endpoint {
        assert!(
            self.is_member(rank),
            "rank {rank} is not a member of channel '{}'",
            self.name
        );
        Endpoint {
            channel: self.clone(),
            rank,
        }
    }
}

/// A rank's handle on a channel.
#[derive(Clone)]
pub struct Endpoint {
    channel: Arc<Channel>,
    rank: usize,
}

impl Endpoint {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn channel(&self) -> &Arc<Channel> {
        &self.channel
    }

    /// `mad_begin_packing`: open an outgoing message to `remote`.
    pub fn begin_packing(&self, remote: usize) -> PackingConnection {
        assert!(
            self.channel.is_member(remote),
            "rank {remote} is not a member of channel '{}'",
            self.channel.name
        );
        PackingConnection {
            endpoint: self.clone(),
            remote,
            blocks: Vec::new(),
            finished: false,
        }
    }

    /// `mad_begin_unpacking`: block until a message is noticed on this
    /// rank's incoming side. Returns `None` once the source is closed
    /// and drained (session shutdown).
    pub fn begin_unpacking(&self) -> Option<UnpackingConnection> {
        let polled = self.source().poll_wait()?;
        marcel::advance(self.channel.model.recv_fixed);
        Some(UnpackingConnection {
            endpoint: self.clone(),
            message: polled.payload,
            cursor: 0,
            finished: false,
        })
    }

    /// One non-blocking poll attempt (charges the protocol's poll cost).
    pub fn try_begin_unpacking(&self) -> Option<UnpackingConnection> {
        let polled = self.source().try_poll()?;
        marcel::advance(self.channel.model.recv_fixed);
        Some(UnpackingConnection {
            endpoint: self.clone(),
            message: polled.payload,
            cursor: 0,
            finished: false,
        })
    }

    /// Register this endpoint in its rank's factorized polling loop
    /// without blocking (the polling thread exists). `begin_unpacking`
    /// attaches implicitly.
    pub fn attach_polling(&self) {
        self.source().attach();
    }

    /// Remove this endpoint from the polling loop (polling thread gone).
    pub fn detach_polling(&self) {
        self.source().detach();
    }

    /// Close this rank's incoming side: a blocked `begin_unpacking`
    /// returns `None`.
    pub fn close_incoming(&self) {
        self.source().close();
    }

    /// Number of queued (arrived or in-flight) incoming messages.
    pub fn backlog(&self) -> usize {
        self.source().backlog()
    }

    fn source(&self) -> &PollSource<WireMessage> {
        &self.channel.sources[&self.rank]
    }
}

/// An outgoing message being built (`mad_pack*` + `mad_end_packing`).
pub struct PackingConnection {
    endpoint: Endpoint,
    remote: usize,
    blocks: Vec<Block>,
    finished: bool,
}

impl PackingConnection {
    pub fn remote(&self) -> usize {
        self.remote
    }

    /// `mad_pack`: append `data` with the given mode pair.
    pub fn pack(&mut self, data: &[u8], send_mode: SendMode, recv_mode: ReceiveMode) {
        self.pack_bytes(Bytes::copy_from_slice(data), send_mode, recv_mode);
    }

    /// Zero-(host-)copy variant of [`PackingConnection::pack`] for
    /// callers that already own a [`Bytes`].
    pub fn pack_bytes(&mut self, data: Bytes, send_mode: SendMode, recv_mode: ReceiveMode) {
        let mut cpu = PACK_CALL_CPU;
        if send_mode == SendMode::Safer {
            // SAFER requires the library to copy synchronously so the
            // caller may reuse the buffer immediately.
            cpu += crate::cost_per_byte(
                self.endpoint.channel.model.eager_copy_per_byte_ns,
                data.len(),
            );
        }
        marcel::advance(cpu);
        self.blocks.push(Block {
            data,
            send_mode,
            recv_mode,
        });
    }

    /// `mad_end_packing`: transmit the message. Charges the sender's
    /// occupancy (including one `extra_segment` per pack beyond the
    /// first) and posts the message with its wire arrival time,
    /// preserving per-connection FIFO order.
    pub fn end_packing(mut self) {
        self.finished = true;
        let channel = &self.endpoint.channel;
        let model = &channel.model;
        let total: usize = self.blocks.iter().map(|b| b.data.len()).sum();
        let segments = self.blocks.len().max(1);
        let conn = &channel.conns[&(self.endpoint.rank, self.remote)];
        let mut state = conn.state.lock();
        marcel::advance(model.sender_occupancy(total, segments));
        let now = marcel::now();
        let mut arrival = model.arrival(now, total) + model.jitter_delay(state.seq, total);
        state.seq += 1;
        // The wire is a serial resource: this message cannot arrive
        // sooner than one full wire-serialization after the previous
        // message on the connection.
        let min_arrival = state.floor + (model.wire_serialization(total) + FIFO_EPSILON);
        if arrival < min_arrival {
            arrival = min_arrival;
        }
        state.floor = arrival;
        let message = WireMessage {
            from: self.endpoint.rank,
            blocks: std::mem::take(&mut self.blocks),
            arrival,
        };
        channel.sources[&self.remote].post(arrival, message);
        drop(state);
    }
}

impl Drop for PackingConnection {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!(
                "PackingConnection to rank {} dropped without mad_end_packing",
                self.remote
            );
        }
    }
}

/// An incoming message being consumed (`mad_unpack*` +
/// `mad_end_unpacking`).
pub struct UnpackingConnection {
    endpoint: Endpoint,
    message: WireMessage,
    cursor: usize,
    finished: bool,
}

impl UnpackingConnection {
    /// Sending rank.
    pub fn from(&self) -> usize {
        self.message.from
    }

    /// Wire arrival time of the message.
    pub fn arrival(&self) -> VirtualTime {
        self.message.arrival
    }

    /// Total payload length of the message.
    pub fn total_len(&self) -> usize {
        self.message.total_len()
    }

    /// Remaining (not yet unpacked) blocks.
    pub fn remaining_blocks(&self) -> usize {
        self.message.blocks.len() - self.cursor
    }

    /// Length of the next block, if any (the `ch_mad` demultiplexer
    /// peeks at this to size eager bodies).
    pub fn next_block_len(&self) -> Option<usize> {
        self.message.blocks.get(self.cursor).map(|b| b.data.len())
    }

    /// `mad_unpack` into a caller-provided buffer. The mode pair and
    /// length must match the corresponding `mad_pack` — Madeleine
    /// treats a mismatch as a protocol violation, and so do we.
    pub fn unpack(&mut self, buf: &mut [u8], send_mode: SendMode, recv_mode: ReceiveMode) {
        let block = self.take_block(send_mode, recv_mode);
        assert_eq!(
            buf.len(),
            block.data.len(),
            "unpack length {} does not match packed block length {}",
            buf.len(),
            block.data.len()
        );
        buf.copy_from_slice(&block.data);
    }

    /// `mad_unpack` returning the block's bytes without a host copy
    /// (used for the zero-copy rendezvous body).
    pub fn unpack_bytes(&mut self, send_mode: SendMode, recv_mode: ReceiveMode) -> Bytes {
        self.take_block(send_mode, recv_mode).data
    }

    fn take_block(&mut self, send_mode: SendMode, recv_mode: ReceiveMode) -> Block {
        assert!(
            self.cursor < self.message.blocks.len(),
            "unpack past the end of a {}-block message",
            self.message.blocks.len()
        );
        let block = self.message.blocks[self.cursor].clone();
        assert_eq!(
            (block.send_mode, block.recv_mode),
            (send_mode, recv_mode),
            "unpack modes must match the pack modes of block {}",
            self.cursor
        );
        self.cursor += 1;
        marcel::advance(
            PACK_CALL_CPU
                + crate::cost_per_byte(
                    self.endpoint.channel.model.recv_per_byte_ns,
                    block.data.len(),
                ),
        );
        block
    }

    /// `mad_end_unpacking`: every block must have been consumed.
    pub fn end_unpacking(mut self) {
        assert_eq!(
            self.cursor,
            self.message.blocks.len(),
            "end_unpacking with {} block(s) left",
            self.message.blocks.len() - self.cursor
        );
        self.finished = true;
    }
}

impl Drop for UnpackingConnection {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!(
                "UnpackingConnection from rank {} dropped without mad_end_unpacking",
                self.message.from
            );
        }
    }
}
