//! Channels, connections, and the packing/unpacking interface.
//!
//! A [`Channel`] is Madeleine's unit of communication isolation (paper
//! §3.1): it is bound to one network protocol (and adapter set) and owns
//! one point-to-point [`Connection`] per ordered rank pair. In-order
//! delivery is guaranteed *within* a channel's connections only — exactly
//! the property the `ch_mad` device depends on when it restricts each MPI
//! message to a single channel (§4.2.1).
//!
//! A rank interacts with a channel through an [`Endpoint`], using the
//! paper's API shape:
//!
//! ```text
//! connection = mad_begin_packing(channel, remote);
//! mad_pack(connection, &size, sizeof(int), send_CHEAPER, receive_EXPRESS);
//! mad_pack(connection, array,  size,       send_CHEAPER, receive_CHEAPER);
//! mad_end_packing(connection);
//! ```
//!
//! # Cost accounting
//!
//! * each `pack`/`unpack` call charges a small constant CPU cost;
//! * `end_packing` charges the sender the link model's occupancy for the
//!   total byte count **plus one `extra_segment` per packing operation
//!   beyond the first** — the overhead the paper measures in §5.2–5.4;
//! * the wire arrival time is the sender's (charged) clock plus the link
//!   model's wire delay, floored to preserve per-connection FIFO order;
//! * `begin_unpacking` blocks in the rank's factorized polling loop (one
//!   cycle of detection delay — see `marcel::poll`), then charges the
//!   receiver's fixed drain cost; each `unpack` charges the per-byte
//!   drain cost of its block.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use bytes::Bytes;
use marcel::obs::{self, ActiveSpan, Event, SpanKind};
use marcel::{Kernel, PollSource, ProcId, SimMutex, VirtualDuration, VirtualTime};
use simnet::{Fate, FaultPlan, LinkModel, NetUtilization, Protocol};

use crate::error::ChannelError;
use crate::message::{Block, WireMessage};
use crate::modes::{ReceiveMode, SendMode};

/// CPU cost of one `mad_pack`/`mad_unpack` library call (argument
/// handling, iovec bookkeeping). The per-*segment* protocol cost is the
/// link model's `extra_segment` and dwarfs this.
pub const PACK_CALL_CPU: VirtualDuration = VirtualDuration::from_nanos(120);

/// Minimum spacing between two messages on one connection, used to keep
/// per-connection arrivals strictly monotone (FIFO on the wire).
const FIFO_EPSILON: VirtualDuration = VirtualDuration::from_nanos(1);

/// Retransmit budget of the reliable sublayer: a connection that makes
/// this many transmission attempts without one delivery is declared
/// dead ([`ChannelError::LinkDead`]).
pub const MAX_SEND_ATTEMPTS: u32 = 30;

/// Retransmission timeout before attempt `attempt + 1` (1-based
/// argument): 100 µs base, doubling per attempt, capped at 5 ms.
fn rto_for(attempt: u32) -> VirtualDuration {
    let exp = attempt.saturating_sub(1).min(6);
    VirtualDuration::from_nanos((100_000u64 << exp).min(5_000_000))
}

/// Sender-side state of one point-to-point connection: the FIFO floor,
/// the wire sequence number (one per transmission *attempt* — drives
/// deterministic jitter and the fault plan's loss stream) and the
/// logical message number (one per message — carried on the wire for
/// receiver-side dedup/reorder).
struct Connection {
    state: SimMutex<ConnState>,
}

#[derive(Clone, Copy)]
struct ConnState {
    floor: VirtualTime,
    seq: u64,
    msg_seq: u64,
}

/// Receiver-side reliable-delivery state for one rank's incoming side.
#[derive(Default)]
struct RecvState {
    /// In-order messages released from the stash, consumed before the
    /// poll source is asked for more.
    ready: VecDeque<WireMessage>,
    /// Per-sender dedup/reorder tracking.
    peers: HashMap<usize, PeerRecv>,
}

#[derive(Default)]
struct PeerRecv {
    /// Next logical message number expected from this sender.
    expected: u64,
    /// Early (out-of-order) messages keyed by logical number.
    stash: BTreeMap<u64, WireMessage>,
}

#[derive(Default)]
struct AtomicCounters {
    retransmits: AtomicU64,
    drops: AtomicU64,
    duplicates: AtomicU64,
    deferrals: AtomicU64,
    dead_pairs: AtomicU64,
}

/// Snapshot of a channel's reliable-delivery counters (all zero on a
/// fault-free channel).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transmission attempts beyond the first per message.
    pub retransmits: u64,
    /// Attempts the fault plan dropped on the wire.
    pub drops: u64,
    /// Received messages discarded as duplicates.
    pub duplicates: u64,
    /// Attempts postponed by a finite link-down window.
    pub deferrals: u64,
    /// Ordered rank pairs declared dead.
    pub dead_pairs: u64,
}

impl std::ops::AddAssign for FaultCounters {
    fn add_assign(&mut self, rhs: FaultCounters) {
        self.retransmits += rhs.retransmits;
        self.drops += rhs.drops;
        self.duplicates += rhs.duplicates;
        self.deferrals += rhs.deferrals;
        self.dead_pairs += rhs.dead_pairs;
    }
}

/// Sender-side state of one connection, as captured by
/// [`Channel::reliability_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnSnapshot {
    pub from: usize,
    pub to: usize,
    /// FIFO floor: earliest wire time the next message may arrive.
    pub floor_ns: u64,
    /// Wire sequence number (one per transmission attempt).
    pub seq: u64,
    /// Logical message number (one per message).
    pub msg_seq: u64,
}

/// One peer's dedup/reorder window on the receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    pub peer: usize,
    /// Next logical message number expected from this sender.
    pub expected: u64,
    /// Logical numbers currently stashed out of order.
    pub stashed: Vec<u64>,
}

/// Receiver-side state of one rank's incoming side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvSnapshot {
    pub rank: usize,
    /// In-order messages released but not yet consumed.
    pub ready: usize,
    pub peers: Vec<PeerSnapshot>,
}

/// Complete reliable-delivery state of one channel at a quiescent
/// point: what the journal's world snapshots record (and what a
/// divergence bisect compares) for the Madeleine layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSnapshot {
    pub name: String,
    pub conns: Vec<ConnSnapshot>,
    pub recv: Vec<RecvSnapshot>,
    pub dead: Vec<(usize, usize)>,
    pub counters: FaultCounters,
}

impl ChannelSnapshot {
    /// Deterministic binary encoding (see [`marcel::journal::wire`]).
    pub fn encode(&self, out: &mut Vec<u8>) {
        use marcel::journal::wire::{put_str, put_u32, put_u64};
        put_str(out, &self.name);
        put_u32(out, self.conns.len() as u32);
        for c in &self.conns {
            put_u64(out, c.from as u64);
            put_u64(out, c.to as u64);
            put_u64(out, c.floor_ns);
            put_u64(out, c.seq);
            put_u64(out, c.msg_seq);
        }
        put_u32(out, self.recv.len() as u32);
        for r in &self.recv {
            put_u64(out, r.rank as u64);
            put_u64(out, r.ready as u64);
            put_u32(out, r.peers.len() as u32);
            for p in &r.peers {
                put_u64(out, p.peer as u64);
                put_u64(out, p.expected);
                put_u32(out, p.stashed.len() as u32);
                for s in &p.stashed {
                    put_u64(out, *s);
                }
            }
        }
        put_u32(out, self.dead.len() as u32);
        for &(from, to) in &self.dead {
            put_u64(out, from as u64);
            put_u64(out, to as u64);
        }
        for c in [
            self.counters.retransmits,
            self.counters.drops,
            self.counters.duplicates,
            self.counters.deferrals,
            self.counters.dead_pairs,
        ] {
            put_u64(out, c);
        }
    }

    /// Inverse of [`ChannelSnapshot::encode`]: decode one channel's
    /// reliable-delivery state from a journal snapshot section. The
    /// replay layer uses this to turn opaque snapshot bytes back into
    /// the typed state a `WorldDiff` compares field by field.
    pub fn decode(r: &mut marcel::journal::wire::Reader<'_>) -> Result<Self, String> {
        let name = r.str()?.to_string();
        let n = r.u32()? as usize;
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            conns.push(ConnSnapshot {
                from: r.u64()? as usize,
                to: r.u64()? as usize,
                floor_ns: r.u64()?,
                seq: r.u64()?,
                msg_seq: r.u64()?,
            });
        }
        let n = r.u32()? as usize;
        let mut recv = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = r.u64()? as usize;
            let ready = r.u64()? as usize;
            let np = r.u32()? as usize;
            let mut peers = Vec::with_capacity(np);
            for _ in 0..np {
                let peer = r.u64()? as usize;
                let expected = r.u64()?;
                let ns = r.u32()? as usize;
                let mut stashed = Vec::with_capacity(ns);
                for _ in 0..ns {
                    stashed.push(r.u64()?);
                }
                peers.push(PeerSnapshot {
                    peer,
                    expected,
                    stashed,
                });
            }
            recv.push(RecvSnapshot { rank, ready, peers });
        }
        let n = r.u32()? as usize;
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push((r.u64()? as usize, r.u64()? as usize));
        }
        let counters = FaultCounters {
            retransmits: r.u64()?,
            drops: r.u64()?,
            duplicates: r.u64()?,
            deferrals: r.u64()?,
            dead_pairs: r.u64()?,
        };
        Ok(ChannelSnapshot {
            name,
            conns,
            recv,
            dead,
            counters,
        })
    }
}

/// A Madeleine channel: one protocol, a set of member ranks, one
/// incoming message source per member, one connection per ordered pair.
pub struct Channel {
    name: Arc<str>,
    protocol: Protocol,
    model: Arc<LinkModel>,
    /// Deterministic fault injection for this channel's network (None =
    /// perfectly reliable wire, the paper's assumption).
    fault: Option<FaultPlan>,
    /// Member ranks (session-global indices), sorted.
    members: Vec<usize>,
    /// rank -> incoming source.
    sources: HashMap<usize, PollSource<WireMessage>>,
    /// rank -> receiver-side dedup/reorder state. A host-level mutex is
    /// safe here: it is never held across a kernel operation, so it
    /// charges no virtual time (the fault-free path stays bit-identical
    /// to the unreliable channel).
    recv: HashMap<usize, StdMutex<RecvState>>,
    /// (from, to) -> connection.
    conns: HashMap<(usize, usize), Connection>,
    /// Ordered pairs whose retransmit budget was exhausted.
    dead: StdMutex<HashSet<(usize, usize)>>,
    counters: AtomicCounters,
    /// Wire-level utilization of this channel's network (loop-back
    /// messages never touch the wire and are not counted).
    util: NetUtilization,
    /// Registry keys, interned at construction — per-message metric
    /// mirroring must not pay a `format!` per call.
    keys: MetricKeys,
}

/// Pre-built metrics-registry keys of one channel (see
/// [`Channel::metric`], [`Channel::record_wire`] and the poll-detect
/// histogram in `open_unpacking`).
struct MetricKeys {
    messages: String,
    bytes: String,
    retransmits: String,
    drops: String,
    dedup_drops: String,
    deferrals: String,
    dead_pairs: String,
    net_messages: String,
    net_bytes: String,
    poll_detect: String,
}

impl MetricKeys {
    fn new(name: &str, label: &str) -> MetricKeys {
        MetricKeys {
            messages: format!("chan/{name}/messages"),
            bytes: format!("chan/{name}/bytes"),
            retransmits: format!("chan/{name}/retransmits"),
            drops: format!("chan/{name}/drops"),
            dedup_drops: format!("chan/{name}/dedup_drops"),
            deferrals: format!("chan/{name}/deferrals"),
            dead_pairs: format!("chan/{name}/dead_pairs"),
            net_messages: format!("net/{name}/messages"),
            net_bytes: format!("net/{name}/bytes"),
            poll_detect: format!("poll_detect/{label}"),
        }
    }
}

impl Channel {
    /// Build a channel over `protocol` with the given link `model` and
    /// optional fault plan, connecting `members` (rank indices).
    /// Connections include the loop-back pair (rank, rank), which the
    /// `ch_mad` shutdown path uses to deliver its TERM packet to the
    /// local polling thread (loop-back never traverses the wire, so the
    /// fault plan does not apply to it).
    pub fn new(
        kernel: &Kernel,
        name: impl Into<String>,
        protocol: Protocol,
        model: LinkModel,
        fault: Option<FaultPlan>,
        members: impl IntoIterator<Item = usize>,
    ) -> Arc<Channel> {
        let name: Arc<str> = Arc::from(name.into());
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        let mut sources = HashMap::new();
        let mut recv = HashMap::new();
        let mut conns = HashMap::new();
        for &r in &members {
            sources.insert(
                r,
                PollSource::new(kernel, ProcId(r as u32), model.poll_cost),
            );
            recv.insert(r, StdMutex::new(RecvState::default()));
        }
        for &a in &members {
            for &b in &members {
                conns.insert(
                    (a, b),
                    Connection {
                        state: SimMutex::new(
                            kernel,
                            ConnState {
                                floor: VirtualTime::ZERO,
                                seq: 0,
                                msg_seq: 0,
                            },
                        ),
                    },
                );
            }
        }
        Arc::new(Channel {
            keys: MetricKeys::new(&name, protocol.name()),
            name,
            protocol,
            model: Arc::new(model),
            fault,
            members,
            sources,
            recv,
            conns,
            dead: StdMutex::new(HashSet::new()),
            counters: AtomicCounters::default(),
            util: NetUtilization::new(),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The channel name as a cheaply clonable `Arc<str>` — the tag the
    /// typed trace events carry.
    pub fn name_tag(&self) -> Arc<str> {
        self.name.clone()
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// The channel's weight when striping a transfer across several
    /// rails: its link's calibrated asymptotic bandwidth.
    pub fn stripe_weight(&self) -> f64 {
        self.model.asymptotic_bandwidth_mb_s()
    }

    pub fn members(&self) -> &[usize] {
        &self.members
    }

    pub fn is_member(&self, rank: usize) -> bool {
        self.sources.contains_key(&rank)
    }

    /// The fault plan attached to this channel's network, if any.
    pub fn fault(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Snapshot of the reliable-delivery counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            retransmits: self.counters.retransmits.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            duplicates: self.counters.duplicates.load(Ordering::Relaxed),
            deferrals: self.counters.deferrals.load(Ordering::Relaxed),
            dead_pairs: self.counters.dead_pairs.load(Ordering::Relaxed),
        }
    }

    /// Journal snapshot hook: the channel's complete reliable-delivery
    /// state — per-connection sequence numbers and FIFO floors, the
    /// receiver-side dedup/reorder windows, dead pairs and counters —
    /// in a deterministic order. **Host-only**: reads sender state via
    /// [`marcel::SimMutex::host_lock`], so it must be called at a
    /// quiescent point (after `Kernel::run` returned).
    pub fn reliability_snapshot(&self) -> ChannelSnapshot {
        let mut conns: Vec<ConnSnapshot> = self
            .conns
            .iter()
            .map(|(&(from, to), conn)| {
                let st = conn.state.host_lock();
                ConnSnapshot {
                    from,
                    to,
                    floor_ns: st.floor.as_nanos(),
                    seq: st.seq,
                    msg_seq: st.msg_seq,
                }
            })
            .collect();
        conns.sort_unstable_by_key(|c| (c.from, c.to));
        let mut recv: Vec<RecvSnapshot> = self
            .recv
            .iter()
            .map(|(&rank, state)| {
                let st = state.lock().unwrap();
                let mut peers: Vec<PeerSnapshot> = st
                    .peers
                    .iter()
                    .map(|(&peer, p)| PeerSnapshot {
                        peer,
                        expected: p.expected,
                        stashed: p.stash.keys().copied().collect(),
                    })
                    .collect();
                peers.sort_unstable_by_key(|p| p.peer);
                RecvSnapshot {
                    rank,
                    ready: st.ready.len(),
                    peers,
                }
            })
            .collect();
        recv.sort_unstable_by_key(|r| r.rank);
        let mut dead: Vec<(usize, usize)> = self.dead.lock().unwrap().iter().copied().collect();
        dead.sort_unstable();
        ChannelSnapshot {
            name: self.name.to_string(),
            conns,
            recv,
            dead,
            counters: self.counters(),
        }
    }

    /// Wire-level utilization of this channel's network: messages and
    /// payload bytes actually injected (loop-back excluded). The same
    /// numbers are mirrored into the metrics registry under
    /// `net/{channel}/messages` and `net/{channel}/bytes`.
    pub fn utilization(&self) -> &NetUtilization {
        &self.util
    }

    /// Whether the ordered pair `(from, to)` exhausted its retransmit
    /// budget (see [`ChannelError::LinkDead`]). A dead pair stays dead.
    pub fn is_dead_pair(&self, from: usize, to: usize) -> bool {
        self.dead.lock().unwrap().contains(&(from, to))
    }

    fn mark_dead(&self, from: usize, to: usize) {
        if self.dead.lock().unwrap().insert((from, to)) {
            self.counters.dead_pairs.fetch_add(1, Ordering::Relaxed);
            self.metric("dead_pairs", 1);
        }
    }

    /// Mirror one reliable-sublayer counter increment into the ambient
    /// metrics registry as `chan/{name}/{which}` (no-op off-simulation).
    /// Keys come from the interned [`MetricKeys`] table.
    fn metric(&self, which: &'static str, delta: u64) {
        let key = match which {
            "messages" => &self.keys.messages,
            "bytes" => &self.keys.bytes,
            "retransmits" => &self.keys.retransmits,
            "drops" => &self.keys.drops,
            "dedup_drops" => &self.keys.dedup_drops,
            "deferrals" => &self.keys.deferrals,
            "dead_pairs" => &self.keys.dead_pairs,
            other => unreachable!("unknown channel metric {other}"),
        };
        obs::counter_add(key, delta);
    }

    /// Span/histogram label for this channel: its protocol's short name.
    fn label(&self) -> &'static str {
        self.protocol.name()
    }

    /// Account one wire injection of `bytes` payload bytes: the channel's
    /// [`NetUtilization`] plus the registry mirror keys.
    fn record_wire(&self, bytes: usize) {
        self.util.record(bytes);
        self.metric("messages", 1);
        self.metric("bytes", bytes as u64);
        obs::counter_add(&self.keys.net_messages, 1);
        obs::counter_add(&self.keys.net_bytes, bytes as u64);
    }

    /// The view of this channel from `rank`.
    pub fn endpoint(self: &Arc<Self>, rank: usize) -> Result<Endpoint, ChannelError> {
        if !self.is_member(rank) {
            return Err(ChannelError::NotMember {
                rank,
                channel: self.name.to_string(),
            });
        }
        Ok(Endpoint {
            channel: self.clone(),
            rank,
        })
    }

    /// Next in-order message previously released from the reorder stash.
    fn take_ready(&self, rank: usize) -> Option<WireMessage> {
        self.recv[&rank].lock().unwrap().ready.pop_front()
    }

    /// Receiver-side accept decision for a polled message: `Some` to
    /// deliver it now, `None` when it was discarded as a duplicate or
    /// stashed for later (out-of-order).
    fn accept(&self, rank: usize, msg: WireMessage) -> Option<WireMessage> {
        let (dup_from, dup_seq) = (msg.from, msg.seq);
        let mut st = self.recv[&rank].lock().unwrap();
        let peer = st.peers.entry(msg.from).or_default();
        let released = match msg.seq.cmp(&peer.expected) {
            std::cmp::Ordering::Less => {
                self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                self.note_dedup(dup_from, dup_seq);
                return None;
            }
            std::cmp::Ordering::Greater => {
                if peer.stash.insert(msg.seq, msg).is_some() {
                    self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                    self.note_dedup(dup_from, dup_seq);
                }
                return None;
            }
            std::cmp::Ordering::Equal => {
                peer.expected += 1;
                let mut released = Vec::new();
                while let Some(m) = peer.stash.remove(&peer.expected) {
                    peer.expected += 1;
                    released.push(m);
                }
                released
            }
        };
        st.ready.extend(released);
        Some(msg)
    }

    fn note_dedup(&self, from: usize, seq: u64) {
        self.metric("dedup_drops", 1);
        let channel = self.name.clone();
        obs::emit(move || Event::DedupDrop { channel, from, seq });
    }

    /// Test hook: post a raw wire message (arbitrary `seq`) straight to
    /// `to`'s incoming source, bypassing the sender-side sublayer — how
    /// the reorder/dedup unit tests forge duplicates and gaps.
    #[cfg(test)]
    pub(crate) fn post_raw(&self, to: usize, at: VirtualTime, msg: WireMessage) {
        self.sources[&to].post(at, msg);
    }
}

/// A rank's handle on a channel.
#[derive(Clone)]
pub struct Endpoint {
    channel: Arc<Channel>,
    rank: usize,
}

impl Endpoint {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn channel(&self) -> &Arc<Channel> {
        &self.channel
    }

    /// `mad_begin_packing`: open an outgoing message to `remote`.
    pub fn begin_packing(&self, remote: usize) -> Result<PackingConnection, ChannelError> {
        if !self.channel.is_member(remote) {
            return Err(ChannelError::NotMember {
                rank: remote,
                channel: self.channel.name.to_string(),
            });
        }
        Ok(PackingConnection {
            span: obs::span_begin(SpanKind::Pack, self.channel.label()),
            endpoint: self.clone(),
            remote,
            blocks: Vec::new(),
            finished: false,
        })
    }

    /// `mad_begin_unpacking`: block until an in-order message is noticed
    /// on this rank's incoming side (duplicates are discarded, early
    /// messages stashed — see the reliable sublayer). Returns `None`
    /// once the source is closed and drained (session shutdown).
    pub fn begin_unpacking(&self) -> Option<UnpackingConnection> {
        loop {
            let message = match self.channel.take_ready(self.rank) {
                Some(m) => m,
                None => {
                    let polled = self.source().poll_wait()?;
                    match self.channel.accept(self.rank, polled.payload) {
                        Some(m) => m,
                        None => continue, // duplicate dropped or stashed
                    }
                }
            };
            return Some(self.open_unpacking(message));
        }
    }

    /// One non-blocking poll attempt (charges the protocol's poll cost).
    /// Returns `None` when nothing deliverable is pending — including
    /// when the one polled message was a duplicate or out of order.
    pub fn try_begin_unpacking(&self) -> Option<UnpackingConnection> {
        let message = match self.channel.take_ready(self.rank) {
            Some(m) => m,
            None => {
                let polled = self.source().try_poll()?;
                self.channel.accept(self.rank, polled.payload)?
            }
        };
        Some(self.open_unpacking(message))
    }

    /// Shared tail of `begin_unpacking`/`try_begin_unpacking`: observe
    /// the detection delay (now − wire arrival, the factorized-polling
    /// cycle the paper's Fig. 9 measures), open the unpack span, emit
    /// the typed event, then charge the receiver's fixed drain cost.
    fn open_unpacking(&self, message: WireMessage) -> UnpackingConnection {
        let channel = &self.channel;
        let detect = marcel::now().saturating_since(message.arrival);
        obs::observe_ns(&channel.keys.poll_detect, detect.as_nanos());
        let span = obs::span_begin(SpanKind::Unpack, channel.label());
        let (name, from, seq, bytes) = (
            channel.name.clone(),
            message.from,
            message.seq,
            message.total_len(),
        );
        obs::emit(move || Event::Unpack {
            channel: name,
            from,
            seq,
            bytes,
        });
        marcel::advance(channel.model.recv_fixed);
        UnpackingConnection {
            endpoint: self.clone(),
            message,
            cursor: 0,
            finished: false,
            span,
        }
    }

    /// Register this endpoint in its rank's factorized polling loop
    /// without blocking (the polling thread exists). `begin_unpacking`
    /// attaches implicitly.
    pub fn attach_polling(&self) {
        self.source().attach();
    }

    /// Remove this endpoint from the polling loop (polling thread gone).
    pub fn detach_polling(&self) {
        self.source().detach();
    }

    /// Close this rank's incoming side: a blocked `begin_unpacking`
    /// returns `None`.
    pub fn close_incoming(&self) {
        self.source().close();
    }

    /// Number of queued (arrived or in-flight) incoming messages,
    /// including in-order messages already released from the reorder
    /// stash but not yet consumed.
    pub fn backlog(&self) -> usize {
        let ready = self.channel.recv[&self.rank].lock().unwrap().ready.len();
        self.source().backlog() + ready
    }

    fn source(&self) -> &PollSource<WireMessage> {
        &self.channel.sources[&self.rank]
    }
}

/// An outgoing message being built (`mad_pack*` + `mad_end_packing`).
pub struct PackingConnection {
    endpoint: Endpoint,
    remote: usize,
    blocks: Vec<Block>,
    finished: bool,
    /// Pack span, open from `begin_packing` to `end_packing`.
    span: Option<ActiveSpan>,
}

impl PackingConnection {
    pub fn remote(&self) -> usize {
        self.remote
    }

    /// `mad_pack`: append `data` with the given mode pair.
    pub fn pack(&mut self, data: &[u8], send_mode: SendMode, recv_mode: ReceiveMode) {
        self.pack_bytes(Bytes::copy_from_slice(data), send_mode, recv_mode);
    }

    /// Zero-(host-)copy variant of [`PackingConnection::pack`] for
    /// callers that already own a [`Bytes`].
    pub fn pack_bytes(&mut self, data: Bytes, send_mode: SendMode, recv_mode: ReceiveMode) {
        let mut cpu = PACK_CALL_CPU;
        if send_mode == SendMode::Safer {
            // SAFER requires the library to copy synchronously so the
            // caller may reuse the buffer immediately.
            cpu += crate::cost_per_byte(
                self.endpoint.channel.model.eager_copy_per_byte_ns,
                data.len(),
            );
        }
        marcel::advance(cpu);
        self.blocks.push(Block {
            data,
            send_mode,
            recv_mode,
        });
    }

    /// `mad_end_packing`: transmit the message. Charges the sender's
    /// occupancy (including one `extra_segment` per pack beyond the
    /// first) and posts the message with its wire arrival time,
    /// preserving per-connection FIFO order.
    ///
    /// On a channel with a [`FaultPlan`] this is the sender half of the
    /// reliable sublayer: attempts the plan drops are retransmitted
    /// after an exponentially backed-off virtual-time timeout, attempts
    /// inside a finite link-down window wait the window out, and a lost
    /// acknowledgement forces a deliberate duplicate (exercising the
    /// receiver's dedup). Exhausting [`MAX_SEND_ATTEMPTS`] without one
    /// delivery declares the pair dead and returns
    /// [`ChannelError::LinkDead`]. Loop-back messages never touch the
    /// wire and bypass the plan.
    pub fn end_packing(mut self) -> Result<(), ChannelError> {
        self.finished = true;
        let mut span = self.span.take();
        let channel = self.endpoint.channel.clone();
        let model = &channel.model;
        let total: usize = self.blocks.iter().map(|b| b.data.len()).sum();
        let segments = self.blocks.len().max(1);
        let from = self.endpoint.rank;
        let to = self.remote;
        let blocks = std::mem::take(&mut self.blocks);
        let conn = &channel.conns[&(from, to)];
        let mut state = conn.state.lock();
        marcel::advance(model.sender_occupancy(total, segments));
        let msg_seq = state.msg_seq;
        state.msg_seq += 1;

        // Fast path — no fault plan, or loop-back (which never touches
        // the wire): identical timing to the original unreliable
        // channel, one attempt, no extra kernel operations.
        let plan = if from == to {
            None
        } else {
            channel.fault.as_ref()
        };
        let Some(plan) = plan else {
            let now = marcel::now();
            let mut arrival = model.arrival(now, total) + model.jitter_delay(state.seq, total);
            state.seq += 1;
            // The wire is a serial resource: this message cannot arrive
            // sooner than one full wire-serialization after the previous
            // message on the connection.
            let min_arrival = state.floor + (model.wire_serialization(total) + FIFO_EPSILON);
            if arrival < min_arrival {
                arrival = min_arrival;
            }
            state.floor = arrival;
            let message = WireMessage {
                from,
                seq: msg_seq,
                blocks,
                arrival,
            };
            channel.sources[&to].post(arrival, message);
            drop(state);
            if from != to {
                channel.record_wire(total);
            }
            let name = channel.name.clone();
            obs::emit(move || Event::Pack {
                channel: name,
                to,
                seq: msg_seq,
                bytes: total,
                segments,
            });
            obs::span_end(span.take());
            return Ok(());
        };

        // Reliable path. The connection guard is held across the whole
        // exchange (including virtual-time sleeps — SimMutex blocks
        // contenders in virtual time, so that is safe): the wire is a
        // serial resource and a sender does not interleave messages on
        // one connection mid-retransmit.
        let mut attempts: u32 = 0;
        let mut delivered = false;
        loop {
            let now = marcel::now();
            let wire_seq = state.seq;
            match plan.fate(wire_seq, total, now) {
                Fate::Defer(until) => {
                    // Link down but coming back: no attempt consumed,
                    // nothing occupies the wire; wait the window out.
                    channel.counters.deferrals.fetch_add(1, Ordering::Relaxed);
                    channel.metric("deferrals", 1);
                    marcel::sleep_until(until);
                }
                Fate::Drop => {
                    state.seq += 1;
                    attempts += 1;
                    channel.counters.drops.fetch_add(1, Ordering::Relaxed);
                    channel.metric("drops", 1);
                    if attempts >= MAX_SEND_ATTEMPTS {
                        if delivered {
                            obs::span_end(span.take());
                            return Ok(());
                        }
                        channel.mark_dead(from, to);
                        obs::span_end(span.take());
                        return Err(ChannelError::LinkDead {
                            channel: channel.name.to_string(),
                            from,
                            to,
                            attempts,
                        });
                    }
                    channel.counters.retransmits.fetch_add(1, Ordering::Relaxed);
                    channel.metric("retransmits", 1);
                    let name = channel.name.clone();
                    obs::emit(move || Event::Retransmit {
                        channel: name,
                        to,
                        seq: msg_seq,
                        attempt: attempts,
                    });
                    marcel::sleep(rto_for(attempts));
                }
                Fate::Deliver => {
                    state.seq += 1;
                    attempts += 1;
                    let mut arrival = model.arrival(now, total)
                        + model.jitter_delay(wire_seq, total)
                        + plan.extra_delay(now);
                    let min_arrival =
                        state.floor + (model.wire_serialization(total) + FIFO_EPSILON);
                    if arrival < min_arrival {
                        arrival = min_arrival;
                    }
                    state.floor = arrival;
                    let message = WireMessage {
                        from,
                        seq: msg_seq,
                        blocks: blocks.clone(),
                        arrival,
                    };
                    channel.sources[&to].post(arrival, message);
                    delivered = true;
                    channel.record_wire(total);
                    let name = channel.name.clone();
                    obs::emit(move || Event::Pack {
                        channel: name,
                        to,
                        seq: msg_seq,
                        bytes: total,
                        segments,
                    });
                    if plan.ack_lost(wire_seq, total) && attempts < MAX_SEND_ATTEMPTS {
                        // The delivery's acknowledgement vanished: the
                        // sender cannot tell and retransmits a
                        // duplicate after the timeout.
                        channel.counters.retransmits.fetch_add(1, Ordering::Relaxed);
                        channel.metric("retransmits", 1);
                        let name = channel.name.clone();
                        obs::emit(move || Event::Retransmit {
                            channel: name,
                            to,
                            seq: msg_seq,
                            attempt: attempts,
                        });
                        marcel::sleep(rto_for(attempts));
                        continue;
                    }
                    obs::span_end(span.take());
                    return Ok(());
                }
            }
        }
    }
}

impl Drop for PackingConnection {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!(
                "PackingConnection to rank {} dropped without mad_end_packing",
                self.remote
            );
        }
    }
}

/// An incoming message being consumed (`mad_unpack*` +
/// `mad_end_unpacking`).
pub struct UnpackingConnection {
    endpoint: Endpoint,
    message: WireMessage,
    cursor: usize,
    finished: bool,
    /// Unpack span, open from `begin_unpacking` to `end_unpacking`.
    span: Option<ActiveSpan>,
}

impl UnpackingConnection {
    /// Sending rank.
    pub fn from(&self) -> usize {
        self.message.from
    }

    /// Wire arrival time of the message.
    pub fn arrival(&self) -> VirtualTime {
        self.message.arrival
    }

    /// Total payload length of the message.
    pub fn total_len(&self) -> usize {
        self.message.total_len()
    }

    /// Remaining (not yet unpacked) blocks.
    pub fn remaining_blocks(&self) -> usize {
        self.message.blocks.len() - self.cursor
    }

    /// Length of the next block, if any (the `ch_mad` demultiplexer
    /// peeks at this to size eager bodies).
    pub fn next_block_len(&self) -> Option<usize> {
        self.message.blocks.get(self.cursor).map(|b| b.data.len())
    }

    /// `mad_unpack` into a caller-provided buffer. The mode pair and
    /// length must match the corresponding `mad_pack` — Madeleine
    /// treats a mismatch as a protocol violation, and so do we.
    pub fn unpack(&mut self, buf: &mut [u8], send_mode: SendMode, recv_mode: ReceiveMode) {
        let block = self.take_block(send_mode, recv_mode);
        assert_eq!(
            buf.len(),
            block.data.len(),
            "unpack length {} does not match packed block length {}",
            buf.len(),
            block.data.len()
        );
        buf.copy_from_slice(&block.data);
    }

    /// `mad_unpack` returning the block's bytes without a host copy
    /// (used for the zero-copy rendezvous body).
    pub fn unpack_bytes(&mut self, send_mode: SendMode, recv_mode: ReceiveMode) -> Bytes {
        self.take_block(send_mode, recv_mode).data
    }

    fn take_block(&mut self, send_mode: SendMode, recv_mode: ReceiveMode) -> Block {
        assert!(
            self.cursor < self.message.blocks.len(),
            "unpack past the end of a {}-block message",
            self.message.blocks.len()
        );
        let block = self.message.blocks[self.cursor].clone();
        assert_eq!(
            (block.send_mode, block.recv_mode),
            (send_mode, recv_mode),
            "unpack modes must match the pack modes of block {}",
            self.cursor
        );
        self.cursor += 1;
        marcel::advance(
            PACK_CALL_CPU
                + crate::cost_per_byte(
                    self.endpoint.channel.model.recv_per_byte_ns,
                    block.data.len(),
                ),
        );
        block
    }

    /// `mad_end_unpacking`: every block must have been consumed.
    pub fn end_unpacking(mut self) {
        assert_eq!(
            self.cursor,
            self.message.blocks.len(),
            "end_unpacking with {} block(s) left",
            self.message.blocks.len() - self.cursor
        );
        self.finished = true;
        obs::span_end(self.span.take());
    }
}

impl Drop for UnpackingConnection {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!(
                "UnpackingConnection from rank {} dropped without mad_end_unpacking",
                self.message.from
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marcel::{CostModel, Kernel};

    fn forged(from: usize, seq: u64, tag: u8) -> WireMessage {
        WireMessage {
            from,
            seq,
            blocks: vec![Block {
                data: Bytes::from(vec![tag]),
                send_mode: SendMode::Cheaper,
                recv_mode: ReceiveMode::Cheaper,
            }],
            arrival: VirtualTime(1_000),
        }
    }

    fn unpack_one(ep: &Endpoint) -> u8 {
        let mut conn = ep.begin_unpacking().expect("source open");
        let mut b = [0u8; 1];
        conn.unpack(&mut b, SendMode::Cheaper, ReceiveMode::Cheaper);
        conn.end_unpacking();
        b[0]
    }

    fn channel(k: &Kernel, fault: Option<FaultPlan>) -> Arc<Channel> {
        Channel::new(
            k,
            "test",
            Protocol::Sisci,
            Protocol::Sisci.model(),
            fault,
            [0, 1],
        )
    }

    #[test]
    fn out_of_order_messages_release_in_seq_order() {
        let k = Kernel::new(CostModel::free());
        let ch = channel(&k, None);
        let rx = ch.endpoint(1).unwrap();
        let ch2 = ch.clone();
        let h = k.spawn("rx", move || {
            // Forge a gap: logical message 1 arrives before message 0.
            ch2.post_raw(1, VirtualTime(1_000), forged(0, 1, b'B'));
            ch2.post_raw(1, VirtualTime(2_000), forged(0, 0, b'A'));
            let first = unpack_one(&rx);
            let backlog_between = rx.backlog();
            let second = unpack_one(&rx);
            (first, second, backlog_between)
        });
        k.run().unwrap();
        // Message 1 was stashed, then released behind message 0 — and the
        // released-but-unconsumed message counts toward the backlog.
        assert_eq!(h.join_outcome().unwrap(), (b'A', b'B', 1));
        assert_eq!(ch.counters(), FaultCounters::default());
    }

    #[test]
    fn duplicate_of_delivered_message_is_discarded() {
        let k = Kernel::new(CostModel::free());
        let ch = channel(&k, None);
        let rx = ch.endpoint(1).unwrap();
        let ch2 = ch.clone();
        let h = k.spawn("rx", move || {
            ch2.post_raw(1, VirtualTime(1_000), forged(0, 0, b'A'));
            ch2.post_raw(1, VirtualTime(2_000), forged(0, 0, b'A')); // retransmit
            ch2.post_raw(1, VirtualTime(3_000), forged(0, 1, b'B'));
            (unpack_one(&rx), unpack_one(&rx))
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (b'A', b'B'));
        assert_eq!(ch.counters().duplicates, 1);
    }

    #[test]
    fn duplicate_of_stashed_message_is_counted_once() {
        let k = Kernel::new(CostModel::free());
        let ch = channel(&k, None);
        let rx = ch.endpoint(1).unwrap();
        let ch2 = ch.clone();
        let h = k.spawn("rx", move || {
            ch2.post_raw(1, VirtualTime(1_000), forged(0, 1, b'B'));
            ch2.post_raw(1, VirtualTime(2_000), forged(0, 1, b'B')); // dup in stash
            ch2.post_raw(1, VirtualTime(3_000), forged(0, 0, b'A'));
            (unpack_one(&rx), unpack_one(&rx))
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (b'A', b'B'));
        assert_eq!(ch.counters().duplicates, 1);
    }

    #[test]
    fn exhausted_retransmits_declare_the_pair_dead() {
        let k = Kernel::new(CostModel::free());
        // Loss of 1.0: every attempt is dropped on the wire.
        let ch = channel(&k, Some(FaultPlan::new(7).with_loss(1.0)));
        let tx = ch.endpoint(0).unwrap();
        let h = k.spawn("tx", move || {
            let mut conn = tx.begin_packing(1).unwrap();
            conn.pack(&[9], SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing()
        });
        k.run().unwrap();
        match h.join_outcome().unwrap() {
            Err(ChannelError::LinkDead {
                from, to, attempts, ..
            }) => {
                assert_eq!((from, to, attempts), (0, 1, MAX_SEND_ATTEMPTS));
            }
            other => panic!("expected LinkDead, got {other:?}"),
        }
        assert!(ch.is_dead_pair(0, 1));
        assert!(!ch.is_dead_pair(1, 0));
        let c = ch.counters();
        assert_eq!(c.drops, MAX_SEND_ATTEMPTS as u64);
        assert_eq!(c.dead_pairs, 1);
    }

    #[test]
    fn lost_acks_force_duplicates_the_receiver_dedups() {
        let k = Kernel::new(CostModel::free());
        // Every delivery's acknowledgement vanishes: the sender keeps
        // retransmitting until the attempt budget runs out, then
        // (having delivered at least once) reports success.
        let ch = channel(&k, Some(FaultPlan::new(3).with_ack_loss(1.0)));
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        k.spawn("tx", move || {
            let mut conn = tx.begin_packing(1).unwrap();
            conn.pack(&[5], SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing().unwrap();
        });
        let h = k.spawn("rx", move || {
            let first = unpack_one(&rx);
            // Let every duplicate arrive, then drain them: each poll
            // consumes one and the dedup layer discards it.
            marcel::advance(VirtualDuration::from_millis(1_000));
            while rx.backlog() > 0 {
                assert!(rx.try_begin_unpacking().is_none(), "duplicate leaked");
            }
            first
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), 5);
        let c = ch.counters();
        assert_eq!(c.duplicates, MAX_SEND_ATTEMPTS as u64 - 1);
        assert_eq!(c.retransmits, MAX_SEND_ATTEMPTS as u64 - 1);
        assert_eq!(c.dead_pairs, 0);
    }
}
