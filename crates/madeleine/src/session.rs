//! Session bootstrap: map ranks onto cluster nodes and build one channel
//! per network (plus optional extra channels — Madeleine explicitly
//! allows several channels over the same protocol, e.g. to split the
//! traffic of two software modules; §3.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use marcel::Kernel;
use simnet::{NetworkId, NodeId, Protocol, Topology};

use crate::channel::{Channel, Endpoint, FaultCounters};
use crate::error::{ChannelError, MadError};

/// Declarative session description; build with [`SessionBuilder::build`].
pub struct SessionBuilder {
    topology: Topology,
    placement: Vec<NodeId>,
    extra_channels: Vec<(NetworkId, String)>,
    forwarding: bool,
}

impl SessionBuilder {
    pub fn new(topology: Topology) -> Self {
        SessionBuilder {
            topology,
            placement: Vec::new(),
            extra_channels: Vec::new(),
            forwarding: false,
        }
    }

    /// Allow topologies whose node pairs are only *transitively*
    /// connected: messages between them will cross gateway nodes (the
    /// forwarding mechanism of the paper's §6 future work). Validation
    /// relaxes from "pairwise direct link" to "connected graph".
    pub fn allow_forwarding(mut self) -> Self {
        self.forwarding = true;
        self
    }

    /// Place one rank per node, in node order.
    pub fn one_rank_per_node(mut self) -> Self {
        self.placement = (0..self.topology.nodes().len()).map(NodeId).collect();
        self
    }

    /// Place one rank per CPU on every node (SMP nodes get several).
    pub fn one_rank_per_cpu(mut self) -> Self {
        self.placement = self
            .topology
            .nodes()
            .iter()
            .enumerate()
            .flat_map(|(i, n)| std::iter::repeat_n(NodeId(i), n.cpus))
            .collect();
        self
    }

    /// Explicit rank -> node placement.
    pub fn place(mut self, placement: Vec<NodeId>) -> Self {
        self.placement = placement;
        self
    }

    /// Open an additional channel over an existing network.
    pub fn extra_channel(mut self, network: NetworkId, name: impl Into<String>) -> Self {
        self.extra_channels.push((network, name.into()));
        self
    }

    /// Validate the topology and instantiate channels and connections.
    pub fn build(self, kernel: &Kernel) -> Result<Arc<Session>, MadError> {
        if self.forwarding {
            self.topology.validate_connected()?;
        } else {
            self.topology.validate()?;
        }
        if self.placement.is_empty() {
            return Err(MadError::EmptyPlacement);
        }
        for (rank, node) in self.placement.iter().enumerate() {
            if node.0 >= self.topology.nodes().len() {
                return Err(MadError::RankOnUnknownNode { rank, node: node.0 });
            }
        }
        let mut channels = Vec::new();
        let mut network_channel = Vec::new();
        for (i, net) in self.topology.networks().iter().enumerate() {
            let members = member_ranks(&self.placement, &net.members);
            let channel = Channel::new(
                kernel,
                format!("{}#{}", net.protocol.name(), i),
                net.protocol,
                net.model.clone(),
                net.fault.clone(),
                members,
            );
            network_channel.push(channels.len());
            channels.push(channel);
        }
        for (net_id, name) in self.extra_channels {
            let net = self.topology.network(net_id);
            let members = member_ranks(&self.placement, &net.members);
            channels.push(Channel::new(
                kernel,
                name,
                net.protocol,
                net.model.clone(),
                net.fault.clone(),
                members,
            ));
        }
        Ok(Arc::new(Session {
            topology: self.topology,
            placement: self.placement,
            channels,
            network_channel,
            forwarding: self.forwarding,
            failovers: AtomicU64::new(0),
            rndv_reissues: AtomicU64::new(0),
        }))
    }
}

fn member_ranks(placement: &[NodeId], members: &std::collections::BTreeSet<NodeId>) -> Vec<usize> {
    placement
        .iter()
        .enumerate()
        .filter(|(_, node)| members.contains(node))
        .map(|(rank, _)| rank)
        .collect()
}

/// A running Madeleine session: ranks placed on nodes, channels built.
pub struct Session {
    topology: Topology,
    placement: Vec<NodeId>,
    channels: Vec<Arc<Channel>>,
    /// network index -> index into `channels` (the primary channel).
    network_channel: Vec<usize>,
    forwarding: bool,
    /// Device-level events recorded through the session so benches and
    /// tests can observe robustness behaviour.
    failovers: AtomicU64,
    rndv_reissues: AtomicU64,
}

impl Session {
    /// Shortcut: `n` ranks, one per node, over a single network of the
    /// given protocol.
    pub fn single_network(kernel: &Kernel, n: usize, protocol: Protocol) -> Arc<Session> {
        SessionBuilder::new(Topology::single_network(n, protocol))
            .one_rank_per_node()
            .build(kernel)
            .expect("single-network topology is always valid")
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn n_ranks(&self) -> usize {
        self.placement.len()
    }

    pub fn node_of(&self, rank: usize) -> NodeId {
        self.placement[rank]
    }

    pub fn ranks_on_node(&self, node: NodeId) -> Vec<usize> {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r)
            .collect()
    }

    /// All channels (primary per-network channels first, then extras).
    pub fn channels(&self) -> &[Arc<Channel>] {
        &self.channels
    }

    /// The primary channel of a network.
    pub fn channel_for_network(&self, net: NetworkId) -> &Arc<Channel> {
        &self.channels[self.network_channel[net.0]]
    }

    /// Channels whose membership includes `rank`.
    pub fn channels_of_rank(&self, rank: usize) -> Vec<Arc<Channel>> {
        self.channels
            .iter()
            .filter(|c| c.is_member(rank))
            .cloned()
            .collect()
    }

    /// Primary channels connecting two distinct ranks on different
    /// nodes, best (highest transfer priority) first.
    pub fn channels_between(&self, a: usize, b: usize) -> Vec<Arc<Channel>> {
        let (na, nb) = (self.node_of(a), self.node_of(b));
        let mut out: Vec<Arc<Channel>> = self
            .topology
            .networks_between(na, nb)
            .into_iter()
            .map(|net| self.channel_for_network(net).clone())
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.protocol().transfer_priority()));
        out
    }

    /// Like [`Session::channels_between`], but excluding channels whose
    /// `(a, b)` pair was declared dead by the reliable sublayer — the
    /// surviving rails the `ch_mad` device re-resolves its protocol
    /// policy against after a failure.
    pub fn live_channels_between(&self, a: usize, b: usize) -> Vec<Arc<Channel>> {
        self.channels_between(a, b)
            .into_iter()
            .filter(|c| !c.is_dead_pair(a, b) && !c.is_dead_pair(b, a))
            .collect()
    }

    /// The preferred channel between two ranks (the `ch_mad` selection
    /// rule: the fastest network both nodes share).
    pub fn best_channel_between(&self, a: usize, b: usize) -> Option<Arc<Channel>> {
        self.channels_between(a, b).into_iter().next()
    }

    /// Number of distinct direct rails (networks) connecting two ranks
    /// — the multi-rail condition for striped transfers.
    pub fn n_rails_between(&self, a: usize, b: usize) -> usize {
        self.channels_between(a, b).len()
    }

    /// Endpoint of `rank` on the primary channel of `net`.
    pub fn endpoint(&self, net: NetworkId, rank: usize) -> Result<Endpoint, ChannelError> {
        self.channel_for_network(net).endpoint(rank)
    }

    /// Aggregate reliable-delivery counters across every channel.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for c in &self.channels {
            total += c.counters();
        }
        total
    }

    /// Per-channel reliable-delivery counters, in channel order — the
    /// breakdown the `degraded` bench reports next to aggregate totals.
    pub fn per_channel_counters(&self) -> Vec<(String, FaultCounters)> {
        self.channels
            .iter()
            .map(|c| (c.name().to_string(), c.counters()))
            .collect()
    }

    /// Snapshot every channel's reliable-delivery state, in channel
    /// order. Must only be called at a quiescent point (after
    /// `Kernel::run` returns): it reads `SimMutex`-guarded connection
    /// state via `host_lock`.
    pub fn reliability_snapshot(&self) -> Vec<crate::channel::ChannelSnapshot> {
        self.channels
            .iter()
            .map(|c| c.reliability_snapshot())
            .collect()
    }

    /// Deterministic binary encoding of [`Self::reliability_snapshot`]
    /// plus the session-level failover/reissue counters — the
    /// "madeleine" section of a journal world snapshot.
    pub fn reliability_snapshot_bytes(&self) -> Vec<u8> {
        use marcel::journal::wire::{put_u32, put_u64};
        let snaps = self.reliability_snapshot();
        let mut out = Vec::with_capacity(256);
        put_u32(&mut out, snaps.len() as u32);
        for s in &snaps {
            s.encode(&mut out);
        }
        put_u64(&mut out, self.failovers());
        put_u64(&mut out, self.rndv_reissues());
        out
    }

    /// Record that a device moved traffic off a dead rail.
    pub fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
        marcel::obs::counter_add("chmad/failovers", 1);
    }

    /// Record that an in-flight rendezvous REQUEST was re-issued.
    pub fn note_rndv_reissue(&self) {
        self.rndv_reissues.fetch_add(1, Ordering::Relaxed);
        marcel::obs::counter_add("chmad/rndv_reissues", 1);
    }

    /// Number of rail failovers recorded by devices.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Number of rendezvous REQUEST re-issues recorded by devices.
    pub fn rndv_reissues(&self) -> u64 {
        self.rndv_reissues.load(Ordering::Relaxed)
    }

    /// Whether forwarding across gateway nodes is enabled.
    pub fn forwarding_enabled(&self) -> bool {
        self.forwarding
    }

    /// The rank path from `a` to `b`: `[a, gateways..., b]`. One rank
    /// per gateway node (the lowest-numbered rank hosted there, a
    /// deterministic choice). `None` when the nodes are unreachable or
    /// forwarding is disabled and the path is indirect.
    pub fn route_between(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let node_path = self.topology.node_route(self.node_of(a), self.node_of(b))?;
        if node_path.len() > 2 && !self.forwarding {
            return None;
        }
        let mut ranks = Vec::with_capacity(node_path.len());
        ranks.push(a);
        if node_path.len() > 2 {
            for node in &node_path[1..node_path.len() - 1] {
                let gateway = *self
                    .ranks_on_node(*node)
                    .first()
                    .expect("gateway node hosts at least one rank");
                ranks.push(gateway);
            }
        }
        if b != a {
            ranks.push(b);
        }
        Some(ranks)
    }

    /// The next hop from `from` toward `final_dst` plus whether that hop
    /// is the final one. Panics when unreachable (callers validate at
    /// session build).
    pub fn next_hop(&self, from: usize, final_dst: usize) -> (usize, bool) {
        let route = self
            .route_between(from, final_dst)
            .unwrap_or_else(|| panic!("no route from rank {from} to rank {final_dst}"));
        assert!(route.len() >= 2, "next_hop requires distinct ranks");
        (route[1], route.len() == 2)
    }
}

/// Decoded `"madeleine"` section of a journal world snapshot: every
/// channel's reliable-delivery state plus the session-level counters —
/// the typed inverse of [`Session::reliability_snapshot_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliabilitySnapshot {
    pub channels: Vec<crate::channel::ChannelSnapshot>,
    pub failovers: u64,
    pub rndv_reissues: u64,
}

/// Decode the `"madeleine"` snapshot section written by
/// [`Session::reliability_snapshot_bytes`].
pub fn decode_reliability_snapshot(bytes: &[u8]) -> Result<ReliabilitySnapshot, String> {
    let mut r = marcel::journal::wire::Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut channels = Vec::with_capacity(n);
    for _ in 0..n {
        channels.push(crate::channel::ChannelSnapshot::decode(&mut r)?);
    }
    let failovers = r.u64()?;
    let rndv_reissues = r.u64()?;
    if r.remaining() != 0 {
        return Err(format!(
            "{} trailing bytes after madeleine snapshot",
            r.remaining()
        ));
    }
    Ok(ReliabilitySnapshot {
        channels,
        failovers,
        rndv_reissues,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marcel::CostModel;

    #[test]
    fn single_network_session() {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 4, Protocol::Tcp);
        assert_eq!(s.n_ranks(), 4);
        assert_eq!(s.channels().len(), 1);
        assert_eq!(s.channels()[0].members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn reliability_snapshot_round_trips() {
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(Topology::meta_cluster(2))
            .one_rank_per_node()
            .build(&k)
            .unwrap();
        s.note_failover();
        s.note_rndv_reissue();
        s.note_rndv_reissue();
        let bytes = s.reliability_snapshot_bytes();
        let snap = decode_reliability_snapshot(&bytes).unwrap();
        assert_eq!(snap.channels.len(), s.channels().len());
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.rndv_reissues, 2);
        let names: Vec<&str> = snap.channels.iter().map(|c| c.name.as_str()).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        // Decoding a truncated section must fail loudly, not panic.
        assert!(decode_reliability_snapshot(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn meta_cluster_channel_membership() {
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(Topology::meta_cluster(2))
            .one_rank_per_node()
            .build(&k)
            .unwrap();
        // Networks: SCI {0,1}, BIP {2,3}, TCP {0,1,2,3}.
        assert_eq!(s.channels().len(), 3);
        let sci = s.channel_for_network(NetworkId(0));
        assert_eq!(sci.members(), &[0, 1]);
        let bip = s.channel_for_network(NetworkId(1));
        assert_eq!(bip.members(), &[2, 3]);
        let tcp = s.channel_for_network(NetworkId(2));
        assert_eq!(tcp.members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn best_channel_selection() {
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(Topology::meta_cluster(2))
            .one_rank_per_node()
            .build(&k)
            .unwrap();
        assert_eq!(
            s.best_channel_between(0, 1).unwrap().protocol(),
            Protocol::Sisci
        );
        assert_eq!(
            s.best_channel_between(2, 3).unwrap().protocol(),
            Protocol::Bip
        );
        assert_eq!(
            s.best_channel_between(0, 2).unwrap().protocol(),
            Protocol::Tcp
        );
        assert_eq!(
            s.best_channel_between(1, 3).unwrap().protocol(),
            Protocol::Tcp
        );
    }

    #[test]
    fn smp_placement() {
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(Topology::meta_cluster(2))
            .one_rank_per_cpu()
            .build(&k)
            .unwrap();
        // 4 dual-CPU nodes -> 8 ranks.
        assert_eq!(s.n_ranks(), 8);
        assert_eq!(s.ranks_on_node(NodeId(0)), vec![0, 1]);
        assert_eq!(s.node_of(7), NodeId(3));
    }

    #[test]
    fn extra_channel_over_same_network() {
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(Topology::single_network(2, Protocol::Sisci))
            .one_rank_per_node()
            .extra_channel(NetworkId(0), "module-b")
            .build(&k)
            .unwrap();
        assert_eq!(s.channels().len(), 2);
        assert_eq!(s.channels()[1].name(), "module-b");
        assert_eq!(s.channels()[0].protocol(), s.channels()[1].protocol());
    }

    #[test]
    fn invalid_topology_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        let k = Kernel::new(CostModel::free());
        let err = SessionBuilder::new(t).one_rank_per_node().build(&k);
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod forwarding_tests {
    use super::*;
    use marcel::CostModel;
    use simnet::Protocol;

    fn chain_session(kernel: &Kernel) -> Arc<Session> {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 2);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        SessionBuilder::new(t)
            .one_rank_per_cpu() // ranks: 0 on a; 1,2 on b; 3 on c
            .allow_forwarding()
            .build(kernel)
            .unwrap()
    }

    #[test]
    fn chain_requires_forwarding_flag() {
        let k = Kernel::new(CostModel::free());
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [b, c]);
        assert!(SessionBuilder::new(t)
            .one_rank_per_node()
            .build(&k)
            .is_err());
    }

    #[test]
    fn route_uses_lowest_rank_gateway() {
        let k = Kernel::new(CostModel::free());
        let s = chain_session(&k);
        assert_eq!(s.route_between(0, 3), Some(vec![0, 1, 3]));
        assert_eq!(s.route_between(3, 0), Some(vec![3, 1, 0]));
        assert_eq!(s.route_between(0, 2), Some(vec![0, 2]));
        assert_eq!(
            s.route_between(1, 2),
            Some(vec![1, 2]),
            "same node is direct"
        );
    }

    #[test]
    fn next_hop_walks_the_route() {
        let k = Kernel::new(CostModel::free());
        let s = chain_session(&k);
        assert_eq!(s.next_hop(0, 3), (1, false));
        assert_eq!(s.next_hop(1, 3), (3, true));
        assert_eq!(s.next_hop(3, 0), (1, false));
        assert_eq!(s.next_hop(1, 0), (0, true));
    }

    #[test]
    fn direct_pairs_have_two_rank_routes_without_the_flag() {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 3, Protocol::Tcp);
        assert!(!s.forwarding_enabled());
        assert_eq!(s.route_between(0, 2), Some(vec![0, 2]));
    }
}
