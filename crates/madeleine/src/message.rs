//! Wire representation of a Madeleine message.
//!
//! A message is an ordered sequence of blocks, each carrying the mode
//! pair its `mad_pack` call specified. The simulation ships the whole
//! block list as one unit (the *timing* of segments is charged by the
//! link model — see [`crate::channel`]), but the unpack side re-enforces
//! the API contract: blocks must be extracted in order and with the same
//! mode pair they were packed with, exactly like Madeleine II requires.

use bytes::Bytes;
use marcel::VirtualTime;

use crate::modes::{ReceiveMode, SendMode};

/// One packed data block.
#[derive(Clone, Debug)]
pub struct Block {
    pub data: Bytes,
    pub send_mode: SendMode,
    pub recv_mode: ReceiveMode,
}

/// A complete message as it travels between two ranks over one channel.
#[derive(Clone, Debug)]
pub struct WireMessage {
    /// Sending rank (session-global index).
    pub from: usize,
    /// Per-connection logical message number (reliable-delivery
    /// sublayer): every retransmission of one message carries the same
    /// `seq`, which is what lets the receiver dedup and reorder.
    pub seq: u64,
    /// Blocks in packing order.
    pub blocks: Vec<Block>,
    /// Wire arrival time at the receiving adapter.
    pub arrival: VirtualTime,
}

impl WireMessage {
    /// Total payload bytes across all blocks.
    pub fn total_len(&self) -> usize {
        self.blocks.iter().map(|b| b.data.len()).sum()
    }

    /// Number of packing operations that built the message.
    pub fn segments(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let msg = WireMessage {
            from: 3,
            seq: 0,
            blocks: vec![
                Block {
                    data: Bytes::from_static(&[1, 2, 3, 4]),
                    send_mode: SendMode::Cheaper,
                    recv_mode: ReceiveMode::Express,
                },
                Block {
                    data: Bytes::from_static(&[0; 100]),
                    send_mode: SendMode::Cheaper,
                    recv_mode: ReceiveMode::Cheaper,
                },
            ],
            arrival: VirtualTime(5),
        };
        assert_eq!(msg.total_len(), 104);
        assert_eq!(msg.segments(), 2);
    }
}
