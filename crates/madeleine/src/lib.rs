//! # madeleine — reproduction of the Madeleine II communication library
//!
//! Madeleine II (Aumage, Bougé, Namyst) is the multi-protocol
//! message-passing library underneath MPICH/Madeleine. This crate
//! reproduces its programming interface and performance behaviour over
//! the simulated networks of `simnet`:
//!
//! * **Channels** ([`Channel`]) — closed communication worlds bound to
//!   one protocol; in-order delivery per point-to-point connection
//!   within a channel.
//! * **Incremental message building** — `begin_packing` / `pack` /
//!   `end_packing` with per-block [`SendMode`]/[`ReceiveMode`] semantics
//!   (`EXPRESS` vs `CHEAPER`), and the symmetric unpacking side.
//! * **Sessions** ([`Session`]) — rank placement over a cluster
//!   [`simnet::Topology`] and channel construction per network.
//!
//! Timing faithfulness: raw one-way latency and bandwidth over each
//! protocol match the paper's Table 1 (see `tests/` and the `bench`
//! crate's `table1` binary), and each packing operation beyond the first
//! costs the protocol's measured `extra_segment` (§5.2–5.4).

pub mod channel;
pub mod error;
pub mod message;
pub mod modes;
pub mod session;

pub use channel::{
    Channel, ChannelSnapshot, ConnSnapshot, Endpoint, FaultCounters, PackingConnection,
    PeerSnapshot, RecvSnapshot, UnpackingConnection, MAX_SEND_ATTEMPTS, PACK_CALL_CPU,
};
pub use error::{ChannelError, MadError};
pub use message::{Block, WireMessage};
pub use modes::{ReceiveMode, SendMode};
pub use session::{decode_reliability_snapshot, ReliabilitySnapshot, Session, SessionBuilder};

use marcel::VirtualDuration;

/// `bytes * ns_per_byte`, rounded to whole nanoseconds (shared helper).
pub(crate) fn cost_per_byte(ns_per_byte: f64, bytes: usize) -> VirtualDuration {
    VirtualDuration::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marcel::{CostModel, Kernel, VirtualTime};
    use simnet::Protocol;

    /// Fig. 2 of the paper: send an int size EXPRESS, then the array
    /// CHEAPER; the receiver extracts the size first, allocates, then
    /// extracts the payload.
    #[test]
    fn paper_figure_2_example() {
        let k = Kernel::new(CostModel::calibrated());
        let s = Session::single_network(&k, 2, Protocol::Tcp);
        let ch = s.channels()[0].clone();
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        let payload: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        k.spawn("sender", move || {
            let mut conn = tx.begin_packing(1).unwrap();
            let size = (payload.len() as u32).to_le_bytes();
            conn.pack(&size, SendMode::Cheaper, ReceiveMode::Express);
            conn.pack(&payload, SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing().unwrap();
        });
        let h = k.spawn("receiver", move || {
            let mut conn = rx.begin_unpacking().unwrap();
            let mut size = [0u8; 4];
            conn.unpack(&mut size, SendMode::Cheaper, ReceiveMode::Express);
            let n = u32::from_le_bytes(size) as usize;
            let mut array = vec![0u8; n];
            conn.unpack(&mut array, SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_unpacking();
            array
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), expected);
    }

    #[test]
    fn raw_latency_matches_table_1() {
        // One-pack 4-byte one-way message over each protocol must land
        // within a few percent of the paper's Table 1 latency.
        for (proto, target_us) in [
            (Protocol::Tcp, 121.0),
            (Protocol::Sisci, 4.4),
            (Protocol::Bip, 9.2),
        ] {
            let k = Kernel::new(CostModel::free());
            let s = Session::single_network(&k, 2, proto);
            let ch = s.channels()[0].clone();
            let tx = ch.endpoint(0).unwrap();
            let rx = ch.endpoint(1).unwrap();
            k.spawn("sender", move || {
                let mut conn = tx.begin_packing(1).unwrap();
                conn.pack(&[1, 2, 3, 4], SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_packing().unwrap();
            });
            let h = k.spawn("receiver", move || {
                let mut conn = rx.begin_unpacking().unwrap();
                let mut buf = [0u8; 4];
                conn.unpack(&mut buf, SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                marcel::now()
            });
            k.run().unwrap();
            let got = h.join_outcome().unwrap().as_micros_f64();
            let err = (got - target_us).abs() / target_us;
            assert!(
                err < 0.06,
                "{}: one-way 4B latency {got}us vs Table 1 target {target_us}us",
                proto.name()
            );
        }
    }

    #[test]
    fn second_pack_costs_extra_segment() {
        // The ch_mad overhead decomposition (§5.2): the second packing
        // operation adds the protocol's extra_segment to the one-way
        // time.
        for proto in Protocol::ALL {
            let one = oneway_time(proto, 1);
            let two = oneway_time(proto, 2);
            let extra = proto.model().extra_segment.as_nanos() as i64;
            let delta = two.as_nanos() as i64 - one.as_nanos() as i64;
            // Within the extra pack-call CPU + rounding.
            assert!(
                (delta - extra).abs() < 2_000,
                "{}: delta {delta}ns vs extra_segment {extra}ns",
                proto.name()
            );
        }
    }

    fn oneway_time(proto: Protocol, segments: usize) -> VirtualTime {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, proto);
        let ch = s.channels()[0].clone();
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        k.spawn("sender", move || {
            let mut conn = tx.begin_packing(1).unwrap();
            for _ in 0..segments {
                conn.pack(&[0u8; 4], SendMode::Cheaper, ReceiveMode::Express);
            }
            conn.end_packing().unwrap();
        });
        let h = k.spawn("receiver", move || {
            let mut conn = rx.begin_unpacking().unwrap();
            for _ in 0..segments {
                let mut buf = [0u8; 4];
                conn.unpack(&mut buf, SendMode::Cheaper, ReceiveMode::Express);
            }
            conn.end_unpacking();
            marcel::now()
        });
        k.run().unwrap();
        h.join_outcome().unwrap()
    }

    #[test]
    fn per_connection_fifo_order() {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, Protocol::Bip);
        let ch = s.channels()[0].clone();
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        // A big message followed by a tiny one: the tiny one must NOT
        // overtake on the same connection.
        k.spawn("sender", move || {
            let mut big = tx.begin_packing(1).unwrap();
            big.pack(&vec![1u8; 100_000], SendMode::Cheaper, ReceiveMode::Cheaper);
            big.end_packing().unwrap();
            let mut small = tx.begin_packing(1).unwrap();
            small.pack(&[2u8], SendMode::Cheaper, ReceiveMode::Cheaper);
            small.end_packing().unwrap();
        });
        let h = k.spawn("receiver", move || {
            let mut order = Vec::new();
            for _ in 0..2 {
                let mut conn = rx.begin_unpacking().unwrap();
                let bytes = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                order.push(bytes[0]);
                conn.end_unpacking();
            }
            order
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), vec![1, 2]);
    }

    #[test]
    fn channels_are_independent_worlds() {
        // Two channels over the same network: a message on channel B is
        // not visible on channel A.
        let k = Kernel::new(CostModel::free());
        let s = SessionBuilder::new(simnet::Topology::single_network(2, Protocol::Sisci))
            .one_rank_per_node()
            .extra_channel(simnet::NetworkId(0), "b")
            .build(&k)
            .unwrap();
        let (cha, chb) = (s.channels()[0].clone(), s.channels()[1].clone());
        let (txa, txb) = (cha.endpoint(0).unwrap(), chb.endpoint(0).unwrap());
        let rxb = chb.endpoint(1).unwrap();
        let rxa = cha.endpoint(1).unwrap();
        k.spawn("sender", move || {
            let mut m = txb.begin_packing(1).unwrap();
            m.pack(&[9], SendMode::Cheaper, ReceiveMode::Cheaper);
            m.end_packing().unwrap();
            let mut m = txa.begin_packing(1).unwrap();
            m.pack(&[7], SendMode::Cheaper, ReceiveMode::Cheaper);
            m.end_packing().unwrap();
        });
        let h = k.spawn("receiver", move || {
            // Read channel A first even though B's message left first.
            let mut conn = rxa.begin_unpacking().unwrap();
            let a = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper)[0];
            conn.end_unpacking();
            let mut conn = rxb.begin_unpacking().unwrap();
            let b = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper)[0];
            conn.end_unpacking();
            (a, b)
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), (7, 9));
    }

    #[test]
    fn mode_mismatch_is_a_protocol_violation() {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, Protocol::Tcp);
        let ch = s.channels()[0].clone();
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        k.spawn("sender", move || {
            let mut conn = tx.begin_packing(1).unwrap();
            conn.pack(&[0u8; 8], SendMode::Cheaper, ReceiveMode::Cheaper);
            conn.end_packing().unwrap();
        });
        k.spawn("receiver", move || {
            let mut conn = rx.begin_unpacking().unwrap();
            let mut buf = [0u8; 8];
            // Wrong receive mode: must panic.
            conn.unpack(&mut buf, SendMode::Cheaper, ReceiveMode::Express);
            conn.end_unpacking();
        });
        assert!(matches!(k.run(), Err(marcel::SimError::ThreadPanicked(_))));
    }

    #[test]
    fn close_incoming_unblocks_receiver() {
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, Protocol::Tcp);
        let ch = s.channels()[0].clone();
        let rx = ch.endpoint(1).unwrap();
        let rx2 = ch.endpoint(1).unwrap();
        let h = k.spawn("receiver", move || rx.begin_unpacking().is_none());
        k.spawn("closer", move || {
            marcel::advance(marcel::VirtualDuration::from_micros(5));
            rx2.close_incoming();
        });
        k.run().unwrap();
        assert!(h.join_outcome().unwrap());
    }

    #[test]
    fn loopback_connection_delivers_to_self() {
        // Used by the ch_mad TERM shutdown path.
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, Protocol::Tcp);
        let ch = s.channels()[0].clone();
        let ep = ch.endpoint(0).unwrap();
        let h = k.spawn("rank0", move || {
            let mut m = ep.begin_packing(0).unwrap();
            m.pack(&[42], SendMode::Cheaper, ReceiveMode::Express);
            m.end_packing().unwrap();
            let mut conn = ep.begin_unpacking().unwrap();
            let v = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Express)[0];
            conn.end_unpacking();
            v
        });
        k.run().unwrap();
        assert_eq!(h.join_outcome().unwrap(), 42);
    }

    #[test]
    fn safer_mode_charges_a_copy() {
        // send_SAFER forces a synchronous copy; with a large block the
        // pack call itself must get measurably more expensive.
        let k = Kernel::new(CostModel::free());
        let s = Session::single_network(&k, 2, Protocol::Sisci);
        let ch = s.channels()[0].clone();
        let tx = ch.endpoint(0).unwrap();
        let rx = ch.endpoint(1).unwrap();
        let h = k.spawn("sender", move || {
            let data = vec![0u8; 100_000];
            let t0 = marcel::now();
            let mut conn = tx.begin_packing(1).unwrap();
            conn.pack(&data, SendMode::Safer, ReceiveMode::Cheaper);
            let after_pack = marcel::now() - t0;
            conn.end_packing().unwrap();
            after_pack
        });
        k.spawn("receiver", move || {
            let mut conn = rx.begin_unpacking().unwrap();
            let _ = conn.unpack_bytes(SendMode::Safer, ReceiveMode::Cheaper);
            conn.end_unpacking();
        });
        k.run().unwrap();
        let pack_cost = h.join_outcome().unwrap();
        // 100 KB at 10 ns/B = 1 ms.
        assert!(pack_cost.as_micros_f64() > 900.0, "pack cost {pack_cost}");
    }

    #[test]
    fn bandwidth_matches_table_1_for_8mb() {
        for (proto, target) in [
            (Protocol::Tcp, 11.2),
            (Protocol::Sisci, 82.6),
            (Protocol::Bip, 122.0),
        ] {
            let k = Kernel::new(CostModel::free());
            let s = Session::single_network(&k, 2, proto);
            let ch = s.channels()[0].clone();
            let tx = ch.endpoint(0).unwrap();
            let rx = ch.endpoint(1).unwrap();
            let n = 8 * (1 << 20);
            k.spawn("sender", move || {
                let mut conn = tx.begin_packing(1).unwrap();
                conn.pack_bytes(
                    bytes::Bytes::from(vec![0u8; n]),
                    SendMode::Cheaper,
                    ReceiveMode::Cheaper,
                );
                conn.end_packing().unwrap();
            });
            let h = k.spawn("receiver", move || {
                let mut conn = rx.begin_unpacking().unwrap();
                let _ = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                marcel::now()
            });
            k.run().unwrap();
            let t = h.join_outcome().unwrap().as_secs_f64();
            let mb = n as f64 / (1 << 20) as f64;
            let bw = mb / t;
            let err = (bw - target).abs() / target;
            assert!(
                err < 0.03,
                "{}: 8MB bandwidth {bw:.1} MB/s vs Table 1 target {target}",
                proto.name()
            );
        }
    }
}
