#!/usr/bin/env python3
"""CI gate for the collective algorithm engine benchmark.

Run after `cargo run --release -p bench --bin collectives -- 2`:

1. the `collectives` report (everything under the default `Seed`
   policy) must be bit-identical to the committed baseline — the engine
   refactor must never move a historical number;
2. the `coll_policy` report's `*/seed` series must match the committed
   baseline exactly (same guarantee, second report);
3. the `*/adaptive` series must be *strictly* faster than `*/seed` for
   every operation at large payloads (>= 256 KB) on the meta-cluster —
   the headline win of the adaptive engine. Virtual time is
   deterministic, so strict inequality cannot flake.
"""

import json
import sys
from pathlib import Path

LARGE = 256 * 1024
RESULTS = Path("target/bench-results")
BASELINES = Path("ci")


def load(path: Path) -> dict:
    with open(path) as f:
        return json.load(f)


def series_map(report: dict) -> dict:
    return {s["name"]: dict(s["samples"]) for s in report["series"]}


def main() -> int:
    failures = []

    current = load(RESULTS / "collectives.json")
    baseline = load(BASELINES / "collectives_baseline.json")
    if current != baseline:
        failures.append(
            "collectives.json deviates from ci/collectives_baseline.json "
            "(Seed policy must keep historical outputs bit-identical)"
        )
    else:
        print("collectives.json: bit-identical to the committed baseline")

    policy = series_map(load(RESULTS / "coll_policy.json"))
    policy_base = series_map(load(BASELINES / "coll_policy_baseline.json"))
    for name, samples in policy_base.items():
        if not name.endswith("/seed"):
            continue
        if policy.get(name) != samples:
            failures.append(f"coll_policy series {name!r} deviates from the baseline")
        else:
            print(f"coll_policy {name}: bit-identical to the committed baseline")

    for op in ("bcast", "allreduce", "allgather"):
        seed = policy[f"{op}/seed"]
        adaptive = policy[f"{op}/adaptive"]
        for size in sorted(seed):
            if size < LARGE:
                continue
            if adaptive[size] < seed[size]:
                speedup = seed[size] / adaptive[size]
                print(f"{op} @ {size}: adaptive {speedup:.2f}x faster")
            else:
                failures.append(
                    f"{op} @ {size}: adaptive ({adaptive[size]} ns) is not "
                    f"strictly faster than seed ({seed[size]} ns)"
                )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("collective engine gates: all green")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
