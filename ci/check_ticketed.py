#!/usr/bin/env python3
"""CI gate for the ticketed parallel execution engine.

Run after
`cargo run --release -p bench --bin hotpath -- --workers 4 2 | tee ticketed.out`:

    python3 ci/check_ticketed.py ticketed.out \
        [--retry-cmd "cargo run --release -p bench --bin hotpath -- --workers 4 2"]

Gates:

1. **Bit-identical replay** (always enforced, never retried): the
   `det-seed` and `det-ticketed` fingerprint lines — message count,
   virtual end time and the metrics-registry digest of the identical
   storm run under `ExecPolicy::Seed` and `ExecPolicy::Ticketed(N)` —
   must be byte-for-byte equal. Any scheduling divergence, lost wake-up
   or mis-ordered commit shows up here, and a single failure fails the
   gate: determinism is not a statistical property.
2. **Speedup floor** (hardware-aware, retried once): the ticketed
   engine must beat the seed engine's wall-clock by `MIN_SPEEDUP` when
   the host has at least `workers` cores; on smaller hosts the floor
   drops to `MIN_SPEEDUP_SMALL` (the committer still wins by batching
   effect application). Wall-clock on a loaded CI runner is noisy, so a
   speedup-only failure re-runs the measurement once via `--retry-cmd`
   before failing — the retry's fingerprints are held to the same
   strict identity requirement.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

MIN_SPEEDUP = 2.5  # with >= `workers` host cores
MIN_SPEEDUP_SMALL = 1.5  # single-core committer-batching floor


def parse(lines):
    """Extract the det-* fingerprint payloads and the wall JSON."""
    det = {}
    wall = None
    for line in lines:
        line = line.strip()
        for tag in ("det-seed", "det-ticketed"):
            if line.startswith(tag + " "):
                det[tag] = line[len(tag) + 1 :]
        if line.startswith("wall "):
            wall = json.loads(line[5:])
    return det, wall


def identity_failure(det):
    """Strictly-enforced byte identity; returns a failure string or None."""
    if set(det) != {"det-seed", "det-ticketed"}:
        return f"missing fingerprint lines (got {sorted(det)})"
    if det["det-seed"] != det["det-ticketed"]:
        return (
            "deterministic fingerprints differ:\n"
            f"  seed:     {det['det-seed']}\n"
            f"  ticketed: {det['det-ticketed']}"
        )
    return None


def speedup_verdict(wall):
    """(ok, label) for the hardware-aware wall-clock floor."""
    if wall is None:
        return False, "no wall JSON line in bench output"
    cores = os.cpu_count() or 1
    workers = wall.get("workers", 0)
    floor = MIN_SPEEDUP if cores >= workers else MIN_SPEEDUP_SMALL
    speedup = wall.get("speedup", 0.0)
    label = (
        f"speedup {speedup:.3f} at workers={workers} "
        f"(seed {wall.get('seed_wall_ms')}ms / ticketed "
        f"{wall.get('ticketed_wall_ms')}ms, host cores={cores}, floor {floor})"
    )
    return speedup >= floor, label


def main() -> int:
    args = sys.argv[1:]
    retry_cmd = None
    if "--retry-cmd" in args:
        i = args.index("--retry-cmd")
        retry_cmd = args[i + 1]
        del args[i : i + 2]
    if len(args) != 1:
        print(
            f"usage: {sys.argv[0]} <ticketed-output-file> [--retry-cmd CMD]",
            file=sys.stderr,
        )
        return 2
    det, wall = parse(Path(args[0]).read_text().strip().splitlines())

    # Byte identity: strict, no retry.
    failure = identity_failure(det)
    if failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"fingerprints byte-identical: {det['det-seed']}")

    ok, label = speedup_verdict(wall)
    if not ok and retry_cmd:
        print(f"RETRY: {label}")
        print(f"RETRY: re-running once: {retry_cmd}")
        out = subprocess.run(
            retry_cmd, shell=True, capture_output=True, text=True, check=False
        )
        sys.stderr.write(out.stderr)
        if out.returncode != 0:
            print(f"FAIL: retry command exited {out.returncode}", file=sys.stderr)
            return 1
        det, wall = parse(out.stdout.splitlines())
        failure = identity_failure(det)
        if failure:  # identity must hold on the retry too
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"retry fingerprints byte-identical: {det['det-seed']}")
        ok, label = speedup_verdict(wall)

    if not ok:
        print(f"FAIL: {label}", file=sys.stderr)
        return 1
    print(label)
    print("ticketed gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
