#!/usr/bin/env python3
"""CI gate for the ticketed parallel execution engine.

Run after
`cargo run --release -p bench --bin hotpath -- --workers 4 2 | tee ticketed.out`:

    python3 ci/check_ticketed.py ticketed.out

Gates:

1. **Bit-identical replay** (always enforced): the `det-seed` and
   `det-ticketed` fingerprint lines — message count, virtual end time
   and the metrics-registry digest of the identical storm run under
   `ExecPolicy::Seed` and `ExecPolicy::Ticketed(N)` — must be
   byte-for-byte equal. Any scheduling divergence, lost wake-up or
   mis-ordered commit shows up here.
2. **Speedup floor** (hardware-aware): the ticketed engine must beat the
   seed engine's wall-clock by `MIN_SPEEDUP` when the host has at least
   `workers` cores. On smaller hosts (e.g. single-core CI runners) true
   parallel scaling is physically impossible, so the gate drops to
   `MIN_SPEEDUP_SMALL`: even there the committer wins by batching effect
   application where the seed loop pays a context switch per step, and
   that floor keeps the engine from regressing into
   slower-than-seed territory.
"""

import json
import os
import sys
from pathlib import Path

MIN_SPEEDUP = 2.5  # with >= `workers` host cores
MIN_SPEEDUP_SMALL = 1.5  # single-core committer-batching floor


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <ticketed-output-file>", file=sys.stderr)
        return 2
    lines = Path(sys.argv[1]).read_text().strip().splitlines()
    det = {}
    wall = None
    for line in lines:
        line = line.strip()
        for tag in ("det-seed", "det-ticketed"):
            if line.startswith(tag + " "):
                det[tag] = line[len(tag) + 1 :]
        if line.startswith("wall "):
            wall = json.loads(line[5:])

    failures = []
    if set(det) != {"det-seed", "det-ticketed"}:
        failures.append(f"missing fingerprint lines (got {sorted(det)})")
    elif det["det-seed"] != det["det-ticketed"]:
        failures.append(
            "deterministic fingerprints differ:\n"
            f"  seed:     {det['det-seed']}\n"
            f"  ticketed: {det['det-ticketed']}"
        )
    else:
        print(f"fingerprints byte-identical: {det['det-seed']}")

    if wall is None:
        failures.append("no wall JSON line in bench output")
    else:
        cores = os.cpu_count() or 1
        workers = wall.get("workers", 0)
        floor = MIN_SPEEDUP if cores >= workers else MIN_SPEEDUP_SMALL
        speedup = wall.get("speedup", 0.0)
        label = (
            f"speedup {speedup:.3f} at workers={workers} "
            f"(seed {wall.get('seed_wall_ms')}ms / ticketed "
            f"{wall.get('ticketed_wall_ms')}ms, host cores={cores}, floor {floor})"
        )
        if speedup < floor:
            failures.append(label)
        else:
            print(label)

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("ticketed gate OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
