#!/usr/bin/env python3
"""CI gate for the hot-path wall-clock benchmark.

Run after `cargo run --release -p bench --bin hotpath -- 2 | tee hotpath.out`:

    python3 ci/check_hotpath.py hotpath.out

Gates (vs ci/hotpath_baseline.json, captured at iters=2):

1. the storm completed and the summary JSON parsed — the bench is a
   smoke test for the whole stack under deep unexpected queues;
2. message count matches the baseline exactly (same workload);
3. allocation count stays within 10% of the committed baseline — the
   O(1)-matching + copy-free-eager PR halved it, and it must not creep
   back (allocation counts are deterministic for a fixed workload;
   wall-clock is hardware-dependent and reported but NOT gated);
4. the §3.3 idle-channel tax under `PollPolicy::Parking` is exactly
   zero — virtual time is deterministic, so equality cannot flake.
"""

import json
import sys
from pathlib import Path

BASELINE = Path("ci") / "hotpath_baseline.json"
ALLOC_HEADROOM = 1.10


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <hotpath-output-file>", file=sys.stderr)
        return 2
    lines = Path(sys.argv[1]).read_text().strip().splitlines()
    summary = None
    for line in reversed(lines):
        line = line.strip()
        if line.startswith("{"):
            summary = json.loads(line)
            break
    failures = []
    if summary is None:
        failures.append("no summary JSON line in bench output (storm crashed?)")
        summary = {}

    baseline = json.loads(BASELINE.read_text())

    if summary:
        if summary.get("messages") != baseline["messages"]:
            failures.append(
                f"message count {summary.get('messages')} != baseline "
                f"{baseline['messages']} (workload changed without re-baselining?)"
            )
        limit = int(baseline["allocs"] * ALLOC_HEADROOM)
        if summary.get("allocs", limit + 1) > limit:
            failures.append(
                f"allocs {summary.get('allocs')} > {limit} "
                f"(baseline {baseline['allocs']} + {ALLOC_HEADROOM:.0%}): "
                "hot-path allocations crept back up"
            )
        else:
            print(
                f"allocs {summary['allocs']} <= {limit} "
                f"(baseline {baseline['allocs']})"
            )
        if summary.get("parking_tax_us", 1.0) != 0.0:
            failures.append(
                f"parking idle-channel tax is {summary.get('parking_tax_us')}us, "
                "expected exactly 0 (parked TCP must not tax SCI latency)"
            )
        else:
            print("parking idle-channel tax: 0.000us (exact)")
        print(
            f"wall_ms {summary.get('wall_ms')} / events_per_sec "
            f"{summary.get('events_per_sec')} (informational, not gated)"
        )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("hotpath gate OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
