#!/usr/bin/env python3
"""CI gate for the durable journal: snapshot determinism, kill-and-resume
byte-identity, divergence bisect, and journal-format stability.

Run after

    cargo run --release -p bench --bin soak -- 8 | tee soak.out
    cargo run --release -p bench --bin soak -- --golden journal_witness.bin

as

    python3 ci/check_journal.py soak.out journal_witness.bin

Gates (all strict — virtual time and the journal byte format are fully
deterministic, so nothing here can flake):

1. **A/B determinism**: two uninterrupted soak campaigns must report the
   same journal digest, byte count, record count and end time.
2. **Cross-policy identity**: the `Ticketed(2)` campaign's journal must
   be byte-identical to the `Seed` journals (the format deliberately
   excludes the execution policy).
3. **Kill-and-resume**: every injected kill point (byte-budgeted sink
   dying mid-record) must leave a torn tail, and the resumed campaign's
   journal must be byte-identical to the uninterrupted run's
   (`"ok":true` on every `soak-resume` line).
4. **Bisect**: self-bisect reports identical; the perturbed campaign's
   first divergence lands on the expected leg.
5. **Format golden**: the freshly generated format witness (every record
   kind and event variant with fixed values) must be byte-identical to
   the committed `ci/journal_golden.bin` — any accidental format change
   breaks this before it breaks someone's archived campaign journal.
"""

import json
import sys
from pathlib import Path

GOLDEN = Path(__file__).parent / "journal_golden.bin"


def main() -> int:
    if len(sys.argv) != 3:
        print(
            f"usage: {sys.argv[0]} <soak-output-file> <fresh-witness-file>",
            file=sys.stderr,
        )
        return 2
    lines = Path(sys.argv[1]).read_text().strip().splitlines()
    det = {}
    cross = None
    resumes = []
    bisect = None
    summary = None
    for line in lines:
        line = line.strip()
        for tag in ("soak-det-a", "soak-det-b"):
            if line.startswith(tag + " "):
                det[tag] = json.loads(line[len(tag) + 1 :])
        if line.startswith("soak-cross "):
            cross = json.loads(line[11:])
        if line.startswith("soak-resume "):
            resumes.append(json.loads(line[12:]))
        if line.startswith("soak-bisect "):
            bisect = json.loads(line[12:])
        if line.startswith("soak-summary "):
            summary = json.loads(line[13:])

    failures = []

    if set(det) != {"soak-det-a", "soak-det-b"}:
        failures.append(f"missing soak-det lines (got {sorted(det)})")
    elif det["soak-det-a"] != det["soak-det-b"]:
        failures.append(
            f"A/B campaigns diverged:\n  a: {det['soak-det-a']}\n  b: {det['soak-det-b']}"
        )
    else:
        print(f"A/B journals identical: digest {det['soak-det-a']['digest']}")

    if cross is None:
        failures.append("no soak-cross line")
    elif not cross.get("identical") or (
        det.get("soak-det-a") and cross.get("digest") != det["soak-det-a"]["digest"]
    ):
        failures.append(f"cross-policy journal differs: {cross}")
    else:
        print(f"Ticketed({cross.get('workers')}) journal byte-identical to Seed")

    if not resumes:
        failures.append("no soak-resume lines (kill points not exercised)")
    for r in resumes:
        if not r.get("torn"):
            failures.append(f"kill point left no torn tail: {r}")
        elif not r.get("ok"):
            failures.append(f"resume not byte-identical: {r}")
        else:
            print(
                f"resume OK: cut {r['cut']}, torn tail dropped, "
                f"legs {r['resumed_at_leg']}..+{r['legs_run']} re-run under {r['exec']}"
            )

    if bisect is None:
        failures.append("no soak-bisect line")
    else:
        if not bisect.get("identical_ok"):
            failures.append("self-bisect did not report identical")
        if bisect.get("diverged_leg") != bisect.get("expected_leg"):
            failures.append(f"bisect landed on the wrong leg: {bisect}")
        if bisect.get("identical_ok") and bisect.get("diverged_leg") == bisect.get(
            "expected_leg"
        ):
            print(
                f"bisect OK: first divergence in leg {bisect['diverged_leg']} "
                f"after {bisect['probes']} snapshot probes: {bisect.get('first')}"
            )

    if summary is None:
        failures.append("no soak-summary line")

    golden = GOLDEN.read_bytes() if GOLDEN.exists() else None
    fresh = Path(sys.argv[2]).read_bytes()
    if golden is None:
        failures.append(f"committed golden missing: {GOLDEN}")
    elif golden != fresh:
        failures.append(
            f"journal format changed: witness ({len(fresh)} B) != committed "
            f"golden ({len(golden)} B). If the change is intentional, bump the "
            "format VERSION in crates/marcel/src/journal.rs and regenerate "
            "ci/journal_golden.bin with `cargo run -p bench --bin soak -- "
            "--golden ci/journal_golden.bin`."
        )
    else:
        print(f"journal format golden OK ({len(golden)} bytes)")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("journal gate OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
