#!/usr/bin/env python3
"""CI gate for the time-travel replay machinery (`jrnl` inspector).

Run after

    JRNL="cargo run --release -p bench --bin jrnl --"
    $JRNL gen replay.jrnl --legs 8 --roll 65536        | tee replay.out
    $JRNL stat replay.jrnl                             | tee -a replay.out
    $JRNL stat replay.jrnl                             | tee -a replay.out
    $JRNL seek replay.jrnl 0                           | tee -a replay.out
    $JRNL seek replay.jrnl 500                         | tee -a replay.out
    $JRNL diff replay.jrnl 500 500                     | tee -a replay.out
    $JRNL reexec replay.jrnl 500                       | tee -a replay.out
    $JRNL reexec replay.jrnl 500 --workers 2           | tee -a replay.out
    $JRNL export replay.jrnl replay-window.json --from 100 --to 900 \
                                                       | tee -a replay.out

as

    python3 ci/check_replay.py replay.out replay-window.json

Gates (all strict — the journal and its replay are fully deterministic):

1. **Stat determinism**: the two `jrnl-stat` lines over the same
   segmented journal must be identical, and the digest must match the
   `jrnl-gen` report.
2. **Rolling segments**: `jrnl gen --roll` must have produced more than
   one segment file, transparently readable by every other subcommand.
3. **Seek**: every `jrnl-seek` line must stay within its own printed
   `O(log snapshots)` probe bound.
4. **Seek-equivalence**: every `jrnl-reexec` line must report
   `ok:true` — the re-executed world (under Seed and Ticketed alike)
   and the regenerated journal prefix are bit-identical to the
   uninterrupted run's — and its digest must match the `jrnl-seek`
   digest at the same event index.
5. **Diff**: the self-diff line must be empty with matching digests.
6. **Window export**: the exported Chrome trace must be valid JSON,
   every record carrying `ph`/`ts`/`pid`/`tid`, with at least one
   `"ph":"C"` counter sample whose args include the fault counters.
"""

import json
import sys
from pathlib import Path


def main() -> int:
    if len(sys.argv) != 3:
        print(
            f"usage: {sys.argv[0]} <jrnl-output-file> <window-export.json>",
            file=sys.stderr,
        )
        return 2
    lines = Path(sys.argv[1]).read_text().strip().splitlines()
    gen = None
    stats = []
    seeks = []
    diffs = []
    reexecs = []
    exports = []
    for line in lines:
        line = line.strip()
        for tag, into in (
            ("jrnl-stat", stats),
            ("jrnl-seek", seeks),
            ("jrnl-diff", diffs),
            ("jrnl-reexec", reexecs),
            ("jrnl-export", exports),
        ):
            if line.startswith(tag + " "):
                into.append(json.loads(line[len(tag) + 1 :]))
        if line.startswith("jrnl-gen "):
            gen = json.loads(line[9:])

    failures = []

    if gen is None:
        failures.append("no jrnl-gen line")
    elif gen.get("segments", 0) <= 1:
        failures.append(f"rolling journal produced a single segment: {gen}")
    else:
        print(f"rolling journal OK: {gen['segments']} segments, {gen['bytes']} bytes")

    if len(stats) < 2:
        failures.append(f"need two jrnl-stat lines for determinism, got {len(stats)}")
    elif stats[0] != stats[1]:
        failures.append(f"stat not deterministic:\n  1: {stats[0]}\n  2: {stats[1]}")
    elif gen and stats[0].get("digest") != gen.get("digest"):
        failures.append(
            f"stat digest {stats[0].get('digest')} != gen digest {gen.get('digest')}"
        )
    else:
        print(f"stat deterministic: digest {stats[0]['digest']}")

    if not seeks:
        failures.append("no jrnl-seek lines")
    by_event = {}
    for s in seeks:
        by_event[s["event"]] = s
        if s["probes"] > s["probe_bound"]:
            failures.append(f"seek exceeded its O(log) probe bound: {s}")
        else:
            print(
                f"seek OK: event {s['event']} -> snapshot {s['snapshot']} "
                f"in {s['probes']} probes (bound {s['probe_bound']})"
            )

    if not reexecs:
        failures.append("no jrnl-reexec lines (seek-equivalence not exercised)")
    execs = set()
    for r in reexecs:
        execs.add(r.get("exec"))
        if not r.get("ok"):
            failures.append(f"re-execution not bit-identical: {r}")
            continue
        seek = by_event.get(r["event"])
        if seek and seek["digest"] != r["digest"]:
            failures.append(
                f"reexec digest {r['digest']} != seek digest {seek['digest']} "
                f"at event {r['event']}"
            )
        else:
            print(
                f"reexec OK: event {r['event']} under {r['exec']} "
                f"(digest {r['digest']})"
            )
    if reexecs and len(execs) < 2:
        failures.append(f"reexec must cover both execution policies, got {execs}")

    if not diffs:
        failures.append("no jrnl-diff lines")
    for d in diffs:
        if d["a"] == d["b"]:
            if not d.get("empty") or d.get("deltas") != 0:
                failures.append(f"self-diff not empty: {d}")
            elif d.get("digest_a") != d.get("digest_b"):
                failures.append(f"self-diff digests differ: {d}")
            else:
                print(f"self-diff empty at event {d['a']}")

    export_path = Path(sys.argv[2])
    if not exports:
        failures.append("no jrnl-export line")
    elif not export_path.exists():
        failures.append(f"window export missing: {export_path}")
    else:
        records = json.loads(export_path.read_text())
        assert isinstance(records, list)
        for e in records:
            for key in ("ph", "ts", "pid", "tid"):
                if key not in e:
                    failures.append(f"trace record missing {key!r}: {e}")
                    break
        counters = [e for e in records if e.get("ph") == "C"]
        if not counters:
            failures.append("window export has no counter samples")
        elif not any("retransmits" in c.get("args", {}) for c in counters):
            failures.append(f"counter samples lack fault counters: {counters[:1]}")
        else:
            print(
                f"window export OK: {len(records)} records, "
                f"{len(counters)} counter samples"
            )
        if exports[0].get("events", 0) + len(counters) > len(records):
            failures.append(
                f"export reported {exports[0]} but file has {len(records)} records"
            )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("replay gate OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
